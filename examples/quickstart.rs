//! Quickstart: wrap a GCN with GraphRARE on a heterophilic graph.
//!
//! Generates the Texas benchmark (the most heterophilic dataset of the
//! paper, H = 0.11), trains a plain GCN and a GraphRARE-enhanced GCN on
//! the same split, and prints the accuracy and homophily comparison.
//!
//! Run with: `cargo run --release --example quickstart`

use graphrare::{run, GraphRareConfig};
use graphrare_datasets::{generate_mini, stratified_split, Dataset};
use graphrare_gnn::{build_model, fit, Backbone, GraphTensors, ModelConfig, TrainConfig};

fn main() {
    let seed = 42;
    println!("Generating the Texas benchmark (Table II: 183 nodes, H = 0.11)...");
    let graph = generate_mini(Dataset::Texas, seed);
    let split = stratified_split(graph.labels(), graph.num_classes(), seed);
    println!(
        "  {} nodes, {} edges, homophily {:.3}\n",
        graph.num_nodes(),
        graph.num_edges(),
        graphrare_graph::metrics::homophily_ratio(&graph)
    );

    // 1. Plain GCN baseline.
    println!("Training plain GCN...");
    let model_cfg = ModelConfig { seed, ..Default::default() };
    let gcn = build_model(Backbone::Gcn, graph.feat_dim(), graph.num_classes(), &model_cfg);
    let labels = graph.labels().to_vec();
    let plain =
        fit(gcn.as_ref(), &GraphTensors::new(&graph), &labels, &split, &TrainConfig::default());
    println!("  test accuracy: {:.2}%\n", 100.0 * plain.test_acc);

    // 2. GraphRARE-enhanced GCN: entropy ranking + PPO topology edits.
    println!("Training GCN-RARE (joint GNN + PPO topology optimisation)...");
    let cfg = GraphRareConfig::default().with_seed(seed);
    let report = run(&graph, &split, Backbone::Gcn, &cfg);
    println!("  test accuracy: {:.2}%", 100.0 * report.test_acc);
    println!(
        "  homophily ratio: {:.3} -> {:.3}",
        report.original_homophily, report.optimized_homophily
    );
    println!(
        "  mean episode reward trace: {:?}",
        report.traces.episode_rewards.iter().map(|r| format!("{r:+.3}")).collect::<Vec<_>>()
    );

    let delta = 100.0 * (report.test_acc - plain.test_acc);
    println!("\nGCN-RARE vs GCN: {delta:+.2} accuracy points on this split.");
}
