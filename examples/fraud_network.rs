//! Domain scenario from the paper's introduction: *"fraudsters are more
//! likely to build connections with customers instead of other fraudsters
//! in online purchasing networks."*
//!
//! Builds a synthetic purchasing network where fraudsters wire themselves
//! to ordinary customers (strong heterophily), shows that a vanilla GCN
//! is fooled by the topology, and that GraphRARE's entropy ranking
//! reconnects behaviourally similar accounts so the wrapped GCN recovers.
//!
//! Run with: `cargo run --release --example fraud_network`

use graphrare::{run, GraphRareConfig};
use graphrare_datasets::stratified_split;
use graphrare_entropy::{RelativeEntropyConfig, RelativeEntropyTable};
use graphrare_gnn::{build_model, fit, Backbone, GraphTensors, ModelConfig, TrainConfig};
use graphrare_graph::Graph;
use graphrare_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CUSTOMERS: usize = 160;
const FRAUDSTERS: usize = 40;
const FEATURES: usize = 24;

/// Fraudsters share behavioural features (velocity, device reuse, …) but
/// connect almost exclusively to customers.
fn build_network(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = CUSTOMERS + FRAUDSTERS;
    let labels: Vec<usize> = (0..n).map(|v| usize::from(v >= CUSTOMERS)).collect();
    let features = Matrix::from_fn(n, FEATURES, |v, f| {
        let fraud = v >= CUSTOMERS;
        // First half of features: customer behaviour; second: fraud signals.
        let active_block = if fraud { f >= FEATURES / 2 } else { f < FEATURES / 2 };
        let p = if active_block { 0.35 } else { 0.05 };
        if rng.gen_bool(p) {
            1.0
        } else {
            0.0
        }
    });
    let mut g = Graph::new(n, features, labels, 2);
    // Customer-customer transactions.
    while g.num_edges() < 150 {
        let a = rng.gen_range(0..CUSTOMERS);
        let b = rng.gen_range(0..CUSTOMERS);
        g.add_edge(a, b);
    }
    // Fraudster -> customer wiring (95% of fraud edges cross classes).
    for f in CUSTOMERS..n {
        for _ in 0..6 {
            if rng.gen_bool(0.95) {
                g.add_edge(f, rng.gen_range(0..CUSTOMERS));
            } else {
                g.add_edge(f, rng.gen_range(CUSTOMERS..n));
            }
        }
    }
    g
}

fn main() {
    let seed = 7;
    let graph = build_network(seed);
    let split = stratified_split(graph.labels(), graph.num_classes(), seed);
    println!(
        "Purchasing network: {} customers, {} fraudsters, {} edges, homophily {:.3}",
        CUSTOMERS,
        FRAUDSTERS,
        graph.num_edges(),
        graphrare_graph::metrics::homophily_ratio(&graph)
    );

    // What does the entropy metric see? Compare a fraud-fraud pair with a
    // fraud-customer pair.
    let table = RelativeEntropyTable::new(&graph, &RelativeEntropyConfig::default());
    let (f1, f2, c1) = (CUSTOMERS, CUSTOMERS + 1, 0);
    println!(
        "\nNode relative entropy (Eq. 9): fraud-fraud H({f1},{f2}) = {:.3}, \
         fraud-customer H({f1},{c1}) = {:.3}",
        table.entropy(f1, f2),
        table.entropy(f1, c1)
    );

    let labels = graph.labels().to_vec();
    let model_cfg = ModelConfig { seed, ..Default::default() };
    let train_cfg = TrainConfig { seed, ..Default::default() };

    let gcn = build_model(Backbone::Gcn, graph.feat_dim(), graph.num_classes(), &model_cfg);
    let plain = fit(gcn.as_ref(), &GraphTensors::new(&graph), &labels, &split, &train_cfg);
    println!("\nPlain GCN fraud-detection accuracy:   {:.2}%", 100.0 * plain.test_acc);

    let cfg = GraphRareConfig::default().with_seed(seed);
    let report = run(&graph, &split, Backbone::Gcn, &cfg);
    println!("GCN-RARE fraud-detection accuracy:    {:.2}%", 100.0 * report.test_acc);
    println!(
        "Rewired homophily: {:.3} -> {:.3} ({} edges in optimised graph)",
        report.original_homophily,
        report.optimized_homophily,
        report.optimized_graph.num_edges()
    );

    // How many of the added edges connect fraudsters to fraudsters?
    let mut fraud_links_before = 0;
    let mut fraud_links_after = 0;
    for (u, v) in graph.edge_vec() {
        if graph.label(u) == 1 && graph.label(v) == 1 {
            fraud_links_before += 1;
        }
    }
    for (u, v) in report.optimized_graph.edge_vec() {
        if graph.label(u) == 1 && graph.label(v) == 1 {
            fraud_links_after += 1;
        }
    }
    println!(
        "Fraud-fraud edges: {fraud_links_before} before optimisation, {fraud_links_after} after."
    );
}
