//! Extending GraphRARE with a custom backbone.
//!
//! The framework is generic over [`GnnModel`]; the paper stresses that it
//! "can be easily adapted to any existing GNN model". This example
//! implements a small APPNP-style model (predict-then-propagate:
//! Gasteiger et al. 2019) from scratch against the public trait and runs
//! it through the full Algorithm-1 loop via `run_with_sequences`.
//!
//! Run with: `cargo run --release --example custom_backbone`

use graphrare::{run_with_sequences, GraphRareConfig};
use graphrare_datasets::{generate_mini, stratified_split, Dataset};
use graphrare_entropy::{EntropySequences, RelativeEntropyTable, SequenceConfig};
use graphrare_gnn::linear::Linear;
use graphrare_gnn::{fit, GnnModel, GraphTensors, TrainConfig};
use graphrare_tensor::{Param, Tape, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// APPNP-lite: an MLP prediction followed by K steps of personalised
/// PageRank propagation `h ← (1−α)·Â·h + α·h₀` (no weights in the
/// propagation, so depth is decoupled from parameters).
struct Appnp {
    l1: Linear,
    l2: Linear,
    hops: usize,
    alpha: f32,
    dropout: f32,
}

impl Appnp {
    fn new(in_dim: usize, hidden: usize, out_dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            l1: Linear::new("appnp.l1", in_dim, hidden, &mut rng),
            l2: Linear::new("appnp.l2", hidden, out_dim, &mut rng),
            hops: 4,
            alpha: 0.15,
            dropout: 0.5,
        }
    }
}

impl GnnModel for Appnp {
    fn forward(&self, tape: &mut Tape, gt: &GraphTensors, train: bool, rng: &mut StdRng) -> Var {
        let a_hat = gt.gcn_norm();
        let mut x = tape.constant((*gt.features()).clone());
        if train && self.dropout > 0.0 {
            x = tape.dropout(x, self.dropout, rng);
        }
        let h = self.l1.forward(tape, x);
        let h = tape.relu(h);
        let h0 = self.l2.forward(tape, h);
        // Personalised-PageRank propagation of the predictions.
        let mut h = h0;
        for _ in 0..self.hops {
            let propagated = tape.spmm(a_hat.clone(), h);
            let damped = tape.scale(propagated, 1.0 - self.alpha);
            let teleport = tape.scale(h0, self.alpha);
            h = tape.add(damped, teleport);
        }
        h
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.l1.params();
        p.extend(self.l2.params());
        p
    }

    fn name(&self) -> &'static str {
        "APPNP"
    }
}

fn main() {
    let seed = 3;
    let graph = generate_mini(Dataset::Chameleon, seed);
    let split = stratified_split(graph.labels(), graph.num_classes(), seed);
    let labels = graph.labels().to_vec();
    println!(
        "Chameleon-mini: {} nodes, {} edges, homophily {:.3}",
        graph.num_nodes(),
        graph.num_edges(),
        graphrare_graph::metrics::homophily_ratio(&graph)
    );

    // Plain custom backbone.
    let model = Appnp::new(graph.feat_dim(), 48, graph.num_classes(), seed);
    let plain = fit(&model, &GraphTensors::new(&graph), &labels, &split, &TrainConfig::default());
    println!("\nPlain APPNP test accuracy:  {:.2}%", 100.0 * plain.test_acc);

    // GraphRARE around the custom backbone. The convenience `run()` only
    // knows the built-in backbones, but the lower-level entry point takes
    // precomputed sequences, and the driver itself builds models through
    // the same trait — so we wrap manually: rewire with the ablation-grade
    // fixed pipeline, then fine-tune the custom model on the optimised
    // graph found by a GCN-driven search.
    let cfg = GraphRareConfig::default().with_seed(seed);
    let table = RelativeEntropyTable::new(&graph, &cfg.entropy);
    let seqs = EntropySequences::build(&graph, &table, &SequenceConfig::default());
    let search = run_with_sequences(&graph, seqs, &split, graphrare_gnn::Backbone::Gcn, &cfg);
    println!(
        "GCN-driven topology search: homophily {:.3} -> {:.3}",
        search.original_homophily, search.optimized_homophily
    );

    let model2 = Appnp::new(graph.feat_dim(), 48, graph.num_classes(), seed);
    let enhanced = fit(
        &model2,
        &GraphTensors::new(&search.optimized_graph),
        &labels,
        &split,
        &TrainConfig::default(),
    );
    println!(
        "APPNP on the optimised graph: {:.2}% ({:+.2} points)",
        100.0 * enhanced.test_acc,
        100.0 * (enhanced.test_acc - plain.test_acc)
    );
}
