//! Domain scenario from the paper's introduction: *"different types of
//! amino acids are more likely to connect together in protein
//! structures"* — contact graphs are heterophilic because chemistry
//! favours complementary (different-type) residue contacts.
//!
//! Builds a synthetic residue-contact graph over four amino-acid
//! categories (hydrophobic / polar / acidic / basic) where contacts
//! prefer complementary categories, then uses the entropy module directly
//! to find each residue's most related *remote* residues and compares all
//! four GraphRARE-enhanced backbones on the classification task.
//!
//! Run with: `cargo run --release --example protein_contacts`

use graphrare::{run, GraphRareConfig};
use graphrare_datasets::stratified_split;
use graphrare_entropy::{
    EntropySequences, RelativeEntropyConfig, RelativeEntropyTable, SequenceConfig,
};
use graphrare_gnn::Backbone;
use graphrare_graph::Graph;
use graphrare_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const RESIDUES: usize = 180;
const CATEGORIES: usize = 4;
const FEATURES: usize = 20; // one-hot-ish amino-acid composition profile

fn build_contact_graph(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let labels: Vec<usize> = (0..RESIDUES).map(|v| v % CATEGORIES).collect();
    // Residues of the same category share a chemical feature profile.
    let features = Matrix::from_fn(RESIDUES, FEATURES, |v, f| {
        let cat = v % CATEGORIES;
        let block = FEATURES / CATEGORIES;
        let in_block = f >= cat * block && f < (cat + 1) * block;
        let p = if in_block { 0.5 } else { 0.06 };
        if rng.gen_bool(p) {
            1.0
        } else {
            0.0
        }
    });
    let mut g = Graph::new(RESIDUES, features, labels, CATEGORIES);
    // Complementary-contact wiring: hydrophobic<->polar, acidic<->basic
    // contacts dominate (85%); same-category contacts are rare.
    let complement = |c: usize| match c {
        0 => 1,
        1 => 0,
        2 => 3,
        _ => 2,
    };
    while g.num_edges() < 450 {
        let a = rng.gen_range(0..RESIDUES);
        let target_cat =
            if rng.gen_bool(0.85) { complement(a % CATEGORIES) } else { a % CATEGORIES };
        let b = rng.gen_range(0..RESIDUES / CATEGORIES) * CATEGORIES + target_cat;
        if b < RESIDUES {
            g.add_edge(a, b);
        }
    }
    g
}

fn main() {
    let seed = 11;
    let graph = build_contact_graph(seed);
    println!(
        "Residue contact graph: {} residues, {} contacts, homophily {:.3}",
        graph.num_nodes(),
        graph.num_edges(),
        graphrare_graph::metrics::homophily_ratio(&graph)
    );

    // Direct use of the entropy API: who are residue 0's most related
    // remote residues?
    let table = RelativeEntropyTable::new(&graph, &RelativeEntropyConfig::default());
    let seqs = EntropySequences::build(&graph, &table, &SequenceConfig::default());
    println!("\nresidue 0 (category {}): top remote candidates by H(v,u):", graph.label(0));
    for &(u, h) in seqs.additions(0).iter().take(5) {
        println!("  residue {:>3} (category {}): H = {:.3}", u, graph.label(u as usize), h);
    }
    let same_cat = seqs
        .additions(0)
        .iter()
        .take(5)
        .filter(|&&(u, _)| graph.label(u as usize) == graph.label(0))
        .count();
    println!("  {same_cat}/5 of the top candidates share residue 0's category");

    // Compare all four GraphRARE-enhanced backbones.
    let split = stratified_split(graph.labels(), graph.num_classes(), seed);
    println!("\nCategory classification with GraphRARE-enhanced backbones:");
    for backbone in [Backbone::Gcn, Backbone::Sage, Backbone::Gat, Backbone::H2gcn] {
        let cfg = GraphRareConfig::default().with_seed(seed);
        let report = run(&graph, &split, backbone, &cfg);
        println!(
            "  {:<10} test acc {:.2}%   homophily {:.3} -> {:.3}",
            format!("{}-RARE", backbone.name()),
            100.0 * report.test_acc,
            report.original_homophily,
            report.optimized_homophily
        );
    }
}
