#!/bin/bash
# Regenerates every table and figure of the paper (mini scale).
set -u
cd "$(dirname "$0")"
RUN() {
  local name="$1"; shift
  echo "=== $name: $* ==="
  local start=$SECONDS
  cargo run -q --release -p graphrare-bench --bin "$name" -- "$@" \
    > "results/${name}.txt" 2> "results/${name}.log"
  echo "elapsed: $((SECONDS-start)) s" >> "results/${name}.txt"
  echo "--- $name done (tail of output):"
  tail -3 "results/${name}.txt"
}
RUN repro_table2 --splits 3
RUN repro_fig8   --splits 3
RUN repro_fig6   --splits 3
RUN repro_fig7   --splits 3
RUN repro_table3 --splits 3
RUN repro_table5 --splits 3
RUN repro_table4 --splits 2
RUN repro_ablation_rl --splits 3
RUN repro_sweep_homophily --splits 3
RUN repro_table6
RUN repro_fig5   --splits 2
echo ALL-EXPERIMENTS-DONE
