//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API that the GraphRARE test
//! suites use: range/tuple/`any`/`Just` strategies, `prop_map` /
//! `prop_flat_map`, `proptest::collection::vec`, the `proptest!` macro
//! with `#![proptest_config(...)]`, and the `prop_assert*` macros.
//!
//! Unlike upstream proptest there is no shrinking: a failing case panics
//! with its case number and the generator seed, which is derived
//! deterministically from the test name so failures reproduce exactly.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// A deterministic generator driving value production.
///
/// SplitMix64-seeded xoshiro256++; seeded from the test name so every
/// test gets a fixed, reproducible stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a raw seed.
    pub fn from_seed(seed: u64) -> Self {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let mut sm = seed;
        Self {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// Creates a generator whose stream is a deterministic function of
    /// `name` (FNV-1a hash).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::from_seed(h)
    }

    /// The next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Error type carried by failing property assertions.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Produces a value, then draws from the strategy `f` returns for it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values for which `f` returns true (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f, whence }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter: no value satisfied `{}` in 1000 draws", self.whence);
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Marker strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full-range strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types usable with [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range is empty");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range is empty");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64 + 1;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Sizes accepted by [`vec`]: a fixed length or a length range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.start >= self.end {
                return self.start;
            }
            let span = (self.end - self.start) as u64;
            self.start + (rng.next_u64() % span) as usize
        }
    }

    /// Strategy yielding `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Box<dyn SizeRange + Send + Sync>,
    }

    /// Builds a strategy for vectors of `element` values with length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(
        element: S,
        size: impl SizeRange + Send + Sync + 'static,
    ) -> VecStrategy<S> {
        VecStrategy { element, size: Box::new(size) }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration (`ProptestConfig`).
pub mod test_runner {
    /// Controls how many cases each property runs.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }
}

/// The common imports used by property test files.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
    };
}

/// Defines property tests.
///
/// Supports the upstream form used in this workspace: an optional
/// `#![proptest_config(...)]` inner attribute followed by `#[test]`
/// functions whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                $crate::run_property(
                    stringify!($name),
                    cfg.cases,
                    |__proptest_rng| {
                        $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                        (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            Ok(())
                        })()
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Drives one property: `cases` deterministic cases seeded from `name`.
///
/// Not part of the public proptest API; used by the `proptest!` macro
/// expansion.
pub fn run_property(
    name: &str,
    cases: u32,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::deterministic(name);
    for i in 0..cases {
        if let Err(e) = case(&mut rng) {
            panic!("property `{name}` failed at case {i}/{cases}: {e}");
        }
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Discards a case when an assumption does not hold.
///
/// This implementation simply skips the remainder of the case (treated
/// as a pass), which matches how the workspace uses assumptions.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2.0f32..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn flat_map_chains(v in (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0u8..3, n * 2)
        })) {
            prop_assert!(v.len() % 2 == 0);
            prop_assert!(!v.is_empty());
        }

        #[test]
        fn tuples_and_any(t in (0u64..9, any::<u64>(), Just(7u8))) {
            prop_assert!(t.0 < 9);
            prop_assert_eq!(t.2, 7u8);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
