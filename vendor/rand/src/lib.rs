//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment for this workspace can be fully offline, so the
//! workspace must not depend on crates.io. This crate re-implements the
//! small slice of the `rand` 0.8 API that the GraphRARE crates actually
//! use — `StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` methods
//! `gen`, `gen_range`, `gen_bool` — on top of the xoshiro256++ generator
//! seeded through SplitMix64.
//!
//! The streams differ from upstream `rand`'s ChaCha12-based `StdRng`;
//! nothing in the workspace depends on upstream's exact bit streams, only
//! on determinism for a fixed seed, which this crate guarantees.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed. Distinct seeds yield
    /// decorrelated streams (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// The user-facing generator trait: raw words plus derived samplers.
pub trait Rng {
    /// The next raw 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit word of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Samples a value of `T` from its standard distribution (`[0, 1)` for
    /// floats, full range for integers, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types with a standard distribution under [`Rng::gen`].
pub trait Standard {
    /// Draws one standard-distributed value from `rng`.
    fn sample_standard<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64 + 1;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

signed_sample_range!(i32 as u32, i64 as u64, isize as usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit: $t = Standard::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit: $t = Standard::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// SplitMix64 step, used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded via SplitMix64. Fast, 256-bit state, passes BigCrush.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw 256-bit generator state.
        ///
        /// Together with [`StdRng::from_state`] this allows a stream to be
        /// checkpointed and resumed mid-sequence: `from_state(r.state())`
        /// continues exactly where `r` left off.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`StdRng::state`], continuing the same stream.
        pub fn from_state(s: [u64; 4]) -> Self {
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn state_roundtrip_resumes_stream_mid_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..13 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_capture_does_not_advance_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let _ = a.state();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f32..=2.5);
            assert!((-2.5..=2.5).contains(&y));
            let z: f64 = rng.gen();
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn works_through_mut_reference() {
        fn draw(rng: &mut impl Rng) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = StdRng::seed_from_u64(0);
        let _ = draw(&mut rng);
    }
}
