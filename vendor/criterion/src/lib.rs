//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock harness:
//! a short warm-up, then batched timing until a time budget is spent,
//! reporting the median ns/iter to stdout.
//!
//! No statistics, plots, or baselines; the point is that `cargo bench`
//! compiles and produces comparable ns/iter numbers offline.

#![warn(missing_docs)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter display value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self { name: format!("{}/{}", function.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { name: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    /// Median nanoseconds per iteration of the last `iter` call.
    ns_per_iter: f64,
    budget: Duration,
}

impl Bencher {
    /// Times `f`, storing the median ns/iter over several batches.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up: one untimed call, also used to size batches.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed();
        let batch = if once.as_micros() >= 1000 {
            1
        } else {
            (1000 / once.as_micros().max(1)) as usize + 1
        };
        let mut samples = Vec::new();
        let start = Instant::now();
        while start.elapsed() < self.budget || samples.len() < 3 {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
            if samples.len() >= 64 {
                break;
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// The top-level harness.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { budget: Duration::from_millis(200) }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        run_one("", &id.into(), self.budget, f);
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-budgeted here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        run_one(&self.name, &id.into(), self.criterion.budget, f);
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(&self.name, &id.into(), self.criterion.budget, |b| f(b, input));
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn run_one(group: &str, id: &BenchmarkId, budget: Duration, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher { ns_per_iter: 0.0, budget };
    f(&mut bencher);
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    println!("bench {label:<48} {:>14.0} ns/iter", bencher.ns_per_iter);
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_time() {
        let mut c = Criterion { budget: Duration::from_millis(5) };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("spin", |b| b.iter(|| (0..100).map(black_box).sum::<usize>()));
        group.bench_with_input(BenchmarkId::new("param", 3), &3usize, |b, &n| b.iter(|| n * 2));
        group.finish();
    }
}
