//! `graphrare-suite` re-exports the GraphRARE workspace crates so that the
//! repository's `examples/` and `tests/` can use a single import root.

pub use graphrare as core;
pub use graphrare_baselines as baselines;
pub use graphrare_datasets as datasets;
pub use graphrare_entropy as entropy;
pub use graphrare_gnn as gnn;
pub use graphrare_graph as graph;
pub use graphrare_rl as rl;
pub use graphrare_tensor as tensor;
