//! Trainable parameters shared between tapes and optimisers.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::matrix::Matrix;

struct ParamInner {
    name: String,
    value: Matrix,
    grad: Matrix,
}

/// A named, trainable matrix with an accumulated gradient.
///
/// `Param` is a cheap `Rc` handle: cloning it shares storage. A forward pass
/// binds the parameter onto a [`Tape`](crate::tape::Tape) with
/// [`Tape::param`](crate::tape::Tape::param); `Tape::backward` then
/// accumulates the parameter's gradient here, where an
/// [`Optimizer`](crate::optim::Optimizer) consumes it.
#[derive(Clone)]
pub struct Param {
    inner: Rc<RefCell<ParamInner>>,
}

impl Param {
    /// Creates a parameter from an initial value.
    pub fn new(name: impl Into<String>, value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Self { inner: Rc::new(RefCell::new(ParamInner { name: name.into(), value, grad })) }
    }

    /// The parameter's name (used in diagnostics).
    pub fn name(&self) -> String {
        self.inner.borrow().name.clone()
    }

    /// Current value (cloned out of the shared cell).
    pub fn value(&self) -> Matrix {
        self.inner.borrow().value.clone()
    }

    /// Shape of the parameter.
    pub fn shape(&self) -> (usize, usize) {
        self.inner.borrow().value.shape()
    }

    /// Number of scalar weights.
    pub fn len(&self) -> usize {
        self.inner.borrow().value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current accumulated gradient (cloned).
    pub fn grad(&self) -> Matrix {
        self.inner.borrow().grad.clone()
    }

    /// Overwrites the value.
    pub fn set_value(&self, value: Matrix) {
        let mut inner = self.inner.borrow_mut();
        assert_eq!(inner.value.shape(), value.shape(), "set_value: shape mismatch");
        inner.value = value;
    }

    /// Adds `g` into the accumulated gradient.
    pub fn accumulate_grad(&self, g: &Matrix) {
        self.inner.borrow_mut().grad.add_assign(g);
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        self.inner.borrow_mut().grad.fill_zero();
    }

    /// Applies `f(value, grad)` to update the value in place.
    pub fn update(&self, f: impl FnOnce(&mut Matrix, &Matrix)) {
        let mut inner = self.inner.borrow_mut();
        let ParamInner { value, grad, .. } = &mut *inner;
        f(value, grad);
    }

    /// Whether two handles share the same storage.
    pub fn same_storage(&self, other: &Param) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }

    /// Identity key of the shared storage, stable for the lifetime of the
    /// parameter. Used by optimisers to key per-parameter state; the key is
    /// only meaningful while the parameter is alive.
    pub fn storage_key(&self) -> usize {
        Rc::as_ptr(&self.inner) as usize
    }
}

impl fmt::Debug for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        write!(f, "Param({}, {}x{})", inner.name, inner.value.rows(), inner.value.cols())
    }
}

/// Zeroes gradients of all parameters in a slice.
pub fn zero_grads(params: &[Param]) {
    for p in params {
        p.zero_grad();
    }
}

/// Global gradient-norm clipping: rescales all gradients so that their joint
/// L2 norm does not exceed `max_norm`. Returns the pre-clip norm.
pub fn clip_grad_norm(params: &[Param], max_norm: f32) -> f32 {
    let mut total = 0.0f32;
    for p in params {
        total += p.grad().as_slice().iter().map(|v| v * v).sum::<f32>();
    }
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            p.inner.borrow_mut().grad.map_inplace(|v| v * scale);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grads_accumulate_and_zero() {
        let p = Param::new("w", Matrix::zeros(2, 2));
        p.accumulate_grad(&Matrix::ones(2, 2));
        p.accumulate_grad(&Matrix::ones(2, 2));
        assert_eq!(p.grad().as_slice(), &[2.0; 4]);
        p.zero_grad();
        assert_eq!(p.grad().as_slice(), &[0.0; 4]);
    }

    #[test]
    fn clones_share_storage() {
        let p = Param::new("w", Matrix::zeros(1, 1));
        let q = p.clone();
        q.accumulate_grad(&Matrix::scalar(5.0));
        assert_eq!(p.grad().scalar_value(), 5.0);
        assert!(p.same_storage(&q));
    }

    #[test]
    fn clip_grad_norm_rescales() {
        let p = Param::new("w", Matrix::zeros(1, 2));
        p.accumulate_grad(&Matrix::row_vector(&[3.0, 4.0]));
        let norm = clip_grad_norm(std::slice::from_ref(&p), 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        let g = p.grad();
        let new_norm = (g.as_slice()[0].powi(2) + g.as_slice()[1].powi(2)).sqrt();
        assert!((new_norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_grad_norm_noop_below_threshold() {
        let p = Param::new("w", Matrix::zeros(1, 2));
        p.accumulate_grad(&Matrix::row_vector(&[0.3, 0.4]));
        clip_grad_norm(std::slice::from_ref(&p), 1.0);
        assert_eq!(p.grad().as_slice(), &[0.3, 0.4]);
    }
}
