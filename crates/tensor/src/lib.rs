//! # graphrare-tensor
//!
//! Dense linear algebra and reverse-mode automatic differentiation for the
//! GraphRARE workspace.
//!
//! The GraphRARE paper (ICDE 2024) trains its GNN and PPO modules with
//! PyTorch on a GPU; this crate is the from-scratch CPU substitute. It
//! provides:
//!
//! * [`Matrix`] — a row-major dense `f32` matrix with the ops GNNs need
//!   (matmul, transpose-fused products, softmax, concatenation, …).
//! * [`CsrMatrix`] — compressed sparse row matrices for graph propagation
//!   operators, treated as constants by autograd.
//! * [`Tape`]/[`Var`] — a tape-based autograd engine with a closed op set,
//!   each backward rule validated against finite differences.
//! * [`Param`] — shared trainable weights consumed by [`optim`] optimisers
//!   (Adam, SGD).
//! * [`init`] — seeded Glorot/He/normal initialisers.
//! * [`gradcheck`] — finite-difference gradient checking helpers.
//! * [`parallel`] — the std-only scoped-thread runtime behind the hot
//!   kernels, controlled by the `GRAPHRARE_THREADS` knob; results are
//!   bit-identical to serial execution for any thread count.
//!
//! ## Example
//!
//! ```
//! use graphrare_tensor::{Matrix, Param, Tape};
//! use graphrare_tensor::optim::{Adam, Optimizer};
//! use graphrare_tensor::param::zero_grads;
//!
//! // Fit w to minimise (w * 2 - 6)^2  =>  w -> 3.
//! let w = Param::new("w", Matrix::scalar(0.0));
//! let mut opt = Adam::new(0.1, 0.0);
//! for _ in 0..200 {
//!     zero_grads(&[w.clone()]);
//!     let mut tape = Tape::new();
//!     let vw = tape.param(&w);
//!     let scaled = tape.scale(vw, 2.0);
//!     let shifted = tape.add_scalar(scaled, -6.0);
//!     let sq = tape.square(shifted);
//!     let loss = tape.sum_all(sq);
//!     tape.backward(loss);
//!     opt.step(&[w.clone()]);
//! }
//! assert!((w.value().scalar_value() - 3.0).abs() < 0.05);
//! ```

#![warn(missing_docs)]

/// Telemetry prologue of one parallel kernel: counts the call, its
/// output rows and the worker threads the runtime will use, then opens
/// a timing span named `kernel.<name>`. Everything is skipped (bar one
/// atomic load) while telemetry is disabled, and nothing here touches
/// the computation itself — results are bit-identical either way.
macro_rules! kernel_telemetry {
    ($name:literal, $rows:expr) => {{
        if graphrare_telemetry::enabled() {
            let rows = $rows;
            graphrare_telemetry::counter(concat!("kernel.", $name, ".calls"), 1);
            graphrare_telemetry::counter(concat!("kernel.", $name, ".rows"), rows as u64);
            graphrare_telemetry::gauge_max(
                "kernel.threads.max",
                $crate::parallel::current_threads().min(rows.max(1)) as u64,
            );
        }
        graphrare_telemetry::span(concat!("kernel.", $name))
    }};
}

pub mod gradcheck;
pub mod init;
pub mod matrix;
pub mod optim;
pub mod parallel;
pub mod param;
pub mod sparse;
pub mod tape;

pub use matrix::Matrix;
pub use param::Param;
pub use sparse::CsrMatrix;
pub use tape::{AdjList, Tape, Var};
