//! First-order optimisers.
//!
//! The paper trains all GNNs with Adam (Section V-C) and the PPO module with
//! Adam via Stable-Baselines3; SGD with momentum is provided for ablations.

use std::collections::HashMap;

use crate::matrix::Matrix;
use crate::param::Param;

/// A gradient-descent style optimiser over shared [`Param`]s.
pub trait Optimizer {
    /// Applies one update step using the currently accumulated gradients,
    /// then leaves gradients untouched (call
    /// [`zero_grads`](crate::param::zero_grads) before the next pass).
    fn step(&mut self, params: &[Param]);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Serializable snapshot of an [`Sgd`] optimiser's internal state.
///
/// `velocity[i]` is the momentum buffer of the `i`-th parameter of the
/// `params` slice the snapshot was exported against; parameters the
/// optimiser has never stepped export as zero matrices, which is exactly
/// the state a fresh step would lazily create.
#[derive(Clone, Debug, PartialEq)]
pub struct SgdSnapshot {
    /// Per-parameter momentum buffers, in `params`-slice order.
    pub velocity: Vec<Matrix>,
}

/// Serializable snapshot of an [`Adam`] optimiser's internal state.
///
/// Captures the global step counter `t` (which drives bias correction)
/// and the first/second moment estimates per parameter, in the order of
/// the `params` slice the snapshot was exported against.
#[derive(Clone, Debug, PartialEq)]
pub struct AdamSnapshot {
    /// Global step count (bias-correction exponent).
    pub t: u64,
    /// Per-parameter `(m, v)` moment pairs, in `params`-slice order.
    pub moments: Vec<(Matrix, Matrix)>,
}

/// Stochastic gradient descent with optional momentum and decoupled weight
/// decay.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: HashMap<usize, Matrix>,
}

impl Sgd {
    /// Creates an SGD optimiser.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Self { lr, momentum, weight_decay, velocity: HashMap::new() }
    }

    /// Exports the momentum buffers for `params` (in slice order); never-
    /// stepped parameters export as zeros.
    pub fn export_state(&self, params: &[Param]) -> SgdSnapshot {
        SgdSnapshot {
            velocity: params
                .iter()
                .map(|p| {
                    let (r, c) = p.shape();
                    self.velocity.get(&key(p)).cloned().unwrap_or_else(|| Matrix::zeros(r, c))
                })
                .collect(),
        }
    }

    /// Restores momentum buffers exported by [`Sgd::export_state`] against
    /// the same parameter list (matched by order).
    ///
    /// # Panics
    /// Panics on length or shape mismatch — state files are validated by
    /// the store layer before they reach an optimiser.
    pub fn import_state(&mut self, params: &[Param], snap: &SgdSnapshot) {
        assert_eq!(params.len(), snap.velocity.len(), "sgd import: parameter count mismatch");
        self.velocity.clear();
        for (p, vel) in params.iter().zip(&snap.velocity) {
            assert_eq!(p.shape(), vel.shape(), "sgd import: shape mismatch for {}", p.name());
            self.velocity.insert(key(p), vel.clone());
        }
    }
}

fn key(p: &Param) -> usize {
    // Optimiser state is keyed by the parameter's shared-storage address,
    // stable while the parameter is alive (an optimiser never outlives the
    // model it trains).
    p.storage_key()
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &[Param]) {
        let (lr, momentum, weight_decay) = (self.lr, self.momentum, self.weight_decay);
        for p in params {
            let k = key(p);
            let grad = p.grad();
            let entry =
                self.velocity.entry(k).or_insert_with(|| Matrix::zeros(grad.rows(), grad.cols()));
            p.update(|value, g| {
                for ((v, vel), &gr) in
                    value.as_mut_slice().iter_mut().zip(entry.as_mut_slice()).zip(g.as_slice())
                {
                    let step = gr + weight_decay * *v;
                    *vel = momentum * *vel + step;
                    *v -= lr * *vel;
                }
            });
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

struct AdamState {
    m: Matrix,
    v: Matrix,
}

/// Adam (Kingma & Ba, 2015) with bias correction and L2 weight decay applied
/// to the gradient (PyTorch `Adam(weight_decay=...)` semantics, which is
/// what the paper's hyper-parameter table refers to).
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    state: HashMap<usize, AdamState>,
}

impl Adam {
    /// Creates Adam with the standard betas `(0.9, 0.999)`.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Self::with_betas(lr, weight_decay, 0.9, 0.999)
    }

    /// Creates Adam with explicit betas.
    pub fn with_betas(lr: f32, weight_decay: f32, beta1: f32, beta2: f32) -> Self {
        Self { lr, beta1, beta2, eps: 1e-8, weight_decay, t: 0, state: HashMap::new() }
    }

    /// Exports the step counter and moment estimates for `params` (in
    /// slice order); never-stepped parameters export as zero moments.
    pub fn export_state(&self, params: &[Param]) -> AdamSnapshot {
        AdamSnapshot {
            t: self.t,
            moments: params
                .iter()
                .map(|p| {
                    let (r, c) = p.shape();
                    self.state.get(&key(p)).map_or_else(
                        || (Matrix::zeros(r, c), Matrix::zeros(r, c)),
                        |s| (s.m.clone(), s.v.clone()),
                    )
                })
                .collect(),
        }
    }

    /// Restores state exported by [`Adam::export_state`] against the same
    /// parameter list (matched by order). A subsequent [`Optimizer::step`]
    /// continues the original optimisation trajectory bit-for-bit.
    ///
    /// # Panics
    /// Panics on length or shape mismatch — state files are validated by
    /// the store layer before they reach an optimiser.
    pub fn import_state(&mut self, params: &[Param], snap: &AdamSnapshot) {
        assert_eq!(params.len(), snap.moments.len(), "adam import: parameter count mismatch");
        self.t = snap.t;
        self.state.clear();
        for (p, (m, v)) in params.iter().zip(&snap.moments) {
            assert_eq!(p.shape(), m.shape(), "adam import: m shape mismatch for {}", p.name());
            assert_eq!(p.shape(), v.shape(), "adam import: v shape mismatch for {}", p.name());
            self.state.insert(key(p), AdamState { m: m.clone(), v: v.clone() });
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &[Param]) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, beta1, beta2, eps, weight_decay) =
            (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        for p in params {
            let k = key(p);
            let grad = p.grad();
            let entry = self.state.entry(k).or_insert_with(|| AdamState {
                m: Matrix::zeros(grad.rows(), grad.cols()),
                v: Matrix::zeros(grad.rows(), grad.cols()),
            });
            p.update(|value, g| {
                for (((w, m), v), &gr) in value
                    .as_mut_slice()
                    .iter_mut()
                    .zip(entry.m.as_mut_slice())
                    .zip(entry.v.as_mut_slice())
                    .zip(g.as_slice())
                {
                    let gr = gr + weight_decay * *w;
                    *m = beta1 * *m + (1.0 - beta1) * gr;
                    *v = beta2 * *v + (1.0 - beta2) * gr * gr;
                    let m_hat = *m / bc1;
                    let v_hat = *v / bc2;
                    *w -= lr * m_hat / (v_hat.sqrt() + eps);
                }
            });
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::zero_grads;
    use crate::tape::Tape;

    /// Minimise f(w) = (w - 3)^2 and expect convergence near 3.
    fn quadratic_descent(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let w = Param::new("w", Matrix::scalar(0.0));
        for _ in 0..steps {
            zero_grads(std::slice::from_ref(&w));
            let mut t = Tape::new();
            let vw = t.param(&w);
            let shifted = t.add_scalar(vw, -3.0);
            let loss = t.square(shifted);
            let loss = t.sum_all(loss);
            t.backward(loss);
            opt.step(std::slice::from_ref(&w));
        }
        w.value().scalar_value()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        let w = quadratic_descent(&mut opt, 100);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        let w = quadratic_descent(&mut opt, 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1, 0.0);
        let w = quadratic_descent(&mut opt, 300);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn weight_decay_shrinks_solution() {
        // With decay the fixed point of (w-3)^2 + (wd/2)w^2 is below 3.
        let mut opt = Adam::new(0.05, 0.5);
        let w = quadratic_descent(&mut opt, 500);
        assert!(w < 2.9 && w > 1.0, "w = {w}");
    }

    /// One full autograd step of `f(w) = (w - 3)^2` for a given parameter.
    fn one_step(opt: &mut dyn Optimizer, w: &Param) {
        zero_grads(std::slice::from_ref(w));
        let mut t = Tape::new();
        let vw = t.param(w);
        let shifted = t.add_scalar(vw, -3.0);
        let loss = t.square(shifted);
        let loss = t.sum_all(loss);
        t.backward(loss);
        opt.step(std::slice::from_ref(w));
    }

    #[test]
    fn adam_export_import_resumes_trajectory_bitwise() {
        let w1 = Param::new("w", Matrix::scalar(0.0));
        let mut opt1 = Adam::new(0.1, 0.01);
        for _ in 0..7 {
            one_step(&mut opt1, &w1);
        }
        let snap = opt1.export_state(std::slice::from_ref(&w1));
        let value_at_snap = w1.value();

        // Fresh optimiser + parameter restored from the snapshot.
        let w2 = Param::new("w", value_at_snap);
        let mut opt2 = Adam::new(0.1, 0.01);
        opt2.import_state(std::slice::from_ref(&w2), &snap);

        for _ in 0..20 {
            one_step(&mut opt1, &w1);
            one_step(&mut opt2, &w2);
        }
        assert_eq!(
            w1.value().as_slice(),
            w2.value().as_slice(),
            "resumed Adam diverged from the uninterrupted trajectory"
        );
    }

    #[test]
    fn adam_export_of_unstepped_params_is_zero() {
        let w = Param::new("w", Matrix::zeros(2, 3));
        let opt = Adam::new(0.1, 0.0);
        let snap = opt.export_state(std::slice::from_ref(&w));
        assert_eq!(snap.t, 0);
        assert_eq!(snap.moments.len(), 1);
        assert_eq!(snap.moments[0].0.as_slice(), &[0.0; 6]);
        assert_eq!(snap.moments[0].1.as_slice(), &[0.0; 6]);
    }

    #[test]
    fn sgd_export_import_resumes_trajectory_bitwise() {
        let w1 = Param::new("w", Matrix::scalar(0.0));
        let mut opt1 = Sgd::new(0.05, 0.9, 0.0);
        for _ in 0..5 {
            one_step(&mut opt1, &w1);
        }
        let snap = opt1.export_state(std::slice::from_ref(&w1));
        let w2 = Param::new("w", w1.value());
        let mut opt2 = Sgd::new(0.05, 0.9, 0.0);
        opt2.import_state(std::slice::from_ref(&w2), &snap);
        for _ in 0..20 {
            one_step(&mut opt1, &w1);
            one_step(&mut opt2, &w2);
        }
        assert_eq!(w1.value().as_slice(), w2.value().as_slice());
    }

    #[test]
    fn learning_rate_roundtrip() {
        let mut opt = Adam::new(0.01, 0.0);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.2);
        assert_eq!(opt.learning_rate(), 0.2);
    }
}
