//! First-order optimisers.
//!
//! The paper trains all GNNs with Adam (Section V-C) and the PPO module with
//! Adam via Stable-Baselines3; SGD with momentum is provided for ablations.

use std::collections::HashMap;

use crate::matrix::Matrix;
use crate::param::Param;

/// A gradient-descent style optimiser over shared [`Param`]s.
pub trait Optimizer {
    /// Applies one update step using the currently accumulated gradients,
    /// then leaves gradients untouched (call
    /// [`zero_grads`](crate::param::zero_grads) before the next pass).
    fn step(&mut self, params: &[Param]);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum and decoupled weight
/// decay.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: HashMap<usize, Matrix>,
}

impl Sgd {
    /// Creates an SGD optimiser.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Self { lr, momentum, weight_decay, velocity: HashMap::new() }
    }
}

fn key(p: &Param) -> usize {
    // Optimiser state is keyed by the parameter's shared-storage address,
    // stable while the parameter is alive (an optimiser never outlives the
    // model it trains).
    p.storage_key()
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &[Param]) {
        let (lr, momentum, weight_decay) = (self.lr, self.momentum, self.weight_decay);
        for p in params {
            let k = key(p);
            let grad = p.grad();
            let entry =
                self.velocity.entry(k).or_insert_with(|| Matrix::zeros(grad.rows(), grad.cols()));
            p.update(|value, g| {
                for ((v, vel), &gr) in
                    value.as_mut_slice().iter_mut().zip(entry.as_mut_slice()).zip(g.as_slice())
                {
                    let step = gr + weight_decay * *v;
                    *vel = momentum * *vel + step;
                    *v -= lr * *vel;
                }
            });
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

struct AdamState {
    m: Matrix,
    v: Matrix,
}

/// Adam (Kingma & Ba, 2015) with bias correction and L2 weight decay applied
/// to the gradient (PyTorch `Adam(weight_decay=...)` semantics, which is
/// what the paper's hyper-parameter table refers to).
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    state: HashMap<usize, AdamState>,
}

impl Adam {
    /// Creates Adam with the standard betas `(0.9, 0.999)`.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Self::with_betas(lr, weight_decay, 0.9, 0.999)
    }

    /// Creates Adam with explicit betas.
    pub fn with_betas(lr: f32, weight_decay: f32, beta1: f32, beta2: f32) -> Self {
        Self { lr, beta1, beta2, eps: 1e-8, weight_decay, t: 0, state: HashMap::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &[Param]) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, beta1, beta2, eps, weight_decay) =
            (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        for p in params {
            let k = key(p);
            let grad = p.grad();
            let entry = self.state.entry(k).or_insert_with(|| AdamState {
                m: Matrix::zeros(grad.rows(), grad.cols()),
                v: Matrix::zeros(grad.rows(), grad.cols()),
            });
            p.update(|value, g| {
                for (((w, m), v), &gr) in value
                    .as_mut_slice()
                    .iter_mut()
                    .zip(entry.m.as_mut_slice())
                    .zip(entry.v.as_mut_slice())
                    .zip(g.as_slice())
                {
                    let gr = gr + weight_decay * *w;
                    *m = beta1 * *m + (1.0 - beta1) * gr;
                    *v = beta2 * *v + (1.0 - beta2) * gr * gr;
                    let m_hat = *m / bc1;
                    let v_hat = *v / bc2;
                    *w -= lr * m_hat / (v_hat.sqrt() + eps);
                }
            });
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::zero_grads;
    use crate::tape::Tape;

    /// Minimise f(w) = (w - 3)^2 and expect convergence near 3.
    fn quadratic_descent(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let w = Param::new("w", Matrix::scalar(0.0));
        for _ in 0..steps {
            zero_grads(std::slice::from_ref(&w));
            let mut t = Tape::new();
            let vw = t.param(&w);
            let shifted = t.add_scalar(vw, -3.0);
            let loss = t.square(shifted);
            let loss = t.sum_all(loss);
            t.backward(loss);
            opt.step(std::slice::from_ref(&w));
        }
        w.value().scalar_value()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        let w = quadratic_descent(&mut opt, 100);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        let w = quadratic_descent(&mut opt, 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1, 0.0);
        let w = quadratic_descent(&mut opt, 300);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn weight_decay_shrinks_solution() {
        // With decay the fixed point of (w-3)^2 + (wd/2)w^2 is below 3.
        let mut opt = Adam::new(0.05, 0.5);
        let w = quadratic_descent(&mut opt, 500);
        assert!(w < 2.9 && w > 1.0, "w = {w}");
    }

    #[test]
    fn learning_rate_roundtrip() {
        let mut opt = Adam::new(0.01, 0.0);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.2);
        assert_eq!(opt.learning_rate(), 0.2);
    }
}
