//! Std-only parallel runtime for the workspace's hot kernels.
//!
//! GraphRARE's joint loop re-trains the wrapped GNN every DRL episode,
//! so the dense/sparse kernels and the Algorithm-1 entropy precompute
//! dominate end-to-end wall-clock. All of them are embarrassingly
//! parallel over output rows (or nodes), which this module exploits with
//! `std::thread::scope` — no external dependencies, no persistent pool.
//!
//! ## Determinism contract
//!
//! Every helper partitions the index space into **contiguous** chunks
//! and runs the *same* per-index closure the serial path runs, in the
//! same per-index order. Because no output element is ever touched by
//! two threads (row partitioning) and per-element accumulation order is
//! unchanged, results are **bit-identical** to serial execution for any
//! thread count. There are no atomics-on-floats and no order-dependent
//! merges anywhere.
//!
//! ## Thread-count resolution
//!
//! 1. a thread-local override installed by [`with_threads`] (used by
//!    tests and by callers that need a scoped setting);
//! 2. the global value set by [`set_threads`] (driver/config plumbing);
//! 3. the `GRAPHRARE_THREADS` environment variable;
//! 4. `std::thread::available_parallelism()`.
//!
//! A resolved value of `1` means *exact serial execution on the calling
//! thread* — no scope, no spawn, no behavioural difference from the
//! pre-parallel code.

use std::cell::Cell;
use std::env;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Global thread-count knob; `0` means "not yet resolved".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Scoped override; `0` means "no override".
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Number of hardware threads the OS reports (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Resolves the thread count used by the parallel kernels right now.
pub fn current_threads() -> usize {
    let scoped = THREAD_OVERRIDE.with(Cell::get);
    if scoped != 0 {
        return scoped;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global != 0 {
        return global;
    }
    let resolved = env::var("GRAPHRARE_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(available_threads);
    // Cache so the env var is read once; set_threads can still override.
    let _ = GLOBAL_THREADS.compare_exchange(0, resolved, Ordering::Relaxed, Ordering::Relaxed);
    resolved
}

/// Sets the global thread count. `0` resets to auto (env var /
/// available parallelism, re-resolved on next use).
pub fn set_threads(n: usize) {
    if n == 0 {
        GLOBAL_THREADS.store(0, Ordering::Relaxed);
        // Force an immediate re-resolve so `0` doesn't linger as "unset"
        // if the env var changed; harmless otherwise.
        let _ = current_threads();
    } else {
        GLOBAL_THREADS.store(n, Ordering::Relaxed);
    }
}

/// Runs `f` with the thread count forced to `n` on this thread (and the
/// kernels it calls). Restores the previous override afterwards, also on
/// unwind. `n = 1` forces the exact serial path.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = THREAD_OVERRIDE.with(|c| c.replace(n));
    let _guard = Restore(prev);
    f()
}

/// Splits `n` items into `threads` contiguous ranges differing in length
/// by at most one. Empty ranges are omitted.
fn chunk_ranges(n: usize, threads: usize) -> impl Iterator<Item = Range<usize>> {
    let threads = threads.max(1);
    (0..threads).filter_map(move |t| {
        let lo = t * n / threads;
        let hi = (t + 1) * n / threads;
        (lo < hi).then_some(lo..hi)
    })
}

/// Partitions `data` (a row-major buffer of `rows = data.len() /
/// row_len` rows) into contiguous row chunks and runs `f(row_range,
/// chunk)` for each, in parallel. `chunk` covers exactly the rows in
/// `row_range`. With one thread this degenerates to a single
/// `f(0..rows, data)` call on the current thread.
pub fn par_for_each_chunk<T, F>(data: &mut [T], row_len: usize, f: F)
where
    T: Send,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    if row_len == 0 || data.is_empty() {
        return;
    }
    let rows = data.len() / row_len;
    let threads = current_threads().min(rows);
    if threads <= 1 {
        f(0..rows, data);
        return;
    }
    std::thread::scope(|scope| {
        let mut rest = data;
        let f = &f;
        for range in chunk_ranges(rows, threads) {
            let (chunk, tail) = rest.split_at_mut(range.len() * row_len);
            rest = tail;
            scope.spawn(move || f(range, chunk));
        }
    });
}

/// Row-wise parallel iteration: runs `f(row_index, row)` for every
/// `row_len`-sized row of `data`, partitioned contiguously over threads.
pub fn par_for_each_row<T, F>(data: &mut [T], row_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    par_for_each_chunk(data, row_len, |range, chunk| {
        for (offset, row) in chunk.chunks_mut(row_len).enumerate() {
            f(range.start + offset, row);
        }
    });
}

/// Computes `(0..n).map(f).collect()` in parallel, preserving index
/// order. Each thread materialises its contiguous sub-range; the pieces
/// are concatenated in range order, so the result is identical to the
/// serial collect for any thread count.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = current_threads().min(n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let mut parts: Vec<Vec<T>> = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = chunk_ranges(n, threads)
            .map(|range| scope.spawn(move || range.map(f).collect::<Vec<T>>()))
            .collect();
        handles.into_iter().map(|h| h.join().expect("parallel worker panicked")).collect()
    });
    let mut out = Vec::with_capacity(n);
    for part in &mut parts {
        out.append(part);
    }
    out
}

/// [`par_map`] with a per-thread scratch value: computes
/// `(0..n).map(|i| f(&mut scratch, i)).collect()` where each thread owns
/// one scratch created by `init()`, so hot closures can reuse buffers
/// (visited marks, candidate vectors) instead of allocating per index.
///
/// Determinism contract: `f`'s output must not depend on what earlier
/// indices left in the scratch — the scratch is an allocation cache, not
/// a carry. Under that contract the result is bit-identical to the
/// serial collect for any thread count, exactly like [`par_map`].
pub fn par_map_scratch<T, S, I, F>(n: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = current_threads().min(n.max(1));
    if threads <= 1 {
        let mut scratch = init();
        return (0..n).map(|i| f(&mut scratch, i)).collect();
    }
    let mut parts: Vec<Vec<T>> = std::thread::scope(|scope| {
        let (init, f) = (&init, &f);
        let handles: Vec<_> = chunk_ranges(n, threads)
            .map(|range| {
                scope.spawn(move || {
                    let mut scratch = init();
                    range.map(|i| f(&mut scratch, i)).collect::<Vec<T>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("parallel worker panicked")).collect()
    });
    let mut out = Vec::with_capacity(n);
    for part in &mut parts {
        out.append(part);
    }
    out
}

/// Parallel fold over `0..n`: each thread folds its contiguous range in
/// index order starting from `init()`, and the per-thread accumulators
/// are merged left-to-right in range order. Deterministic for a fixed
/// thread count; additionally thread-count-invariant whenever `merge`
/// is exactly associative (e.g. min/max), which is how the entropy
/// precompute uses it.
pub fn par_fold<A, I, F, M>(n: usize, init: I, fold: F, merge: M) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(A, usize) -> A + Sync,
    M: Fn(A, A) -> A,
{
    let threads = current_threads().min(n.max(1));
    if threads <= 1 {
        return (0..n).fold(init(), fold);
    }
    let parts: Vec<A> = std::thread::scope(|scope| {
        let (init, fold) = (&init, &fold);
        let handles: Vec<_> = chunk_ranges(n, threads)
            .map(|range| scope.spawn(move || range.fold(init(), fold)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("parallel worker panicked")).collect()
    });
    let mut parts = parts.into_iter();
    let first = parts.next().expect("at least one chunk");
    parts.fold(first, merge)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for n in [0usize, 1, 2, 7, 64] {
            for threads in [1usize, 2, 3, 8, 100] {
                let mut seen = vec![0u8; n];
                for r in chunk_ranges(n, threads) {
                    for i in r {
                        seen[i] += 1;
                    }
                }
                assert!(seen.iter().all(|&c| c == 1), "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = current_threads();
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(1, || assert_eq!(current_threads(), 1));
            assert_eq!(current_threads(), 3);
        });
        assert_eq!(current_threads(), outer);
    }

    #[test]
    fn par_map_matches_serial_for_any_thread_count() {
        let serial: Vec<usize> = (0..97).map(|i| i * i).collect();
        for t in [1, 2, 3, 8] {
            let par = with_threads(t, || par_map(97, |i| i * i));
            assert_eq!(par, serial, "threads={t}");
        }
    }

    #[test]
    fn par_map_scratch_matches_serial_and_reuses_buffers() {
        // The scratch is cleared per index, so output is scratch-independent;
        // capacity growth proves the buffer is actually reused within a thread.
        let serial: Vec<usize> = (0..61).map(|i| (0..i % 7).sum::<usize>()).collect();
        for t in [1, 2, 3, 8] {
            let par = with_threads(t, || {
                par_map_scratch(61, Vec::<usize>::new, |buf, i| {
                    buf.clear();
                    buf.extend(0..i % 7);
                    buf.iter().sum::<usize>()
                })
            });
            assert_eq!(par, serial, "threads={t}");
        }
    }

    #[test]
    fn par_for_each_row_touches_every_row_once() {
        let rows = 13;
        let cols = 5;
        for t in [1, 2, 4, 16] {
            let mut data = vec![0.0f32; rows * cols];
            with_threads(t, || {
                par_for_each_row(&mut data, cols, |r, row| {
                    for (c, v) in row.iter_mut().enumerate() {
                        *v += (r * cols + c) as f32;
                    }
                });
            });
            let want: Vec<f32> = (0..rows * cols).map(|i| i as f32).collect();
            assert_eq!(data, want, "threads={t}");
        }
    }

    #[test]
    fn par_fold_min_max_is_thread_count_invariant() {
        let vals: Vec<f64> = (0..501).map(|i| ((i * 37) % 101) as f64 - 50.0).collect();
        let serial = vals.iter().copied().fold(f64::INFINITY, f64::min);
        for t in [1, 2, 5, 9] {
            let got = with_threads(t, || {
                par_fold(vals.len(), || f64::INFINITY, |acc, i| acc.min(vals[i]), f64::min)
            });
            assert_eq!(got, serial, "threads={t}");
        }
    }

    #[test]
    fn empty_inputs_are_noops() {
        let mut empty: Vec<f32> = Vec::new();
        par_for_each_row(&mut empty, 4, |_, _| panic!("must not run"));
        par_for_each_chunk(&mut empty, 0, |_, _| panic!("must not run"));
        assert!(par_map(0, |i| i).is_empty());
    }
}
