//! Tape-based reverse-mode automatic differentiation.
//!
//! The paper's models are trained with PyTorch; this module is the Rust
//! substitute. A [`Tape`] records every operation of one forward pass as a
//! node in a flat arena. [`Tape::backward`] walks the arena in reverse,
//! accumulating gradients, and finally flushes gradients of bound
//! [`Param`]s back into their shared storage.
//!
//! Design notes:
//! * Ops are a closed `enum` rather than boxed closures: cheaper, easier to
//!   audit, and every backward rule is unit-tested against finite
//!   differences (see `gradcheck`).
//! * Sparse operands ([`CsrMatrix`]) are constants — gradients only flow
//!   through dense inputs, matching how GNN propagation matrices are used.
//! * Fused ops (`EdgeAttention`, `MultiDiscreteLogProb`,
//!   `MultiDiscreteEntropy`, `NllMasked`) keep tapes small for the two hot
//!   paths: GAT layers and PPO updates over multi-discrete action spaces.

use std::rc::Rc;

use rand::Rng;

use crate::matrix::{log_softmax_slice, softmax_slice, Matrix};
use crate::param::Param;
use crate::sparse::CsrMatrix;

/// Neighbour lists in offset form, used by the fused GAT attention op.
///
/// Node `i`'s neighbours (conventionally including `i` itself for
/// self-attention) are `targets[offsets[i]..offsets[i + 1]]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdjList {
    offsets: Vec<usize>,
    targets: Vec<usize>,
}

impl AdjList {
    /// Builds an adjacency list from per-node neighbour vectors.
    pub fn from_neighbor_lists(lists: &[Vec<usize>]) -> Self {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        offsets.push(0);
        let total: usize = lists.iter().map(Vec::len).sum();
        let mut targets = Vec::with_capacity(total);
        for l in lists {
            targets.extend_from_slice(l);
            offsets.push(targets.len());
        }
        Self { offsets, targets }
    }

    /// Rebuilds the whole list **in place** from a per-node target
    /// builder, reusing the existing offset/target storage — the
    /// [`AdjList`] analogue of `CsrMatrix::rebuild_from_row_builder`,
    /// allocation-free once capacities have warmed up.
    ///
    /// The closure receives the node index and the shared `targets`
    /// buffer and must only *append* that node's neighbours to it.
    pub fn rebuild_from_row_builder(
        &mut self,
        n: usize,
        mut build: impl FnMut(usize, &mut Vec<usize>),
    ) {
        self.offsets.clear();
        self.offsets.push(0);
        self.targets.clear();
        for i in 0..n {
            build(i, &mut self.targets);
            self.offsets.push(self.targets.len());
        }
    }

    /// Number of source nodes.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether there are no source nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Neighbours of node `i`.
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.targets[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Total number of (directed) neighbour entries.
    pub fn num_entries(&self) -> usize {
        self.targets.len()
    }

    /// Returns a copy with the listed source nodes' neighbour lists
    /// replaced, splicing the offset/target arrays in one pass (the
    /// [`AdjList`] analogue of `CsrMatrix::with_rows_replaced`, used by
    /// incremental topology updates).
    ///
    /// `replacements` must be sorted by node index without duplicates.
    ///
    /// # Panics
    /// Panics if a node index is out of bounds or the ordering contract is
    /// violated.
    pub fn with_rows_replaced(&self, replacements: &[(usize, Vec<usize>)]) -> AdjList {
        for w in replacements.windows(2) {
            assert!(w[0].0 < w[1].0, "replacement rows must be sorted and unique");
        }
        let n = self.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(self.targets.len());
        offsets.push(0);
        let mut next = replacements.iter().peekable();
        let mut i = 0;
        while i < n {
            match next.peek() {
                Some(&&(row, ref list)) if row == i => {
                    assert!(row < n, "replacement row {row} out of bounds for {n} nodes");
                    targets.extend_from_slice(list);
                    offsets.push(targets.len());
                    next.next();
                    i += 1;
                }
                other => {
                    let stop = match other {
                        Some(&&(row, _)) => {
                            assert!(row < n, "replacement row {row} out of bounds for {n} nodes");
                            row
                        }
                        None => n,
                    };
                    let lo = self.offsets[i];
                    let hi = self.offsets[stop];
                    targets.extend_from_slice(&self.targets[lo..hi]);
                    let base = targets.len() - (hi - lo);
                    for j in i..stop {
                        offsets.push(base + self.offsets[j + 1] - lo);
                    }
                    i = stop;
                }
            }
        }
        AdjList { offsets, targets }
    }

    /// Applies row replacements, patching `targets` in place for every
    /// replaced list that keeps its length (the common case when a
    /// topology batch only re-orders or re-weights a neighbourhood) and
    /// routing only the lists that grow or shrink through one
    /// [`with_rows_replaced`](AdjList::with_rows_replaced) splice. Returns
    /// how many rows took the in-place path. The result is always
    /// identical to `with_rows_replaced` on the full input.
    ///
    /// Callers holding the list behind a shared handle must go through
    /// `Rc::make_mut` (copy-on-write) so outstanding snapshots keep
    /// observing the pre-edit list.
    pub fn apply_rows(&mut self, replacements: &[(usize, Vec<usize>)]) -> usize {
        for w in replacements.windows(2) {
            assert!(w[0].0 < w[1].0, "replacement rows must be sorted and unique");
        }
        let mut resized: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut in_place = 0usize;
        for (i, list) in replacements {
            assert!(*i < self.len(), "row {i} out of bounds");
            if self.offsets[*i + 1] - self.offsets[*i] == list.len() {
                self.targets[self.offsets[*i]..self.offsets[*i + 1]].copy_from_slice(list);
                in_place += 1;
            } else {
                resized.push((*i, list.clone()));
            }
        }
        if !resized.is_empty() {
            // Disjoint row sets: the in-place writes and the splice of
            // the resized rows cannot interact.
            *self = self.with_rows_replaced(&resized);
        }
        in_place
    }
}

/// Handle to a node on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var {
    idx: usize,
}

#[derive(Clone)]
enum Op {
    Leaf,
    MatMul(usize, usize),
    SpMM { m: Rc<CsrMatrix>, x: usize },
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Div(usize, usize),
    Neg(usize),
    Scale(usize, f32),
    AddScalar(usize),
    AddBias { x: usize, bias: usize },
    Relu(usize),
    LeakyRelu(usize, f32),
    Elu(usize, f32),
    Tanh(usize),
    Sigmoid(usize),
    Exp(usize),
    Ln(usize),
    Square(usize),
    Sqrt(usize),
    Clamp(usize, f32, f32),
    MinElem(usize, usize),
    MaxElem(usize, usize),
    LogSoftmaxRows(usize),
    SoftmaxRows(usize),
    Dropout { x: usize, mask: Rc<Matrix> },
    ConcatCols(Vec<usize>),
    SliceCols { x: usize, start: usize, len: usize },
    GatherRows { x: usize, idx: Rc<Vec<usize>> },
    PickPerRow { x: usize, idx: Rc<Vec<usize>> },
    SumAll(usize),
    MeanAll(usize),
    MulConst { x: usize, c: Rc<Matrix> },
    AddConst { x: usize },
    NllMasked { logp: usize, targets: Rc<Vec<usize>>, mask: Rc<Vec<usize>> },
    EdgeAttention { wh: usize, sl: usize, sr: usize, nbrs: Rc<AdjList>, slope: f32 },
    MultiDiscreteLogProb { logits: usize, arity: usize, actions: Rc<Vec<u8>> },
    MultiDiscreteEntropy { logits: usize, arity: usize },
    Reshape { x: usize },
}

struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
    needs_grad: bool,
}

/// A single forward pass recorded for differentiation.
///
/// Create one tape per forward/backward cycle; a tape is cheap (one `Vec`).
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    bindings: Vec<(usize, Param)>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Records a constant leaf (no gradient flows into it).
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf, false)
    }

    /// Records a differentiable leaf whose gradient is readable afterwards.
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf, true)
    }

    /// Records a leaf bound to a shared [`Param`]; after [`Tape::backward`]
    /// the computed gradient is accumulated into the parameter's `grad`.
    pub fn param(&mut self, p: &Param) -> Var {
        let v = self.push(p.value().clone(), Op::Leaf, true);
        self.bindings.push((v.idx, p.clone()));
        v
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.idx].value
    }

    /// The gradient of the last `backward` call with respect to `v`.
    ///
    /// Returns `None` if `v` did not participate or gradients were not
    /// requested for it.
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        self.nodes[v.idx].grad.as_ref()
    }

    fn push(&mut self, value: Matrix, op: Op, needs_grad: bool) -> Var {
        debug_assert!(value.all_finite(), "non-finite value entering tape");
        self.nodes.push(Node { value, grad: None, op, needs_grad });
        Var { idx: self.nodes.len() - 1 }
    }

    fn val(&self, idx: usize) -> &Matrix {
        &self.nodes[idx].value
    }

    fn ng(&self, a: Var) -> bool {
        self.nodes[a.idx].needs_grad
    }

    // ---------------------------------------------------------------
    // Forward ops
    // ---------------------------------------------------------------

    /// Dense matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.val(a.idx).matmul(self.val(b.idx));
        let ng = self.ng(a) || self.ng(b);
        self.push(v, Op::MatMul(a.idx, b.idx), ng)
    }

    /// Sparse-constant times dense-variable product.
    pub fn spmm(&mut self, m: Rc<CsrMatrix>, x: Var) -> Var {
        let v = m.spmm(self.val(x.idx));
        let ng = self.ng(x);
        self.push(v, Op::SpMM { m, x: x.idx }, ng)
    }

    /// Element-wise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.val(a.idx).add(self.val(b.idx));
        let ng = self.ng(a) || self.ng(b);
        self.push(v, Op::Add(a.idx, b.idx), ng)
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.val(a.idx).sub(self.val(b.idx));
        let ng = self.ng(a) || self.ng(b);
        self.push(v, Op::Sub(a.idx, b.idx), ng)
    }

    /// Element-wise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.val(a.idx).mul_elem(self.val(b.idx));
        let ng = self.ng(a) || self.ng(b);
        self.push(v, Op::Mul(a.idx, b.idx), ng)
    }

    /// Element-wise quotient.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let v = self.val(a.idx).zip(self.val(b.idx), |x, y| x / y);
        let ng = self.ng(a) || self.ng(b);
        self.push(v, Op::Div(a.idx, b.idx), ng)
    }

    /// Element-wise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let v = self.val(a.idx).map(|x| -x);
        let ng = self.ng(a);
        self.push(v, Op::Neg(a.idx), ng)
    }

    /// Multiplies every element by the scalar `c`.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let v = self.val(a.idx).scale(c);
        let ng = self.ng(a);
        self.push(v, Op::Scale(a.idx, c), ng)
    }

    /// Adds the scalar `c` to every element.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let v = self.val(a.idx).map(|x| x + c);
        let ng = self.ng(a);
        self.push(v, Op::AddScalar(a.idx), ng)
    }

    /// Adds a `1 x c` bias row to every row of `x`.
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        let xm = self.val(x.idx);
        let bm = self.val(bias.idx);
        assert_eq!(bm.rows(), 1, "add_bias: bias must be a 1 x c row");
        assert_eq!(bm.cols(), xm.cols(), "add_bias: width mismatch");
        let mut v = xm.clone();
        for r in 0..v.rows() {
            let row = v.row_mut(r);
            for (o, &b) in row.iter_mut().zip(bm.row(0)) {
                *o += b;
            }
        }
        let ng = self.ng(x) || self.ng(bias);
        self.push(v, Op::AddBias { x: x.idx, bias: bias.idx }, ng)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.val(a.idx).map(|x| x.max(0.0));
        let ng = self.ng(a);
        self.push(v, Op::Relu(a.idx), ng)
    }

    /// Leaky ReLU with negative-side `slope`.
    pub fn leaky_relu(&mut self, a: Var, slope: f32) -> Var {
        let v = self.val(a.idx).map(|x| if x > 0.0 { x } else { slope * x });
        let ng = self.ng(a);
        self.push(v, Op::LeakyRelu(a.idx, slope), ng)
    }

    /// Exponential linear unit.
    pub fn elu(&mut self, a: Var, alpha: f32) -> Var {
        let v = self.val(a.idx).map(|x| if x > 0.0 { x } else { alpha * (x.exp() - 1.0) });
        let ng = self.ng(a);
        self.push(v, Op::Elu(a.idx, alpha), ng)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.val(a.idx).map(f32::tanh);
        let ng = self.ng(a);
        self.push(v, Op::Tanh(a.idx), ng)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.val(a.idx).map(|x| 1.0 / (1.0 + (-x).exp()));
        let ng = self.ng(a);
        self.push(v, Op::Sigmoid(a.idx), ng)
    }

    /// Element-wise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.val(a.idx).map(f32::exp);
        let ng = self.ng(a);
        self.push(v, Op::Exp(a.idx), ng)
    }

    /// Element-wise natural logarithm (inputs must be positive).
    pub fn ln(&mut self, a: Var) -> Var {
        let v = self.val(a.idx).map(f32::ln);
        let ng = self.ng(a);
        self.push(v, Op::Ln(a.idx), ng)
    }

    /// Element-wise square.
    pub fn square(&mut self, a: Var) -> Var {
        let v = self.val(a.idx).map(|x| x * x);
        let ng = self.ng(a);
        self.push(v, Op::Square(a.idx), ng)
    }

    /// Element-wise square root (inputs must be non-negative).
    pub fn sqrt(&mut self, a: Var) -> Var {
        let v = self.val(a.idx).map(f32::sqrt);
        let ng = self.ng(a);
        self.push(v, Op::Sqrt(a.idx), ng)
    }

    /// Clamps every element to `[lo, hi]`.
    pub fn clamp(&mut self, a: Var, lo: f32, hi: f32) -> Var {
        let v = self.val(a.idx).map(|x| x.clamp(lo, hi));
        let ng = self.ng(a);
        self.push(v, Op::Clamp(a.idx, lo, hi), ng)
    }

    /// Element-wise minimum of two matrices.
    pub fn min_elem(&mut self, a: Var, b: Var) -> Var {
        let v = self.val(a.idx).zip(self.val(b.idx), f32::min);
        let ng = self.ng(a) || self.ng(b);
        self.push(v, Op::MinElem(a.idx, b.idx), ng)
    }

    /// Element-wise maximum of two matrices.
    pub fn max_elem(&mut self, a: Var, b: Var) -> Var {
        let v = self.val(a.idx).zip(self.val(b.idx), f32::max);
        let ng = self.ng(a) || self.ng(b);
        self.push(v, Op::MaxElem(a.idx, b.idx), ng)
    }

    /// Row-wise log-softmax.
    pub fn log_softmax_rows(&mut self, a: Var) -> Var {
        let v = self.val(a.idx).log_softmax_rows();
        let ng = self.ng(a);
        self.push(v, Op::LogSoftmaxRows(a.idx), ng)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let v = self.val(a.idx).softmax_rows();
        let ng = self.ng(a);
        self.push(v, Op::SoftmaxRows(a.idx), ng)
    }

    /// Inverted dropout with keep-probability `1 - p`, drawing the mask from
    /// `rng`. In evaluation mode callers simply skip this op.
    pub fn dropout(&mut self, a: Var, p: f32, rng: &mut impl Rng) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1)");
        let keep = 1.0 - p;
        let src = self.val(a.idx);
        let mask = Matrix::from_fn(src.rows(), src.cols(), |_, _| {
            if rng.gen::<f32>() < keep {
                1.0 / keep
            } else {
                0.0
            }
        });
        let v = src.mul_elem(&mask);
        let ng = self.ng(a);
        self.push(v, Op::Dropout { x: a.idx, mask: Rc::new(mask) }, ng)
    }

    /// Horizontal concatenation of several same-height matrices.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols: need at least one part");
        let rows = self.val(parts[0].idx).rows();
        let total: usize = parts.iter().map(|p| self.val(p.idx).cols()).sum();
        let mut out = Matrix::zeros(rows, total);
        let mut start = 0;
        for p in parts {
            let m = self.val(p.idx);
            assert_eq!(m.rows(), rows, "concat_cols: row count mismatch");
            for r in 0..rows {
                out.row_mut(r)[start..start + m.cols()].copy_from_slice(m.row(r));
            }
            start += m.cols();
        }
        let ng = parts.iter().any(|p| self.ng(*p));
        self.push(out, Op::ConcatCols(parts.iter().map(|p| p.idx).collect()), ng)
    }

    /// Column slice `x[:, start .. start + len]`.
    pub fn slice_cols(&mut self, x: Var, start: usize, len: usize) -> Var {
        let src = self.val(x.idx);
        assert!(start + len <= src.cols(), "slice_cols out of range");
        let mut out = Matrix::zeros(src.rows(), len);
        for r in 0..src.rows() {
            out.row_mut(r).copy_from_slice(&src.row(r)[start..start + len]);
        }
        let ng = self.ng(x);
        self.push(out, Op::SliceCols { x: x.idx, start, len }, ng)
    }

    /// Row gather `x[idx, :]` (indices may repeat).
    pub fn gather_rows(&mut self, x: Var, idx: Rc<Vec<usize>>) -> Var {
        let v = self.val(x.idx).gather_rows(&idx);
        let ng = self.ng(x);
        self.push(v, Op::GatherRows { x: x.idx, idx }, ng)
    }

    /// Per-row element pick: output `(n, 1)` with `out[r] = x[r, idx[r]]`.
    pub fn pick_per_row(&mut self, x: Var, idx: Rc<Vec<usize>>) -> Var {
        let src = self.val(x.idx);
        assert_eq!(idx.len(), src.rows(), "pick_per_row: index length mismatch");
        let data: Vec<f32> = idx.iter().enumerate().map(|(r, &c)| src.get(r, c)).collect();
        let v = Matrix::from_vec(src.rows(), 1, data);
        let ng = self.ng(x);
        self.push(v, Op::PickPerRow { x: x.idx, idx }, ng)
    }

    /// Reinterprets `x` as a `rows x cols` matrix (row-major order is
    /// preserved; element count must match).
    pub fn reshape(&mut self, x: Var, rows: usize, cols: usize) -> Var {
        let src = self.val(x.idx);
        assert_eq!(src.len(), rows * cols, "reshape: element count mismatch");
        let v = Matrix::from_vec(rows, cols, src.as_slice().to_vec());
        let ng = self.ng(x);
        self.push(v, Op::Reshape { x: x.idx }, ng)
    }

    /// Sum of all elements as a `1 x 1` scalar.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Matrix::scalar(self.val(a.idx).sum());
        let ng = self.ng(a);
        self.push(v, Op::SumAll(a.idx), ng)
    }

    /// Mean of all elements as a `1 x 1` scalar.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = Matrix::scalar(self.val(a.idx).mean());
        let ng = self.ng(a);
        self.push(v, Op::MeanAll(a.idx), ng)
    }

    /// Element-wise product with a constant matrix.
    pub fn mul_const(&mut self, x: Var, c: Rc<Matrix>) -> Var {
        let v = self.val(x.idx).mul_elem(&c);
        let ng = self.ng(x);
        self.push(v, Op::MulConst { x: x.idx, c }, ng)
    }

    /// Element-wise sum with a constant matrix.
    pub fn add_const(&mut self, x: Var, c: Rc<Matrix>) -> Var {
        let v = self.val(x.idx).add(&c);
        let ng = self.ng(x);
        self.push(v, Op::AddConst { x: x.idx }, ng)
    }

    /// Masked negative log-likelihood: mean over `mask` of
    /// `-logp[i, targets[i]]`, as a `1 x 1` scalar.
    ///
    /// `logp` must already be log-probabilities (see
    /// [`Tape::log_softmax_rows`]).
    pub fn nll_masked(&mut self, logp: Var, targets: Rc<Vec<usize>>, mask: Rc<Vec<usize>>) -> Var {
        let lp = self.val(logp.idx);
        assert_eq!(targets.len(), lp.rows(), "nll_masked: target length mismatch");
        assert!(!mask.is_empty(), "nll_masked: empty mask");
        let mut total = 0.0;
        for &i in mask.iter() {
            total -= lp.get(i, targets[i]);
        }
        let v = Matrix::scalar(total / mask.len() as f32);
        let ng = self.ng(logp);
        self.push(v, Op::NllMasked { logp: logp.idx, targets, mask }, ng)
    }

    /// Fused GAT-style edge attention.
    ///
    /// For each node `i` with neighbour set `N(i)` (from `nbrs`, expected to
    /// include `i` itself), computes
    /// `out_i = Σ_{j ∈ N(i)} α_ij · wh_j` where
    /// `α_i· = softmax_j( LeakyReLU(sl_i + sr_j) )`.
    ///
    /// `wh` is `n x h`; `sl`, `sr` are `n x 1` attention scores.
    pub fn edge_attention(
        &mut self,
        wh: Var,
        sl: Var,
        sr: Var,
        nbrs: Rc<AdjList>,
        slope: f32,
    ) -> Var {
        let (out, _) = edge_attention_forward(
            self.val(wh.idx),
            self.val(sl.idx),
            self.val(sr.idx),
            &nbrs,
            slope,
        );
        let ng = self.ng(wh) || self.ng(sl) || self.ng(sr);
        self.push(out, Op::EdgeAttention { wh: wh.idx, sl: sl.idx, sr: sr.idx, nbrs, slope }, ng)
    }

    /// Fused multi-discrete log-probability.
    ///
    /// `logits` is `B x (H * arity)`: `H` independent categorical heads of
    /// `arity` choices each. `actions` holds the chosen action per
    /// `(sample, head)` in row-major order. Output is `B x 1`:
    /// `Σ_h log softmax(logits[r, h·arity ..])[action[r, h]]`.
    pub fn multi_discrete_log_prob(
        &mut self,
        logits: Var,
        arity: usize,
        actions: Rc<Vec<u8>>,
    ) -> Var {
        let lg = self.val(logits.idx);
        assert!(
            arity > 0 && lg.cols().is_multiple_of(arity),
            "logit width must be a multiple of arity"
        );
        let heads = lg.cols() / arity;
        assert_eq!(actions.len(), lg.rows() * heads, "action table size mismatch");
        let mut out = Matrix::zeros(lg.rows(), 1);
        let mut scratch = vec![0f32; arity];
        for r in 0..lg.rows() {
            let row = lg.row(r);
            let mut total = 0.0;
            for h in 0..heads {
                scratch.copy_from_slice(&row[h * arity..(h + 1) * arity]);
                log_softmax_slice(&mut scratch);
                total += scratch[actions[r * heads + h] as usize];
            }
            out.set(r, 0, total);
        }
        let ng = self.ng(logits);
        self.push(out, Op::MultiDiscreteLogProb { logits: logits.idx, arity, actions }, ng)
    }

    /// Fused multi-discrete entropy: `B x 1` with
    /// `Σ_h H(softmax(logits[r, h·arity ..]))`.
    pub fn multi_discrete_entropy(&mut self, logits: Var, arity: usize) -> Var {
        let lg = self.val(logits.idx);
        assert!(
            arity > 0 && lg.cols().is_multiple_of(arity),
            "logit width must be a multiple of arity"
        );
        let heads = lg.cols() / arity;
        let mut out = Matrix::zeros(lg.rows(), 1);
        let mut p = vec![0f32; arity];
        for r in 0..lg.rows() {
            let row = lg.row(r);
            let mut total = 0.0;
            for h in 0..heads {
                p.copy_from_slice(&row[h * arity..(h + 1) * arity]);
                softmax_slice(&mut p);
                total -= p.iter().filter(|&&q| q > 0.0).map(|&q| q * q.ln()).sum::<f32>();
            }
            out.set(r, 0, total);
        }
        let ng = self.ng(logits);
        self.push(out, Op::MultiDiscreteEntropy { logits: logits.idx, arity }, ng)
    }

    // ---------------------------------------------------------------
    // Backward
    // ---------------------------------------------------------------

    /// Runs reverse-mode differentiation from the `1 x 1` scalar `loss`,
    /// then accumulates bound-parameter gradients into their [`Param`]s.
    ///
    /// # Panics
    /// Panics if `loss` is not scalar-shaped.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(self.val(loss.idx).shape(), (1, 1), "backward: loss must be a 1x1 scalar");
        for n in &mut self.nodes {
            n.grad = None;
        }
        self.nodes[loss.idx].grad = Some(Matrix::scalar(1.0));
        for i in (0..=loss.idx).rev() {
            if !self.nodes[i].needs_grad || self.nodes[i].grad.is_none() {
                continue;
            }
            let g = self.nodes[i].grad.take().expect("grad present");
            let contributions = self.backward_step(i, &g);
            self.nodes[i].grad = Some(g);
            for (parent, grad) in contributions {
                if !self.nodes[parent].needs_grad {
                    continue;
                }
                match &mut self.nodes[parent].grad {
                    Some(acc) => acc.add_assign(&grad),
                    slot @ None => *slot = Some(grad),
                }
            }
        }
        for (idx, param) in &self.bindings {
            if let Some(g) = &self.nodes[*idx].grad {
                param.accumulate_grad(g);
            }
        }
    }

    /// Gradient contributions of node `i` (with output gradient `g`) to its
    /// parents.
    fn backward_step(&self, i: usize, g: &Matrix) -> Vec<(usize, Matrix)> {
        let out_val = &self.nodes[i].value;
        match &self.nodes[i].op {
            Op::Leaf => Vec::new(),
            Op::MatMul(a, b) => {
                let da = g.matmul_nt(self.val(*b));
                let db = self.val(*a).matmul_tn(g);
                vec![(*a, da), (*b, db)]
            }
            Op::SpMM { m, x } => vec![(*x, m.spmm_t(g))],
            Op::Add(a, b) => vec![(*a, g.clone()), (*b, g.clone())],
            Op::Sub(a, b) => vec![(*a, g.clone()), (*b, g.map(|v| -v))],
            Op::Mul(a, b) => {
                let da = g.mul_elem(self.val(*b));
                let db = g.mul_elem(self.val(*a));
                vec![(*a, da), (*b, db)]
            }
            Op::Div(a, b) => {
                let bv = self.val(*b);
                let da = g.zip(bv, |gi, bi| gi / bi);
                let db = g.zip(self.val(*a), |gi, ai| gi * ai).zip(bv, |t, bi| -t / (bi * bi));
                vec![(*a, da), (*b, db)]
            }
            Op::Neg(a) => vec![(*a, g.map(|v| -v))],
            Op::Scale(a, c) => vec![(*a, g.scale(*c))],
            Op::AddScalar(a) => vec![(*a, g.clone())],
            Op::AddBias { x, bias } => {
                let mut db = Matrix::zeros(1, g.cols());
                for r in 0..g.rows() {
                    for (o, &v) in db.row_mut(0).iter_mut().zip(g.row(r)) {
                        *o += v;
                    }
                }
                vec![(*x, g.clone()), (*bias, db)]
            }
            Op::Relu(a) => vec![(*a, g.zip(self.val(*a), |gi, x| if x > 0.0 { gi } else { 0.0 }))],
            Op::LeakyRelu(a, s) => {
                vec![(*a, g.zip(self.val(*a), |gi, x| if x > 0.0 { gi } else { gi * s }))]
            }
            Op::Elu(a, alpha) => {
                // y = α(e^x − 1) for x ≤ 0, so dy/dx = y + α there.
                vec![(*a, g.zip(out_val, |gi, y| if y > 0.0 { gi } else { gi * (y + alpha) }))]
            }
            Op::Tanh(a) => vec![(*a, g.zip(out_val, |gi, y| gi * (1.0 - y * y)))],
            Op::Sigmoid(a) => vec![(*a, g.zip(out_val, |gi, y| gi * y * (1.0 - y)))],
            Op::Exp(a) => vec![(*a, g.mul_elem(out_val))],
            Op::Ln(a) => vec![(*a, g.zip(self.val(*a), |gi, x| gi / x))],
            Op::Square(a) => vec![(*a, g.zip(self.val(*a), |gi, x| gi * 2.0 * x))],
            Op::Sqrt(a) => {
                vec![(*a, g.zip(out_val, |gi, y| if y > 0.0 { gi * 0.5 / y } else { 0.0 }))]
            }
            Op::Clamp(a, lo, hi) => {
                let src = self.val(*a);
                let mut da = g.clone();
                for (d, &x) in da.as_mut_slice().iter_mut().zip(src.as_slice()) {
                    if x < *lo || x > *hi {
                        *d = 0.0;
                    }
                }
                vec![(*a, da)]
            }
            Op::MinElem(a, b) => {
                let av = self.val(*a);
                let bv = self.val(*b);
                let da = g.zip(&av.zip(bv, |x, y| if x <= y { 1.0 } else { 0.0 }), |gi, m| gi * m);
                let db = g.zip(&av.zip(bv, |x, y| if x <= y { 0.0 } else { 1.0 }), |gi, m| gi * m);
                vec![(*a, da), (*b, db)]
            }
            Op::MaxElem(a, b) => {
                let av = self.val(*a);
                let bv = self.val(*b);
                let da = g.zip(&av.zip(bv, |x, y| if x >= y { 1.0 } else { 0.0 }), |gi, m| gi * m);
                let db = g.zip(&av.zip(bv, |x, y| if x >= y { 0.0 } else { 1.0 }), |gi, m| gi * m);
                vec![(*a, da), (*b, db)]
            }
            Op::LogSoftmaxRows(a) => {
                // dx = g − softmax(x) * rowsum(g); softmax(x) = exp(out).
                let mut da = g.clone();
                for r in 0..da.rows() {
                    let gsum: f32 = g.row(r).iter().sum();
                    let da_row = da.row_mut(r);
                    for (d, &y) in da_row.iter_mut().zip(out_val.row(r)) {
                        *d -= y.exp() * gsum;
                    }
                }
                vec![(*a, da)]
            }
            Op::SoftmaxRows(a) => {
                // dx_j = y_j (g_j − Σ_k g_k y_k)
                let mut da = Matrix::zeros(g.rows(), g.cols());
                for r in 0..g.rows() {
                    let dot: f32 =
                        g.row(r).iter().zip(out_val.row(r)).map(|(&gi, &yi)| gi * yi).sum();
                    let da_row = da.row_mut(r);
                    for ((d, &gi), &yi) in da_row.iter_mut().zip(g.row(r)).zip(out_val.row(r)) {
                        *d = yi * (gi - dot);
                    }
                }
                vec![(*a, da)]
            }
            Op::Dropout { x, mask } => vec![(*x, g.mul_elem(mask))],
            Op::ConcatCols(parts) => {
                let mut out = Vec::with_capacity(parts.len());
                let mut start = 0;
                for &p in parts {
                    let w = self.val(p).cols();
                    let mut dp = Matrix::zeros(g.rows(), w);
                    for r in 0..g.rows() {
                        dp.row_mut(r).copy_from_slice(&g.row(r)[start..start + w]);
                    }
                    out.push((p, dp));
                    start += w;
                }
                out
            }
            Op::SliceCols { x, start, len } => {
                let src = self.val(*x);
                let mut dx = Matrix::zeros(src.rows(), src.cols());
                for r in 0..g.rows() {
                    dx.row_mut(r)[*start..*start + *len].copy_from_slice(g.row(r));
                }
                vec![(*x, dx)]
            }
            Op::GatherRows { x, idx } => {
                let src = self.val(*x);
                let mut dx = Matrix::zeros(src.rows(), src.cols());
                for (r, &i) in idx.iter().enumerate() {
                    for (d, &v) in dx.row_mut(i).iter_mut().zip(g.row(r)) {
                        *d += v;
                    }
                }
                vec![(*x, dx)]
            }
            Op::PickPerRow { x, idx } => {
                let src = self.val(*x);
                let mut dx = Matrix::zeros(src.rows(), src.cols());
                for (r, &c) in idx.iter().enumerate() {
                    dx.add_at(r, c, g.get(r, 0));
                }
                vec![(*x, dx)]
            }
            Op::SumAll(a) => {
                let s = g.scalar_value();
                let src = self.val(*a);
                vec![(*a, Matrix::filled(src.rows(), src.cols(), s))]
            }
            Op::MeanAll(a) => {
                let src = self.val(*a);
                let s = g.scalar_value() / src.len().max(1) as f32;
                vec![(*a, Matrix::filled(src.rows(), src.cols(), s))]
            }
            Op::MulConst { x, c } => vec![(*x, g.mul_elem(c))],
            Op::AddConst { x } => vec![(*x, g.clone())],
            Op::NllMasked { logp, targets, mask } => {
                let lp = self.val(*logp);
                let scale = g.scalar_value() / mask.len() as f32;
                let mut dl = Matrix::zeros(lp.rows(), lp.cols());
                for &i in mask.iter() {
                    dl.add_at(i, targets[i], -scale);
                }
                vec![(*logp, dl)]
            }
            Op::EdgeAttention { wh, sl, sr, nbrs, slope } => {
                let (dwh, dsl, dsr) = edge_attention_backward(
                    self.val(*wh),
                    self.val(*sl),
                    self.val(*sr),
                    nbrs,
                    *slope,
                    g,
                );
                vec![(*wh, dwh), (*sl, dsl), (*sr, dsr)]
            }
            Op::MultiDiscreteLogProb { logits, arity, actions } => {
                let lg = self.val(*logits);
                let heads = lg.cols() / arity;
                let mut dl = Matrix::zeros(lg.rows(), lg.cols());
                let mut p = vec![0f32; *arity];
                for r in 0..lg.rows() {
                    let gr = g.get(r, 0);
                    if gr == 0.0 {
                        continue;
                    }
                    let row = lg.row(r);
                    for h in 0..heads {
                        p.copy_from_slice(&row[h * arity..(h + 1) * arity]);
                        softmax_slice(&mut p);
                        let chosen = actions[r * heads + h] as usize;
                        let drow = dl.row_mut(r);
                        for (k, &pk) in p.iter().enumerate() {
                            let ind = if k == chosen { 1.0 } else { 0.0 };
                            drow[h * arity + k] += gr * (ind - pk);
                        }
                    }
                }
                vec![(*logits, dl)]
            }
            Op::Reshape { x } => {
                let src = self.val(*x);
                vec![(*x, Matrix::from_vec(src.rows(), src.cols(), g.as_slice().to_vec()))]
            }
            Op::MultiDiscreteEntropy { logits, arity } => {
                // dH/dz_k = -p_k (log p_k + H) for each head.
                let lg = self.val(*logits);
                let heads = lg.cols() / arity;
                let mut dl = Matrix::zeros(lg.rows(), lg.cols());
                let mut p = vec![0f32; *arity];
                for r in 0..lg.rows() {
                    let gr = g.get(r, 0);
                    if gr == 0.0 {
                        continue;
                    }
                    let row = lg.row(r);
                    for h in 0..heads {
                        p.copy_from_slice(&row[h * arity..(h + 1) * arity]);
                        softmax_slice(&mut p);
                        let ent: f32 =
                            -p.iter().filter(|&&q| q > 0.0).map(|&q| q * q.ln()).sum::<f32>();
                        let drow = dl.row_mut(r);
                        for (k, &pk) in p.iter().enumerate() {
                            if pk > 0.0 {
                                drow[h * arity + k] += gr * (-pk * (pk.ln() + ent));
                            }
                        }
                    }
                }
                vec![(*logits, dl)]
            }
        }
    }
}

/// Shared forward path of the fused GAT attention op. Returns the output and
/// the per-node attention rows (used by tests).
fn edge_attention_forward(
    wh: &Matrix,
    sl: &Matrix,
    sr: &Matrix,
    nbrs: &AdjList,
    slope: f32,
) -> (Matrix, Vec<Vec<f32>>) {
    let n = nbrs.len();
    assert_eq!(wh.rows(), n, "edge_attention: wh row mismatch");
    assert_eq!(sl.shape(), (n, 1), "edge_attention: sl must be n x 1");
    assert_eq!(sr.shape(), (n, 1), "edge_attention: sr must be n x 1");
    let h = wh.cols();
    let mut out = Matrix::zeros(n, h);
    let mut alphas = Vec::with_capacity(n);
    for i in 0..n {
        let neigh = nbrs.neighbors(i);
        let mut e: Vec<f32> = neigh
            .iter()
            .map(|&j| {
                let x = sl.get(i, 0) + sr.get(j, 0);
                if x > 0.0 {
                    x
                } else {
                    slope * x
                }
            })
            .collect();
        softmax_slice(&mut e);
        let out_row = out.row_mut(i);
        for (&j, &a) in neigh.iter().zip(&e) {
            for (o, &w) in out_row.iter_mut().zip(wh.row(j)) {
                *o += a * w;
            }
        }
        alphas.push(e);
    }
    (out, alphas)
}

fn edge_attention_backward(
    wh: &Matrix,
    sl: &Matrix,
    sr: &Matrix,
    nbrs: &AdjList,
    slope: f32,
    g: &Matrix,
) -> (Matrix, Matrix, Matrix) {
    let n = nbrs.len();
    let (_, alphas) = edge_attention_forward(wh, sl, sr, nbrs, slope);
    let mut dwh = Matrix::zeros(wh.rows(), wh.cols());
    let mut dsl = Matrix::zeros(n, 1);
    let mut dsr = Matrix::zeros(n, 1);
    for (i, alpha) in alphas.iter().enumerate() {
        let neigh = nbrs.neighbors(i);
        let g_row = g.row(i);
        // dL/dα_ij = g_i · wh_j ; dL/dwh_j += α_ij g_i
        let mut dalpha: Vec<f32> = Vec::with_capacity(neigh.len());
        for (&j, &a) in neigh.iter().zip(alpha) {
            let mut dot = 0.0;
            let wh_row = wh.row(j);
            let dwh_row = dwh.row_mut(j);
            for ((&gv, &wv), dw) in g_row.iter().zip(wh_row).zip(dwh_row) {
                dot += gv * wv;
                *dw += a * gv;
            }
            dalpha.push(dot);
        }
        // softmax backward: de_j = α_j (dα_j − Σ_k α_k dα_k)
        let mix: f32 = alpha.iter().zip(&dalpha).map(|(&a, &d)| a * d).sum();
        for ((&j, &a), &da) in neigh.iter().zip(alpha).zip(&dalpha) {
            let de = a * (da - mix);
            let x = sl.get(i, 0) + sr.get(j, 0);
            let de = if x > 0.0 { de } else { de * slope };
            dsl.add_at(i, 0, de);
            dsr.add_at(j, 0, de);
        }
    }
    (dwh, dsl, dsr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_grad;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn adjlist_apply_rows_mixes_in_place_and_splice() {
        let al = AdjList::from_neighbor_lists(&[vec![0, 1, 2], vec![1, 0], vec![2, 1, 0]]);
        // Row 1 keeps its length (in place); row 0 shrinks (spliced).
        let patch = vec![(0, vec![2]), (1, vec![0, 2])];
        let want = al.with_rows_replaced(&patch);
        let mut got = al.clone();
        assert_eq!(got.apply_rows(&patch), 1, "exactly row 1 keeps its length");
        assert_eq!(got, want);
        // A pure re-write batch is all in-place.
        let rewrite = vec![(2, vec![0, 1, 2])];
        let want = got.with_rows_replaced(&rewrite);
        assert_eq!(got.apply_rows(&rewrite), 1);
        assert_eq!(got, want);
    }

    #[test]
    fn adjlist_rows_replaced_matches_rebuild() {
        let al = AdjList::from_neighbor_lists(&[vec![0, 1, 2], vec![1, 0], vec![2, 1, 0]]);
        let got = al.with_rows_replaced(&[(0, vec![0]), (2, vec![2, 0, 1, 1])]);
        let want = AdjList::from_neighbor_lists(&[vec![0], vec![1, 0], vec![2, 0, 1, 1]]);
        assert_eq!(got, want);
        assert_eq!(al.with_rows_replaced(&[]), al);
    }

    #[test]
    fn matmul_forward_and_grad() {
        // loss = sum(A @ B); dA = ones @ B^T; dB = A^T @ ones.
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let mut t = Tape::new();
        let va = t.leaf(a.clone());
        let vb = t.leaf(b.clone());
        let c = t.matmul(va, vb);
        let loss = t.sum_all(c);
        t.backward(loss);
        let da = t.grad(va).unwrap();
        let want_da = Matrix::ones(2, 2).matmul_nt(&b);
        assert!(da.max_abs_diff(&want_da) < 1e-5);
        let db = t.grad(vb).unwrap();
        let want_db = a.matmul_tn(&Matrix::ones(2, 2));
        assert!(db.max_abs_diff(&want_db) < 1e-5);
    }

    #[test]
    fn gradcheck_elementwise_chain() {
        let x0 = Matrix::from_vec(2, 3, vec![0.3, -0.7, 1.2, 0.05, -1.4, 2.0]);
        check_grad(&x0, 1e-2, |t, x| {
            let a = t.tanh(x);
            let b = t.sigmoid(a);
            let c = t.square(b);
            t.mean_all(c)
        });
    }

    #[test]
    fn gradcheck_relu_family() {
        // Keep values away from the kink at 0.
        let x0 = Matrix::from_vec(2, 2, vec![0.5, -0.8, 1.3, -0.2]);
        check_grad(&x0, 1e-2, |t, x| {
            let a = t.relu(x);
            let b = t.leaky_relu(x, 0.2);
            let c = t.elu(x, 1.0);
            let ab = t.add(a, b);
            let abc = t.add(ab, c);
            t.sum_all(abc)
        });
    }

    #[test]
    fn gradcheck_log_softmax_nll() {
        let x0 = Matrix::from_vec(
            3,
            4,
            vec![0.1, 0.2, -0.4, 0.9, 1.5, -0.3, 0.0, 0.7, -1.0, 0.4, 0.3, -0.6],
        );
        let targets = Rc::new(vec![2usize, 0, 3]);
        let mask = Rc::new(vec![0usize, 2]);
        check_grad(&x0, 1e-2, move |t, x| {
            let lp = t.log_softmax_rows(x);
            t.nll_masked(lp, targets.clone(), mask.clone())
        });
    }

    #[test]
    fn gradcheck_softmax_rows() {
        let x0 = Matrix::from_vec(2, 3, vec![0.2, -0.5, 1.0, 0.0, 0.3, -0.8]);
        let w = Rc::new(Matrix::from_vec(2, 3, vec![1.0, -2.0, 0.5, 0.3, 1.1, -0.4]));
        check_grad(&x0, 1e-2, move |t, x| {
            let s = t.softmax_rows(x);
            let weighted = t.mul_const(s, w.clone());
            t.sum_all(weighted)
        });
    }

    #[test]
    fn gradcheck_spmm() {
        let m = Rc::new(CsrMatrix::from_triplets(
            3,
            3,
            &[(0, 1, 2.0), (1, 0, -1.0), (1, 2, 0.5), (2, 2, 1.0)],
        ));
        let x0 = Matrix::from_vec(3, 2, vec![0.1, 0.2, -0.3, 0.4, 0.5, -0.6]);
        check_grad(&x0, 1e-2, move |t, x| {
            let y = t.spmm(m.clone(), x);
            let z = t.square(y);
            t.sum_all(z)
        });
    }

    #[test]
    fn gradcheck_add_bias_and_concat() {
        let x0 = Matrix::from_vec(2, 2, vec![0.4, -0.2, 0.9, 0.1]);
        check_grad(&x0, 1e-2, |t, x| {
            let b = t.leaf(Matrix::row_vector(&[0.3, -0.5]));
            let y = t.add_bias(x, b);
            let z = t.concat_cols(&[x, y]);
            let s = t.square(z);
            t.mean_all(s)
        });
    }

    #[test]
    fn gradcheck_slice_gather_pick() {
        let x0 = Matrix::from_vec(
            3,
            4,
            vec![0.1, 0.2, 0.3, 0.4, -0.1, -0.2, -0.3, -0.4, 0.5, 0.6, 0.7, 0.8],
        );
        let gather = Rc::new(vec![2usize, 0, 2, 1]);
        let pick = Rc::new(vec![1usize, 3, 0, 2]);
        check_grad(&x0, 1e-2, move |t, x| {
            let s = t.slice_cols(x, 1, 2);
            let g = t.gather_rows(x, gather.clone());
            let p = t.pick_per_row(g, pick.clone());
            let s_sum = t.sum_all(s);
            let p_sum = t.sum_all(p);
            t.add(s_sum, p_sum)
        });
    }

    #[test]
    fn gradcheck_min_max_clamp() {
        // Values chosen away from ties and clamp boundaries.
        let x0 = Matrix::from_vec(2, 2, vec![0.4, -0.9, 1.6, 0.2]);
        let other = Rc::new(Matrix::from_vec(2, 2, vec![0.1, 0.0, 2.0, -0.5]));
        check_grad(&x0, 1e-2, move |t, x| {
            let o = t.constant((*other).clone());
            let mn = t.min_elem(x, o);
            let mx = t.max_elem(x, o);
            let cl = t.clamp(x, -0.7, 1.2);
            let a = t.add(mn, mx);
            let b = t.add(a, cl);
            t.sum_all(b)
        });
    }

    #[test]
    fn gradcheck_div_exp_ln_sqrt() {
        let x0 = Matrix::from_vec(1, 3, vec![0.8, 1.5, 2.2]);
        check_grad(&x0, 1e-2, |t, x| {
            let e = t.exp(x);
            let l = t.ln(x);
            let s = t.sqrt(x);
            let d = t.div(e, s);
            let a = t.add(d, l);
            t.mean_all(a)
        });
    }

    #[test]
    fn gradcheck_edge_attention() {
        let nbrs =
            Rc::new(AdjList::from_neighbor_lists(&[vec![0, 1, 2], vec![1, 0], vec![2, 1, 0]]));
        let wh0 = Matrix::from_vec(3, 2, vec![0.3, -0.2, 0.8, 0.1, -0.5, 0.6]);
        let sl = Rc::new(Matrix::column(&[0.2, -0.4, 0.7]));
        let sr = Rc::new(Matrix::column(&[-0.1, 0.5, 0.3]));
        let n2 = nbrs.clone();
        let (sl2, sr2) = (sl.clone(), sr.clone());
        check_grad(&wh0, 2e-2, move |t, wh| {
            let vsl = t.leaf((*sl2).clone());
            let vsr = t.leaf((*sr2).clone());
            let out = t.edge_attention(wh, vsl, vsr, n2.clone(), 0.2);
            let sq = t.square(out);
            t.sum_all(sq)
        });
        // Also check the score gradients.
        let sl0 = (*sl).clone();
        let nbrs2 = nbrs.clone();
        check_grad(&sl0, 2e-2, move |t, vsl| {
            let wh = t.constant(Matrix::from_vec(3, 2, vec![0.3, -0.2, 0.8, 0.1, -0.5, 0.6]));
            let vsr = t.leaf((*sr).clone());
            let out = t.edge_attention(wh, vsl, vsr, nbrs2.clone(), 0.2);
            let sq = t.square(out);
            t.sum_all(sq)
        });
    }

    #[test]
    fn gradcheck_multi_discrete_log_prob() {
        // 2 samples, 2 heads of arity 3.
        let x0 = Matrix::from_vec(
            2,
            6,
            vec![0.3, -0.1, 0.8, 0.2, 0.5, -0.7, 1.0, 0.0, -0.4, -0.2, 0.6, 0.9],
        );
        let actions = Rc::new(vec![0u8, 2, 1, 1]);
        let weights = Rc::new(Matrix::from_vec(2, 1, vec![0.7, -1.3]));
        check_grad(&x0, 1e-2, move |t, x| {
            let lp = t.multi_discrete_log_prob(x, 3, actions.clone());
            let w = t.mul_const(lp, weights.clone());
            t.sum_all(w)
        });
    }

    #[test]
    fn gradcheck_multi_discrete_entropy() {
        let x0 = Matrix::from_vec(
            2,
            6,
            vec![0.3, -0.1, 0.8, 0.2, 0.5, -0.7, 1.0, 0.0, -0.4, -0.2, 0.6, 0.9],
        );
        check_grad(&x0, 1e-2, |t, x| {
            let e = t.multi_discrete_entropy(x, 3);
            t.mean_all(e)
        });
    }

    #[test]
    fn multi_discrete_log_prob_matches_manual() {
        let mut t = Tape::new();
        let logits = t.constant(Matrix::from_vec(1, 6, vec![1.0, 2.0, 3.0, 0.0, 0.0, 0.0]));
        let lp = t.multi_discrete_log_prob(logits, 3, Rc::new(vec![2u8, 0]));
        let mut head1 = [1.0f32, 2.0, 3.0];
        log_softmax_slice(&mut head1);
        let want = head1[2] + (1.0f32 / 3.0).ln();
        assert!((t.value(lp).get(0, 0) - want).abs() < 1e-5);
    }

    #[test]
    fn multi_discrete_entropy_uniform_is_ln_arity() {
        let mut t = Tape::new();
        let logits = t.constant(Matrix::zeros(2, 6));
        let e = t.multi_discrete_entropy(logits, 3);
        let want = 2.0 * 3.0f32.ln();
        assert!((t.value(e).get(0, 0) - want).abs() < 1e-5);
        assert!((t.value(e).get(1, 0) - want).abs() < 1e-5);
    }

    #[test]
    fn dropout_scales_kept_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut t = Tape::new();
        let x = t.leaf(Matrix::ones(10, 10));
        let y = t.dropout(x, 0.5, &mut rng);
        for &v in t.value(y).as_slice() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6);
        }
        let s = t.sum_all(y);
        t.backward(s);
        // Gradient equals the mask.
        let gx = t.grad(x).unwrap();
        for (&gv, &yv) in gx.as_slice().iter().zip(t.value(y).as_slice()) {
            assert_eq!(gv, yv);
        }
    }

    #[test]
    fn constants_receive_no_grad() {
        let mut t = Tape::new();
        let c = t.constant(Matrix::ones(2, 2));
        let x = t.leaf(Matrix::ones(2, 2));
        let y = t.mul(c, x);
        let s = t.sum_all(y);
        t.backward(s);
        assert!(t.grad(c).is_none());
        assert!(t.grad(x).is_some());
    }

    #[test]
    fn grad_accumulates_over_reuse() {
        // loss = sum(x + x) => dx = 2.
        let mut t = Tape::new();
        let x = t.leaf(Matrix::ones(1, 2));
        let y = t.add(x, x);
        let s = t.sum_all(y);
        t.backward(s);
        assert_eq!(t.grad(x).unwrap().as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn gradcheck_reshape() {
        let x0 = Matrix::from_vec(
            2,
            6,
            vec![0.3, -0.1, 0.8, 0.2, 0.5, -0.7, 1.0, 0.0, -0.4, -0.2, 0.6, 0.9],
        );
        check_grad(&x0, 1e-2, |t, x| {
            let r = t.reshape(x, 4, 3);
            let s = t.square(r);
            t.mean_all(s)
        });
    }

    #[test]
    fn edge_attention_uniform_scores_average_neighbors() {
        // With equal scores the attention is a plain neighbourhood mean.
        let nbrs = Rc::new(AdjList::from_neighbor_lists(&[vec![0, 1], vec![1, 0]]));
        let mut t = Tape::new();
        let wh = t.constant(Matrix::from_vec(2, 1, vec![2.0, 4.0]));
        let sl = t.constant(Matrix::zeros(2, 1));
        let sr = t.constant(Matrix::zeros(2, 1));
        let out = t.edge_attention(wh, sl, sr, nbrs, 0.2);
        assert!((t.value(out).get(0, 0) - 3.0).abs() < 1e-6);
        assert!((t.value(out).get(1, 0) - 3.0).abs() < 1e-6);
    }
}
