//! Finite-difference gradient checking used by the tape's unit tests and by
//! downstream crates to validate custom models.

use crate::matrix::Matrix;
use crate::tape::{Tape, Var};

/// Central-difference numerical gradient of `f` (a scalar-valued tape
/// computation) with respect to the leaf input `x0`.
pub fn numeric_grad(x0: &Matrix, mut f: impl FnMut(&mut Tape, Var) -> Var) -> Matrix {
    let h = 1e-3f32;
    let mut grad = Matrix::zeros(x0.rows(), x0.cols());
    for r in 0..x0.rows() {
        for c in 0..x0.cols() {
            let mut xp = x0.clone();
            xp.set(r, c, xp.get(r, c) + h);
            let mut tp = Tape::new();
            let vp = tp.leaf(xp);
            let lp = f(&mut tp, vp);
            let fp = tp.value(lp).scalar_value();

            let mut xm = x0.clone();
            xm.set(r, c, xm.get(r, c) - h);
            let mut tm = Tape::new();
            let vm = tm.leaf(xm);
            let lm = f(&mut tm, vm);
            let fm = tm.value(lm).scalar_value();

            grad.set(r, c, (fp - fm) / (2.0 * h));
        }
    }
    grad
}

/// Asserts that the analytic gradient of `f` at `x0` matches the
/// central-difference estimate within `tol` (relative where gradients are
/// large, absolute where small).
///
/// `f` must build a scalar (`1 x 1`) output from the provided leaf.
///
/// # Panics
/// Panics with a diagnostic if any component deviates by more than `tol`.
pub fn check_grad(x0: &Matrix, tol: f32, mut f: impl FnMut(&mut Tape, Var) -> Var) {
    let mut tape = Tape::new();
    let x = tape.leaf(x0.clone());
    let loss = f(&mut tape, x);
    tape.backward(loss);
    let analytic = tape.grad(x).expect("input must influence the loss").clone();
    let numeric = numeric_grad(x0, f);

    for r in 0..x0.rows() {
        for c in 0..x0.cols() {
            let a = analytic.get(r, c);
            let n = numeric.get(r, c);
            let denom = 1.0f32.max(a.abs()).max(n.abs());
            let rel = (a - n).abs() / denom;
            assert!(
                rel <= tol,
                "gradient mismatch at ({r},{c}): analytic {a}, numeric {n}, rel err {rel} > {tol}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_grad_of_square_is_two_x() {
        let x0 = Matrix::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
        let g = numeric_grad(&x0, |t, x| {
            let s = t.square(x);
            t.sum_all(s)
        });
        for c in 0..3 {
            assert!((g.get(0, c) - 2.0 * x0.get(0, c)).abs() < 1e-2);
        }
    }

    #[test]
    #[should_panic(expected = "gradient mismatch")]
    fn check_grad_catches_wrong_gradient() {
        // exp has gradient exp(x) != 1; pretending the loss is sum(x) while
        // evaluating exp(x) must fail.
        let x0 = Matrix::from_vec(1, 2, vec![0.5, 1.0]);
        let mut tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let y = tape.exp(x);
        let l = tape.sum_all(y);
        tape.backward(l);
        // Deliberately compare against a different function.
        let numeric = numeric_grad(&x0, |t, v| t.sum_all(v));
        let analytic = tape.grad(x).unwrap();
        for c in 0..2 {
            let a = analytic.get(0, c);
            let n = numeric.get(0, c);
            let denom = 1.0f32.max(a.abs()).max(n.abs());
            assert!(
                (a - n).abs() / denom <= 1e-3,
                "gradient mismatch at (0,{c}): analytic {a}, numeric {n}"
            );
        }
    }
}
