//! Weight initialisers.
//!
//! All initialisers draw from an explicit [`rand::Rng`] so that every model
//! in the workspace is reproducible from a single `u64` seed.

use crate::matrix::Matrix;
use rand::Rng;

/// Glorot/Xavier uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
///
/// This is the default initialiser used by PyTorch-Geometric's GCN/GAT
/// layers, which the paper builds on.
pub fn glorot_uniform(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Matrix {
    let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-a..=a))
}

/// He/Kaiming uniform initialisation for ReLU networks:
/// `U(-a, a)` with `a = sqrt(6 / fan_in)`.
pub fn he_uniform(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Matrix {
    let a = (6.0 / fan_in.max(1) as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-a..=a))
}

/// Orthogonal-ish scaled normal initialisation used for PPO policy heads.
///
/// Stable-Baselines3 initialises policy output layers with a small gain so
/// the initial policy is near-uniform; `N(0, gain / sqrt(fan_in))`
/// reproduces that behaviour closely without a full QR decomposition.
pub fn scaled_normal(rng: &mut impl Rng, fan_in: usize, fan_out: usize, gain: f32) -> Matrix {
    let std = gain / (fan_in.max(1) as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| sample_normal(rng) * std)
}

/// Standard-normal sample via Box–Muller.
pub fn sample_normal(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// A matrix of i.i.d. `N(0, std^2)` entries.
pub fn normal(rng: &mut impl Rng, rows: usize, cols: usize, std: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| sample_normal(rng) * std)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn glorot_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = glorot_uniform(&mut rng, 100, 50);
        let a = (6.0 / 150.0_f32).sqrt();
        assert_eq!(m.shape(), (100, 50));
        assert!(m.max() <= a && m.min() >= -a);
        // Not degenerate: values should spread over the interval.
        assert!(m.max() > a * 0.5 && m.min() < -a * 0.5);
    }

    #[test]
    fn he_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = he_uniform(&mut rng, 64, 32);
        let a = (6.0 / 64.0_f32).sqrt();
        assert!(m.max() <= a && m.min() >= -a);
    }

    #[test]
    fn normal_moments_roughly_match() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = normal(&mut rng, 200, 200, 2.0);
        let mean = m.mean();
        let var = m.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / m.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn deterministic_from_seed() {
        let a = glorot_uniform(&mut StdRng::seed_from_u64(7), 10, 10);
        let b = glorot_uniform(&mut StdRng::seed_from_u64(7), 10, 10);
        assert_eq!(a, b);
    }
}
