//! Compressed sparse row (CSR) matrices.
//!
//! Graph adjacency operators (`Â = D^-1/2 (A+I) D^-1/2`, `D^-1 A`, `A²`, …)
//! are stored in CSR form and multiplied against dense feature matrices with
//! [`CsrMatrix::spmm`]. The autograd tape treats a CSR operand as a constant:
//! gradients only flow through the dense side, which matches how GNN
//! propagation matrices are used in the paper.

use crate::matrix::Matrix;
use crate::parallel;

/// A sparse matrix in compressed sparse row format.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointer array of length `rows + 1`.
    row_ptr: Vec<usize>,
    /// Column indices, sorted within each row.
    col_idx: Vec<usize>,
    /// Non-zero values, parallel to `col_idx`.
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from (row, col, value) triplets.
    ///
    /// Triplets may be unordered; duplicates are summed. Entries with value
    /// `0.0` are kept out of the structure.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        let mut counts = vec![0usize; rows + 1];
        for &(r, c, _) in triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds for {rows}x{cols}");
            counts[r + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let mut col_idx = vec![0usize; triplets.len()];
        let mut values = vec![0f32; triplets.len()];
        let mut cursor = counts.clone();
        for &(r, c, v) in triplets {
            let pos = cursor[r];
            col_idx[pos] = c;
            values[pos] = v;
            cursor[r] += 1;
        }
        // Sort within each row and merge duplicates / drop explicit zeros.
        let mut out_ptr = Vec::with_capacity(rows + 1);
        let mut out_col = Vec::with_capacity(col_idx.len());
        let mut out_val = Vec::with_capacity(values.len());
        out_ptr.push(0);
        let mut scratch: Vec<(usize, f32)> = Vec::new();
        for r in 0..rows {
            scratch.clear();
            scratch.extend(
                col_idx[counts[r]..counts[r + 1]]
                    .iter()
                    .copied()
                    .zip(values[counts[r]..counts[r + 1]].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut v = 0.0;
                while i < scratch.len() && scratch[i].0 == c {
                    v += scratch[i].1;
                    i += 1;
                }
                if v != 0.0 {
                    out_col.push(c);
                    out_val.push(v);
                }
            }
            out_ptr.push(out_col.len());
        }
        Self { rows, cols, row_ptr: out_ptr, col_idx: out_col, values: out_val }
    }

    /// Assembles a matrix directly from a per-row entry builder, skipping
    /// [`from_triplets`](CsrMatrix::from_triplets)'s scatter/sort/dedup
    /// passes.
    ///
    /// `build` is called once per row in ascending order with a cleared
    /// scratch vector and must append that row's entries **sorted by
    /// column without duplicates** (checked in debug builds); explicit
    /// zeros are kept as stored entries, exactly as `from_triplets` keeps
    /// the *sum* of duplicates only when non-zero — callers of this fast
    /// path emit no zeros. The result is identical to building the same
    /// rows via triplets.
    pub fn from_row_builder(
        rows: usize,
        cols: usize,
        build: impl FnMut(usize, &mut Vec<(usize, f32)>),
    ) -> Self {
        let mut out = Self::empty();
        let mut scratch: Vec<(usize, f32)> = Vec::new();
        out.rebuild_from_row_builder(rows, cols, &mut scratch, build);
        out
    }

    /// An empty `0 x 0` matrix, the seed for
    /// [`rebuild_from_row_builder`](CsrMatrix::rebuild_from_row_builder).
    pub fn empty() -> Self {
        Self { rows: 0, cols: 0, row_ptr: vec![0], col_idx: Vec::new(), values: Vec::new() }
    }

    /// Rebuilds the whole matrix **in place** from a per-row entry
    /// builder, reusing the existing CSR storage (and the caller's row
    /// `scratch`) instead of allocating fresh arrays — once capacities
    /// have warmed up this performs zero heap allocations, which is what
    /// the incremental rewiring engine's dense-regime operator refresh
    /// relies on. The result is identical to
    /// [`from_row_builder`](CsrMatrix::from_row_builder) with the same
    /// closure; the same per-row ordering contract applies.
    pub fn rebuild_from_row_builder(
        &mut self,
        rows: usize,
        cols: usize,
        scratch: &mut Vec<(usize, f32)>,
        mut build: impl FnMut(usize, &mut Vec<(usize, f32)>),
    ) {
        self.rows = rows;
        self.cols = cols;
        self.row_ptr.clear();
        self.row_ptr.push(0);
        self.col_idx.clear();
        self.values.clear();
        for r in 0..rows {
            scratch.clear();
            build(r, scratch);
            debug_assert!(
                scratch.windows(2).all(|w| w[0].0 < w[1].0),
                "row {r} entries must be sorted by column and unique"
            );
            if let Some(&(c, _)) = scratch.last() {
                assert!(c < cols, "column {c} out of bounds for {cols} cols");
            }
            self.col_idx.extend(scratch.iter().map(|&(c, _)| c));
            self.values.extend(scratch.iter().map(|&(_, v)| v));
            self.row_ptr.push(self.col_idx.len());
        }
    }

    /// Builds an identity CSR matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `(column, value)` pairs of row `r`, sorted by column.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi].iter().copied().zip(self.values[lo..hi].iter().copied())
    }

    /// Number of stored entries in row `r`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Sparse-dense product `self * dense`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn spmm(&self, dense: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            dense.rows(),
            "spmm: {}x{} * {}x{} dimension mismatch",
            self.rows,
            self.cols,
            dense.rows(),
            dense.cols()
        );
        let _kernel = kernel_telemetry!("spmm", self.rows);
        let cols = dense.cols();
        let mut out = Matrix::zeros(self.rows, cols);
        parallel::par_for_each_row(out.as_mut_slice(), cols, |r, out_row| {
            for (c, v) in self.row_entries_inner(r) {
                let d_row = dense.row(c);
                for (o, &d) in out_row.iter_mut().zip(d_row) {
                    *o += v * d;
                }
            }
        });
        out
    }

    /// `self^T * dense` without materialising the transpose.
    ///
    /// Used by the autograd tape to push gradients through `spmm`.
    ///
    /// Parallelised over chunks of *output* rows: each thread scans the
    /// CSR structure and accumulates only the entries whose column lands
    /// in its chunk, in the same ascending input-row order as the serial
    /// loop — no atomics, no merge step, bit-identical results.
    pub fn spmm_t(&self, dense: &Matrix) -> Matrix {
        assert_eq!(
            self.rows,
            dense.rows(),
            "spmm_t: {}x{} ^T * {}x{} dimension mismatch",
            self.rows,
            self.cols,
            dense.rows(),
            dense.cols()
        );
        let _kernel = kernel_telemetry!("spmm_t", self.cols);
        let cols = dense.cols();
        let mut out = Matrix::zeros(self.cols, cols);
        parallel::par_for_each_chunk(out.as_mut_slice(), cols, |range, chunk| {
            for r in 0..self.rows {
                let d_row = dense.row(r);
                for (c, v) in self.row_entries_inner(r) {
                    if c < range.start || c >= range.end {
                        continue;
                    }
                    let off = (c - range.start) * cols;
                    let out_row = &mut chunk[off..off + cols];
                    for (o, &d) in out_row.iter_mut().zip(d_row) {
                        *o += v * d;
                    }
                }
            }
        });
        out
    }

    /// Dense sparse-vector product `self * v` for a column vector.
    ///
    /// Parallelised over output rows; each dot product stays on one
    /// thread, so results match serial execution exactly.
    pub fn spmv(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(self.cols, v.len(), "spmv: dimension mismatch");
        let _kernel = kernel_telemetry!("spmv", self.rows);
        parallel::par_map(self.rows, |r| self.row_entries_inner(r).map(|(c, w)| w * v[c]).sum())
    }

    /// Converts to a dense matrix (test/debug helper).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_entries_inner(r) {
                out.set(r, c, v);
            }
        }
        out
    }

    /// Whether the matrix is structurally symmetric with equal values.
    pub fn is_symmetric(&self, tol: f32) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for (c, v) in self.row_entries_inner(r) {
                match self.get(c, r) {
                    Some(w) if (w - v).abs() <= tol => {}
                    _ => return false,
                }
            }
        }
        true
    }

    /// Returns a copy of the matrix with the listed rows replaced by new
    /// `(column, value)` contents, splicing the CSR arrays in one pass.
    ///
    /// Unchanged rows are copied verbatim (`memcpy`-sized block copies),
    /// which is what makes incremental operator updates — rebuild only the
    /// rows a topology edit touched — cheaper than a full
    /// [`CsrMatrix::from_triplets`] rebuild. The result is identical to
    /// building the whole matrix from scratch with the same rows.
    ///
    /// `replacements` must be sorted by row index without duplicates, and
    /// each row's entries must be sorted by column without duplicates.
    ///
    /// # Panics
    /// Panics if a row or column index is out of bounds or the ordering
    /// contract is violated.
    pub fn with_rows_replaced(&self, replacements: &[(usize, Vec<(usize, f32)>)]) -> CsrMatrix {
        for w in replacements.windows(2) {
            assert!(w[0].0 < w[1].0, "replacement rows must be sorted and unique");
        }
        let mut new_nnz = self.nnz();
        for (r, entries) in replacements {
            assert!(*r < self.rows, "replacement row {r} out of bounds for {} rows", self.rows);
            for w in entries.windows(2) {
                assert!(w[0].0 < w[1].0, "row {r} entries must be sorted by column and unique");
            }
            if let Some(&(c, _)) = entries.last() {
                assert!(c < self.cols, "column {c} out of bounds for {} cols", self.cols);
            }
            new_nnz = new_nnz - self.row_nnz(*r) + entries.len();
        }
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::with_capacity(new_nnz);
        let mut values = Vec::with_capacity(new_nnz);
        row_ptr.push(0);
        let mut next = replacements.iter().peekable();
        let mut r = 0;
        while r < self.rows {
            if let Some(&&(rep_row, ref entries)) = next.peek() {
                if rep_row == r {
                    col_idx.extend(entries.iter().map(|&(c, _)| c));
                    values.extend(entries.iter().map(|&(_, v)| v));
                    row_ptr.push(col_idx.len());
                    next.next();
                    r += 1;
                    continue;
                }
                // Copy the untouched span [r, rep_row) as one block.
                let lo = self.row_ptr[r];
                let hi = self.row_ptr[rep_row];
                col_idx.extend_from_slice(&self.col_idx[lo..hi]);
                values.extend_from_slice(&self.values[lo..hi]);
                let base = col_idx.len() - (hi - lo);
                for rr in r..rep_row {
                    row_ptr.push(base + self.row_ptr[rr + 1] - lo);
                }
                r = rep_row;
            } else {
                // Tail: no replacements left.
                let lo = self.row_ptr[r];
                let hi = self.row_ptr[self.rows];
                col_idx.extend_from_slice(&self.col_idx[lo..hi]);
                values.extend_from_slice(&self.values[lo..hi]);
                let base = col_idx.len() - (hi - lo);
                for rr in r..self.rows {
                    row_ptr.push(base + self.row_ptr[rr + 1] - lo);
                }
                r = self.rows;
            }
        }
        CsrMatrix { rows: self.rows, cols: self.cols, row_ptr, col_idx, values }
    }

    /// Applies row replacements, patching `col_idx`/`values` **in place**
    /// for every replaced row that keeps its non-zero count — the common
    /// incremental-rewiring case where the neighbour rows of an edit only
    /// re-weight — and routing only the rows that grow or shrink through
    /// one [`with_rows_replaced`](CsrMatrix::with_rows_replaced) splice.
    /// Returns how many rows took the in-place path; the result is always
    /// identical to `with_rows_replaced` on the full input.
    ///
    /// Callers holding the matrix behind a shared handle must go through
    /// `Rc::make_mut` (copy-on-write) so outstanding snapshots keep
    /// observing the pre-edit operator.
    ///
    /// `replacements` obeys the same ordering contract as
    /// `with_rows_replaced`.
    ///
    /// # Panics
    /// Panics if a row or column index is out of bounds or the ordering
    /// contract is violated.
    pub fn apply_rows(&mut self, replacements: &[(usize, Vec<(usize, f32)>)]) -> usize {
        for w in replacements.windows(2) {
            assert!(w[0].0 < w[1].0, "replacement rows must be sorted and unique");
        }
        let mut resized: Vec<(usize, Vec<(usize, f32)>)> = Vec::new();
        let mut in_place = 0usize;
        for (r, entries) in replacements {
            assert!(*r < self.rows, "row {r} out of bounds for {} rows", self.rows);
            for w in entries.windows(2) {
                assert!(w[0].0 < w[1].0, "row {r} entries must be sorted by column and unique");
            }
            if let Some(&(c, _)) = entries.last() {
                assert!(c < self.cols, "column {c} out of bounds for {} cols", self.cols);
            }
            if self.row_nnz(*r) == entries.len() {
                let lo = self.row_ptr[*r];
                for (i, &(c, v)) in entries.iter().enumerate() {
                    self.col_idx[lo + i] = c;
                    self.values[lo + i] = v;
                }
                in_place += 1;
            } else {
                resized.push((*r, entries.clone()));
            }
        }
        if !resized.is_empty() {
            // The splice reads the already-patched storage; the row sets
            // are disjoint, so the order of the two phases cannot matter.
            *self = self.with_rows_replaced(&resized);
        }
        in_place
    }

    /// Value at `(r, c)` if stored.
    pub fn get(&self, r: usize, c: usize) -> Option<f32> {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        let row = &self.col_idx[lo..hi];
        row.binary_search(&c).ok().map(|i| self.values[lo + i])
    }

    #[inline]
    fn row_entries_inner(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi].iter().copied().zip(self.values[lo..hi].iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(3, 3, &[(0, 1, 2.0), (1, 0, 3.0), (2, 2, 1.0), (0, 2, -1.0)])
    }

    #[test]
    fn triplets_roundtrip_dense() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d.get(0, 1), 2.0);
        assert_eq!(d.get(1, 0), 3.0);
        assert_eq!(d.get(2, 2), 1.0);
        assert_eq!(d.get(0, 2), -1.0);
        assert_eq!(d.get(1, 1), 0.0);
        assert_eq!(m.nnz(), 4);
    }

    #[test]
    fn duplicates_are_summed_zeros_dropped() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 0.0)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), Some(3.0));
        assert_eq!(m.get(1, 1), None);
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let m = sample();
        let x = Matrix::from_fn(3, 2, |r, c| (r + c) as f32 + 0.5);
        let sparse = m.spmm(&x);
        let dense = m.to_dense().matmul(&x);
        assert!(sparse.max_abs_diff(&dense) < 1e-6);
    }

    #[test]
    fn spmm_t_matches_transpose_matmul() {
        let m = sample();
        let x = Matrix::from_fn(3, 2, |r, c| (2 * r + c) as f32);
        let got = m.spmm_t(&x);
        let want = m.to_dense().transpose().matmul(&x);
        assert!(got.max_abs_diff(&want) < 1e-6);
    }

    #[test]
    fn identity_spmm_is_noop() {
        let x = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32);
        let id = CsrMatrix::identity(4);
        assert_eq!(id.spmm(&x), x);
    }

    #[test]
    fn spmv_known() {
        let m = sample();
        let y = m.spmv(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![2.0 * 2.0 - 3.0, 3.0, 3.0]);
    }

    #[test]
    fn symmetry_detection() {
        let sym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        assert!(sym.is_symmetric(1e-9));
        assert!(!sample().is_symmetric(1e-9));
    }

    #[test]
    fn rows_replaced_matches_full_rebuild() {
        let m = sample();
        // Replace row 1 (grow) and row 2 (shrink to empty).
        let got = m.with_rows_replaced(&[(1, vec![(0, 9.0), (2, 4.0)]), (2, vec![])]);
        let want =
            CsrMatrix::from_triplets(3, 3, &[(0, 1, 2.0), (0, 2, -1.0), (1, 0, 9.0), (1, 2, 4.0)]);
        assert_eq!(got, want);
    }

    #[test]
    fn rows_replaced_noop_and_all() {
        let m = sample();
        assert_eq!(m.with_rows_replaced(&[]), m);
        let rows: Vec<(usize, Vec<(usize, f32)>)> =
            (0..3).map(|r| (r, m.row_entries(r).collect())).collect();
        assert_eq!(m.with_rows_replaced(&rows), m);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn rows_replaced_rejects_unsorted_rows() {
        let m = sample();
        let _ = m.with_rows_replaced(&[(2, vec![]), (1, vec![])]);
    }

    #[test]
    fn from_row_builder_matches_triplets() {
        let m = sample();
        let rows: Vec<Vec<(usize, f32)>> = (0..3).map(|r| m.row_entries(r).collect()).collect();
        let rebuilt = CsrMatrix::from_row_builder(3, 3, |r, out| out.extend(rows[r].iter()));
        assert_eq!(rebuilt, m);
    }

    #[test]
    fn apply_rows_in_place_when_nnz_unchanged() {
        let mut m = sample();
        // Row 0 has nnz 2: same count, different columns and values.
        let patch = vec![(0usize, vec![(0usize, 7.0f32), (1, 8.0)])];
        let want = m.with_rows_replaced(&patch);
        assert_eq!(m.apply_rows(&patch), 1, "same-nnz patch must take the in-place path");
        assert_eq!(m, want);
    }

    #[test]
    fn apply_rows_mixes_in_place_and_splice() {
        let mut m = sample();
        // Row 0 shrinks (2 -> 1, spliced); row 1 keeps nnz 1 (in place);
        // row 2 grows (1 -> 2, spliced). The mix must equal one splice of
        // the full batch.
        let patch = vec![
            (0usize, vec![(2usize, 4.0f32)]),
            (1, vec![(2, 9.0)]),
            (2, vec![(0, 1.0), (1, 2.0)]),
        ];
        let want = m.with_rows_replaced(&patch);
        assert_eq!(m.apply_rows(&patch), 1, "exactly row 1 keeps its nnz");
        assert_eq!(m, want);
    }

    #[test]
    fn apply_rows_splices_on_nnz_change() {
        let mut m = sample();
        let patch = vec![(0usize, vec![(2usize, 4.0f32)]), (2, vec![(0, 1.0), (1, 2.0)])];
        let want = m.with_rows_replaced(&patch);
        assert_eq!(m.apply_rows(&patch), 0, "every row resized: nothing in place");
        assert_eq!(m, want);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn apply_rows_rejects_unsorted_rows() {
        let mut m = sample();
        // Both rows keep their nnz so the in-place path is reached.
        let _ = m.apply_rows(&[(2, vec![(0, 1.0)]), (1, vec![(1, 1.0)])]);
    }
}
