//! Dense row-major `f32` matrices.
//!
//! [`Matrix`] is the single dense container used throughout the workspace:
//! node-feature tables, GNN weights, logits, policy parameters and entropy
//! tables are all `Matrix` values. It is deliberately small — shape plus a
//! `Vec<f32>` — and all hot operations iterate row-major so the inner loops
//! stay contiguous.

use std::fmt;

use crate::parallel;

/// A dense row-major matrix of `f32` values.
///
/// Row `r` occupies `data[r * cols .. (r + 1) * cols]`. Vectors are
/// represented as `n x 1` (column) or `1 x n` (row) matrices; scalars as
/// `1 x 1`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a `1 x 1` matrix holding a single scalar.
    pub fn scalar(value: f32) -> Self {
        Self { rows: 1, cols: 1, data: vec![value] }
    }

    /// Builds an `n x 1` column vector from a slice.
    pub fn column(values: &[f32]) -> Self {
        Self { rows: values.len(), cols: 1, data: values.to_vec() }
    }

    /// Builds a `1 x n` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow of the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to element `(r, c)`.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] += v;
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        let cols = self.cols;
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copies column `c` into a new `Vec`.
    pub fn col_to_vec(&self, c: usize) -> Vec<f32> {
        debug_assert!(c < self.cols);
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// The single value of a `1 x 1` matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not `1 x 1`.
    pub fn scalar_value(&self) -> f32 {
        assert_eq!(
            self.shape(),
            (1, 1),
            "scalar_value called on a {}x{} matrix",
            self.rows,
            self.cols
        );
        self.data[0]
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            for (c, &v) in row.iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
        out
    }

    /// Dense matrix product `self * rhs`.
    ///
    /// Uses the cache-friendly `i-k-j` loop order: the inner loop walks both
    /// the output row and the `rhs` row contiguously. Output rows are
    /// partitioned over threads (see [`crate::parallel`]); every row is
    /// computed by exactly one thread with the serial per-row loop, so the
    /// result is bit-identical to single-threaded execution.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} * {}x{} dimension mismatch",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let _kernel = kernel_telemetry!("matmul", self.rows);
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let b_cols = rhs.cols;
        parallel::par_for_each_row(&mut out.data, b_cols, |i, out_row| {
            let a_row = self.row(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * b_cols..(k + 1) * b_cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        });
        out
    }

    /// `self^T * rhs` without materialising the transpose.
    ///
    /// Parallelised over chunks of output rows: each thread accumulates
    /// contributions for its own column range of `self`, walking the input
    /// rows in the same ascending order as the serial loop, so per-element
    /// accumulation order — and therefore the result — is bit-identical.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn: {}x{} ^T * {}x{} dimension mismatch",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let _kernel = kernel_telemetry!("matmul_tn", self.cols);
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        let (a_cols, b_cols) = (self.cols, rhs.cols);
        parallel::par_for_each_chunk(&mut out.data, b_cols, |range, chunk| {
            for r in 0..self.rows {
                let a_row = &self.data[r * a_cols..(r + 1) * a_cols];
                let b_row = &rhs.data[r * b_cols..(r + 1) * b_cols];
                for i in range.clone() {
                    let a = a_row[i];
                    if a == 0.0 {
                        continue;
                    }
                    let off = (i - range.start) * b_cols;
                    let out_row = &mut chunk[off..off + b_cols];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        });
        out
    }

    /// `self * rhs^T` without materialising the transpose.
    ///
    /// Parallelised over output rows; each dot product is computed whole on
    /// one thread, so the result is bit-identical to serial execution.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt: {}x{} * {}x{} ^T dimension mismatch",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let _kernel = kernel_telemetry!("matmul_nt", self.rows);
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        parallel::par_for_each_row(&mut out.data, rhs.rows, |i, out_row| {
            let a_row = self.row(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = rhs.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        });
        out
    }

    /// Element-wise sum into a new matrix.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a + b)
    }

    /// Element-wise difference into a new matrix.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product into a new matrix.
    pub fn mul_elem(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a * b)
    }

    /// Element-wise combination of two same-shaped matrices.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip(&self, rhs: &Matrix, mut f: impl FnMut(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "zip: shape mismatch {:?} vs {:?}",
            self.shape(),
            rhs.shape()
        );
        let data = self.data.iter().zip(&rhs.data).map(|(&a, &b)| f(a, b)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// In-place element-wise accumulate: `self += rhs`.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// In-place scaled accumulate: `self += alpha * rhs`.
    pub fn axpy(&mut self, alpha: f32, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, mut f: impl FnMut(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|&v| f(v)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Scales every element by `c`, returning a new matrix.
    pub fn scale(&self, c: f32) -> Matrix {
        self.map(|v| v * c)
    }

    /// Fills the matrix with zeros, keeping its allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (−∞ for an empty matrix).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (+∞ for an empty matrix).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Per-row sums as an `n x 1` column.
    pub fn row_sums(&self) -> Matrix {
        let data = self.rows_iter().map(|r| r.iter().sum()).collect();
        Matrix { rows: self.rows, cols: 1, data }
    }

    /// Per-row means as an `n x 1` column.
    pub fn row_means(&self) -> Matrix {
        let denom = self.cols.max(1) as f32;
        let data = self.rows_iter().map(|r| r.iter().sum::<f32>() / denom).collect();
        Matrix { rows: self.rows, cols: 1, data }
    }

    /// Index of the maximum element in each row.
    pub fn row_argmax(&self) -> Vec<usize> {
        self.rows_iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Horizontal concatenation `[self | rhs]`.
    ///
    /// # Panics
    /// Panics if row counts differ.
    pub fn hcat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "hcat: row count mismatch");
        let cols = self.cols + rhs.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(rhs.row(r));
        }
        Matrix { rows: self.rows, cols, data }
    }

    /// Vertical concatenation of `self` on top of `rhs`.
    ///
    /// # Panics
    /// Panics if column counts differ.
    pub fn vcat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "vcat: column count mismatch");
        let mut data = Vec::with_capacity((self.rows + rhs.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&rhs.data);
        Matrix { rows: self.rows + rhs.rows, cols: self.cols, data }
    }

    /// Gathers the given rows into a new matrix (rows may repeat).
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix { rows: indices.len(), cols: self.cols, data }
    }

    /// Row-wise numerically-stable softmax.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            softmax_slice(row);
        }
        out
    }

    /// Row-wise numerically-stable log-softmax.
    pub fn log_softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            log_softmax_slice(row);
        }
        out
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Maximum absolute element-wise difference against `rhs`.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f32 {
        assert_eq!(self.shape(), rhs.shape(), "max_abs_diff: shape mismatch");
        self.data.iter().zip(&rhs.data).map(|(&a, &b)| (a - b).abs()).fold(0.0, f32::max)
    }
}

/// Numerically-stable in-place softmax of one slice.
pub fn softmax_slice(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Numerically-stable in-place log-softmax of one slice.
pub fn log_softmax_slice(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
    for v in row.iter_mut() {
        *v = *v - max - log_sum;
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for r in 0..show_rows {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|v| format!("{v:>9.4}")).collect();
            let ellipsis = if self.cols > 8 { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ellipsis)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_bad_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let m = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        let id = Matrix::identity(3);
        assert_eq!(m.matmul(&id), m);
        assert_eq!(id.matmul(&m), m);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |r, c| (r + 2 * c) as f32);
        let b = Matrix::from_fn(4, 2, |r, c| (r * c) as f32 + 1.0);
        let via_t = a.transpose().matmul(&b);
        assert!(a.matmul_tn(&b).max_abs_diff(&via_t) < 1e-6);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_fn(2, 3, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(4, 3, |r, c| (2 * r + c) as f32);
        let via_t = a.matmul(&b.transpose());
        assert!(a.matmul_nt(&b).max_abs_diff(&via_t) < 1e-6);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1000.0]);
        let s = m.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
        }
        assert!(s.all_finite());
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let m = Matrix::from_vec(1, 4, vec![0.5, -0.5, 2.0, 0.0]);
        let ls = m.log_softmax_rows();
        let s = m.softmax_rows();
        for c in 0..4 {
            assert!((ls.get(0, c) - s.get(0, c).ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn hcat_vcat_shapes() {
        let a = Matrix::ones(2, 3);
        let b = Matrix::zeros(2, 2);
        let h = a.hcat(&b);
        assert_eq!(h.shape(), (2, 5));
        assert_eq!(h.get(0, 4), 0.0);
        assert_eq!(h.get(1, 2), 1.0);

        let c = Matrix::zeros(1, 3);
        let v = a.vcat(&c);
        assert_eq!(v.shape(), (3, 3));
        assert_eq!(v.get(2, 0), 0.0);
    }

    #[test]
    fn gather_rows_repeats() {
        let m = Matrix::from_fn(3, 2, |r, _| r as f32);
        let g = m.gather_rows(&[2, 0, 2]);
        assert_eq!(g.col_to_vec(0), vec![2.0, 0.0, 2.0]);
    }

    #[test]
    fn row_argmax_picks_max() {
        let m = Matrix::from_vec(2, 3, vec![0.1, 0.9, 0.5, 3.0, 2.0, 1.0]);
        assert_eq!(m.row_argmax(), vec![1, 0]);
    }

    #[test]
    fn reductions() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.sum(), 10.0);
        assert_eq!(m.mean(), 2.5);
        assert_eq!(m.max(), 4.0);
        assert_eq!(m.min(), 1.0);
        assert_eq!(m.row_sums().col_to_vec(0), vec![3.0, 7.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::ones(1, 3);
        let b = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn row_argmax_is_total_on_nan() {
        // NaN logits used to destabilise argmax through
        // `partial_cmp(..).unwrap_or(Equal)`: the comparator reported
        // spurious equality, so the pick depended on element order.
        // `total_cmp` ranks NaN above every number — deterministic, no
        // panic, and non-NaN rows behave exactly as before.
        let m = Matrix::from_vec(
            3,
            3,
            vec![
                1.0,
                f32::NAN,
                2.0, //
                f32::NAN,
                f32::NAN,
                f32::NAN, //
                3.0,
                2.0,
                1.0,
            ],
        );
        assert_eq!(m.row_argmax(), vec![1, 2, 0]);
    }
}
