//! Edge-case integration tests of the tensor substrate: degenerate
//! shapes, extreme values, and autograd corner cases that the unit tests'
//! happy paths don't reach.

use std::rc::Rc;

use graphrare_tensor::optim::{Adam, Optimizer, Sgd};
use graphrare_tensor::param::zero_grads;
use graphrare_tensor::{CsrMatrix, Matrix, Param, Tape};

#[test]
fn one_by_one_matrices_behave_like_scalars() {
    let a = Matrix::scalar(3.0);
    let b = Matrix::scalar(-2.0);
    assert_eq!(a.matmul(&b).scalar_value(), -6.0);
    assert_eq!(a.add(&b).scalar_value(), 1.0);
    assert_eq!(a.transpose(), a);
}

#[test]
fn empty_matrix_operations() {
    let m = Matrix::zeros(0, 5);
    assert_eq!(m.len(), 0);
    assert!(m.is_empty());
    assert_eq!(m.sum(), 0.0);
    assert_eq!(m.mean(), 0.0);
    assert_eq!(m.transpose().shape(), (5, 0));
    assert!(m.row_argmax().is_empty());
}

#[test]
fn single_column_softmax_is_one() {
    let m = Matrix::from_vec(3, 1, vec![5.0, -2.0, 0.0]);
    let s = m.softmax_rows();
    for r in 0..3 {
        assert_eq!(s.get(r, 0), 1.0);
    }
}

#[test]
fn extreme_logits_stay_finite() {
    let m = Matrix::from_vec(1, 3, vec![1e4, -1e4, 0.0]);
    let s = m.softmax_rows();
    assert!(s.all_finite());
    assert!((s.get(0, 0) - 1.0).abs() < 1e-6);
    let ls = m.log_softmax_rows();
    assert!(ls.all_finite());
}

#[test]
fn csr_empty_matrix() {
    let m = CsrMatrix::from_triplets(3, 3, &[]);
    assert_eq!(m.nnz(), 0);
    let x = Matrix::ones(3, 2);
    let y = m.spmm(&x);
    assert!(y.as_slice().iter().all(|&v| v == 0.0));
    assert!(m.is_symmetric(0.0));
}

#[test]
fn csr_zero_sized_dimensions() {
    let m = CsrMatrix::from_triplets(0, 0, &[]);
    assert_eq!(m.rows(), 0);
    let y = m.spmm(&Matrix::zeros(0, 4));
    assert_eq!(y.shape(), (0, 4));
}

#[test]
fn backward_twice_on_fresh_tapes_matches() {
    // Grad accumulation across tapes happens at the Param, not the tape.
    let p = Param::new("w", Matrix::ones(1, 2));
    for _ in 0..2 {
        let mut t = Tape::new();
        let v = t.param(&p);
        let s = t.sum_all(v);
        t.backward(s);
    }
    // Two backward passes accumulate 1 + 1 per element.
    assert_eq!(p.grad().as_slice(), &[2.0, 2.0]);
    p.zero_grad();
    assert_eq!(p.grad().as_slice(), &[0.0, 0.0]);
}

#[test]
fn unused_parameter_gets_no_gradient() {
    let used = Param::new("used", Matrix::ones(1, 1));
    let unused = Param::new("unused", Matrix::ones(1, 1));
    let mut t = Tape::new();
    let v = t.param(&used);
    let _orphan = t.param(&unused);
    let s = t.sum_all(v);
    t.backward(s);
    assert_eq!(used.grad().scalar_value(), 1.0);
    assert_eq!(unused.grad().scalar_value(), 0.0);
}

#[test]
fn diamond_dependency_accumulates_both_paths() {
    // y = relu(x) + tanh(x): both branches contribute to dx.
    let mut t = Tape::new();
    let x = t.leaf(Matrix::scalar(0.5));
    let a = t.relu(x);
    let b = t.tanh(x);
    let y = t.add(a, b);
    let s = t.sum_all(y);
    t.backward(s);
    let want = 1.0 + (1.0 - 0.5f32.tanh().powi(2));
    assert!((t.grad(x).unwrap().scalar_value() - want).abs() < 1e-5);
}

#[test]
fn deep_chain_gradient_is_product() {
    // 30 nested scale(0.9) ops: gradient = 0.9^30.
    let mut t = Tape::new();
    let x = t.leaf(Matrix::scalar(1.0));
    let mut v = x;
    for _ in 0..30 {
        v = t.scale(v, 0.9);
    }
    let s = t.sum_all(v);
    t.backward(s);
    let want = 0.9f32.powi(30);
    assert!((t.grad(x).unwrap().scalar_value() - want).abs() < 1e-6);
}

#[test]
fn spmm_through_two_tapes_is_consistent() {
    // The same CSR operator shared by Rc across tapes gives identical
    // results (no hidden state).
    let m = Rc::new(CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]));
    let x = Matrix::from_vec(2, 1, vec![3.0, 4.0]);
    let run = || {
        let mut t = Tape::new();
        let v = t.constant(x.clone());
        let y = t.spmm(m.clone(), v);
        t.value(y).clone()
    };
    assert_eq!(run(), run());
    assert_eq!(run().as_slice(), &[4.0, 3.0]);
}

#[test]
fn adam_handles_zero_gradients() {
    let p = Param::new("w", Matrix::ones(1, 2));
    let mut opt = Adam::new(0.1, 0.0);
    zero_grads(std::slice::from_ref(&p));
    opt.step(std::slice::from_ref(&p));
    // Zero gradient, zero decay: value unchanged.
    assert_eq!(p.value().as_slice(), &[1.0, 1.0]);
}

#[test]
fn sgd_weight_decay_pulls_to_zero_without_loss() {
    let p = Param::new("w", Matrix::scalar(1.0));
    let mut opt = Sgd::new(0.1, 0.0, 0.5);
    for _ in 0..50 {
        zero_grads(std::slice::from_ref(&p));
        opt.step(std::slice::from_ref(&p));
    }
    assert!(p.value().scalar_value() < 0.1);
}

#[test]
fn dropout_p_zero_is_identity() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(0);
    let mut t = Tape::new();
    let x = t.constant(Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32));
    let y = t.dropout(x, 0.0, &mut rng);
    assert_eq!(t.value(y), t.value(x));
}

#[test]
#[should_panic(expected = "loss must be a 1x1 scalar")]
fn backward_rejects_non_scalar_loss() {
    let mut t = Tape::new();
    let x = t.leaf(Matrix::ones(2, 2));
    t.backward(x);
}

#[test]
#[should_panic(expected = "dimension mismatch")]
fn matmul_shape_mismatch_panics() {
    let a = Matrix::ones(2, 3);
    let b = Matrix::ones(2, 3);
    let _ = a.matmul(&b);
}
