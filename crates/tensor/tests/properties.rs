//! Property-based tests of the tensor substrate: algebraic identities
//! that must hold for arbitrary inputs.

use proptest::prelude::*;

use graphrare_tensor::{CsrMatrix, Matrix, Tape};

fn arb_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

fn arb_square(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim).prop_flat_map(|n| {
        proptest::collection::vec(-5.0f32..5.0, n * n)
            .prop_map(move |data| Matrix::from_vec(n, n, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(m in arb_matrix(8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_left_right(m in arb_square(8)) {
        let id = Matrix::identity(m.rows());
        prop_assert!(m.matmul(&id).max_abs_diff(&m) < 1e-5);
        prop_assert!(id.matmul(&m).max_abs_diff(&m) < 1e-5);
    }

    #[test]
    fn matmul_transpose_fusions_agree(a in arb_matrix(6), b in arb_matrix(6)) {
        // a^T b defined when rows match.
        if a.rows() == b.rows() {
            let fused = a.matmul_tn(&b);
            let explicit = a.transpose().matmul(&b);
            prop_assert!(fused.max_abs_diff(&explicit) < 1e-4);
        }
        if a.cols() == b.cols() {
            let fused = a.matmul_nt(&b);
            let explicit = a.matmul(&b.transpose());
            prop_assert!(fused.max_abs_diff(&explicit) < 1e-4);
        }
    }

    #[test]
    fn softmax_rows_shift_invariant(m in arb_matrix(6), shift in -50.0f32..50.0) {
        let shifted = m.map(|v| v + shift);
        let a = m.softmax_rows();
        let b = shifted.softmax_rows();
        prop_assert!(a.max_abs_diff(&b) < 1e-4);
        for r in 0..a.rows() {
            let sum: f32 = a.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(a.row(r).iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    #[test]
    fn hcat_then_slice_recovers_parts(a in arb_matrix(5), b in arb_matrix(5)) {
        if a.rows() == b.rows() {
            let cat = a.hcat(&b);
            prop_assert_eq!(cat.cols(), a.cols() + b.cols());
            let mut tape = Tape::new();
            let v = tape.constant(cat);
            let left = tape.slice_cols(v, 0, a.cols());
            let right = tape.slice_cols(v, a.cols(), b.cols());
            prop_assert_eq!(tape.value(left), &a);
            prop_assert_eq!(tape.value(right), &b);
        }
    }

    #[test]
    fn csr_roundtrip_preserves_values(
        entries in proptest::collection::vec((0usize..6, 0usize..6, -5.0f32..5.0), 0..20)
    ) {
        // Deduplicate coordinates so expectations are unambiguous.
        let mut seen = std::collections::HashSet::new();
        let unique: Vec<(usize, usize, f32)> = entries
            .into_iter()
            .filter(|&(r, c, _)| seen.insert((r, c)))
            .filter(|&(_, _, v)| v != 0.0)
            .collect();
        let m = CsrMatrix::from_triplets(6, 6, &unique);
        for &(r, c, v) in &unique {
            prop_assert_eq!(m.get(r, c), Some(v));
        }
        prop_assert_eq!(m.nnz(), unique.len());
        // Dense roundtrip.
        let dense = m.to_dense();
        for &(r, c, v) in &unique {
            prop_assert_eq!(dense.get(r, c), v);
        }
    }

    #[test]
    fn spmm_linear_in_dense_argument(
        entries in proptest::collection::vec((0usize..5, 0usize..5, -3.0f32..3.0), 1..12),
        x in arb_matrix(5),
        alpha in -3.0f32..3.0,
    ) {
        if x.rows() == 5 {
            let m = CsrMatrix::from_triplets(5, 5, &entries);
            let lhs = m.spmm(&x.scale(alpha));
            let rhs = m.spmm(&x).scale(alpha);
            prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
        }
    }

    #[test]
    fn backward_of_sum_gives_ones(m in arb_matrix(6)) {
        let mut tape = Tape::new();
        let x = tape.leaf(m.clone());
        let s = tape.sum_all(x);
        tape.backward(s);
        let g = tape.grad(x).unwrap();
        prop_assert!(g.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn chain_rule_scale_compose(m in arb_matrix(5), a in -4.0f32..4.0, b in -4.0f32..4.0) {
        // d/dx sum(a * (b * x)) = a * b everywhere.
        let mut tape = Tape::new();
        let x = tape.leaf(m);
        let y = tape.scale(x, b);
        let z = tape.scale(y, a);
        let s = tape.sum_all(z);
        tape.backward(s);
        let g = tape.grad(x).unwrap();
        prop_assert!(g.as_slice().iter().all(|&v| (v - a * b).abs() < 1e-4));
    }

    #[test]
    fn log_softmax_rows_are_log_probabilities(m in arb_matrix(6)) {
        let ls = m.log_softmax_rows();
        for r in 0..ls.rows() {
            let sum: f32 = ls.row(r).iter().map(|&v| v.exp()).sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row {r}: {sum}");
            prop_assert!(ls.row(r).iter().all(|&v| v <= 1e-6));
        }
    }
}
