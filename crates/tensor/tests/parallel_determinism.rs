//! Bit-identity of the parallel kernels against serial execution.
//!
//! The contract of `graphrare_tensor::parallel` is that every wired
//! kernel produces *bitwise* identical output for any thread count:
//! partitioning is over output rows and the per-element accumulation
//! order never changes. These tests pin that contract with exact
//! (`==`) comparisons — no tolerances.

use graphrare_tensor::parallel::{self, with_threads};
use graphrare_tensor::{CsrMatrix, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic dense matrix with irregular values (non-commutative
/// rounding exposure: sums of these differ under reassociation).
fn dense(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0f32..1.0) * 1.7)
}

/// Deterministic sparse matrix with ~`density` fill.
fn sparse(rows: usize, cols: usize, density: f64, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triplets = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if rng.gen_bool(density) {
                triplets.push((r, c, rng.gen_range(-1.0f32..1.0)));
            }
        }
    }
    CsrMatrix::from_triplets(rows, cols, &triplets)
}

const THREAD_COUNTS: [usize; 4] = [2, 3, 4, 7];

#[test]
fn matmul_bit_identical_across_thread_counts() {
    let a = dense(37, 23, 1);
    let b = dense(23, 19, 2);
    let serial = with_threads(1, || a.matmul(&b));
    for t in THREAD_COUNTS {
        let par = with_threads(t, || a.matmul(&b));
        assert_eq!(serial, par, "matmul diverged at {t} threads");
    }
}

#[test]
fn matmul_tn_bit_identical_across_thread_counts() {
    let a = dense(29, 31, 3);
    let b = dense(29, 17, 4);
    let serial = with_threads(1, || a.matmul_tn(&b));
    for t in THREAD_COUNTS {
        let par = with_threads(t, || a.matmul_tn(&b));
        assert_eq!(serial, par, "matmul_tn diverged at {t} threads");
    }
}

#[test]
fn matmul_nt_bit_identical_across_thread_counts() {
    let a = dense(21, 27, 5);
    let b = dense(33, 27, 6);
    let serial = with_threads(1, || a.matmul_nt(&b));
    for t in THREAD_COUNTS {
        let par = with_threads(t, || a.matmul_nt(&b));
        assert_eq!(serial, par, "matmul_nt diverged at {t} threads");
    }
}

#[test]
fn spmm_bit_identical_across_thread_counts() {
    let s = sparse(41, 35, 0.15, 7);
    let x = dense(35, 13, 8);
    let serial = with_threads(1, || s.spmm(&x));
    for t in THREAD_COUNTS {
        let par = with_threads(t, || s.spmm(&x));
        assert_eq!(serial, par, "spmm diverged at {t} threads");
    }
}

#[test]
fn spmm_t_bit_identical_across_thread_counts() {
    let s = sparse(41, 35, 0.15, 9);
    let x = dense(41, 11, 10);
    let serial = with_threads(1, || s.spmm_t(&x));
    for t in THREAD_COUNTS {
        let par = with_threads(t, || s.spmm_t(&x));
        assert_eq!(serial, par, "spmm_t diverged at {t} threads");
    }
}

#[test]
fn spmv_bit_identical_across_thread_counts() {
    let s = sparse(53, 47, 0.2, 11);
    let v: Vec<f32> = {
        let mut rng = StdRng::seed_from_u64(12);
        (0..47).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
    };
    let serial = with_threads(1, || s.spmv(&v));
    for t in THREAD_COUNTS {
        let par = with_threads(t, || s.spmv(&v));
        assert_eq!(serial, par, "spmv diverged at {t} threads");
    }
}

#[test]
fn par_fold_min_max_matches_serial() {
    let values: Vec<f64> = {
        let mut rng = StdRng::seed_from_u64(13);
        (0..997).map(|_| rng.gen_range(-1e6f64..1e6)).collect()
    };
    let serial = with_threads(1, || fold_min_max(&values));
    for t in THREAD_COUNTS {
        let par = with_threads(t, || fold_min_max(&values));
        assert_eq!(serial, par, "par_fold diverged at {t} threads");
    }
}

fn fold_min_max(values: &[f64]) -> (f64, f64) {
    parallel::par_fold(
        values.len(),
        || (f64::INFINITY, f64::NEG_INFINITY),
        |(lo, hi), i| (lo.min(values[i]), hi.max(values[i])),
        |(l1, h1), (l2, h2)| (l1.min(l2), h1.max(h2)),
    )
}

#[test]
fn thread_count_exceeding_rows_is_safe() {
    let a = dense(3, 4, 14);
    let b = dense(4, 2, 15);
    let serial = with_threads(1, || a.matmul(&b));
    let over = with_threads(64, || a.matmul(&b));
    assert_eq!(serial, over);
}
