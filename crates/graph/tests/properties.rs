//! Property-based tests of the graph substrate: edit algebra, operator
//! stochasticity and traversal consistency on arbitrary graphs.

use proptest::prelude::*;

use graphrare_graph::{metrics, ops, traversal, Graph};
use graphrare_tensor::Matrix;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..16).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..40)
            .prop_map(move |pairs| Graph::from_edges(n, &pairs, Matrix::zeros(n, 2), vec![0; n], 1))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Edge count equals half the degree sum (handshake lemma).
    #[test]
    fn handshake_lemma(g in arb_graph()) {
        let degree_sum: usize = (0..g.num_nodes()).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    /// Adjacency is symmetric and edges() lists each edge exactly once.
    #[test]
    fn adjacency_symmetry(g in arb_graph()) {
        for v in 0..g.num_nodes() {
            for u in g.neighbors(v) {
                prop_assert!(g.has_edge(u, v));
            }
        }
        let listed = g.edge_vec();
        let mut dedup = listed.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(listed.len(), dedup.len());
        prop_assert_eq!(listed.len(), g.num_edges());
    }

    /// The GCN operator has self-loop entries everywhere and is symmetric.
    #[test]
    fn gcn_norm_structure(g in arb_graph()) {
        let m = ops::gcn_norm(&g);
        prop_assert!(m.is_symmetric(1e-5));
        for v in 0..g.num_nodes() {
            prop_assert!(m.get(v, v).is_some(), "missing self-loop at {v}");
        }
        prop_assert_eq!(m.nnz(), 2 * g.num_edges() + g.num_nodes());
    }

    /// Row-normalised adjacency rows sum to 1 (or are empty).
    #[test]
    fn row_norm_is_row_stochastic(g in arb_graph()) {
        let m = ops::row_norm_adj(&g);
        for v in 0..g.num_nodes() {
            let s: f32 = m.row_entries(v).map(|(_, w)| w).sum();
            if g.degree(v) > 0 {
                prop_assert!((s - 1.0).abs() < 1e-5, "row {v}: {s}");
            } else {
                prop_assert_eq!(m.row_nnz(v), 0);
            }
        }
    }

    /// Two-hop rows never include the node itself or its one-hop
    /// neighbours, and every listed node really is at distance two.
    #[test]
    fn two_hop_is_distance_two(g in arb_graph()) {
        let m = ops::row_norm_two_hop(&g);
        for v in 0..g.num_nodes() {
            let hops = traversal::k_hop_neighbors(&g, v, 2);
            let at_two: std::collections::BTreeSet<usize> =
                hops.iter().filter(|&&(_, d)| d == 2).map(|&(u, _)| u).collect();
            let listed: std::collections::BTreeSet<usize> =
                m.row_entries(v).map(|(u, _)| u).collect();
            prop_assert_eq!(listed, at_two, "node {}", v);
        }
    }

    /// BFS distances are consistent: remote ring ∪ one-hop ∪ {self} and
    /// unreachable nodes partition V.
    #[test]
    fn bfs_partition(g in arb_graph()) {
        let n = g.num_nodes();
        let v = 0usize;
        let hops = traversal::k_hop_neighbors(&g, v, n);
        let mut seen = std::collections::HashSet::new();
        seen.insert(v);
        for &(u, d) in &hops {
            prop_assert!(d >= 1 && d <= n);
            prop_assert!(seen.insert(u), "node {u} visited twice");
        }
        // Connected component of v must match BFS reach.
        let comps = traversal::connected_components(&g);
        let reach: std::collections::HashSet<usize> =
            (0..n).filter(|&u| comps[u] == comps[v]).collect();
        prop_assert_eq!(seen, reach);
    }

    /// Removing all edges of a node brings homophily metrics along
    /// gracefully (no panics, still in range).
    #[test]
    fn edits_keep_metrics_in_range(g in arb_graph(), target in 0usize..16) {
        let mut g = g;
        let n = g.num_nodes();
        let v = target % n;
        let nbrs = g.neighbor_vec(v);
        for u in nbrs {
            g.remove_edge(v, u);
        }
        prop_assert_eq!(g.degree(v), 0);
        let h = metrics::homophily_ratio(&g);
        prop_assert!((0.0..=1.0).contains(&h));
        let stats = metrics::degree_stats(&g);
        prop_assert_eq!(stats.min, 0);
    }
}
