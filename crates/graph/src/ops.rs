//! Propagation operators derived from a [`Graph`]'s topology.
//!
//! GNN layers do not consume adjacency directly; they consume normalised
//! sparse operators (`Â`, `D⁻¹A`, two-hop masks, attention neighbour
//! lists). This module builds those operators once per topology and the GNN
//! crate caches them for the lifetime of one graph snapshot.

use graphrare_tensor::{AdjList, CsrMatrix};

use crate::graph::Graph;

/// Reusable scratch for the `*_into` operator builders. Holding one of
/// these across topology updates lets the dense-regime operator refresh
/// rebuild every cached operator without heap allocation once the
/// buffers have warmed up to the graph's size.
#[derive(Clone, Debug, Default)]
pub struct OperatorScratch {
    /// Per-row `(col, value)` assembly buffer shared by all CSR builders.
    row: Vec<(usize, f32)>,
    /// Node marks for the two-hop ring walk (always reset to `false`).
    seen: Vec<bool>,
    /// Two-hop ring discovery buffer.
    ring: Vec<usize>,
}

/// `d̂_v^{-1/2} = 1/sqrt(deg(v) + 1)` — the per-node factor of the GCN
/// normalisation. Public so callers that maintain degrees incrementally
/// (`GraphTensors`) can patch a cached vector instead of re-deriving it.
#[inline]
pub fn inv_sqrt_degree(g: &Graph, v: usize) -> f32 {
    1.0 / ((g.degree(v) + 1) as f32).sqrt()
}

#[inline]
fn inv_sqrt_deg(g: &Graph, v: usize) -> f32 {
    inv_sqrt_degree(g, v)
}

/// The full `d̂^{-1/2}` vector — the from-scratch degree pass [`gcn_norm`]
/// runs when no cached copy is supplied.
pub fn inv_sqrt_degrees(g: &Graph) -> Vec<f32> {
    (0..g.num_nodes()).map(|v| inv_sqrt_deg(g, v)).collect()
}

/// One row of [`gcn_norm`], sorted by column: the diagonal self-loop entry
/// plus one entry per neighbour, each `1/sqrt(d̂_v d̂_u)`. Exposed so
/// incremental topology updates can rebuild only the rows an edit touched;
/// by construction the row equals the full builder's.
pub fn gcn_norm_row(g: &Graph, v: usize) -> Vec<(usize, f32)> {
    let iv = inv_sqrt_deg(g, v);
    let mut row = Vec::with_capacity(g.degree(v) + 1);
    let mut self_placed = false;
    for u in g.neighbors(v) {
        if !self_placed && u > v {
            row.push((v, iv * iv));
            self_placed = true;
        }
        row.push((u, iv * inv_sqrt_deg(g, u)));
    }
    if !self_placed {
        row.push((v, iv * iv));
    }
    row
}

/// [`gcn_norm_row`] fed by a caller-supplied `d̂^{-1/2}` vector (must
/// equal [`inv_sqrt_degrees`] of `g`), so row patches reuse the cached
/// degree factors instead of recomputing one per entry.
pub fn gcn_norm_row_with_inv(g: &Graph, inv: &[f32], v: usize) -> Vec<(usize, f32)> {
    let mut row = Vec::with_capacity(g.degree(v) + 1);
    gcn_fill_row_with_inv(g, inv, v, &mut row);
    row
}

/// Shared row-assembly body for [`gcn_norm_row_with_inv`],
/// [`gcn_norm_with_inv`], and [`gcn_norm_with_inv_into`] — one
/// implementation, so full, row, and in-place builds stay bit-identical.
#[inline]
fn gcn_fill_row_with_inv(g: &Graph, inv: &[f32], v: usize, out: &mut Vec<(usize, f32)>) {
    let iv = inv[v];
    let mut self_placed = false;
    for &u in g.neighbor_slice(v) {
        let u = u as usize;
        if !self_placed && u > v {
            out.push((v, iv * iv));
            self_placed = true;
        }
        out.push((u, iv * inv[u]));
    }
    if !self_placed {
        out.push((v, iv * iv));
    }
}

/// Symmetric GCN normalisation `D̂^{-1/2} (A + I) D̂^{-1/2}` with self-loops
/// (Kipf & Welling 2017), the operator used by GCN and as the default
/// propagation matrix elsewhere.
///
/// The full build precomputes `d̂^{-1/2}` per node (the same f32 expression
/// [`gcn_norm_row`] evaluates per entry, so entries stay bit-identical) and
/// assembles rows directly into CSR storage.
pub fn gcn_norm(g: &Graph) -> CsrMatrix {
    gcn_norm_with_inv(g, &inv_sqrt_degrees(g))
}

/// [`gcn_norm`] fed by a caller-supplied `d̂^{-1/2}` vector (must equal
/// [`inv_sqrt_degrees`] of `g`), skipping the from-scratch degree pass —
/// `GraphTensors` maintains that vector incrementally across edits.
pub fn gcn_norm_with_inv(g: &Graph, inv: &[f32]) -> CsrMatrix {
    let mut out = CsrMatrix::empty();
    gcn_norm_with_inv_into(g, inv, &mut out, &mut OperatorScratch::default());
    out
}

/// [`gcn_norm_with_inv`] rebuilt **in place** into `out`, reusing its CSR
/// storage and the caller's scratch — allocation-free once warmed up.
pub fn gcn_norm_with_inv_into(
    g: &Graph,
    inv: &[f32],
    out: &mut CsrMatrix,
    scratch: &mut OperatorScratch,
) {
    let n = g.num_nodes();
    debug_assert_eq!(inv.len(), n, "inv_sqrt vector length mismatch");
    out.rebuild_from_row_builder(n, n, &mut scratch.row, |v, row| {
        gcn_fill_row_with_inv(g, inv, v, row);
    });
}

/// One row of [`row_norm_adj`], sorted by column (empty for isolated
/// nodes). Row-rebuild counterpart used by incremental topology updates.
pub fn row_norm_adj_row(g: &Graph, v: usize) -> Vec<(usize, f32)> {
    let deg = g.degree(v);
    if deg == 0 {
        return Vec::new();
    }
    let w = 1.0 / deg as f32;
    g.neighbors(v).map(|u| (u, w)).collect()
}

/// Row-normalised adjacency `D^{-1} A` (mean aggregation without the ego
/// node), used by GraphSAGE's mean aggregator and by H2GCN's hop operators.
/// Isolated nodes get an all-zero row.
pub fn row_norm_adj(g: &Graph) -> CsrMatrix {
    let mut out = CsrMatrix::empty();
    row_norm_adj_into(g, &mut out, &mut OperatorScratch::default());
    out
}

/// [`row_norm_adj`] rebuilt **in place** into `out`, reusing its CSR
/// storage and the caller's scratch — allocation-free once warmed up.
pub fn row_norm_adj_into(g: &Graph, out: &mut CsrMatrix, scratch: &mut OperatorScratch) {
    let n = g.num_nodes();
    out.rebuild_from_row_builder(n, n, &mut scratch.row, |v, row| {
        let deg = g.degree(v);
        if deg == 0 {
            return;
        }
        let w = 1.0 / deg as f32;
        row.extend(g.neighbor_slice(v).iter().map(|&u| (u as usize, w)));
    });
}

/// Unnormalised adjacency `A` as a CSR matrix.
pub fn adjacency(g: &Graph) -> CsrMatrix {
    let n = g.num_nodes();
    CsrMatrix::from_row_builder(n, n, |v, out| {
        out.extend(g.neighbor_slice(v).iter().map(|&u| (u as usize, 1.0)));
    })
}

/// One row of [`row_norm_two_hop`], sorted by column. Row-rebuild
/// counterpart used by incremental topology updates.
pub fn row_norm_two_hop_row(g: &Graph, v: usize) -> Vec<(usize, f32)> {
    use std::collections::BTreeSet;
    let mut ring: BTreeSet<usize> = BTreeSet::new();
    for u in g.neighbors(v) {
        for w in g.neighbors(u) {
            ring.insert(w);
        }
    }
    ring.remove(&v);
    for u in g.neighbors(v) {
        ring.remove(&u);
    }
    if ring.is_empty() {
        return Vec::new();
    }
    let w = 1.0 / ring.len() as f32;
    ring.into_iter().map(|r| (r, w)).collect()
}

/// Strict two-hop neighbourhood operator used by H2GCN: `N_2(v)` contains
/// nodes at distance exactly 2 (neighbours-of-neighbours, excluding `v` and
/// its one-hop neighbours), row-normalised.
pub fn row_norm_two_hop(g: &Graph) -> CsrMatrix {
    let mut out = CsrMatrix::empty();
    row_norm_two_hop_into(g, &mut out, &mut OperatorScratch::default());
    out
}

/// [`row_norm_two_hop`] rebuilt **in place** into `out`, reusing its CSR
/// storage and the caller's scratch — allocation-free once warmed up.
pub fn row_norm_two_hop_into(g: &Graph, out: &mut CsrMatrix, scratch: &mut OperatorScratch) {
    let n = g.num_nodes();
    let OperatorScratch { row, seen, ring } = scratch;
    // Marks are reset to `false` after every row, so a warm buffer only
    // needs resizing when the node count changed.
    if seen.len() != n {
        seen.clear();
        seen.resize(n, false);
    }
    out.rebuild_from_row_builder(n, n, row, |v, out_row| {
        ring.clear();
        seen[v] = true;
        for u in g.neighbors(v) {
            seen[u] = true;
        }
        for u in g.neighbors(v) {
            for w in g.neighbors(u) {
                if !seen[w] {
                    seen[w] = true;
                    ring.push(w);
                }
            }
        }
        if !ring.is_empty() {
            // Discovery order is not sorted; CSR rows must be.
            ring.sort_unstable();
            let w = 1.0 / ring.len() as f32;
            out_row.extend(ring.iter().map(|&r| (r, w)));
        }
        // Reset the scratch marks.
        seen[v] = false;
        for u in g.neighbors(v) {
            seen[u] = false;
        }
        for &r in ring.iter() {
            seen[r] = false;
        }
    });
}

/// Powers-of-adjacency operator `Â^k` built by repeated sparsified
/// squaring on the GCN-normalised matrix; used by MixHop. Entries below
/// `threshold` are dropped to keep the operator sparse.
pub fn gcn_norm_power(g: &Graph, k: usize, threshold: f32) -> CsrMatrix {
    let base = gcn_norm(g);
    if k <= 1 {
        return base;
    }
    let n = g.num_nodes();
    let mut current = base.clone();
    for _ in 1..k {
        // current = current * base, kept sparse row by row.
        let mut triplets = Vec::new();
        let mut acc = vec![0f32; n];
        let mut touched: Vec<usize> = Vec::new();
        for r in 0..n {
            for (mid, w1) in current.row_entries(r) {
                for (c, w2) in base.row_entries(mid) {
                    if acc[c] == 0.0 {
                        touched.push(c);
                    }
                    acc[c] += w1 * w2;
                }
            }
            for &c in &touched {
                if acc[c].abs() >= threshold {
                    triplets.push((r, c, acc[c]));
                }
                acc[c] = 0.0;
            }
            touched.clear();
        }
        current = CsrMatrix::from_triplets(n, n, &triplets);
    }
    current
}

/// One node's attention list (`{v} ∪ N_1(v)`, self first) as used by
/// [`attention_lists`]. Row-rebuild counterpart for incremental updates.
pub fn attention_row(g: &Graph, v: usize) -> Vec<usize> {
    std::iter::once(v).chain(g.neighbors(v)).collect()
}

/// Neighbour lists with self-loops for GAT attention: node `i` attends over
/// `{i} ∪ N_1(i)`.
pub fn attention_lists(g: &Graph) -> AdjList {
    let mut out = AdjList::from_neighbor_lists(&[]);
    attention_lists_into(g, &mut out);
    out
}

/// [`attention_lists`] rebuilt **in place** into `out`, reusing its
/// offset/target storage — allocation-free once warmed up.
pub fn attention_lists_into(g: &Graph, out: &mut AdjList) {
    out.rebuild_from_row_builder(g.num_nodes(), |v, targets| {
        targets.push(v);
        targets.extend(g.neighbor_slice(v).iter().map(|&u| u as usize));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrare_tensor::Matrix;

    fn triangle_plus_tail() -> Graph {
        // Triangle 0-1-2 plus edge 2-3.
        Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)], Matrix::zeros(4, 1), vec![0; 4], 1)
    }

    #[test]
    fn gcn_norm_rows_and_symmetry() {
        let g = triangle_plus_tail();
        let m = gcn_norm(&g);
        assert!(m.is_symmetric(1e-6));
        // Self-loop entry for node 3: 1/(d+1) = 1/2.
        assert!((m.get(3, 3).unwrap() - 0.5).abs() < 1e-6);
        // Entry (0,1): 1/sqrt(3)/sqrt(3) = 1/3.
        assert!((m.get(0, 1).unwrap() - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn row_norm_rows_sum_to_one() {
        let g = triangle_plus_tail();
        let m = row_norm_adj(&g);
        for r in 0..4 {
            let s: f32 = m.row_entries(r).map(|(_, v)| v).sum();
            assert!((s - 1.0).abs() < 1e-6, "row {r} sums to {s}");
        }
        // No self entries.
        for r in 0..4 {
            assert_eq!(m.get(r, r), None);
        }
    }

    #[test]
    fn row_norm_isolated_node_zero_row() {
        let g = Graph::from_edges(3, &[(0, 1)], Matrix::zeros(3, 1), vec![0; 3], 1);
        let m = row_norm_adj(&g);
        assert_eq!(m.row_nnz(2), 0);
    }

    #[test]
    fn two_hop_excludes_self_and_one_hop() {
        let g = triangle_plus_tail();
        let m = row_norm_two_hop(&g);
        // Node 3's two-hop set is {0, 1} (via 2).
        let entries: Vec<usize> = m.row_entries(3).map(|(c, _)| c).collect();
        assert_eq!(entries, vec![0, 1]);
        // Node 0 is adjacent to 1,2; two-hop is {3} (via 2).
        let entries0: Vec<usize> = m.row_entries(0).map(|(c, _)| c).collect();
        assert_eq!(entries0, vec![3]);
    }

    #[test]
    fn power_one_is_base() {
        let g = triangle_plus_tail();
        let p1 = gcn_norm_power(&g, 1, 0.0);
        assert_eq!(p1, gcn_norm(&g));
    }

    #[test]
    fn power_two_matches_dense_square() {
        let g = triangle_plus_tail();
        let base = gcn_norm(&g).to_dense();
        let want = base.matmul(&base);
        let got = gcn_norm_power(&g, 2, 0.0).to_dense();
        assert!(got.max_abs_diff(&want) < 1e-5);
    }

    #[test]
    fn row_builders_match_full_builders() {
        let g = triangle_plus_tail();
        let gcn = gcn_norm(&g);
        let row = row_norm_adj(&g);
        let two = row_norm_two_hop(&g);
        let attn = attention_lists(&g);
        for v in 0..g.num_nodes() {
            let gcn_row: Vec<(usize, f32)> = gcn.row_entries(v).collect();
            assert_eq!(gcn_norm_row(&g, v), gcn_row, "gcn row {v}");
            let rn_row: Vec<(usize, f32)> = row.row_entries(v).collect();
            assert_eq!(row_norm_adj_row(&g, v), rn_row, "row-norm row {v}");
            let th_row: Vec<(usize, f32)> = two.row_entries(v).collect();
            assert_eq!(row_norm_two_hop_row(&g, v), th_row, "two-hop row {v}");
            assert_eq!(attention_row(&g, v), attn.neighbors(v), "attention row {v}");
        }
    }

    #[test]
    fn with_inv_variants_match_base_builders() {
        let g = triangle_plus_tail();
        let inv = inv_sqrt_degrees(&g);
        for (v, &iv) in inv.iter().enumerate() {
            assert_eq!(iv.to_bits(), inv_sqrt_degree(&g, v).to_bits());
        }
        assert_eq!(gcn_norm_with_inv(&g, &inv), gcn_norm(&g));
        for v in 0..g.num_nodes() {
            assert_eq!(gcn_norm_row_with_inv(&g, &inv, v), gcn_norm_row(&g, v), "row {v}");
        }
    }

    #[test]
    fn into_builders_match_fresh_builds_on_warm_buffers() {
        let a = triangle_plus_tail();
        // A different topology the warm buffers were first sized for.
        let b = Graph::from_edges(5, &[(0, 4), (1, 3), (2, 4)], Matrix::zeros(5, 1), vec![0; 5], 1);
        let mut scratch = OperatorScratch::default();
        let mut gcn = CsrMatrix::empty();
        let mut row = CsrMatrix::empty();
        let mut two = CsrMatrix::empty();
        let mut attn = AdjList::from_neighbor_lists(&[]);
        for g in [&b, &a, &b] {
            let inv = inv_sqrt_degrees(g);
            gcn_norm_with_inv_into(g, &inv, &mut gcn, &mut scratch);
            row_norm_adj_into(g, &mut row, &mut scratch);
            row_norm_two_hop_into(g, &mut two, &mut scratch);
            attention_lists_into(g, &mut attn);
            assert_eq!(gcn, gcn_norm(g));
            assert_eq!(row, row_norm_adj(g));
            assert_eq!(two, row_norm_two_hop(g));
            assert_eq!(attn, attention_lists(g));
        }
    }

    #[test]
    fn attention_lists_include_self_first() {
        let g = triangle_plus_tail();
        let al = attention_lists(&g);
        assert_eq!(al.neighbors(3), &[3, 2]);
        assert_eq!(al.neighbors(0), &[0, 1, 2]);
    }
}
