//! Propagation operators derived from a [`Graph`]'s topology.
//!
//! GNN layers do not consume adjacency directly; they consume normalised
//! sparse operators (`Â`, `D⁻¹A`, two-hop masks, attention neighbour
//! lists). This module builds those operators once per topology and the GNN
//! crate caches them for the lifetime of one graph snapshot.

use graphrare_tensor::{AdjList, CsrMatrix};

use crate::graph::Graph;

/// Symmetric GCN normalisation `D̂^{-1/2} (A + I) D̂^{-1/2}` with self-loops
/// (Kipf & Welling 2017), the operator used by GCN and as the default
/// propagation matrix elsewhere.
pub fn gcn_norm(g: &Graph) -> CsrMatrix {
    let n = g.num_nodes();
    let mut triplets = Vec::with_capacity(2 * g.num_edges() + n);
    let inv_sqrt: Vec<f32> = (0..n).map(|v| 1.0 / ((g.degree(v) + 1) as f32).sqrt()).collect();
    for v in 0..n {
        triplets.push((v, v, inv_sqrt[v] * inv_sqrt[v]));
        for u in g.neighbors(v) {
            triplets.push((v, u, inv_sqrt[v] * inv_sqrt[u]));
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

/// Row-normalised adjacency `D^{-1} A` (mean aggregation without the ego
/// node), used by GraphSAGE's mean aggregator and by H2GCN's hop operators.
/// Isolated nodes get an all-zero row.
pub fn row_norm_adj(g: &Graph) -> CsrMatrix {
    let n = g.num_nodes();
    let mut triplets = Vec::with_capacity(2 * g.num_edges());
    for v in 0..n {
        let deg = g.degree(v);
        if deg == 0 {
            continue;
        }
        let w = 1.0 / deg as f32;
        for u in g.neighbors(v) {
            triplets.push((v, u, w));
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

/// Unnormalised adjacency `A` as a CSR matrix.
pub fn adjacency(g: &Graph) -> CsrMatrix {
    let n = g.num_nodes();
    let mut triplets = Vec::with_capacity(2 * g.num_edges());
    for v in 0..n {
        for u in g.neighbors(v) {
            triplets.push((v, u, 1.0));
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

/// Strict two-hop neighbourhood operator used by H2GCN: `N_2(v)` contains
/// nodes at distance exactly 2 (neighbours-of-neighbours, excluding `v` and
/// its one-hop neighbours), row-normalised.
pub fn row_norm_two_hop(g: &Graph) -> CsrMatrix {
    let n = g.num_nodes();
    let mut triplets = Vec::new();
    let mut seen = vec![false; n];
    let mut ring: Vec<usize> = Vec::new();
    for v in 0..n {
        ring.clear();
        seen[v] = true;
        for u in g.neighbors(v) {
            seen[u] = true;
        }
        for u in g.neighbors(v) {
            for w in g.neighbors(u) {
                if !seen[w] {
                    seen[w] = true;
                    ring.push(w);
                }
            }
        }
        if !ring.is_empty() {
            let w = 1.0 / ring.len() as f32;
            for &r in &ring {
                triplets.push((v, r, w));
            }
        }
        // Reset the scratch marks.
        seen[v] = false;
        for u in g.neighbors(v) {
            seen[u] = false;
        }
        for &r in &ring {
            seen[r] = false;
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

/// Powers-of-adjacency operator `Â^k` built by repeated sparsified
/// squaring on the GCN-normalised matrix; used by MixHop. Entries below
/// `threshold` are dropped to keep the operator sparse.
pub fn gcn_norm_power(g: &Graph, k: usize, threshold: f32) -> CsrMatrix {
    let base = gcn_norm(g);
    if k <= 1 {
        return base;
    }
    let n = g.num_nodes();
    let mut current = base.clone();
    for _ in 1..k {
        // current = current * base, kept sparse row by row.
        let mut triplets = Vec::new();
        let mut acc = vec![0f32; n];
        let mut touched: Vec<usize> = Vec::new();
        for r in 0..n {
            for (mid, w1) in current.row_entries(r) {
                for (c, w2) in base.row_entries(mid) {
                    if acc[c] == 0.0 {
                        touched.push(c);
                    }
                    acc[c] += w1 * w2;
                }
            }
            for &c in &touched {
                if acc[c].abs() >= threshold {
                    triplets.push((r, c, acc[c]));
                }
                acc[c] = 0.0;
            }
            touched.clear();
        }
        current = CsrMatrix::from_triplets(n, n, &triplets);
    }
    current
}

/// Neighbour lists with self-loops for GAT attention: node `i` attends over
/// `{i} ∪ N_1(i)`.
pub fn attention_lists(g: &Graph) -> AdjList {
    let lists: Vec<Vec<usize>> =
        (0..g.num_nodes()).map(|v| std::iter::once(v).chain(g.neighbors(v)).collect()).collect();
    AdjList::from_neighbor_lists(&lists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrare_tensor::Matrix;

    fn triangle_plus_tail() -> Graph {
        // Triangle 0-1-2 plus edge 2-3.
        Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)], Matrix::zeros(4, 1), vec![0; 4], 1)
    }

    #[test]
    fn gcn_norm_rows_and_symmetry() {
        let g = triangle_plus_tail();
        let m = gcn_norm(&g);
        assert!(m.is_symmetric(1e-6));
        // Self-loop entry for node 3: 1/(d+1) = 1/2.
        assert!((m.get(3, 3).unwrap() - 0.5).abs() < 1e-6);
        // Entry (0,1): 1/sqrt(3)/sqrt(3) = 1/3.
        assert!((m.get(0, 1).unwrap() - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn row_norm_rows_sum_to_one() {
        let g = triangle_plus_tail();
        let m = row_norm_adj(&g);
        for r in 0..4 {
            let s: f32 = m.row_entries(r).map(|(_, v)| v).sum();
            assert!((s - 1.0).abs() < 1e-6, "row {r} sums to {s}");
        }
        // No self entries.
        for r in 0..4 {
            assert_eq!(m.get(r, r), None);
        }
    }

    #[test]
    fn row_norm_isolated_node_zero_row() {
        let g = Graph::from_edges(3, &[(0, 1)], Matrix::zeros(3, 1), vec![0; 3], 1);
        let m = row_norm_adj(&g);
        assert_eq!(m.row_nnz(2), 0);
    }

    #[test]
    fn two_hop_excludes_self_and_one_hop() {
        let g = triangle_plus_tail();
        let m = row_norm_two_hop(&g);
        // Node 3's two-hop set is {0, 1} (via 2).
        let entries: Vec<usize> = m.row_entries(3).map(|(c, _)| c).collect();
        assert_eq!(entries, vec![0, 1]);
        // Node 0 is adjacent to 1,2; two-hop is {3} (via 2).
        let entries0: Vec<usize> = m.row_entries(0).map(|(c, _)| c).collect();
        assert_eq!(entries0, vec![3]);
    }

    #[test]
    fn power_one_is_base() {
        let g = triangle_plus_tail();
        let p1 = gcn_norm_power(&g, 1, 0.0);
        assert_eq!(p1, gcn_norm(&g));
    }

    #[test]
    fn power_two_matches_dense_square() {
        let g = triangle_plus_tail();
        let base = gcn_norm(&g).to_dense();
        let want = base.matmul(&base);
        let got = gcn_norm_power(&g, 2, 0.0).to_dense();
        assert!(got.max_abs_diff(&want) < 1e-5);
    }

    #[test]
    fn attention_lists_include_self_first() {
        let g = triangle_plus_tail();
        let al = attention_lists(&g);
        assert_eq!(al.neighbors(3), &[3, 2]);
        assert_eq!(al.neighbors(0), &[0, 1, 2]);
    }
}
