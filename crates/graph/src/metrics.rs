//! Graph-level statistics: homophily ratio (Eq. 1) and degree summaries.

use crate::graph::Graph;

/// Number of edges whose endpoints share a label — the numerator of
/// [`homophily_ratio`]. Exposed so incremental topology trackers can seed
/// a counter once and update it per edit instead of rescanning every edge.
pub fn same_label_edges(g: &Graph) -> usize {
    g.edges().filter(|&(u, v)| g.label(u) == g.label(v)).count()
}

/// Edge homophily ratio `H` (Eq. 1 of the paper, following Zhu et al. 2020):
/// the fraction of edges whose endpoints share a label. Returns `1.0` for a
/// graph without edges (the vacuous case).
pub fn homophily_ratio(g: &Graph) -> f64 {
    if g.num_edges() == 0 {
        return 1.0;
    }
    same_label_edges(g) as f64 / g.num_edges() as f64
}

/// Node homophily: mean over nodes of the fraction of same-label
/// neighbours (nodes without neighbours are skipped). Reported alongside
/// edge homophily in the heterophily literature; used by tests to
/// cross-check generators.
pub fn node_homophily(g: &Graph) -> f64 {
    let mut total = 0.0;
    let mut counted = 0usize;
    for v in 0..g.num_nodes() {
        let deg = g.degree(v);
        if deg == 0 {
            continue;
        }
        let same = g.neighbors(v).filter(|&u| g.label(u) == g.label(v)).count();
        total += same as f64 / deg as f64;
        counted += 1;
    }
    if counted == 0 {
        1.0
    } else {
        total / counted as f64
    }
}

/// Per-class node counts.
pub fn class_counts(g: &Graph) -> Vec<usize> {
    let mut counts = vec![0usize; g.num_classes()];
    for &l in g.labels() {
        counts[l] += 1;
    }
    counts
}

/// Summary of a degree distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
}

/// Degree distribution summary of `g`.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let n = g.num_nodes();
    if n == 0 {
        return DegreeStats { min: 0, max: 0, mean: 0.0 };
    }
    let mut min = usize::MAX;
    let mut max = 0;
    for v in 0..n {
        let d = g.degree(v);
        min = min.min(d);
        max = max.max(d);
    }
    DegreeStats { min, max, mean: g.mean_degree() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrare_tensor::Matrix;

    fn labeled(edges: &[(usize, usize)], labels: Vec<usize>, classes: usize) -> Graph {
        let n = labels.len();
        Graph::from_edges(n, edges, Matrix::zeros(n, 1), labels, classes)
    }

    #[test]
    fn homophily_all_same_label() {
        let g = labeled(&[(0, 1), (1, 2)], vec![0, 0, 0], 1);
        assert_eq!(homophily_ratio(&g), 1.0);
        assert_eq!(node_homophily(&g), 1.0);
    }

    #[test]
    fn homophily_fully_heterophilic() {
        let g = labeled(&[(0, 1), (1, 2)], vec![0, 1, 0], 2);
        assert_eq!(homophily_ratio(&g), 0.0);
        assert_eq!(node_homophily(&g), 0.0);
    }

    #[test]
    fn homophily_mixed() {
        // Edges: (0,1) same, (1,2) diff, (2,3) diff, (0,3) diff => 0.25.
        let g = labeled(&[(0, 1), (1, 2), (2, 3), (0, 3)], vec![0, 0, 1, 2], 3);
        assert!((homophily_ratio(&g) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_vacuous() {
        let g = labeled(&[], vec![0, 1], 2);
        assert_eq!(homophily_ratio(&g), 1.0);
        assert_eq!(node_homophily(&g), 1.0);
    }

    #[test]
    fn class_counts_tally() {
        let g = labeled(&[], vec![0, 1, 1, 2, 2, 2], 3);
        assert_eq!(class_counts(&g), vec![1, 2, 3]);
    }

    #[test]
    fn degree_stats_of_star() {
        let g = labeled(&[(0, 1), (0, 2), (0, 3)], vec![0; 4], 1);
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 3);
        assert!((s.mean - 1.5).abs() < 1e-12);
    }
}
