//! The attributed graph type `G = (V, E, X, A)` from the paper's Table I.

use graphrare_tensor::Matrix;
use std::collections::BTreeSet;

/// An undirected attributed graph with node labels.
///
/// Matches the paper's formulation `G = (V, E, X, A)`: `n` nodes, an
/// undirected edge set, an `n x d` feature matrix and per-node class
/// labels. Adjacency is stored as per-node sorted neighbour sets
/// (`BTreeSet`) so that topology edits — the core operation of GraphRARE's
/// optimisation module — are `O(log deg)` and iteration order is
/// deterministic.
#[derive(Clone, Debug)]
pub struct Graph {
    adj: Vec<BTreeSet<usize>>,
    num_edges: usize,
    features: Matrix,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    ///
    /// # Panics
    /// Panics if `features` does not have `n` rows, `labels` does not have
    /// `n` entries, or a label is `>= num_classes`.
    pub fn new(n: usize, features: Matrix, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(features.rows(), n, "feature matrix must have n rows");
        assert_eq!(labels.len(), n, "labels must have n entries");
        assert!(labels.iter().all(|&l| l < num_classes), "labels must be < num_classes");
        Self { adj: vec![BTreeSet::new(); n], num_edges: 0, features, labels, num_classes }
    }

    /// Creates a graph from an undirected edge list (duplicates and
    /// self-loops are ignored).
    pub fn from_edges(
        n: usize,
        edges: &[(usize, usize)],
        features: Matrix,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Self {
        let mut g = Self::new(n, features, labels, num_classes);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The `n x d` node feature matrix.
    #[inline]
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Node feature dimensionality `d`.
    #[inline]
    pub fn feat_dim(&self) -> usize {
        self.features.cols()
    }

    /// Per-node class labels.
    #[inline]
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of classes.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Label of node `v`.
    #[inline]
    pub fn label(&self, v: usize) -> usize {
        self.labels[v]
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Maximum degree over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(BTreeSet::len).max().unwrap_or(0)
    }

    /// Mean degree.
    pub fn mean_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.adj.len() as f64
        }
    }

    /// Sorted iterator over the one-hop neighbours of `v` (the paper's
    /// `N_1(v)`).
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj[v].iter().copied()
    }

    /// One-hop neighbours of `v` collected into a `Vec`.
    pub fn neighbor_vec(&self, v: usize) -> Vec<usize> {
        self.adj[v].iter().copied().collect()
    }

    /// Whether the undirected edge `{u, v}` exists.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].contains(&v)
    }

    /// Adds the undirected edge `{u, v}`. Returns `true` if the edge was
    /// newly inserted; self-loops are rejected.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        if u == v || u >= self.adj.len() || v >= self.adj.len() {
            return false;
        }
        if self.adj[u].insert(v) {
            self.adj[v].insert(u);
            self.num_edges += 1;
            true
        } else {
            false
        }
    }

    /// Removes the undirected edge `{u, v}`. Returns `true` if it existed.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        if u >= self.adj.len() || v >= self.adj.len() {
            return false;
        }
        if self.adj[u].remove(&v) {
            self.adj[v].remove(&u);
            self.num_edges -= 1;
            true
        } else {
            false
        }
    }

    /// Iterator over undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, nbrs)| nbrs.iter().copied().filter(move |&v| u < v).map(move |v| (u, v)))
    }

    /// All undirected edges collected into a `Vec`.
    pub fn edge_vec(&self) -> Vec<(usize, usize)> {
        self.edges().collect()
    }

    /// Replaces the feature matrix (e.g. with a precomputed embedding).
    ///
    /// # Panics
    /// Panics if the row count changes.
    pub fn set_features(&mut self, features: Matrix) {
        assert_eq!(features.rows(), self.num_nodes(), "set_features: row count mismatch");
        self.features = features;
    }

    /// The descending degree sequence `d(v)` of Eq. (5): degrees of `v` and
    /// its one-hop neighbours, sorted in descending order.
    pub fn degree_profile(&self, v: usize) -> Vec<usize> {
        let mut seq: Vec<usize> = std::iter::once(self.degree(v))
            .chain(self.neighbors(v).map(|u| self.degree(u)))
            .collect();
        seq.sort_unstable_by(|a, b| b.cmp(a));
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges, Matrix::zeros(n, 2), vec![0; n], 1)
    }

    #[test]
    fn add_remove_edge_roundtrip() {
        let mut g = Graph::new(4, Matrix::zeros(4, 1), vec![0; 4], 1);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0), "duplicate undirected edge");
        assert!(g.has_edge(1, 0));
        assert_eq!(g.num_edges(), 1);
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn self_loops_rejected() {
        let mut g = Graph::new(2, Matrix::zeros(2, 1), vec![0; 2], 1);
        assert!(!g.add_edge(1, 1));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn out_of_bounds_edges_rejected() {
        let mut g = Graph::new(2, Matrix::zeros(2, 1), vec![0; 2], 1);
        assert!(!g.add_edge(0, 5));
        assert!(!g.remove_edge(0, 5));
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = path_graph(4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbor_vec(1), vec![0, 2]);
        assert_eq!(g.max_degree(), 2);
        assert!((g.mean_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn edges_listed_once() {
        let g = path_graph(5);
        let edges = g.edge_vec();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
    }

    #[test]
    fn degree_profile_is_descending_and_includes_self() {
        // Star: center 0 connected to 1..4.
        let edges = [(0, 1), (0, 2), (0, 3), (0, 4)];
        let g = Graph::from_edges(5, &edges, Matrix::zeros(5, 1), vec![0; 5], 1);
        assert_eq!(g.degree_profile(0), vec![4, 1, 1, 1, 1]);
        assert_eq!(g.degree_profile(1), vec![4, 1]);
    }

    #[test]
    #[should_panic(expected = "labels must be < num_classes")]
    fn label_bounds_checked() {
        let _ = Graph::new(1, Matrix::zeros(1, 1), vec![3], 2);
    }
}
