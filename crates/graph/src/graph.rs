//! The attributed graph type `G = (V, E, X, A)` from the paper's Table I.

use graphrare_tensor::Matrix;

use crate::adjacency::{edge_key, unkey, CsrAdjacency, EdgeEdit};

/// An undirected attributed graph with node labels.
///
/// Matches the paper's formulation `G = (V, E, X, A)`: `n` nodes, an
/// undirected edge set, an `n x d` feature matrix and per-node class
/// labels. Adjacency is CSR-backed ([`CsrAdjacency`]): neighbour lists are
/// sorted slices of one flat array, so iteration is contiguous, membership
/// is a binary search, clones are `memcpy`s, and a whole batch of topology
/// edits — the core operation of GraphRARE's optimisation module — is
/// applied in one sorted-merge splice via [`Graph::apply_edits`].
/// Single-edge [`add_edge`](Graph::add_edge) /
/// [`remove_edge`](Graph::remove_edge) are `O(V + E)` each and meant for
/// construction and tests; hot paths batch.
#[derive(Clone, Debug)]
pub struct Graph {
    adj: CsrAdjacency,
    num_edges: usize,
    features: Matrix,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    ///
    /// # Panics
    /// Panics if `features` does not have `n` rows, `labels` does not have
    /// `n` entries, or a label is `>= num_classes`.
    pub fn new(n: usize, features: Matrix, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(features.rows(), n, "feature matrix must have n rows");
        assert_eq!(labels.len(), n, "labels must have n entries");
        assert!(labels.iter().all(|&l| l < num_classes), "labels must be < num_classes");
        Self { adj: CsrAdjacency::new(n), num_edges: 0, features, labels, num_classes }
    }

    /// Creates a graph from an undirected edge list (duplicates and
    /// self-loops are ignored). Built in one bulk pass — much faster than
    /// repeated [`add_edge`](Graph::add_edge).
    pub fn from_edges(
        n: usize,
        edges: &[(usize, usize)],
        features: Matrix,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Self {
        let mut g = Self::new(n, features, labels, num_classes);
        let (adj, num_edges) = CsrAdjacency::from_edges(n, edges);
        g.adj = adj;
        g.num_edges = num_edges;
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The `n x d` node feature matrix.
    #[inline]
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Node feature dimensionality `d`.
    #[inline]
    pub fn feat_dim(&self) -> usize {
        self.features.cols()
    }

    /// Per-node class labels.
    #[inline]
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of classes.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Label of node `v`.
    #[inline]
    pub fn label(&self, v: usize) -> usize {
        self.labels[v]
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.adj.degree(v)
    }

    /// Maximum degree over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.adj.len()).map(|v| self.adj.degree(v)).max().unwrap_or(0)
    }

    /// Mean degree.
    pub fn mean_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.adj.len() as f64
        }
    }

    /// Sorted iterator over the one-hop neighbours of `v` (the paper's
    /// `N_1(v)`).
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj.neighbors(v).iter().map(|&u| u as usize)
    }

    /// Sorted neighbour slice of `v` in the compact `u32` representation,
    /// for allocation-free hot loops.
    #[inline]
    pub fn neighbor_slice(&self, v: usize) -> &[u32] {
        self.adj.neighbors(v)
    }

    /// One-hop neighbours of `v` collected into a `Vec`.
    pub fn neighbor_vec(&self, v: usize) -> Vec<usize> {
        self.neighbors(v).collect()
    }

    /// Whether the undirected edge `{u, v}` exists.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj.contains(u, v)
    }

    /// Adds the undirected edge `{u, v}`. Returns `true` if the edge was
    /// newly inserted; self-loops are rejected. `O(V + E)` — hot paths
    /// batch via [`apply_edits`](Graph::apply_edits).
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        if u == v || u >= self.adj.len() || v >= self.adj.len() {
            return false;
        }
        if self.adj.insert(u, v) {
            self.num_edges += 1;
            true
        } else {
            false
        }
    }

    /// Removes the undirected edge `{u, v}`. Returns `true` if it existed.
    /// `O(V + E)` — hot paths batch via [`apply_edits`](Graph::apply_edits).
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        if u >= self.adj.len() || v >= self.adj.len() {
            return false;
        }
        if self.adj.remove(u, v) {
            self.num_edges -= 1;
            true
        } else {
            false
        }
    }

    /// Applies a batch of undirected edits in one sorted-merge splice of
    /// the CSR adjacency. Returns `(added, removed)` undirected-edge
    /// counts.
    ///
    /// Semantics match applying the edits one by one with
    /// [`add_edge`](Graph::add_edge) / [`remove_edge`](Graph::remove_edge)
    /// in order: when the same pair appears more than once, the **last**
    /// edit decides its final presence; adds of present edges and removes
    /// of absent edges are no-ops; self-loops and out-of-bounds pairs are
    /// dropped. Cost is `O(V + E + B log B)` for `B` edits, independent of
    /// how the batch is ordered.
    pub fn apply_edits(&mut self, edits: &[(usize, usize, EdgeEdit)]) -> (usize, usize) {
        let n = self.adj.len();
        let mut keyed: Vec<(u64, u32, bool)> = edits
            .iter()
            .enumerate()
            .filter(|&(_, &(u, v, _))| u != v && u < n && v < n)
            .map(|(i, &(u, v, e))| (edge_key(u, v), i as u32, e == EdgeEdit::Add))
            .collect();
        keyed.sort_unstable();
        let mut flips: Vec<(usize, usize, bool)> = Vec::new();
        let mut i = 0;
        while i < keyed.len() {
            let key = keyed[i].0;
            while i + 1 < keyed.len() && keyed[i + 1].0 == key {
                i += 1; // the last edit for this pair wins
            }
            let want = keyed[i].2;
            i += 1;
            let (u, v) = unkey(key);
            if want != self.adj.contains(u, v) {
                flips.push((u, v, want));
            }
        }
        self.apply_flips_sorted(&flips)
    }

    /// Applies a batch of *known* presence flips in one CSR splice,
    /// skipping [`apply_edits`](Graph::apply_edits)'s dedup sort and
    /// per-edge membership checks. Returns `(added, removed)`.
    ///
    /// Callers must pass distinct in-bounds non-loop edges in ascending
    /// [`edge_key`] order, each of which genuinely changes presence
    /// (`add` absent edges, `remove` present ones) — the incremental
    /// rewiring engine establishes all of this during reconciliation.
    /// Violations are caught by debug assertions (and corrupt the
    /// adjacency in release builds).
    pub fn apply_flips_sorted(&mut self, flips: &[(usize, usize, bool)]) -> (usize, usize) {
        debug_assert!(
            flips.windows(2).all(|w| edge_key(w[0].0, w[0].1) < edge_key(w[1].0, w[1].1)),
            "flips must be distinct and ascending by edge key"
        );
        let (mut added, mut removed) = (0usize, 0usize);
        for &(u, v, want) in flips {
            debug_assert!(u != v && u < self.adj.len() && v < self.adj.len(), "flip out of bounds");
            debug_assert!(want != self.adj.contains(u, v), "flip {u}-{v} does not change presence");
            if want {
                added += 1;
            } else {
                removed += 1;
            }
        }
        // Direction expansion happens inside the adjacency on reused
        // scratch, so steady-state batches allocate nothing here.
        self.adj.apply_flips(flips, added, removed);
        self.num_edges = self.num_edges + added - removed;
        (added, removed)
    }

    /// Iterator over undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.adj.len()).flat_map(move |u| {
            self.adj
                .neighbors(u)
                .iter()
                .map(|&v| v as usize)
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// All undirected edges collected into a `Vec`.
    pub fn edge_vec(&self) -> Vec<(usize, usize)> {
        self.edges().collect()
    }

    /// Replaces the feature matrix (e.g. with a precomputed embedding).
    ///
    /// # Panics
    /// Panics if the row count changes.
    pub fn set_features(&mut self, features: Matrix) {
        assert_eq!(features.rows(), self.num_nodes(), "set_features: row count mismatch");
        self.features = features;
    }

    /// The descending degree sequence `d(v)` of Eq. (5): degrees of `v` and
    /// its one-hop neighbours, sorted in descending order.
    pub fn degree_profile(&self, v: usize) -> Vec<usize> {
        let mut seq: Vec<usize> = std::iter::once(self.degree(v))
            .chain(self.neighbors(v).map(|u| self.degree(u)))
            .collect();
        seq.sort_unstable_by(|a, b| b.cmp(a));
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges, Matrix::zeros(n, 2), vec![0; n], 1)
    }

    #[test]
    fn add_remove_edge_roundtrip() {
        let mut g = Graph::new(4, Matrix::zeros(4, 1), vec![0; 4], 1);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0), "duplicate undirected edge");
        assert!(g.has_edge(1, 0));
        assert_eq!(g.num_edges(), 1);
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn self_loops_rejected() {
        let mut g = Graph::new(2, Matrix::zeros(2, 1), vec![0; 2], 1);
        assert!(!g.add_edge(1, 1));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn out_of_bounds_edges_rejected() {
        let mut g = Graph::new(2, Matrix::zeros(2, 1), vec![0; 2], 1);
        assert!(!g.add_edge(0, 5));
        assert!(!g.remove_edge(0, 5));
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = path_graph(4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbor_vec(1), vec![0, 2]);
        assert_eq!(g.max_degree(), 2);
        assert!((g.mean_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn edges_listed_once() {
        let g = path_graph(5);
        let edges = g.edge_vec();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
    }

    #[test]
    fn batched_edits_match_sequential() {
        let mut a = path_graph(6);
        let mut b = a.clone();
        use EdgeEdit::{Add, Remove};
        let edits =
            [(1, 2, Remove), (0, 5, Add), (3, 4, Remove), (3, 4, Add), (0, 5, Add), (9, 1, Add)];
        let (added, removed) = a.apply_edits(&edits);
        for &(u, v, e) in &edits {
            match e {
                Add => {
                    b.add_edge(u, v);
                }
                Remove => {
                    b.remove_edge(u, v);
                }
            }
        }
        assert_eq!(a.edge_vec(), b.edge_vec());
        assert_eq!(a.num_edges(), b.num_edges());
        // (3,4) was removed then re-added: the last edit wins, net no-op.
        assert_eq!((added, removed), (1, 1));
    }

    #[test]
    fn batched_edits_last_wins_over_earlier_add() {
        let mut g = path_graph(4);
        use EdgeEdit::{Add, Remove};
        g.apply_edits(&[(0, 2, Add), (0, 2, Remove)]);
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn sorted_flips_match_generic_edits() {
        let mut a = path_graph(6);
        let mut b = a.clone();
        use EdgeEdit::{Add, Remove};
        // Same batch through both entry points: flips are key-sorted and
        // all presence-changing, as the rewiring engine guarantees.
        let (added, removed) = a.apply_flips_sorted(&[(0, 3, true), (1, 2, false), (4, 5, false)]);
        b.apply_edits(&[(0, 3, Add), (1, 2, Remove), (4, 5, Remove)]);
        assert_eq!((added, removed), (1, 2));
        assert_eq!(a.edge_vec(), b.edge_vec());
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn degree_profile_is_descending_and_includes_self() {
        // Star: center 0 connected to 1..4.
        let edges = [(0, 1), (0, 2), (0, 3), (0, 4)];
        let g = Graph::from_edges(5, &edges, Matrix::zeros(5, 1), vec![0; 5], 1);
        assert_eq!(g.degree_profile(0), vec![4, 1, 1, 1, 1]);
        assert_eq!(g.degree_profile(1), vec![4, 1]);
    }

    #[test]
    #[should_panic(expected = "labels must be < num_classes")]
    fn label_bounds_checked() {
        let _ = Graph::new(1, Matrix::zeros(1, 1), vec![3], 2);
    }
}
