//! Plain-text graph serialisation.
//!
//! The interchange format is deliberately simple so real edge lists can be
//! fed to the CLI without conversion tooling:
//!
//! * **edge list** (`.edges`): one `u<TAB-or-space>v` pair per line;
//!   `#`-prefixed lines are comments. Node ids are `0..n`.
//! * **labels** (`.labels`): one integer class per line, line `i` = node `i`.
//! * **features** (`.features`): one row per node of whitespace-separated
//!   floats; all rows must have equal width.
//!
//! [`write_graph`]/[`read_graph`] bundle the three files under a common
//! path prefix.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use graphrare_tensor::Matrix;

use crate::graph::Graph;

/// Errors produced by the readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// A line failed to parse.
    Parse {
        /// File kind ("edges", "labels", "features").
        file: &'static str,
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Cross-file inconsistency (counts, ranges).
    Inconsistent(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { file, line, message } => {
                write!(f, "parse error in {file} file, line {line}: {message}")
            }
            IoError::Inconsistent(m) => write!(f, "inconsistent inputs: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parses an edge list (`u v` per line, `#` comments).
pub fn parse_edge_list(text: &str) -> Result<Vec<(usize, usize)>, IoError> {
    let mut edges = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<usize, IoError> {
            tok.ok_or_else(|| IoError::Parse {
                file: "edges",
                line: i + 1,
                message: "expected two node ids".into(),
            })?
            .parse()
            .map_err(|e| IoError::Parse {
                file: "edges",
                line: i + 1,
                message: format!("bad node id: {e}"),
            })
        };
        let u = parse(parts.next())?;
        let v = parse(parts.next())?;
        if parts.next().is_some() {
            return Err(IoError::Parse {
                file: "edges",
                line: i + 1,
                message: "trailing tokens after the two node ids".into(),
            });
        }
        edges.push((u, v));
    }
    Ok(edges)
}

/// Parses a labels file (one class index per line).
pub fn parse_labels(text: &str) -> Result<Vec<usize>, IoError> {
    let mut labels = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        labels.push(line.parse().map_err(|e| IoError::Parse {
            file: "labels",
            line: i + 1,
            message: format!("bad label: {e}"),
        })?);
    }
    Ok(labels)
}

/// Parses a features file (whitespace-separated floats, equal-width rows).
pub fn parse_features(text: &str) -> Result<Matrix, IoError> {
    let mut rows: Vec<Vec<f32>> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let row: Result<Vec<f32>, _> = line.split_whitespace().map(str::parse).collect();
        let row = row.map_err(|e| IoError::Parse {
            file: "features",
            line: i + 1,
            message: format!("bad float: {e}"),
        })?;
        if let Some(first) = rows.first() {
            if row.len() != first.len() {
                return Err(IoError::Parse {
                    file: "features",
                    line: i + 1,
                    message: format!("row width {} != {}", row.len(), first.len()),
                });
            }
        }
        rows.push(row);
    }
    let cols = rows.first().map_or(0, Vec::len);
    let data: Vec<f32> = rows.iter().flatten().copied().collect();
    Ok(Matrix::from_vec(rows.len(), cols, data))
}

/// Assembles a [`Graph`] from parsed parts, validating consistency.
pub fn assemble(
    edges: Vec<(usize, usize)>,
    features: Matrix,
    labels: Vec<usize>,
) -> Result<Graph, IoError> {
    let n = labels.len();
    if features.rows() != n {
        return Err(IoError::Inconsistent(format!(
            "{} feature rows but {} labels",
            features.rows(),
            n
        )));
    }
    if let Some(&(u, v)) = edges.iter().find(|&&(u, v)| u >= n || v >= n) {
        return Err(IoError::Inconsistent(format!("edge ({u},{v}) references a node >= {n}")));
    }
    let num_classes = labels.iter().copied().max().map_or(1, |m| m + 1);
    Ok(Graph::from_edges(n, &edges, features, labels, num_classes))
}

/// Reads `<prefix>.edges`, `<prefix>.features` and `<prefix>.labels`.
pub fn read_graph(prefix: &Path) -> Result<Graph, IoError> {
    let read = |ext: &str| -> Result<String, IoError> {
        Ok(fs::read_to_string(prefix.with_extension(ext))?)
    };
    let edges = parse_edge_list(&read("edges")?)?;
    let features = parse_features(&read("features")?)?;
    let labels = parse_labels(&read("labels")?)?;
    assemble(edges, features, labels)
}

/// Serialises the three bundle files and hands each `(path, contents)`
/// pair to `write`. This is [`write_graph`] with the filesystem call
/// pluggable, so callers can substitute a different write strategy —
/// the CLI routes bundle writes through the store crate's atomic
/// temp-file-then-rename helper.
pub fn write_graph_via(
    g: &Graph,
    prefix: &Path,
    write: &mut dyn FnMut(&Path, &[u8]) -> io::Result<()>,
) -> Result<(), IoError> {
    let mut edges = String::new();
    let _ = writeln!(edges, "# {} nodes, {} undirected edges", g.num_nodes(), g.num_edges());
    for (u, v) in g.edges() {
        let _ = writeln!(edges, "{u}\t{v}");
    }
    write(&prefix.with_extension("edges"), edges.as_bytes())?;

    let mut labels = String::new();
    for &l in g.labels() {
        let _ = writeln!(labels, "{l}");
    }
    write(&prefix.with_extension("labels"), labels.as_bytes())?;

    let mut feats = String::new();
    for r in 0..g.num_nodes() {
        let row: Vec<String> = g.features().row(r).iter().map(|v| format!("{v}")).collect();
        let _ = writeln!(feats, "{}", row.join(" "));
    }
    write(&prefix.with_extension("features"), feats.as_bytes())?;
    Ok(())
}

/// Writes `<prefix>.edges`, `<prefix>.features` and `<prefix>.labels`,
/// creating parent directories.
pub fn write_graph(g: &Graph, prefix: &Path) -> Result<(), IoError> {
    if let Some(parent) = prefix.parent() {
        fs::create_dir_all(parent)?;
    }
    write_graph_via(g, prefix, &mut |path, bytes| fs::write(path, bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let feats = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.5, 0.25, 0.0, 1.0]);
        Graph::from_edges(3, &[(0, 1), (1, 2)], feats, vec![0, 1, 1], 2)
    }

    #[test]
    fn roundtrip_through_files() {
        let dir = std::env::temp_dir().join("graphrare-io-test");
        let prefix = dir.join("toy");
        let g = sample();
        write_graph(&g, &prefix).unwrap();
        let back = read_graph(&prefix).unwrap();
        assert_eq!(back.edge_vec(), g.edge_vec());
        assert_eq!(back.labels(), g.labels());
        assert_eq!(back.num_classes(), 2);
        assert!(back.features().max_abs_diff(g.features()) < 1e-6);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn write_via_collects_three_files_and_propagates_errors() {
        let g = sample();
        let mut seen: Vec<(String, usize)> = Vec::new();
        write_graph_via(&g, Path::new("out/toy"), &mut |p, bytes| {
            seen.push((p.display().to_string(), bytes.len()));
            Ok(())
        })
        .unwrap();
        let exts: Vec<&str> = seen.iter().map(|(p, _)| p.rsplit('.').next().unwrap()).collect();
        assert_eq!(exts, vec!["edges", "labels", "features"]);
        assert!(seen.iter().all(|&(_, len)| len > 0));

        let err = write_graph_via(&g, Path::new("out/toy"), &mut |_, _| {
            Err(io::Error::other("writer refused"))
        });
        assert!(matches!(err, Err(IoError::Io(_))));
    }

    #[test]
    fn edge_list_comments_and_blanks() {
        let edges = parse_edge_list("# header\n\n0 1\n1\t2\n").unwrap();
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(matches!(
            parse_edge_list("0 x"),
            Err(IoError::Parse { file: "edges", line: 1, .. })
        ));
        assert!(matches!(parse_edge_list("0 1 2"), Err(IoError::Parse { .. })));
        assert!(matches!(parse_edge_list("0"), Err(IoError::Parse { .. })));
    }

    #[test]
    fn features_reject_ragged_rows() {
        assert!(matches!(
            parse_features("1.0 2.0\n3.0\n"),
            Err(IoError::Parse { file: "features", line: 2, .. })
        ));
    }

    #[test]
    fn assemble_validates_consistency() {
        let feats = Matrix::zeros(2, 1);
        assert!(matches!(
            assemble(vec![(0, 5)], feats.clone(), vec![0, 0]),
            Err(IoError::Inconsistent(_))
        ));
        assert!(matches!(
            assemble(vec![], Matrix::zeros(3, 1), vec![0, 0]),
            Err(IoError::Inconsistent(_))
        ));
    }

    #[test]
    fn num_classes_inferred_from_labels() {
        let g = assemble(vec![(0, 1)], Matrix::zeros(2, 1), vec![0, 4]).unwrap();
        assert_eq!(g.num_classes(), 5);
    }
}
