//! # graphrare-graph
//!
//! Graph data structures and topology utilities for the GraphRARE
//! workspace: the attributed [`Graph`] type (`G = (V, E, X, A)` of the
//! paper's Table I), propagation operators for GNN layers ([`ops`]),
//! homophily/degree statistics ([`metrics`], including Eq. 1's edge
//! homophily ratio), and BFS candidate enumeration ([`traversal`]).
//!
//! Topology edits are the primitive that GraphRARE's
//! reinforcement-learning module drives. Adjacency is CSR-backed
//! ([`adjacency::CsrAdjacency`]): a whole batch of edits is applied in one
//! sorted-merge splice ([`Graph::apply_edits`]), which is what the
//! incremental rewiring engine and `materialize` ride; single-edge
//! `add_edge` / `remove_edge` remain for construction and tests.
//!
//! ```
//! use graphrare_graph::{Graph, metrics};
//! use graphrare_tensor::Matrix;
//!
//! let mut g = Graph::from_edges(
//!     3,
//!     &[(0, 1), (1, 2)],
//!     Matrix::zeros(3, 4),
//!     vec![0, 1, 0],
//!     2,
//! );
//! assert_eq!(metrics::homophily_ratio(&g), 0.0); // fully heterophilic
//! g.add_edge(0, 2); // connect the two same-label nodes
//! assert!((metrics::homophily_ratio(&g) - 1.0 / 3.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

pub mod adjacency;
pub mod graph;
pub mod io;
pub mod metrics;
pub mod ops;
pub mod traversal;

pub use adjacency::{edge_key, unkey, CsrAdjacency, EdgeEdit, NodeCountOverflow};
pub use graph::Graph;
