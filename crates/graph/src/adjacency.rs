//! CSR-backed undirected adjacency with batched edit application.
//!
//! The rewiring hot path (Algorithm 1) edits topology in *batches*: one
//! DRL step produces a list of edge additions and removals that is applied
//! atomically. [`CsrAdjacency`] stores neighbour lists as one flat,
//! row-sorted array (compressed sparse rows) so that
//!
//! * iteration is a contiguous slice walk (no pointer chasing, unlike the
//!   former per-node `BTreeSet`s),
//! * membership tests are a binary search over a small sorted slice,
//! * cloning is three `memcpy`s (the incremental driver snapshots graphs
//!   every improvement step),
//! * a whole batch of edits is applied in **one** sorted-merge splice over
//!   the flat arrays — `O(V + E + B log B)` for `B` edits, instead of
//!   `B` tree edits with their allocator traffic.
//!
//! Single-edge [`insert`](CsrAdjacency::insert) /
//! [`remove`](CsrAdjacency::remove) remain available for construction-time
//! and test callers, but each one is a full splice (`O(V + E)`): hot paths
//! must batch (see `Graph::apply_edits` and
//! `TopologyOptimizer::materialize`).

/// Direction of one topology edit in a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeEdit {
    /// Ensure the undirected edge exists.
    Add,
    /// Ensure the undirected edge is absent.
    Remove,
}

/// Packs an undirected edge into one `u64` key (smaller endpoint in the
/// high half), so edge sets sort in `(min, max)` order.
#[inline]
pub fn edge_key(u: usize, v: usize) -> u64 {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    ((a as u64) << 32) | b as u64
}

/// Inverse of [`edge_key`]: `(min, max)` endpoints.
#[inline]
pub fn unkey(key: u64) -> (usize, usize) {
    ((key >> 32) as usize, (key & 0xffff_ffff) as usize)
}

/// Most nodes a [`CsrAdjacency`] can hold: neighbour ids are stored as
/// `u32`, so node indices must fit that id space.
pub const MAX_NODES: usize = u32::MAX as usize;

/// Typed constructor error: the requested node count exceeds the `u32`
/// id space of the CSR layout. Without this bound the `as u32` casts in
/// the splice paths would silently truncate ids at N ≥ 2³².
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeCountOverflow {
    /// The node count that was requested.
    pub requested: usize,
}

impl std::fmt::Display for NodeCountOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "node count {} exceeds the CsrAdjacency u32 id space (max {MAX_NODES} nodes)",
            self.requested
        )
    }
}

impl std::error::Error for NodeCountOverflow {}

/// Compressed-sparse-row adjacency: `offsets[v]..offsets[v + 1]` indexes
/// the sorted neighbour slice of node `v` inside `targets`.
#[derive(Debug, Default)]
pub struct CsrAdjacency {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    // Reusable splice scratch: double-buffered output arrays, the
    // undirected-flip expansion buffer, and the counting-scatter
    // workspace. Never part of the logical value — excluded from
    // comparisons, and `clone` hands out a cold copy.
    spare_offsets: Vec<usize>,
    spare_targets: Vec<u32>,
    change_buf: Vec<(u32, u32, bool)>,
    scatter_starts: Vec<usize>,
    scatter_buf: Vec<(u32, u32, bool)>,
}

impl Clone for CsrAdjacency {
    fn clone(&self) -> Self {
        Self { offsets: self.offsets.clone(), targets: self.targets.clone(), ..Self::default() }
    }
}

impl PartialEq for CsrAdjacency {
    fn eq(&self, other: &Self) -> bool {
        self.offsets == other.offsets && self.targets == other.targets
    }
}

impl Eq for CsrAdjacency {}

impl CsrAdjacency {
    fn check_node_count(n: usize) -> Result<(), NodeCountOverflow> {
        if n <= MAX_NODES {
            Ok(())
        } else {
            Err(NodeCountOverflow { requested: n })
        }
    }

    /// Adjacency of `n` isolated nodes.
    ///
    /// # Panics
    /// Panics when `n` exceeds [`MAX_NODES`]; use
    /// [`try_new`](Self::try_new) to handle that as a typed error.
    pub fn new(n: usize) -> Self {
        match Self::try_new(n) {
            Ok(adj) => adj,
            Err(e) => panic!("{e}"),
        }
    }

    /// Checked [`new`](Self::new): rejects node counts beyond the `u32`
    /// id space before allocating anything.
    pub fn try_new(n: usize) -> Result<Self, NodeCountOverflow> {
        Self::check_node_count(n)?;
        Ok(Self { offsets: vec![0; n + 1], ..Self::default() })
    }

    /// Builds from an undirected edge list; duplicates, self-loops and
    /// out-of-bounds pairs are dropped. Returns the adjacency and the
    /// number of distinct undirected edges kept.
    ///
    /// # Panics
    /// Panics when `n` exceeds [`MAX_NODES`]; use
    /// [`try_from_edges`](Self::try_from_edges) to handle that as a
    /// typed error.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> (Self, usize) {
        match Self::try_from_edges(n, edges) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Checked [`from_edges`](Self::from_edges): rejects node counts
    /// beyond the `u32` id space before allocating anything.
    pub fn try_from_edges(
        n: usize,
        edges: &[(usize, usize)],
    ) -> Result<(Self, usize), NodeCountOverflow> {
        Self::check_node_count(n)?;
        let mut keys: Vec<u64> = edges
            .iter()
            .filter(|&&(u, v)| u != v && u < n && v < n)
            .map(|&(u, v)| edge_key(u, v))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let num_edges = keys.len();
        // Scatter both directions, then build rows by counting sort.
        let mut counts = vec![0usize; n + 1];
        for &key in &keys {
            let (u, v) = unkey(key);
            counts[u + 1] += 1;
            counts[v + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut targets = vec![0u32; 2 * num_edges];
        let mut cursor = counts.clone();
        // Keys ascend in (min, max); writing both directions in key order
        // leaves each row sorted except for the min-side entries, which
        // arrive in max order — they are still ascending per row because
        // keys group by min first. The max-side entries (neighbour < v)
        // also arrive ascending. The two runs interleave, so sort rows.
        for &key in &keys {
            let (u, v) = unkey(key);
            targets[cursor[u]] = v as u32;
            cursor[u] += 1;
            targets[cursor[v]] = u as u32;
            cursor[v] += 1;
        }
        for v in 0..n {
            targets[counts[v]..counts[v + 1]].sort_unstable();
        }
        Ok((Self { offsets: counts, targets, ..Self::default() }, num_edges))
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the adjacency has zero nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted neighbour slice of node `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the directed entry `v -> u` is present.
    #[inline]
    pub fn contains(&self, v: usize, u: usize) -> bool {
        self.neighbors(v).binary_search(&(u as u32)).is_ok()
    }

    /// Inserts the undirected edge `{u, v}`; returns `true` if new.
    /// `O(V + E)` — batch via [`apply_changes`](Self::apply_changes) on
    /// hot paths.
    pub fn insert(&mut self, u: usize, v: usize) -> bool {
        if self.contains(u, v) {
            return false;
        }
        self.apply_changes(&mut [(u as u32, v as u32, true), (v as u32, u as u32, true)], 2, 0);
        true
    }

    /// Removes the undirected edge `{u, v}`; returns `true` if it existed.
    /// `O(V + E)` — batch via [`apply_changes`](Self::apply_changes) on
    /// hot paths.
    pub fn remove(&mut self, u: usize, v: usize) -> bool {
        if !self.contains(u, v) {
            return false;
        }
        self.apply_changes(&mut [(u as u32, v as u32, false), (v as u32, u as u32, false)], 0, 2);
        true
    }

    /// Applies a batch of *undirected* edge flips in one splice, reusing
    /// internal scratch for the direction expansion: each `(u, v, want)`
    /// flip becomes the two directed half-edge changes
    /// [`apply_changes`](Self::apply_changes) expects. `added`/`removed`
    /// count undirected edges. Allocation-free once the scratch has
    /// warmed up to the batch size.
    pub fn apply_flips(&mut self, flips: &[(usize, usize, bool)], added: usize, removed: usize) {
        if flips.is_empty() {
            return;
        }
        let mut buf = std::mem::take(&mut self.change_buf);
        buf.clear();
        buf.reserve(2 * flips.len());
        for &(u, v, want) in flips {
            buf.push((u as u32, v as u32, want));
            buf.push((v as u32, u as u32, want));
        }
        self.apply_changes(&mut buf, 2 * added, 2 * removed);
        self.change_buf = buf;
    }

    /// Applies a batch of *directed* entry changes in one sorted-merge
    /// splice over the flat arrays.
    ///
    /// `changes` holds `(row, col, add)` half-edges (callers pass both
    /// directions of every undirected edit); it is sorted in place. Every
    /// addition must be absent and every removal present — callers
    /// reconcile against the current structure first. `added`/`removed`
    /// are the directed totals, used to size the new target array.
    ///
    /// Untouched row spans are block-copied; touched rows are merged with
    /// their change list into a double-buffered output array (the old
    /// arrays become the next splice's buffers, so steady-state batches
    /// allocate nothing). Cost is `O(V + E + B log B)`.
    pub fn apply_changes(
        &mut self,
        changes: &mut [(u32, u32, bool)],
        added: usize,
        removed: usize,
    ) {
        if changes.is_empty() {
            return;
        }
        let n = self.len();
        // The merge below needs `changes` sorted by (row, col). Callers
        // emit both directions of key-ordered undirected edits, i.e. two
        // interleaved sorted runs — a pattern the comparison sort cannot
        // exploit — so large batches are ordered by a counting scatter
        // over rows plus tiny per-row sorts, `O(V + B + Σ b_r log b_r)`.
        if 4 * changes.len() >= n {
            let starts = &mut self.scatter_starts;
            starts.clear();
            starts.resize(n + 1, 0);
            for &(r, _, _) in changes.iter() {
                starts[r as usize + 1] += 1;
            }
            for i in 0..n {
                starts[i + 1] += starts[i];
            }
            let scattered = &mut self.scatter_buf;
            scattered.clear();
            scattered.resize(changes.len(), (0, 0, false));
            // `starts[r]` doubles as the write cursor for row `r`; after
            // the scatter it has advanced to the row's end, so row
            // boundaries are still recoverable from the previous row's
            // end — no cloned cursor array needed.
            for &c in changes.iter() {
                let slot = &mut starts[c.0 as usize];
                scattered[*slot] = c;
                *slot += 1;
            }
            for r in 0..n {
                let lo = if r == 0 { 0 } else { starts[r - 1] };
                scattered[lo..starts[r]].sort_unstable();
            }
            changes.copy_from_slice(scattered);
        } else {
            changes.sort_unstable();
        }
        let mut targets = std::mem::take(&mut self.spare_targets);
        let mut offsets = std::mem::take(&mut self.spare_offsets);
        targets.clear();
        targets.reserve(self.targets.len() + added - removed);
        offsets.clear();
        offsets.reserve(n + 1);
        offsets.push(0);
        let mut i = 0; // cursor into `changes`
        let mut r = 0;
        while r < n {
            if i >= changes.len() {
                // Tail: block-copy every remaining row.
                let lo = self.offsets[r];
                targets.extend_from_slice(&self.targets[lo..]);
                let shift = offsets[r] as isize - lo as isize;
                for rr in r..n {
                    offsets.push((self.offsets[rr + 1] as isize + shift) as usize);
                }
                break;
            }
            let next_row = changes[i].0 as usize;
            if next_row > r {
                // Block-copy the untouched span [r, next_row).
                let lo = self.offsets[r];
                let hi = self.offsets[next_row];
                targets.extend_from_slice(&self.targets[lo..hi]);
                let shift = offsets[r] as isize - lo as isize;
                for rr in r..next_row {
                    offsets.push((self.offsets[rr + 1] as isize + shift) as usize);
                }
                r = next_row;
                continue;
            }
            // Merge row `r` with its changes (both sorted by column).
            let row = &self.targets[self.offsets[r]..self.offsets[r + 1]];
            let mut j = 0;
            while i < changes.len() && changes[i].0 as usize == r {
                let (_, col, add) = changes[i];
                while j < row.len() && row[j] < col {
                    targets.push(row[j]);
                    j += 1;
                }
                if add {
                    debug_assert!(
                        j >= row.len() || row[j] != col,
                        "adding present entry {r}->{col}"
                    );
                    targets.push(col);
                } else {
                    debug_assert!(
                        j < row.len() && row[j] == col,
                        "removing absent entry {r}->{col}"
                    );
                    j += 1; // skip the removed column
                }
                i += 1;
            }
            targets.extend_from_slice(&row[j..]);
            offsets.push(targets.len());
            r += 1;
        }
        self.spare_targets = std::mem::replace(&mut self.targets, targets);
        self.spare_offsets = std::mem::replace(&mut self.offsets, offsets);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_dedups_and_sorts() {
        let (adj, m) = CsrAdjacency::from_edges(4, &[(1, 0), (0, 1), (2, 2), (3, 1), (9, 0)]);
        assert_eq!(m, 2);
        assert_eq!(adj.neighbors(1), &[0, 3]);
        assert_eq!(adj.neighbors(0), &[1]);
        assert_eq!(adj.degree(2), 0);
        assert!(adj.contains(3, 1) && adj.contains(1, 3));
    }

    #[test]
    fn single_edits_splice() {
        let (mut adj, _) = CsrAdjacency::from_edges(4, &[(0, 2)]);
        assert!(adj.insert(0, 1));
        assert!(!adj.insert(1, 0));
        assert_eq!(adj.neighbors(0), &[1, 2]);
        assert!(adj.remove(0, 2));
        assert!(!adj.remove(0, 2));
        assert_eq!(adj.neighbors(0), &[1]);
        assert_eq!(adj.neighbors(2), &[] as &[u32]);
    }

    #[test]
    fn batched_changes_match_singles() {
        let (mut a, _) = CsrAdjacency::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut b = a.clone();
        // Remove (1,2), add (0,4) and (1,3) as one batch on `a` ...
        let mut changes = vec![
            (1u32, 2u32, false),
            (2, 1, false),
            (0, 4, true),
            (4, 0, true),
            (1, 3, true),
            (3, 1, true),
        ];
        a.apply_changes(&mut changes, 4, 2);
        // ... and as single edits on `b`.
        b.remove(1, 2);
        b.insert(0, 4);
        b.insert(1, 3);
        assert_eq!(a, b);
        assert_eq!(a.neighbors(1), &[0, 3]);
    }

    #[test]
    fn small_batch_on_large_graph_matches_singles() {
        // 4 * B < n: the comparison-sort branch (large batches on the
        // small test graphs above all take the counting scatter).
        let (mut a, _) = CsrAdjacency::from_edges(40, &[(0, 1), (5, 6), (6, 7)]);
        let mut b = a.clone();
        let mut changes = vec![(2u32, 7u32, true), (7, 2, true), (5, 6, false), (6, 5, false)];
        a.apply_changes(&mut changes, 2, 2);
        b.insert(2, 7);
        b.remove(5, 6);
        assert_eq!(a, b);
        assert_eq!(a.neighbors(7), &[2, 6]);
    }

    #[test]
    fn edge_key_roundtrip() {
        assert_eq!(edge_key(7, 3), edge_key(3, 7));
        assert_eq!(unkey(edge_key(3, 7)), (3, 7));
    }

    #[test]
    fn apply_flips_matches_directed_changes() {
        let (mut a, _) = CsrAdjacency::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut b = a.clone();
        // Twice, so the second batch runs on warm scratch buffers.
        for flips in [
            &[(1usize, 2usize, false), (0, 4, true), (1, 3, true)][..],
            &[(0, 4, false), (2, 4, true)][..],
        ] {
            let added = flips.iter().filter(|f| f.2).count();
            let removed = flips.len() - added;
            a.apply_flips(flips, added, removed);
            for &(u, v, want) in flips {
                if want {
                    b.insert(u, v);
                } else {
                    b.remove(u, v);
                }
            }
            assert_eq!(a, b);
        }
        assert_eq!(a.neighbors(4), &[2, 3]);
    }

    #[test]
    fn try_new_rejects_node_counts_beyond_u32_ids() {
        let err = CsrAdjacency::try_new(MAX_NODES + 1).unwrap_err();
        assert_eq!(err, NodeCountOverflow { requested: MAX_NODES + 1 });
        assert!(err.to_string().contains("u32 id space"));
        assert!(CsrAdjacency::try_from_edges(MAX_NODES + 7, &[]).is_err());
        // In-bounds counts still construct.
        assert_eq!(CsrAdjacency::try_new(3).unwrap().len(), 3);
        let (adj, m) = CsrAdjacency::try_from_edges(3, &[(0, 2)]).unwrap();
        assert_eq!((adj.len(), m), (3, 1));
    }

    #[test]
    fn clone_and_eq_ignore_splice_scratch() {
        let (mut a, _) = CsrAdjacency::from_edges(6, &[(0, 1), (2, 3)]);
        // Warm the scratch on `a` only; the logical value is unchanged
        // by a no-op pair of flips.
        a.apply_flips(&[(4, 5, true)], 1, 0);
        a.apply_flips(&[(4, 5, false)], 0, 1);
        let (b, _) = CsrAdjacency::from_edges(6, &[(0, 1), (2, 3)]);
        assert_eq!(a, b);
        let c = a.clone();
        assert_eq!(c, a);
        assert!(c.spare_offsets.is_empty() && c.scatter_buf.is_empty());
    }
}
