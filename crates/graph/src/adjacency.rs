//! CSR-backed undirected adjacency with batched edit application.
//!
//! The rewiring hot path (Algorithm 1) edits topology in *batches*: one
//! DRL step produces a list of edge additions and removals that is applied
//! atomically. [`CsrAdjacency`] stores neighbour lists as one flat,
//! row-sorted array (compressed sparse rows) so that
//!
//! * iteration is a contiguous slice walk (no pointer chasing, unlike the
//!   former per-node `BTreeSet`s),
//! * membership tests are a binary search over a small sorted slice,
//! * cloning is three `memcpy`s (the incremental driver snapshots graphs
//!   every improvement step),
//! * a whole batch of edits is applied in **one** sorted-merge splice over
//!   the flat arrays — `O(V + E + B log B)` for `B` edits, instead of
//!   `B` tree edits with their allocator traffic.
//!
//! Single-edge [`insert`](CsrAdjacency::insert) /
//! [`remove`](CsrAdjacency::remove) remain available for construction-time
//! and test callers, but each one is a full splice (`O(V + E)`): hot paths
//! must batch (see `Graph::apply_edits` and
//! `TopologyOptimizer::materialize`).

/// Direction of one topology edit in a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeEdit {
    /// Ensure the undirected edge exists.
    Add,
    /// Ensure the undirected edge is absent.
    Remove,
}

/// Packs an undirected edge into one `u64` key (smaller endpoint in the
/// high half), so edge sets sort in `(min, max)` order.
#[inline]
pub fn edge_key(u: usize, v: usize) -> u64 {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    ((a as u64) << 32) | b as u64
}

/// Inverse of [`edge_key`]: `(min, max)` endpoints.
#[inline]
pub fn unkey(key: u64) -> (usize, usize) {
    ((key >> 32) as usize, (key & 0xffff_ffff) as usize)
}

/// Compressed-sparse-row adjacency: `offsets[v]..offsets[v + 1]` indexes
/// the sorted neighbour slice of node `v` inside `targets`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CsrAdjacency {
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl CsrAdjacency {
    /// Adjacency of `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "CsrAdjacency supports at most 2^32 nodes");
        Self { offsets: vec![0; n + 1], targets: Vec::new() }
    }

    /// Builds from an undirected edge list; duplicates, self-loops and
    /// out-of-bounds pairs are dropped. Returns the adjacency and the
    /// number of distinct undirected edges kept.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> (Self, usize) {
        assert!(n <= u32::MAX as usize, "CsrAdjacency supports at most 2^32 nodes");
        let mut keys: Vec<u64> = edges
            .iter()
            .filter(|&&(u, v)| u != v && u < n && v < n)
            .map(|&(u, v)| edge_key(u, v))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let num_edges = keys.len();
        // Scatter both directions, then build rows by counting sort.
        let mut counts = vec![0usize; n + 1];
        for &key in &keys {
            let (u, v) = unkey(key);
            counts[u + 1] += 1;
            counts[v + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut targets = vec![0u32; 2 * num_edges];
        let mut cursor = counts.clone();
        // Keys ascend in (min, max); writing both directions in key order
        // leaves each row sorted except for the min-side entries, which
        // arrive in max order — they are still ascending per row because
        // keys group by min first. The max-side entries (neighbour < v)
        // also arrive ascending. The two runs interleave, so sort rows.
        for &key in &keys {
            let (u, v) = unkey(key);
            targets[cursor[u]] = v as u32;
            cursor[u] += 1;
            targets[cursor[v]] = u as u32;
            cursor[v] += 1;
        }
        for v in 0..n {
            targets[counts[v]..counts[v + 1]].sort_unstable();
        }
        (Self { offsets: counts, targets }, num_edges)
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the adjacency has zero nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted neighbour slice of node `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the directed entry `v -> u` is present.
    #[inline]
    pub fn contains(&self, v: usize, u: usize) -> bool {
        self.neighbors(v).binary_search(&(u as u32)).is_ok()
    }

    /// Inserts the undirected edge `{u, v}`; returns `true` if new.
    /// `O(V + E)` — batch via [`apply_changes`](Self::apply_changes) on
    /// hot paths.
    pub fn insert(&mut self, u: usize, v: usize) -> bool {
        if self.contains(u, v) {
            return false;
        }
        self.apply_changes(&mut [(u as u32, v as u32, true), (v as u32, u as u32, true)], 2, 0);
        true
    }

    /// Removes the undirected edge `{u, v}`; returns `true` if it existed.
    /// `O(V + E)` — batch via [`apply_changes`](Self::apply_changes) on
    /// hot paths.
    pub fn remove(&mut self, u: usize, v: usize) -> bool {
        if !self.contains(u, v) {
            return false;
        }
        self.apply_changes(&mut [(u as u32, v as u32, false), (v as u32, u as u32, false)], 0, 2);
        true
    }

    /// Applies a batch of *directed* entry changes in one sorted-merge
    /// splice over the flat arrays.
    ///
    /// `changes` holds `(row, col, add)` half-edges (callers pass both
    /// directions of every undirected edit); it is sorted in place. Every
    /// addition must be absent and every removal present — callers
    /// reconcile against the current structure first. `added`/`removed`
    /// are the directed totals, used to size the new target array.
    ///
    /// Untouched row spans are block-copied; touched rows are merged with
    /// their change list. Cost is `O(V + E + B log B)`.
    pub fn apply_changes(
        &mut self,
        changes: &mut [(u32, u32, bool)],
        added: usize,
        removed: usize,
    ) {
        if changes.is_empty() {
            return;
        }
        let n = self.len();
        // The merge below needs `changes` sorted by (row, col). Callers
        // emit both directions of key-ordered undirected edits, i.e. two
        // interleaved sorted runs — a pattern the comparison sort cannot
        // exploit — so large batches are ordered by a counting scatter
        // over rows plus tiny per-row sorts, `O(V + B + Σ b_r log b_r)`.
        if 4 * changes.len() >= n {
            let mut starts = vec![0usize; n + 1];
            for &(r, _, _) in changes.iter() {
                starts[r as usize + 1] += 1;
            }
            for i in 0..n {
                starts[i + 1] += starts[i];
            }
            let mut scattered = vec![(0u32, 0u32, false); changes.len()];
            let mut cursor = starts.clone();
            for &c in changes.iter() {
                let slot = &mut cursor[c.0 as usize];
                scattered[*slot] = c;
                *slot += 1;
            }
            for r in 0..n {
                scattered[starts[r]..starts[r + 1]].sort_unstable();
            }
            changes.copy_from_slice(&scattered);
        } else {
            changes.sort_unstable();
        }
        let mut targets = Vec::with_capacity(self.targets.len() + added - removed);
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut i = 0; // cursor into `changes`
        let mut r = 0;
        while r < n {
            if i >= changes.len() {
                // Tail: block-copy every remaining row.
                let lo = self.offsets[r];
                targets.extend_from_slice(&self.targets[lo..]);
                let shift = offsets[r] as isize - lo as isize;
                for rr in r..n {
                    offsets.push((self.offsets[rr + 1] as isize + shift) as usize);
                }
                break;
            }
            let next_row = changes[i].0 as usize;
            if next_row > r {
                // Block-copy the untouched span [r, next_row).
                let lo = self.offsets[r];
                let hi = self.offsets[next_row];
                targets.extend_from_slice(&self.targets[lo..hi]);
                let shift = offsets[r] as isize - lo as isize;
                for rr in r..next_row {
                    offsets.push((self.offsets[rr + 1] as isize + shift) as usize);
                }
                r = next_row;
                continue;
            }
            // Merge row `r` with its changes (both sorted by column).
            let row = &self.targets[self.offsets[r]..self.offsets[r + 1]];
            let mut j = 0;
            while i < changes.len() && changes[i].0 as usize == r {
                let (_, col, add) = changes[i];
                while j < row.len() && row[j] < col {
                    targets.push(row[j]);
                    j += 1;
                }
                if add {
                    debug_assert!(
                        j >= row.len() || row[j] != col,
                        "adding present entry {r}->{col}"
                    );
                    targets.push(col);
                } else {
                    debug_assert!(
                        j < row.len() && row[j] == col,
                        "removing absent entry {r}->{col}"
                    );
                    j += 1; // skip the removed column
                }
                i += 1;
            }
            targets.extend_from_slice(&row[j..]);
            offsets.push(targets.len());
            r += 1;
        }
        self.targets = targets;
        self.offsets = offsets;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_dedups_and_sorts() {
        let (adj, m) = CsrAdjacency::from_edges(4, &[(1, 0), (0, 1), (2, 2), (3, 1), (9, 0)]);
        assert_eq!(m, 2);
        assert_eq!(adj.neighbors(1), &[0, 3]);
        assert_eq!(adj.neighbors(0), &[1]);
        assert_eq!(adj.degree(2), 0);
        assert!(adj.contains(3, 1) && adj.contains(1, 3));
    }

    #[test]
    fn single_edits_splice() {
        let (mut adj, _) = CsrAdjacency::from_edges(4, &[(0, 2)]);
        assert!(adj.insert(0, 1));
        assert!(!adj.insert(1, 0));
        assert_eq!(adj.neighbors(0), &[1, 2]);
        assert!(adj.remove(0, 2));
        assert!(!adj.remove(0, 2));
        assert_eq!(adj.neighbors(0), &[1]);
        assert_eq!(adj.neighbors(2), &[] as &[u32]);
    }

    #[test]
    fn batched_changes_match_singles() {
        let (mut a, _) = CsrAdjacency::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut b = a.clone();
        // Remove (1,2), add (0,4) and (1,3) as one batch on `a` ...
        let mut changes = vec![
            (1u32, 2u32, false),
            (2, 1, false),
            (0, 4, true),
            (4, 0, true),
            (1, 3, true),
            (3, 1, true),
        ];
        a.apply_changes(&mut changes, 4, 2);
        // ... and as single edits on `b`.
        b.remove(1, 2);
        b.insert(0, 4);
        b.insert(1, 3);
        assert_eq!(a, b);
        assert_eq!(a.neighbors(1), &[0, 3]);
    }

    #[test]
    fn small_batch_on_large_graph_matches_singles() {
        // 4 * B < n: the comparison-sort branch (large batches on the
        // small test graphs above all take the counting scatter).
        let (mut a, _) = CsrAdjacency::from_edges(40, &[(0, 1), (5, 6), (6, 7)]);
        let mut b = a.clone();
        let mut changes = vec![(2u32, 7u32, true), (7, 2, true), (5, 6, false), (6, 5, false)];
        a.apply_changes(&mut changes, 2, 2);
        b.insert(2, 7);
        b.remove(5, 6);
        assert_eq!(a, b);
        assert_eq!(a.neighbors(7), &[2, 6]);
    }

    #[test]
    fn edge_key_roundtrip() {
        assert_eq!(edge_key(7, 3), edge_key(3, 7));
        assert_eq!(unkey(edge_key(3, 7)), (3, 7));
    }
}
