//! Breadth-first traversal utilities: k-hop neighbourhoods and rings.
//!
//! GraphRARE's entropy sequences rank *remote* candidates — nodes beyond the
//! one-hop neighbourhood (`N_k(v)` in Table I). These helpers enumerate
//! those candidate pools deterministically.

use std::collections::VecDeque;

use crate::graph::Graph;

/// Nodes within `k` hops of `v`, excluding `v` itself, as
/// `(node, distance)` pairs in BFS order.
pub fn k_hop_neighbors(g: &Graph, v: usize, k: usize) -> Vec<(usize, usize)> {
    let mut dist = vec![usize::MAX; g.num_nodes()];
    let mut out = Vec::new();
    let mut queue = VecDeque::new();
    dist[v] = 0;
    queue.push_back(v);
    while let Some(u) = queue.pop_front() {
        if dist[u] == k {
            continue;
        }
        for w in g.neighbors(u) {
            if dist[w] == usize::MAX {
                dist[w] = dist[u] + 1;
                out.push((w, dist[w]));
                queue.push_back(w);
            }
        }
    }
    out
}

/// The "remote ring" of `v`: nodes at distance in `[2, k]` — the candidate
/// pool from which GraphRARE selects new neighbours.
pub fn remote_ring(g: &Graph, v: usize, k: usize) -> Vec<usize> {
    k_hop_neighbors(g, v, k).into_iter().filter(|&(_, d)| d >= 2).map(|(u, _)| u).collect()
}

/// Reusable state for [`remote_ring_into`]: epoch-stamped visited marks
/// plus a BFS queue, so repeated ring enumerations (one per node in
/// `EntropySequences::build`) allocate nothing after warm-up.
///
/// The marks are compared against a per-call epoch instead of being
/// cleared, so reuse costs O(ring) per call rather than O(n). A single
/// scratch may be shared across graphs of different sizes; the mark
/// vector grows lazily.
#[derive(Debug, Default)]
pub struct RingScratch {
    mark: Vec<u64>,
    epoch: u64,
    queue: VecDeque<(u32, u32)>,
}

impl RingScratch {
    /// A fresh scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Allocation-free [`remote_ring`]: appends the distance-`[2, k]` ring of
/// `v` to `out` in the same BFS discovery order `remote_ring` produces.
/// `out` is *not* cleared — callers truncate or clear as needed.
pub fn remote_ring_into(
    g: &Graph,
    v: usize,
    k: usize,
    scratch: &mut RingScratch,
    out: &mut Vec<usize>,
) {
    let n = g.num_nodes();
    if scratch.mark.len() < n {
        scratch.mark.resize(n, 0);
    }
    scratch.epoch += 1;
    let epoch = scratch.epoch;
    scratch.queue.clear();
    scratch.mark[v] = epoch;
    scratch.queue.push_back((v as u32, 0));
    while let Some((u, d)) = scratch.queue.pop_front() {
        if d as usize == k {
            continue;
        }
        for w in g.neighbors(u as usize) {
            if scratch.mark[w] != epoch {
                scratch.mark[w] = epoch;
                if d + 1 >= 2 {
                    out.push(w);
                }
                scratch.queue.push_back((w as u32, d + 1));
            }
        }
    }
}

/// All nodes within `radius` hops of *any* source (sources included, at
/// distance 0), as a sorted, deduplicated vector. This is the dirty-set
/// primitive for incremental entropy: after a flip batch, ring
/// membership can only change inside a bounded ball around the flipped
/// endpoints.
pub fn multi_source_ball(g: &Graph, sources: &[usize], radius: usize) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.num_nodes()];
    let mut out = Vec::new();
    let mut queue = VecDeque::new();
    for &s in sources {
        if dist[s] == usize::MAX {
            dist[s] = 0;
            out.push(s);
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        if dist[u] == radius {
            continue;
        }
        for w in g.neighbors(u) {
            if dist[w] == usize::MAX {
                dist[w] = dist[u] + 1;
                out.push(w);
                queue.push_back(w);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Connected components as a label vector (component ids are dense,
/// assigned in order of the lowest node id in the component).
pub fn connected_components(g: &Graph) -> Vec<usize> {
    let n = g.num_nodes();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        comp[start] = next;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for w in g.neighbors(u) {
                if comp[w] == usize::MAX {
                    comp[w] = next;
                    queue.push_back(w);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Number of connected components.
pub fn num_components(g: &Graph) -> usize {
    connected_components(g).into_iter().max().map_or(0, |m| m + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrare_tensor::Matrix;

    fn path(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges, Matrix::zeros(n, 1), vec![0; n], 1)
    }

    #[test]
    fn k_hop_distances_on_path() {
        let g = path(5);
        let hops = k_hop_neighbors(&g, 0, 3);
        assert_eq!(hops, vec![(1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn remote_ring_excludes_one_hop() {
        let g = path(6);
        assert_eq!(remote_ring(&g, 0, 4), vec![2, 3, 4]);
        assert_eq!(remote_ring(&g, 2, 2), vec![0, 4]);
    }

    #[test]
    fn k_zero_is_empty() {
        let g = path(3);
        assert!(k_hop_neighbors(&g, 1, 0).is_empty());
    }

    #[test]
    fn remote_ring_into_matches_remote_ring_across_reuse() {
        let g = path(7);
        let mut scratch = RingScratch::new();
        let mut out = Vec::new();
        for v in 0..7 {
            for k in 0..5 {
                out.clear();
                remote_ring_into(&g, v, k, &mut scratch, &mut out);
                assert_eq!(out, remote_ring(&g, v, k), "v={v} k={k}");
            }
        }
        // The same scratch must stay correct on a different (larger) graph.
        let g2 = path(12);
        out.clear();
        remote_ring_into(&g2, 0, 6, &mut scratch, &mut out);
        assert_eq!(out, remote_ring(&g2, 0, 6));
    }

    #[test]
    fn multi_source_ball_covers_union_of_balls() {
        let g = path(8);
        assert_eq!(multi_source_ball(&g, &[0], 2), vec![0, 1, 2]);
        assert_eq!(multi_source_ball(&g, &[0, 5], 1), vec![0, 1, 4, 5, 6]);
        // Duplicate sources are harmless; radius 0 returns the sources.
        assert_eq!(multi_source_ball(&g, &[3, 3], 0), vec![3]);
        assert!(multi_source_ball(&g, &[], 3).is_empty());
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = Graph::from_edges(5, &[(0, 1), (3, 4)], Matrix::zeros(5, 1), vec![0; 5], 1);
        assert_eq!(connected_components(&g), vec![0, 0, 1, 2, 2]);
        assert_eq!(num_components(&g), 3);
    }

    #[test]
    fn single_component_path() {
        let g = path(4);
        assert_eq!(num_components(&g), 1);
    }
}
