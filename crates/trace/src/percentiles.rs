//! Exact per-path duration percentiles over a full trace.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use graphrare_telemetry::metrics::percentile_of_sorted;

use crate::model::Span;

/// Aggregated statistics for one call path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathRow {
    /// `/`-joined call path.
    pub path: String,
    /// Number of spans on this path.
    pub count: u64,
    /// Summed wall time.
    pub total_ns: u64,
    /// Summed self time.
    pub self_ns: u64,
    /// Exact nearest-rank percentiles of the wall-time distribution.
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
}

/// Groups span durations by path and computes exact nearest-rank
/// p50/p90/p99 over every sample. The offline analyzer holds the full
/// stream, so — unlike the in-process reservoir, which is capped —
/// these are exact at any count.
pub fn percentile_rows(spans: &[Span]) -> Vec<PathRow> {
    let mut by_path: BTreeMap<&str, (Vec<u64>, u64)> = BTreeMap::new();
    for span in spans {
        let (durations, self_ns) = by_path.entry(&span.path).or_default();
        durations.push(span.ns);
        *self_ns = self_ns.saturating_add(span.self_ns);
    }
    by_path
        .into_iter()
        .map(|(path, (mut durations, self_ns))| {
            let total_ns = durations.iter().fold(0u64, |a, &b| a.saturating_add(b));
            // One sort per path; the three quantile reads share it.
            durations.sort_unstable();
            PathRow {
                path: path.to_owned(),
                count: durations.len() as u64,
                total_ns,
                self_ns,
                p50_ns: percentile_of_sorted(&durations, 50.0),
                p90_ns: percentile_of_sorted(&durations, 90.0),
                p99_ns: percentile_of_sorted(&durations, 99.0),
            }
        })
        .collect()
}

/// Aligned table, one row per path, sorted by path.
pub fn render_percentiles(rows: &[PathRow]) -> String {
    let width = rows.iter().map(|r| r.path.len()).max().unwrap_or(4).max(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<width$} {:>8} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "path", "count", "total_ms", "self_ms", "p50_us", "p90_us", "p99_us"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<width$} {:>8} {:>12.3} {:>12.3} {:>10.1} {:>10.1} {:>10.1}",
            r.path,
            r.count,
            r.total_ns as f64 / 1e6,
            r.self_ns as f64 / 1e6,
            r.p50_ns as f64 / 1e3,
            r.p90_ns as f64 / 1e3,
            r.p99_ns as f64 / 1e3
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_exact_over_all_samples() {
        let spans: Vec<Span> = (1..=100)
            .map(|i| Span {
                span_id: i,
                parent_id: None,
                name: "step".into(),
                path: "step".into(),
                ns: i * 1000,
                self_ns: i * 500,
                start_ns: i,
                alloc_count: 0,
                alloc_bytes: 0,
                run_id: None,
            })
            .collect();
        let rows = percentile_rows(&spans);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.count, 100);
        assert_eq!(r.p50_ns, 50_000);
        assert_eq!(r.p90_ns, 90_000);
        assert_eq!(r.p99_ns, 99_000);
        assert_eq!(r.total_ns, 5_050_000);
        assert_eq!(r.self_ns, 2_525_000);
        assert!(render_percentiles(&rows).contains("step"));
    }
}
