//! Span extraction from a validated telemetry JSONL stream.

use std::collections::BTreeSet;
use std::path::Path;

use graphrare_telemetry::json::{self, Json};

/// One closed span, as reconstructed from a v2 `span` event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Process-unique id, allocated at guard creation.
    pub span_id: u64,
    /// Enclosing span's id; `None` for roots.
    pub parent_id: Option<u64>,
    /// Leaf name, e.g. `rewire.apply`.
    pub name: String,
    /// `/`-joined call path from its root, e.g.
    /// `driver.run/driver.step/rewire.apply`.
    pub path: String,
    /// Wall time.
    pub ns: u64,
    /// Wall time minus the wall time of direct children.
    pub self_ns: u64,
    /// Start offset from the process telemetry epoch.
    pub start_ns: u64,
    /// Allocations attributed to this span (0 without the counting
    /// allocator installed in the emitting binary).
    pub alloc_count: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
    /// The run this span belongs to when the stream multiplexes
    /// several (schema-v3 tag from the serving daemon); `None` for
    /// solo-run streams.
    pub run_id: Option<u64>,
}

impl Span {
    /// Call depth: roots are 0.
    pub fn depth(&self) -> usize {
        self.path.matches('/').count()
    }
}

fn u64_field(event: &Json, key: &str) -> Option<u64> {
    let x = event.get(key)?.as_f64()?;
    (x.is_finite() && x >= 0.0 && x.fract() == 0.0).then_some(x as u64)
}

fn span_from_event(line_no: usize, event: &Json) -> Result<Span, String> {
    let field = |key: &str| {
        u64_field(event, key).ok_or_else(|| format!("line {line_no}: span missing u64 {key}"))
    };
    let text = |key: &str| {
        event
            .get(key)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("line {line_no}: span missing string {key}"))
    };
    Ok(Span {
        span_id: field("span_id")?,
        parent_id: event.get("parent_id").map(|_| field("parent_id")).transpose()?,
        name: text("name")?,
        path: text("path")?,
        ns: field("ns")?,
        self_ns: field("self_ns")?,
        start_ns: field("start_ns")?,
        alloc_count: u64_field(event, "alloc_n").unwrap_or(0),
        alloc_bytes: u64_field(event, "alloc_bytes").unwrap_or(0),
        run_id: u64_field(event, "run_id"),
    })
}

/// Keeps only the spans tagged with `run_id` — how the analyzers
/// separate one run out of a daemon-multiplexed stream. Untagged spans
/// (solo-run streams, pre-v3 events) never match a filter.
pub fn filter_run(spans: &[Span], run_id: u64) -> Vec<Span> {
    spans.iter().filter(|s| s.run_id == Some(run_id)).cloned().collect()
}

/// Parses a telemetry JSONL stream and returns its spans, in stream
/// order. Every line is schema-validated (v1 or v2); non-span events
/// are skipped. The spans must form a closed forest: a `parent_id`
/// that never appears as a `span_id` — the signature of a truncated
/// trace — is an error.
pub fn parse_spans(text: &str) -> Result<Vec<Span>, String> {
    let mut spans = Vec::new();
    let mut ids = BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let event = json::validate_event_line(line).map_err(|e| format!("line {line_no}: {e}"))?;
        if event.get("event").and_then(Json::as_str) != Some("span") {
            continue;
        }
        let span = span_from_event(line_no, &event)?;
        ids.insert(span.span_id);
        spans.push(span);
    }
    for span in &spans {
        if let Some(parent) = span.parent_id {
            if !ids.contains(&parent) {
                return Err(format!(
                    "span {} ({}): orphaned parent_id {parent} (truncated trace?)",
                    span.span_id, span.path
                ));
            }
        }
    }
    Ok(spans)
}

/// [`parse_spans`] over a file.
pub fn parse_spans_file(path: &Path) -> Result<Vec<Span>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("failed to read {}: {e}", path.display()))?;
    parse_spans(&text).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(id: u64, parent: Option<u64>, path: &str, ns: u64) -> String {
        let name = path.rsplit('/').next().unwrap();
        let parent = parent.map(|p| format!("\"parent_id\":{p},")).unwrap_or_default();
        format!(
            "{{\"v\":2,\"event\":\"span\",\"name\":\"{name}\",\"span_id\":{id},{parent}\"path\":\"{path}\",\"ns\":{ns},\"self_ns\":{ns},\"start_ns\":0}}"
        )
    }

    #[test]
    fn parses_spans_and_skips_other_events() {
        let text = format!(
            "{{\"v\":1,\"event\":\"run_start\",\"seed\":7}}\n{}\n{}\n",
            line(1, None, "a", 100),
            line(2, Some(1), "a/b", 40)
        );
        let spans = parse_spans(&text).unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].path, "a");
        assert_eq!(spans[1].parent_id, Some(1));
        assert_eq!(spans[1].depth(), 1);
    }

    #[test]
    fn rejects_orphaned_parents() {
        let text = format!("{}\n", line(5, Some(99), "a/b", 10));
        let err = parse_spans(&text).unwrap_err();
        assert!(err.contains("orphaned parent_id 99"), "{err}");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_spans("not json\n").is_err());
        assert!(parse_spans("{\"v\":2,\"event\":\"span\",\"name\":\"x\"}\n").is_err());
    }
}
