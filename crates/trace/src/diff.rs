//! Run-to-run regression gate over per-path totals.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::model::Span;

/// One path's baseline-vs-candidate comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffRow {
    /// `/`-joined call path.
    pub path: String,
    /// Summed wall time in the baseline run (0 when the path is new).
    pub base_ns: u64,
    /// Summed wall time in the candidate run (0 when it disappeared).
    pub cand_ns: u64,
    /// `(cand - base) / base`; `None` when the path exists in only one
    /// run (no ratio to take).
    pub delta: Option<f64>,
    /// True when this row trips the gate.
    pub regressed: bool,
}

/// The gate's verdict over two runs.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffReport {
    /// Every path seen in either run, sorted, with its comparison.
    pub rows: Vec<DiffRow>,
    /// Threshold the gate ran at, as a fraction (0.10 = +10%).
    pub max_regress: f64,
    /// Paths below this baseline total were exempt from the gate.
    pub min_total_ns: u64,
}

impl DiffReport {
    /// Rows that tripped the gate.
    pub fn regressions(&self) -> impl Iterator<Item = &DiffRow> {
        self.rows.iter().filter(|r| r.regressed)
    }

    /// True when the candidate passes (no path regressed).
    pub fn passed(&self) -> bool {
        !self.rows.iter().any(|r| r.regressed)
    }
}

/// Narrows a span set to paths involving `prefix`: a span is kept when
/// any `/`-separated frame of its path *starts with* the prefix, so
/// `rewire.` matches `driver.step/rewire.apply/rewire.guard` at every
/// depth. Used to scope the diff gate to one subsystem's spans without
/// the surrounding (noisier) driver paths diluting or tripping it.
pub fn filter_by_prefix(spans: Vec<Span>, prefix: &str) -> Vec<Span> {
    spans.into_iter().filter(|s| s.path.split('/').any(|f| f.starts_with(prefix))).collect()
}

fn totals_by_path(spans: &[Span]) -> BTreeMap<String, u64> {
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    for span in spans {
        let slot = totals.entry(span.path.clone()).or_insert(0);
        *slot = slot.saturating_add(span.ns);
    }
    totals
}

/// Compares per-path summed wall time of a candidate run against a
/// baseline. A path regresses when its baseline total is at least
/// `min_total_ns` (noise floor — sub-threshold paths jitter too much
/// to gate on) and the candidate total exceeds the baseline by
/// *strictly more* than `max_regress` (a fraction; 0.0 gates on any
/// slowdown but still passes an identical run). Paths present in only
/// one run are reported but never gate.
pub fn diff(
    baseline: &[Span],
    candidate: &[Span],
    max_regress: f64,
    min_total_ns: u64,
) -> DiffReport {
    let base = totals_by_path(baseline);
    let cand = totals_by_path(candidate);
    let mut paths: Vec<&String> = base.keys().chain(cand.keys()).collect();
    paths.sort();
    paths.dedup();
    let rows = paths
        .into_iter()
        .map(|path| {
            let base_ns = base.get(path).copied().unwrap_or(0);
            let cand_ns = cand.get(path).copied().unwrap_or(0);
            let both = base.contains_key(path) && cand.contains_key(path);
            let delta = both.then(|| (cand_ns as f64 - base_ns as f64) / (base_ns as f64).max(1.0));
            let regressed =
                both && base_ns >= min_total_ns && delta.is_some_and(|d| d > max_regress);
            DiffRow { path: path.clone(), base_ns, cand_ns, delta, regressed }
        })
        .collect();
    DiffReport { rows, max_regress, min_total_ns }
}

/// Aligned table plus a one-line verdict.
pub fn render_diff(report: &DiffReport) -> String {
    let width = report.rows.iter().map(|r| r.path.len()).max().unwrap_or(4).max(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<width$} {:>12} {:>12} {:>9}  gate",
        "path", "base_ms", "cand_ms", "delta"
    );
    for r in &report.rows {
        let delta = match r.delta {
            Some(d) => format!("{:>+8.1}%", d * 100.0),
            None if r.base_ns == 0 => "     new".to_owned(),
            None => "    gone".to_owned(),
        };
        let _ = writeln!(
            out,
            "{:<width$} {:>12.3} {:>12.3} {:>9}  {}",
            r.path,
            r.base_ns as f64 / 1e6,
            r.cand_ns as f64 / 1e6,
            delta,
            if r.regressed { "REGRESSED" } else { "ok" }
        );
    }
    let n = report.regressions().count();
    if n == 0 {
        let _ =
            writeln!(out, "PASS: no path regressed more than {:.1}%", report.max_regress * 100.0);
    } else {
        let _ = writeln!(
            out,
            "FAIL: {n} path(s) regressed more than {:.1}%",
            report.max_regress * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, path: &str, ns: u64) -> Span {
        Span {
            span_id: id,
            parent_id: None,
            name: path.rsplit('/').next().unwrap().to_owned(),
            path: path.to_owned(),
            ns,
            self_ns: ns,
            start_ns: 0,
            alloc_count: 0,
            alloc_bytes: 0,
            run_id: None,
        }
    }

    #[test]
    fn identical_runs_pass_even_at_zero_threshold() {
        let run = vec![span(1, "a", 100), span(2, "a/b", 50)];
        let report = diff(&run, &run, 0.0, 0);
        assert!(report.passed());
        assert!(render_diff(&report).contains("PASS"));
    }

    #[test]
    fn slowdown_past_threshold_trips_the_gate() {
        let base = vec![span(1, "a", 1000)];
        let slow = vec![span(1, "a", 1200)];
        let report = diff(&base, &slow, 0.10, 0);
        assert!(!report.passed());
        assert_eq!(report.regressions().count(), 1);
        // 20% slower but the gate allows 25%.
        assert!(diff(&base, &slow, 0.25, 0).passed());
    }

    #[test]
    fn prefix_filter_matches_frames_at_any_depth() {
        let spans = vec![
            span(1, "driver.run/driver.step/rewire.apply", 10),
            span(2, "driver.run/driver.step/rewire.apply/rewire.guard", 20),
            span(3, "driver.run/driver.step", 30),
            span(4, "rewire.entropy_refresh", 40),
        ];
        let kept = filter_by_prefix(spans, "rewire.");
        let paths: Vec<&str> = kept.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "driver.run/driver.step/rewire.apply",
                "driver.run/driver.step/rewire.apply/rewire.guard",
                "rewire.entropy_refresh",
            ]
        );
    }

    #[test]
    fn noise_floor_and_one_sided_paths_never_gate() {
        let base = vec![span(1, "tiny", 10), span(2, "gone", 500)];
        let cand = vec![span(1, "tiny", 100), span(3, "new", 900)];
        let report = diff(&base, &cand, 0.0, 1000);
        assert!(report.passed(), "sub-floor and one-sided paths must not gate");
        let rendered = render_diff(&report);
        assert!(rendered.contains("new") && rendered.contains("gone"), "{rendered}");
    }
}
