//! Folded-stack assembly for flamegraph renderers.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::model::Span;

/// Aggregates self time by call path, with `/` rewritten to the `;`
/// separator of the folded-stack format. Because `self_ns` is wall
/// time minus direct children, the values telescope: summing every
/// folded line under a root reproduces that root span's wall time.
pub fn folded_stacks(spans: &[Span]) -> BTreeMap<String, u64> {
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for span in spans {
        let slot = folded.entry(span.path.replace('/', ";")).or_insert(0);
        *slot = slot.saturating_add(span.self_ns);
    }
    folded
}

/// One `stack;frames SELF_NS` line per path, lexicographically sorted
/// (so parents precede their children and output is deterministic).
pub fn render_folded(folded: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (stack, self_ns) in folded {
        let _ = writeln!(out, "{stack} {self_ns}");
    }
    out
}

/// Total folded self time grouped by root frame: the per-tree wall
/// time. `root_totals(...)["driver.run"]` equals the `driver.run`
/// span's `ns` (exactly, when the stream holds the full tree).
pub fn root_totals(folded: &BTreeMap<String, u64>) -> BTreeMap<String, u64> {
    let mut roots: BTreeMap<String, u64> = BTreeMap::new();
    for (stack, self_ns) in folded {
        let root = stack.split(';').next().unwrap_or(stack).to_owned();
        let total = roots.entry(root).or_insert(0);
        *total = total.saturating_add(*self_ns);
    }
    roots
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>, path: &str, ns: u64, self_ns: u64) -> Span {
        Span {
            span_id: id,
            parent_id: parent,
            name: path.rsplit('/').next().unwrap().to_owned(),
            path: path.to_owned(),
            ns,
            self_ns,
            start_ns: 0,
            alloc_count: 0,
            alloc_bytes: 0,
            run_id: None,
        }
    }

    #[test]
    fn folds_self_time_by_path_and_totals_telescope() {
        let spans = vec![
            span(1, None, "run", 100, 30),
            span(2, Some(1), "run/step", 40, 25),
            span(3, Some(2), "run/step/inner", 15, 15),
            span(4, Some(1), "run/step", 30, 30),
        ];
        let folded = folded_stacks(&spans);
        assert_eq!(folded.get("run"), Some(&30));
        assert_eq!(folded.get("run;step"), Some(&55));
        assert_eq!(folded.get("run;step;inner"), Some(&15));
        assert_eq!(root_totals(&folded).get("run"), Some(&100));
        let rendered = render_folded(&folded);
        assert_eq!(rendered, "run 30\nrun;step 55\nrun;step;inner 15\n");
    }
}
