//! Start-ordered span timeline.

use std::fmt::Write as _;

use crate::model::Span;

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Renders every span in start order, indented by call depth, with
/// wall and self durations (and allocation counts when attributed).
/// Ties on `start_ns` break by `span_id`, which increases in guard
/// creation order — so the listing is the execution order.
pub fn render_timeline(spans: &[Span]) -> String {
    let mut ordered: Vec<&Span> = spans.iter().collect();
    ordered.sort_by_key(|s| (s.start_ns, s.span_id));
    let mut out = String::new();
    let _ = writeln!(out, "{:>12} {:>12} {:>12}  span", "start_ms", "wall_ms", "self_ms");
    for span in ordered {
        let indent = "  ".repeat(span.depth());
        let _ = write!(
            out,
            "{:>12.3} {:>12.3} {:>12.3}  {indent}{}",
            ms(span.start_ns),
            ms(span.ns),
            ms(span.self_ns),
            span.name
        );
        if span.alloc_count > 0 {
            let _ = write!(out, "  [allocs {} / {} B]", span.alloc_count, span.alloc_bytes);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_start_and_indents_by_depth() {
        let mk = |id, parent, path: &str, start, ns| Span {
            span_id: id,
            parent_id: parent,
            name: path.rsplit('/').next().unwrap().to_owned(),
            path: path.to_owned(),
            ns,
            self_ns: ns,
            start_ns: start,
            alloc_count: 0,
            alloc_bytes: 0,
            run_id: None,
        };
        // Stream order is drop order (children first); the timeline
        // must re-sort by start.
        let spans = vec![mk(2, Some(1), "a/b", 10, 5), mk(1, None, "a", 0, 20)];
        let text = render_timeline(&spans);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].ends_with("  a"), "{:?}", lines[1]);
        assert!(lines[2].ends_with("    b"), "{:?}", lines[2]);
    }
}
