//! Offline analysis of GraphRARE telemetry JSONL streams.
//!
//! The registry's `SpanGuard` emits one schema-v2 `span` event per
//! closed span, carrying its identity (`span_id`/`parent_id`), its
//! `/`-joined call path, wall time, self time (wall minus direct
//! children) and — when the counting allocator is installed —
//! allocation attribution. This crate reconstructs the span forest
//! from such a stream and renders it four ways, matching the
//! `graphrare-trace` subcommands:
//!
//! - [`timeline`]: spans in start order, indented by call depth, with
//!   wall/self durations — the "what ran when" view.
//! - [`flame`]: folded stacks (`a;b;c SELF_NS` lines) aggregating self
//!   time per path, directly consumable by standard flamegraph
//!   renderers. Because self times telescope, the folded total under
//!   any root equals that root span's wall time.
//! - [`percentiles`]: exact p50/p90/p99 per path over *all* durations
//!   in the stream (the offline analyzer holds every sample, so unlike
//!   the in-process reservoir there is no sampling cap).
//! - [`diff`]: per-path total-time comparison of two runs with a
//!   configurable regression threshold — the CI perf gate.
//!
//! Parsing is strict: every line must pass the shared
//! [`graphrare_telemetry::json`] schema validation, and the span
//! stream must form a closed forest (no orphaned `parent_id`).

pub mod diff;
pub mod flame;
pub mod model;
pub mod percentiles;
pub mod timeline;

pub use diff::{diff, filter_by_prefix, render_diff, DiffReport, DiffRow};
pub use flame::{folded_stacks, render_folded, root_totals};
pub use model::{filter_run, parse_spans, parse_spans_file, Span};
pub use percentiles::{percentile_rows, render_percentiles, PathRow};
pub use timeline::render_timeline;
