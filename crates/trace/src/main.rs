//! `graphrare-trace` — offline analyzer for telemetry JSONL streams.
//!
//! ```text
//! graphrare-trace timeline RUN.jsonl
//! graphrare-trace flame RUN.jsonl [--out STACKS.folded]
//! graphrare-trace percentiles RUN.jsonl
//! graphrare-trace diff BASE.jsonl CAND.jsonl [--max-regress PCT[%]] [--min-total-ns NS]
//! ```
//!
//! `flame` writes folded stacks (`a;b;c SELF_NS`) for flamegraph
//! renderers; `percentiles` prints exact per-path p50/p90/p99 over the
//! whole stream; `diff` compares per-path totals of two runs and exits
//! non-zero when any path regresses past the threshold (default 10%),
//! which is how `scripts/check.sh` uses it as a perf gate.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use graphrare_trace::{
    diff, folded_stacks, parse_spans_file, percentile_rows, render_diff, render_folded,
    render_percentiles, render_timeline,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: graphrare-trace timeline RUN.jsonl\n       graphrare-trace flame RUN.jsonl [--out FILE]\n       graphrare-trace percentiles RUN.jsonl\n       graphrare-trace diff BASE.jsonl CAND.jsonl [--max-regress PCT[%]] [--min-total-ns NS]"
    );
    ExitCode::from(2)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("graphrare-trace: {msg}");
    ExitCode::FAILURE
}

/// Writes to stdout treating a closed pipe as success — the reports
/// are routinely piped into `head` or flamegraph renderers, and
/// `print!` would abort on the resulting `EPIPE`.
fn emit(text: &str) -> Result<(), String> {
    use std::io::Write as _;
    match std::io::stdout().write_all(text.as_bytes()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        Err(e) => Err(format!("failed to write to stdout: {e}")),
    }
}

/// Accepts `10`, `10%` or `12.5%`; the number is a percentage.
fn parse_percent(arg: &str) -> Result<f64, String> {
    let digits = arg.strip_suffix('%').unwrap_or(arg);
    let pct: f64 = digits.parse().map_err(|_| format!("bad percentage {arg:?}"))?;
    if !pct.is_finite() || pct < 0.0 {
        return Err(format!("bad percentage {arg:?}"));
    }
    Ok(pct / 100.0)
}

fn run_diff(base: &Path, cand: &Path, opts: &[String]) -> Result<ExitCode, String> {
    let mut max_regress = 0.10;
    let mut min_total_ns = 0u64;
    let mut i = 0;
    while i < opts.len() {
        let value =
            |i: usize| opts.get(i + 1).cloned().ok_or_else(|| format!("{} needs a value", opts[i]));
        match opts[i].as_str() {
            "--max-regress" => max_regress = parse_percent(&value(i)?)?,
            "--min-total-ns" => {
                min_total_ns = value(i)?
                    .parse()
                    .map_err(|_| format!("bad --min-total-ns {:?}", opts[i + 1]))?
            }
            other => return Err(format!("unknown diff option {other}")),
        }
        i += 2;
    }
    let report =
        diff(&parse_spans_file(base)?, &parse_spans_file(cand)?, max_regress, min_total_ns);
    emit(&render_diff(&report))?;
    Ok(if report.passed() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result: Result<ExitCode, String> = match argv.as_slice() {
        [cmd, file] if cmd == "timeline" => parse_spans_file(Path::new(file)).and_then(|spans| {
            emit(&render_timeline(&spans))?;
            Ok(ExitCode::SUCCESS)
        }),
        [cmd, file, rest @ ..] if cmd == "flame" => {
            let out = match rest {
                [] => None,
                [flag, path] if flag == "--out" => Some(PathBuf::from(path)),
                _ => return usage(),
            };
            parse_spans_file(Path::new(file)).and_then(|spans| {
                let folded = render_folded(&folded_stacks(&spans));
                match out {
                    Some(path) => std::fs::write(&path, &folded)
                        .map_err(|e| format!("failed to write {}: {e}", path.display()))?,
                    None => emit(&folded)?,
                }
                Ok(ExitCode::SUCCESS)
            })
        }
        [cmd, file] if cmd == "percentiles" => {
            parse_spans_file(Path::new(file)).and_then(|spans| {
                emit(&render_percentiles(&percentile_rows(&spans)))?;
                Ok(ExitCode::SUCCESS)
            })
        }
        [cmd, base, cand, rest @ ..] if cmd == "diff" => {
            run_diff(Path::new(base), Path::new(cand), rest)
        }
        _ => return usage(),
    };
    result.unwrap_or_else(|e| fail(&e))
}
