//! `graphrare-trace` — offline analyzer for telemetry JSONL streams.
//!
//! ```text
//! graphrare-trace timeline RUN.jsonl [--run-id N]
//! graphrare-trace flame RUN.jsonl [--out STACKS.folded] [--run-id N]
//! graphrare-trace percentiles RUN.jsonl [--run-id N]
//! graphrare-trace diff BASE.jsonl CAND.jsonl [--max-regress PCT[%]] [--min-total-ns NS]
//! ```
//!
//! `flame` writes folded stacks (`a;b;c SELF_NS`) for flamegraph
//! renderers; `percentiles` prints exact per-path p50/p90/p99 over the
//! whole stream; `diff` compares per-path totals of two runs and exits
//! non-zero when any path regresses past the threshold (default 10%),
//! which is how `scripts/check.sh` uses it as a perf gate. `--run-id`
//! keeps only spans tagged with that run (schema v3), separating one
//! run out of a daemon-multiplexed stream.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use graphrare_trace::{
    diff, filter_by_prefix, filter_run, folded_stacks, parse_spans_file, percentile_rows,
    render_diff, render_folded, render_percentiles, render_timeline, Span,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: graphrare-trace timeline RUN.jsonl [--run-id N]\n       graphrare-trace flame RUN.jsonl [--out FILE] [--run-id N]\n       graphrare-trace percentiles RUN.jsonl [--run-id N]\n       graphrare-trace diff BASE.jsonl CAND.jsonl [--max-regress PCT[%]] [--min-total-ns NS] [--path-prefix PFX]"
    );
    ExitCode::from(2)
}

/// Splits `--run-id N` out of an option list, leaving the rest for the
/// subcommand's own parser.
fn take_run_id(opts: &[String]) -> Result<(Option<u64>, Vec<String>), String> {
    let mut run_id = None;
    let mut rest = Vec::new();
    let mut i = 0;
    while i < opts.len() {
        if opts[i] == "--run-id" {
            let v = opts.get(i + 1).ok_or("--run-id needs a value")?;
            match v.parse::<u64>() {
                Ok(id) if id > 0 => run_id = Some(id),
                _ => return Err(format!("bad --run-id {v:?} (positive integer required)")),
            }
            i += 2;
        } else {
            rest.push(opts[i].clone());
            i += 1;
        }
    }
    Ok((run_id, rest))
}

/// Parses a stream (full-stream schema and forest validation first),
/// then optionally narrows to one run's spans.
fn load_spans(file: &str, run_id: Option<u64>) -> Result<Vec<Span>, String> {
    let spans = parse_spans_file(Path::new(file))?;
    match run_id {
        Some(id) => {
            let kept = filter_run(&spans, id);
            if kept.is_empty() {
                return Err(format!("{file}: no spans tagged run_id {id}"));
            }
            Ok(kept)
        }
        None => Ok(spans),
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("graphrare-trace: {msg}");
    ExitCode::FAILURE
}

/// Writes to stdout treating a closed pipe as success — the reports
/// are routinely piped into `head` or flamegraph renderers, and
/// `print!` would abort on the resulting `EPIPE`.
fn emit(text: &str) -> Result<(), String> {
    use std::io::Write as _;
    match std::io::stdout().write_all(text.as_bytes()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        Err(e) => Err(format!("failed to write to stdout: {e}")),
    }
}

/// Accepts `10`, `10%` or `12.5%`; the number is a percentage.
fn parse_percent(arg: &str) -> Result<f64, String> {
    let digits = arg.strip_suffix('%').unwrap_or(arg);
    let pct: f64 = digits.parse().map_err(|_| format!("bad percentage {arg:?}"))?;
    if !pct.is_finite() || pct < 0.0 {
        return Err(format!("bad percentage {arg:?}"));
    }
    Ok(pct / 100.0)
}

fn run_diff(base: &Path, cand: &Path, opts: &[String]) -> Result<ExitCode, String> {
    let mut max_regress = 0.10;
    let mut min_total_ns = 0u64;
    let mut path_prefix: Option<String> = None;
    let mut i = 0;
    while i < opts.len() {
        let value =
            |i: usize| opts.get(i + 1).cloned().ok_or_else(|| format!("{} needs a value", opts[i]));
        match opts[i].as_str() {
            "--max-regress" => max_regress = parse_percent(&value(i)?)?,
            "--min-total-ns" => {
                min_total_ns = value(i)?
                    .parse()
                    .map_err(|_| format!("bad --min-total-ns {:?}", opts[i + 1]))?
            }
            // Scope the gate to paths with a frame starting with the
            // prefix (e.g. `rewire.`), at any depth.
            "--path-prefix" => path_prefix = Some(value(i)?),
            other => return Err(format!("unknown diff option {other}")),
        }
        i += 2;
    }
    let mut base_spans = parse_spans_file(base)?;
    let mut cand_spans = parse_spans_file(cand)?;
    if let Some(prefix) = &path_prefix {
        base_spans = filter_by_prefix(base_spans, prefix);
        cand_spans = filter_by_prefix(cand_spans, prefix);
        if base_spans.is_empty() {
            return Err(format!("no baseline span path has a frame starting with {prefix:?}"));
        }
    }
    let report = diff(&base_spans, &cand_spans, max_regress, min_total_ns);
    emit(&render_diff(&report))?;
    Ok(if report.passed() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result: Result<ExitCode, String> = match argv.as_slice() {
        [cmd, file, rest @ ..] if cmd == "timeline" => {
            take_run_id(rest).and_then(|(run_id, rest)| {
                if !rest.is_empty() {
                    return Err(format!("unknown timeline option {}", rest[0]));
                }
                emit(&render_timeline(&load_spans(file, run_id)?))?;
                Ok(ExitCode::SUCCESS)
            })
        }
        [cmd, file, rest @ ..] if cmd == "flame" => take_run_id(rest).and_then(|(run_id, rest)| {
            let out = match rest.as_slice() {
                [] => None,
                [flag, path] if flag == "--out" => Some(PathBuf::from(path)),
                _ => return Err(format!("unknown flame option {}", rest[0])),
            };
            let folded = render_folded(&folded_stacks(&load_spans(file, run_id)?));
            match out {
                Some(path) => std::fs::write(&path, &folded)
                    .map_err(|e| format!("failed to write {}: {e}", path.display()))?,
                None => emit(&folded)?,
            }
            Ok(ExitCode::SUCCESS)
        }),
        [cmd, file, rest @ ..] if cmd == "percentiles" => {
            take_run_id(rest).and_then(|(run_id, rest)| {
                if !rest.is_empty() {
                    return Err(format!("unknown percentiles option {}", rest[0]));
                }
                emit(&render_percentiles(&percentile_rows(&load_spans(file, run_id)?)))?;
                Ok(ExitCode::SUCCESS)
            })
        }
        [cmd, base, cand, rest @ ..] if cmd == "diff" => {
            run_diff(Path::new(base), Path::new(cand), rest)
        }
        _ => return usage(),
    };
    result.unwrap_or_else(|e| fail(&e))
}
