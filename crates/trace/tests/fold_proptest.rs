//! Property test: parsing a *shuffled* span-event stream reconstructs
//! the emitting span tree, and folded-stack assembly recovers exactly
//! the per-path self times — with the single-root total telescoping to
//! the root span's wall time.

use std::collections::BTreeMap;

use graphrare_trace::{folded_stacks, parse_spans, root_totals};
use proptest::prelude::*;

/// One generated span-tree node. Parents always precede children by
/// index, so `ns` can be accumulated bottom-up.
struct Node {
    parent: Option<usize>,
    path: String,
    self_ns: u64,
    ns: u64,
}

/// Builds a rooted tree from raw seeds: node 0 is the root, node i
/// hangs under a uniformly drawn earlier node. Names are drawn from a
/// 3-symbol alphabet so sibling paths can collide — folding must merge
/// them, not rely on unique paths.
fn build_tree(seeds: &[u64]) -> Vec<Node> {
    let mut nodes: Vec<Node> = Vec::with_capacity(seeds.len());
    for (i, &seed) in seeds.iter().enumerate() {
        let parent = (i > 0).then(|| (seed % i as u64) as usize);
        let name = format!("n{}", (seed >> 8) % 3);
        let path = match parent {
            Some(p) => format!("{}/{name}", nodes[p].path),
            None => name,
        };
        let self_ns = seed % 9_999 + 1;
        nodes.push(Node { parent, path, self_ns, ns: self_ns });
    }
    for i in (1..nodes.len()).rev() {
        let child_ns = nodes[i].ns;
        let p = nodes[i].parent.unwrap();
        nodes[p].ns += child_ns;
    }
    nodes
}

fn jsonl(nodes: &[Node], shuffle_seed: u64) -> String {
    let mut lines: Vec<String> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let name = n.path.rsplit('/').next().unwrap();
            let parent = n.parent.map(|p| format!("\"parent_id\":{},", p + 1)).unwrap_or_default();
            format!(
                "{{\"v\":2,\"event\":\"span\",\"name\":\"{name}\",\"span_id\":{},{parent}\"path\":\"{}\",\"ns\":{},\"self_ns\":{},\"start_ns\":{}}}",
                i + 1,
                n.path,
                n.ns,
                n.self_ns,
                i * 10
            )
        })
        .collect();
    // Interleave a non-span event the parser must skip.
    lines.push("{\"v\":2,\"event\":\"iter\",\"step\":0}".to_owned());
    // Deterministic Fisher–Yates driven by a splitmix64 stream: the
    // stream order carries no information the parser may rely on.
    let mut state = shuffle_seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..lines.len()).rev() {
        lines.swap(i, (next() % (i as u64 + 1)) as usize);
    }
    lines.join("\n") + "\n"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn shuffled_stream_reconstructs_tree_and_folds_exactly(
        seeds in proptest::collection::vec(any::<u64>(), 1..14),
        shuffle_seed in any::<u64>(),
    ) {
        let nodes = build_tree(&seeds);
        let spans = parse_spans(&jsonl(&nodes, shuffle_seed)).expect("stream parses");
        prop_assert_eq!(spans.len(), nodes.len());

        // The parsed forest carries the generated parent/child edges.
        for span in &spans {
            let i = (span.span_id - 1) as usize;
            prop_assert_eq!(span.parent_id, nodes[i].parent.map(|p| p as u64 + 1));
            prop_assert_eq!(span.path.as_str(), nodes[i].path.as_str());
            prop_assert_eq!(span.ns, nodes[i].ns);
        }

        // Folding recovers per-path self-time sums regardless of
        // stream order (sibling paths may collide and must merge).
        let mut expected: BTreeMap<String, u64> = BTreeMap::new();
        for n in &nodes {
            *expected.entry(n.path.replace('/', ";")).or_insert(0) += n.self_ns;
        }
        let folded = folded_stacks(&spans);
        prop_assert_eq!(&folded, &expected);

        // Single root: the folded total telescopes to its wall time.
        let roots = root_totals(&folded);
        prop_assert_eq!(roots.len(), 1);
        prop_assert_eq!(roots.values().copied().next(), Some(nodes[0].ns));
    }
}
