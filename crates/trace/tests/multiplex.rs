//! Golden-fixture contract for daemon-multiplexed streams: a checked-in
//! v3 JSONL stream interleaving two runs (`run_id` 1 and 2) must
//! validate as one stream, separate cleanly per run, and fold each
//! run's stacks independently through the `--run-id` CLI filter.

use std::path::Path;
use std::process::Command;

use graphrare_telemetry::json;
use graphrare_trace::{filter_run, folded_stacks, parse_spans_file};

const MULTIPLEX: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden_v3_multiplex.jsonl");

#[test]
fn multiplexed_fixture_lints_as_one_stream() {
    // The interleaved stream is a single valid JSONL file: every line
    // carries an accepted version, run tags are well-formed, and the
    // span forest (across both runs) is closed.
    let n = json::validate_jsonl_file(Path::new(MULTIPLEX)).expect("fixture lints");
    assert_eq!(n, 14);
}

#[test]
fn run_filter_separates_interleaved_runs() {
    let spans = parse_spans_file(Path::new(MULTIPLEX)).expect("fixture parses");
    assert_eq!(spans.len(), 6, "both runs' spans, non-span events skipped");

    let run1 = filter_run(&spans, 1);
    let run2 = filter_run(&spans, 2);
    assert_eq!(run1.len(), 3);
    assert_eq!(run2.len(), 3);
    assert!(run1.iter().all(|s| s.run_id == Some(1)));
    assert!(run2.iter().all(|s| s.run_id == Some(2)));
    assert!(filter_run(&spans, 3).is_empty(), "unknown run matches nothing");

    // Each run keeps its own intact tree: the filtered run-1 root is
    // span 101 and both steps parent to it.
    let root1 = run1.iter().find(|s| s.parent_id.is_none()).unwrap();
    assert_eq!(root1.span_id, 101);
    assert!(run1.iter().filter(|s| s.parent_id == Some(101)).count() == 2);

    // Folded totals telescope per run, not across the mixture.
    let folded1 = folded_stacks(&run1);
    let folded2 = folded_stacks(&run2);
    assert_eq!(folded1.get("driver.run"), Some(&150_000));
    assert_eq!(folded1.get("driver.run;driver.step"), Some(&250_000));
    assert_eq!(folded2.get("driver.run"), Some(&240_000));
    assert_eq!(folded2.get("driver.run;driver.step"), Some(&260_000));
}

#[test]
fn cli_run_id_flag_filters_every_view() {
    let bin = env!("CARGO_BIN_EXE_graphrare-trace");
    let run = |args: &[&str]| Command::new(bin).args(args).output().expect("binary runs");

    let flame = run(&["flame", MULTIPLEX, "--run-id", "1"]);
    assert!(flame.status.success());
    let stdout = String::from_utf8(flame.stdout).unwrap();
    assert!(stdout.contains("driver.run;driver.step 250000"), "{stdout}");
    assert!(!stdout.contains("260000"), "run 2 must be filtered out: {stdout}");

    let pct = run(&["percentiles", MULTIPLEX, "--run-id", "2"]);
    assert!(pct.status.success());
    let stdout = String::from_utf8(pct.stdout).unwrap();
    assert!(stdout.contains("driver.run/driver.step"), "{stdout}");

    assert!(run(&["timeline", MULTIPLEX, "--run-id", "1"]).status.success());
    // Unfiltered views still work on the mixed stream.
    assert!(run(&["timeline", MULTIPLEX]).status.success());

    // An unknown run id is a hard error, not an empty report.
    assert!(!run(&["timeline", MULTIPLEX, "--run-id", "9"]).status.success());
    assert!(!run(&["timeline", MULTIPLEX, "--run-id", "0"]).status.success());
}
