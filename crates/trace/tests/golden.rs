//! Golden-fixture contract for the trace analyzer: a checked-in v2
//! JSONL stream with a known span tree must reconstruct exactly, fold
//! into stacks whose root totals telescope to the root span's wall
//! time, yield exact percentiles, and drive the diff gate's exit code
//! through the `graphrare-trace` binary.

use std::path::Path;
use std::process::Command;

use graphrare_trace::{diff, folded_stacks, parse_spans_file, percentile_rows, root_totals};

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden_v2.jsonl");
const SLOW: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden_v2_slow.jsonl");

#[test]
fn golden_fixture_reconstructs_the_span_tree() {
    let spans = parse_spans_file(Path::new(GOLDEN)).expect("fixture parses");
    assert_eq!(spans.len(), 10, "non-span events must be skipped");

    // Tree shape: three precompute roots, then driver.run with two
    // steps each nesting apply/operators.
    let by_id = |id: u64| spans.iter().find(|s| s.span_id == id).unwrap();
    assert_eq!(by_id(10).parent_id, None);
    assert_eq!(by_id(11).parent_id, Some(10));
    assert_eq!(by_id(12).parent_id, Some(11));
    assert_eq!(by_id(13).parent_id, Some(12));
    assert_eq!(by_id(13).path, "driver.run/driver.step/rewire.apply/rewire.operators");
    assert_eq!(by_id(13).depth(), 3);
    assert_eq!(by_id(1).parent_id, None, "precompute spans are roots");
    assert_eq!(by_id(11).alloc_count, 120);
    assert_eq!(by_id(11).alloc_bytes, 4096);
}

#[test]
fn folded_root_total_equals_driver_run_wall_time() {
    let spans = parse_spans_file(Path::new(GOLDEN)).unwrap();
    let folded = folded_stacks(&spans);
    assert_eq!(folded.get("driver.run"), Some(&750_000));
    assert_eq!(folded.get("driver.run;driver.step"), Some(&130_000));
    assert_eq!(folded.get("driver.run;driver.step;rewire.apply"), Some(&50_000));
    assert_eq!(folded.get("driver.run;driver.step;rewire.apply;rewire.operators"), Some(&70_000));
    // Self times telescope: the folded total under the run root is the
    // run span's wall time, exactly.
    let run_ns = spans.iter().find(|s| s.path == "driver.run").unwrap().ns;
    assert_eq!(root_totals(&folded).get("driver.run"), Some(&run_ns));
}

#[test]
fn percentiles_are_exact_nearest_rank() {
    let spans = parse_spans_file(Path::new(GOLDEN)).unwrap();
    let rows = percentile_rows(&spans);
    let step = rows.iter().find(|r| r.path == "driver.run/driver.step").unwrap();
    assert_eq!(step.count, 2);
    assert_eq!(step.total_ns, 250_000);
    assert_eq!(step.self_ns, 130_000);
    assert_eq!(step.p50_ns, 100_000);
    assert_eq!(step.p99_ns, 150_000);
}

#[test]
fn diff_gates_on_the_injected_slowdown() {
    let base = parse_spans_file(Path::new(GOLDEN)).unwrap();
    let slow = parse_spans_file(Path::new(SLOW)).unwrap();
    // Identical runs pass even at a 0% threshold.
    assert!(diff(&base, &base, 0.0, 0).passed());
    // rewire.apply is ~21% slower in the slow fixture: trips 10%,
    // clears 25%.
    let at_10 = diff(&base, &slow, 0.10, 0);
    assert!(!at_10.passed());
    let tripped: Vec<&str> = at_10.regressions().map(|r| r.path.as_str()).collect();
    assert_eq!(tripped, ["driver.run/driver.step/rewire.apply"]);
    assert!(diff(&base, &slow, 0.25, 0).passed());
}

#[test]
fn binary_exit_codes_implement_the_perf_gate() {
    let bin = env!("CARGO_BIN_EXE_graphrare-trace");
    let run = |args: &[&str]| Command::new(bin).args(args).output().expect("binary runs");

    let flame = run(&["flame", GOLDEN]);
    assert!(flame.status.success());
    let stdout = String::from_utf8(flame.stdout).unwrap();
    // Every folded line is `stack;frames SELF_NS`.
    for line in stdout.lines() {
        let (stack, n) = line.rsplit_once(' ').expect("folded line has a count");
        assert!(!stack.is_empty() && n.parse::<u64>().is_ok(), "bad folded line: {line}");
    }
    assert!(stdout.contains("driver.run;driver.step;rewire.apply 50000"), "{stdout}");

    let pct = run(&["percentiles", GOLDEN]);
    assert!(pct.status.success());
    assert!(String::from_utf8(pct.stdout).unwrap().contains("p99_us"));

    let timeline = run(&["timeline", GOLDEN]);
    assert!(timeline.status.success());

    // The gate: self-diff passes at 0%; the injected slowdown fails at
    // 10% with a non-zero exit.
    assert!(run(&["diff", GOLDEN, GOLDEN, "--max-regress", "0%"]).status.success());
    let gate = run(&["diff", GOLDEN, SLOW, "--max-regress", "10%"]);
    assert!(!gate.status.success(), "injected slowdown must fail the gate");
    assert!(String::from_utf8(gate.stdout).unwrap().contains("REGRESSED"));

    // Malformed input is a hard error, not a pass.
    assert!(!run(&["flame", "/nonexistent.jsonl"]).status.success());
}
