//! Property-based tests of the GNN layer semantics: invariances that must
//! hold for arbitrary graphs and features.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use graphrare_gnn::{build_model, Backbone, GraphTensors, ModelConfig};
use graphrare_graph::Graph;
use graphrare_tensor::{Matrix, Tape};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..12, any::<u64>()).prop_flat_map(|(n, seed)| {
        proptest::collection::vec((0..n, 0..n), 0..30).prop_map(move |pairs| {
            use rand::Rng;
            let mut rng = StdRng::seed_from_u64(seed);
            let features = Matrix::from_fn(n, 5, |_, _| rng.gen_range(-1.0..1.0));
            let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
            Graph::from_edges(n, &pairs, features, labels, 2)
        })
    })
}

fn logits_of(backbone: Backbone, gt: &GraphTensors, in_dim: usize, classes: usize) -> Matrix {
    let model =
        build_model(backbone, in_dim, classes, &ModelConfig { seed: 7, ..Default::default() });
    let mut tape = Tape::new();
    let mut rng = StdRng::seed_from_u64(0);
    let y = model.forward(&mut tape, gt, false, &mut rng);
    tape.value(y).clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every backbone produces finite logits of the right shape on any
    /// graph, including graphs with isolated nodes and no edges at all.
    #[test]
    fn all_backbones_finite_on_arbitrary_graphs(g in arb_graph()) {
        let gt = GraphTensors::new(&g);
        for backbone in Backbone::ALL {
            let y = logits_of(backbone, &gt, g.feat_dim(), g.num_classes());
            prop_assert_eq!(y.shape(), (g.num_nodes(), g.num_classes()));
            prop_assert!(y.all_finite(), "{} produced non-finite logits", backbone.name());
        }
    }

    /// Evaluation-mode forwards are deterministic (no hidden state).
    #[test]
    fn eval_forward_is_pure(g in arb_graph()) {
        let gt = GraphTensors::new(&g);
        for backbone in [Backbone::Gcn, Backbone::Gat, Backbone::H2gcn] {
            let a = logits_of(backbone, &gt, g.feat_dim(), g.num_classes());
            let b = logits_of(backbone, &gt, g.feat_dim(), g.num_classes());
            prop_assert_eq!(a, b);
        }
    }

    /// The MLP ignores topology entirely: any rewiring leaves its logits
    /// bit-identical.
    #[test]
    fn mlp_is_topology_invariant(g in arb_graph(), extra_u in 0usize..12, extra_v in 0usize..12) {
        let gt1 = GraphTensors::new(&g);
        let mut g2 = g.clone();
        let n = g2.num_nodes();
        g2.add_edge(extra_u % n, extra_v % n);
        let gt2 = GraphTensors::new(&g2);
        let a = logits_of(Backbone::Mlp, &gt1, g.feat_dim(), g.num_classes());
        let b = logits_of(Backbone::Mlp, &gt2, g.feat_dim(), g.num_classes());
        prop_assert_eq!(a, b);
    }

    /// Node-id relabelling equivariance of GCN: permuting nodes permutes
    /// logits identically (message passing has no positional dependence).
    #[test]
    fn gcn_is_permutation_equivariant(g in arb_graph(), rot in 1usize..11) {
        let n = g.num_nodes();
        let rot = rot % n;
        if rot == 0 {
            return Ok(());
        }
        // Rotation permutation: v -> (v + rot) mod n.
        let perm: Vec<usize> = (0..n).map(|v| (v + rot) % n).collect();
        let features =
            Matrix::from_fn(n, g.feat_dim(), |r, c| {
                let src = perm.iter().position(|&p| p == r).unwrap();
                g.features().get(src, c)
            });
        let edges: Vec<(usize, usize)> =
            g.edge_vec().into_iter().map(|(u, v)| (perm[u], perm[v])).collect();
        let labels: Vec<usize> = {
            let mut l = vec![0; n];
            for (v, &p) in perm.iter().enumerate() {
                l[p] = g.label(v);
            }
            l
        };
        let permuted = Graph::from_edges(n, &edges, features, labels, g.num_classes());

        let y1 = logits_of(Backbone::Gcn, &GraphTensors::new(&g), g.feat_dim(), g.num_classes());
        let y2 = logits_of(
            Backbone::Gcn,
            &GraphTensors::new(&permuted),
            g.feat_dim(),
            g.num_classes(),
        );
        for (v, &p) in perm.iter().enumerate() {
            for c in 0..g.num_classes() {
                prop_assert!(
                    (y1.get(v, c) - y2.get(p, c)).abs() < 1e-3,
                    "logit mismatch after permutation at node {v} class {c}"
                );
            }
        }
    }
}
