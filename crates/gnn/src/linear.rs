//! A dense affine layer shared by all models.

use rand::rngs::StdRng;

use graphrare_tensor::{init, Matrix, Param, Tape, Var};

/// `y = x W + b` with Glorot-initialised weights.
#[derive(Clone)]
pub struct Linear {
    weight: Param,
    bias: Option<Param>,
}

impl Linear {
    /// Creates a layer with bias.
    pub fn new(name: &str, in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        Self::with_bias(name, in_dim, out_dim, true, rng)
    }

    /// Creates a layer, optionally without bias (GCN's propagation layers
    /// conventionally carry one bias per layer, GAT heads none).
    pub fn with_bias(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
        rng: &mut StdRng,
    ) -> Self {
        let weight =
            Param::new(format!("{name}.weight"), init::glorot_uniform(rng, in_dim, out_dim));
        let bias = bias.then(|| Param::new(format!("{name}.bias"), Matrix::zeros(1, out_dim)));
        Self { weight, bias }
    }

    /// Applies the layer on the tape.
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let w = tape.param(&self.weight);
        let y = tape.matmul(x, w);
        match &self.bias {
            Some(b) => {
                let vb = tape.param(b);
                tape.add_bias(y, vb)
            }
            None => y,
        }
    }

    /// The layer's parameters.
    pub fn params(&self) -> Vec<Param> {
        let mut out = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            out.push(b.clone());
        }
        out
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.shape().1
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.shape().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Linear::new("l", 3, 2, &mut rng);
        let mut t = Tape::new();
        let x = t.constant(Matrix::ones(4, 3));
        let y = layer.forward(&mut t, x);
        assert_eq!(t.value(y).shape(), (4, 2));
        assert_eq!(layer.params().len(), 2);
        assert_eq!((layer.in_dim(), layer.out_dim()), (3, 2));
    }

    #[test]
    fn no_bias_variant() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Linear::with_bias("l", 3, 2, false, &mut rng);
        assert_eq!(layer.params().len(), 1);
    }

    #[test]
    fn gradients_reach_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new("l", 2, 2, &mut rng);
        let mut t = Tape::new();
        let x = t.constant(Matrix::ones(3, 2));
        let y = layer.forward(&mut t, x);
        let s = t.sum_all(y);
        t.backward(s);
        let g = layer.params()[0].grad();
        assert!(g.as_slice().iter().any(|&v| v != 0.0));
    }
}
