//! Full-batch training harness with validation-based early stopping.
//!
//! Implements the paper's protocol (Sec. V-C): Adam, dropout 0.5, weight
//! decay, and "launch the testing procedure when the validation accuracy
//! of the trained model achieves a maximum value" — i.e. test accuracy is
//! reported at the best-validation checkpoint.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use graphrare_datasets::Split;
use graphrare_tensor::optim::{Adam, AdamSnapshot, Optimizer};
use graphrare_tensor::param::{clip_grad_norm, zero_grads, Param};
use graphrare_tensor::{Matrix, Tape};

use crate::metrics::accuracy;
use crate::model::{GnnModel, GraphTensors};

/// Optimisation hyper-parameters (defaults follow the paper's Sec. V-C).
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Initial learning rate (paper: 0.05).
    pub lr: f32,
    /// Weight decay (paper: {5e-5, 5e-6}).
    pub weight_decay: f32,
    /// Maximum number of epochs.
    pub epochs: usize,
    /// Early-stopping patience on validation accuracy.
    pub patience: usize,
    /// Gradient-norm clip (stabilises the paper's large 0.05 Adam step).
    pub grad_clip: f32,
    /// Dropout-mask RNG seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { lr: 0.05, weight_decay: 5e-5, epochs: 200, patience: 30, grad_clip: 5.0, seed: 0 }
    }
}

/// Outcome of a gradient-free evaluation pass.
#[derive(Clone, Debug)]
pub struct EvalResult {
    /// Accuracy over the evaluated mask.
    pub accuracy: f64,
    /// Mean cross-entropy loss over the mask.
    pub loss: f64,
    /// Raw logits (all nodes).
    pub logits: Matrix,
}

/// Evaluates `model` on one node mask without touching gradients.
pub fn evaluate(
    model: &dyn GnnModel,
    gt: &GraphTensors,
    labels: &[usize],
    mask: &[usize],
) -> EvalResult {
    let mut tape = Tape::new();
    // Dropout disabled: rng is unused but required by the signature.
    let mut rng = StdRng::seed_from_u64(0);
    let logits = model.forward(&mut tape, gt, false, &mut rng);
    let lp = tape.log_softmax_rows(logits);
    let loss = if mask.is_empty() {
        0.0
    } else {
        let lpv = tape.value(lp);
        let total: f64 = mask.iter().map(|&i| -lpv.get(i, labels[i]) as f64).sum();
        total / mask.len() as f64
    };
    let logits = tape.value(logits).clone();
    EvalResult { accuracy: accuracy(&logits, labels, mask), loss, logits }
}

/// Per-epoch record of a [`fit`] run.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// Training loss of the epoch's update step.
    pub train_loss: f64,
    /// Training accuracy after the step.
    pub train_acc: f64,
    /// Validation accuracy after the step.
    pub val_acc: f64,
}

/// Result of a full [`fit`] run.
#[derive(Clone, Debug)]
pub struct FitReport {
    /// Best validation accuracy observed.
    pub best_val_acc: f64,
    /// Test accuracy at the best-validation checkpoint.
    pub test_acc: f64,
    /// Number of epochs actually run (early stopping may cut it short).
    pub epochs_run: usize,
    /// Per-epoch curve.
    pub curve: Vec<EpochStats>,
}

/// Stateful trainer owning the optimiser and dropout RNG so that training
/// can be resumed across topology changes (GraphRARE's fine-tune steps).
pub struct Trainer {
    params: Vec<Param>,
    opt: Adam,
    rng: StdRng,
    grad_clip: f32,
}

impl Trainer {
    /// Creates a trainer for `model` with Adam per the config.
    pub fn new(model: &dyn GnnModel, cfg: &TrainConfig) -> Self {
        Self {
            params: model.params(),
            opt: Adam::new(cfg.lr, cfg.weight_decay),
            rng: StdRng::seed_from_u64(cfg.seed),
            grad_clip: cfg.grad_clip,
        }
    }

    /// Runs one full-batch training step; returns the training loss.
    pub fn train_epoch(
        &mut self,
        model: &dyn GnnModel,
        gt: &GraphTensors,
        labels: &[usize],
        train_mask: &[usize],
    ) -> f64 {
        assert!(!train_mask.is_empty(), "train_epoch: empty training mask");
        let _span = graphrare_telemetry::span("train.epoch");
        zero_grads(&self.params);
        let mut tape = Tape::new();
        let logits = model.forward(&mut tape, gt, true, &mut self.rng);
        let lp = tape.log_softmax_rows(logits);
        let loss = tape.nll_masked(lp, Rc::new(labels.to_vec()), Rc::new(train_mask.to_vec()));
        let loss_value = tape.value(loss).scalar_value() as f64;
        tape.backward(loss);
        clip_grad_norm(&self.params, self.grad_clip);
        self.opt.step(&self.params);
        graphrare_telemetry::counter("train.epochs", 1);
        graphrare_telemetry::emit_with(|| {
            graphrare_telemetry::Event::new("epoch").f64("train_loss", loss_value)
        });
        loss_value
    }

    /// Runs `n` training steps (the "train for a few more epochs" of
    /// Algorithm 1 line 12).
    pub fn train_epochs(
        &mut self,
        model: &dyn GnnModel,
        gt: &GraphTensors,
        labels: &[usize],
        train_mask: &[usize],
        n: usize,
    ) -> f64 {
        let mut last = 0.0;
        for _ in 0..n {
            last = self.train_epoch(model, gt, labels, train_mask);
        }
        last
    }

    /// Snapshot of the current parameter values.
    pub fn snapshot(&self) -> Vec<Matrix> {
        self.params.iter().map(Param::value).collect()
    }

    /// Restores a snapshot taken by [`Trainer::snapshot`].
    pub fn restore(&self, snap: &[Matrix]) {
        assert_eq!(snap.len(), self.params.len(), "restore: snapshot size mismatch");
        for (p, m) in self.params.iter().zip(snap) {
            p.set_value(m.clone());
        }
    }

    /// Exports the complete trainer state — parameter values, Adam moments
    /// and the dropout RNG stream — for checkpointing. Unlike
    /// [`Trainer::snapshot`] (parameters only, for best-checkpoint
    /// tracking), importing this state resumes the optimisation trajectory
    /// bit-for-bit.
    pub fn export_state(&self) -> TrainerState {
        TrainerState {
            params: self.snapshot(),
            adam: self.opt.export_state(&self.params),
            rng: self.rng.state(),
        }
    }

    /// Restores state captured by [`Trainer::export_state`] onto the same
    /// model architecture.
    ///
    /// # Panics
    /// Panics on parameter count/shape mismatch — checkpoints are
    /// validated by the store layer before they reach the trainer.
    pub fn import_state(&mut self, state: &TrainerState) {
        self.restore(&state.params);
        self.opt.import_state(&self.params, &state.adam);
        self.rng = StdRng::from_state(state.rng);
    }
}

/// Complete serialisable state of a [`Trainer`] (see
/// [`Trainer::export_state`]).
#[derive(Clone, Debug)]
pub struct TrainerState {
    /// Current parameter values, in `model.params()` order.
    pub params: Vec<Matrix>,
    /// Adam step counter and moment estimates.
    pub adam: AdamSnapshot,
    /// Dropout RNG stream state.
    pub rng: [u64; 4],
}

/// Trains `model` to convergence on one split with early stopping; test
/// accuracy is measured at the best-validation checkpoint.
pub fn fit(
    model: &dyn GnnModel,
    gt: &GraphTensors,
    labels: &[usize],
    split: &Split,
    cfg: &TrainConfig,
) -> FitReport {
    let mut trainer = Trainer::new(model, cfg);
    let mut best_val = f64::NEG_INFINITY;
    let mut best_snap = trainer.snapshot();
    let mut since_best = 0usize;
    let mut curve = Vec::with_capacity(cfg.epochs);
    let mut epochs_run = 0;
    for _ in 0..cfg.epochs {
        epochs_run += 1;
        let train_loss = trainer.train_epoch(model, gt, labels, &split.train);
        let train_eval = evaluate(model, gt, labels, &split.train);
        let val_eval = evaluate(model, gt, labels, &split.val);
        curve.push(EpochStats {
            train_loss,
            train_acc: train_eval.accuracy,
            val_acc: val_eval.accuracy,
        });
        if val_eval.accuracy > best_val {
            best_val = val_eval.accuracy;
            best_snap = trainer.snapshot();
            since_best = 0;
        } else {
            since_best += 1;
            if since_best >= cfg.patience {
                graphrare_telemetry::emit_with(|| {
                    graphrare_telemetry::Event::new("early_stop")
                        .str("phase", "fit")
                        .u64("epochs_run", epochs_run as u64)
                        .f64("best_val_acc", best_val)
                });
                break;
            }
        }
    }
    trainer.restore(&best_snap);
    let test_eval = evaluate(model, gt, labels, &split.test);
    FitReport { best_val_acc: best_val.max(0.0), test_acc: test_eval.accuracy, epochs_run, curve }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Backbone;
    use crate::models::{build_model, ModelConfig};
    use graphrare_datasets::{generate_spec, stratified_split, DatasetSpec};

    fn easy_dataset() -> (GraphTensors, Vec<usize>, Split) {
        // Small homophilic graph with informative features: easily learnable.
        let spec = DatasetSpec {
            name: "easy",
            num_nodes: 60,
            num_edges: 150,
            feat_dim: 16,
            num_classes: 3,
            homophily: 0.85,
            degree_exponent: 0.2,
            feature_signal: 0.9,
            feature_density: 0.05,
        };
        let g = generate_spec(&spec, 4);
        let split = stratified_split(g.labels(), g.num_classes(), 1);
        let labels = g.labels().to_vec();
        (GraphTensors::new(&g), labels, split)
    }

    #[test]
    fn loss_decreases_during_training() {
        let (gt, labels, split) = easy_dataset();
        let model = build_model(Backbone::Gcn, 16, 3, &ModelConfig::default());
        let mut trainer = Trainer::new(model.as_ref(), &TrainConfig::default());
        let first = trainer.train_epoch(model.as_ref(), &gt, &labels, &split.train);
        let last = trainer.train_epochs(model.as_ref(), &gt, &labels, &split.train, 30);
        assert!(last < first, "loss went {first} -> {last}");
    }

    #[test]
    fn fit_learns_easy_homophilic_graph() {
        let (gt, labels, split) = easy_dataset();
        let model = build_model(Backbone::Gcn, 16, 3, &ModelConfig::default());
        let cfg = TrainConfig { epochs: 80, ..Default::default() };
        let report = fit(model.as_ref(), &gt, &labels, &split, &cfg);
        assert!(report.test_acc > 0.6, "test accuracy {}", report.test_acc);
        assert!(report.best_val_acc >= report.curve[0].val_acc);
    }

    #[test]
    fn early_stopping_cuts_run_short() {
        let (gt, labels, split) = easy_dataset();
        let model = build_model(Backbone::Mlp, 16, 3, &ModelConfig::default());
        let cfg = TrainConfig { epochs: 500, patience: 5, ..Default::default() };
        let report = fit(model.as_ref(), &gt, &labels, &split, &cfg);
        assert!(report.epochs_run < 500, "ran all {} epochs", report.epochs_run);
        assert_eq!(report.curve.len(), report.epochs_run);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let (gt, labels, split) = easy_dataset();
        let model = build_model(Backbone::Gcn, 16, 3, &ModelConfig::default());
        let mut trainer = Trainer::new(model.as_ref(), &TrainConfig::default());
        let snap = trainer.snapshot();
        let before = evaluate(model.as_ref(), &gt, &labels, &split.val).loss;
        trainer.train_epochs(model.as_ref(), &gt, &labels, &split.train, 5);
        let after = evaluate(model.as_ref(), &gt, &labels, &split.val).loss;
        assert_ne!(before, after);
        trainer.restore(&snap);
        let restored = evaluate(model.as_ref(), &gt, &labels, &split.val).loss;
        assert!((restored - before).abs() < 1e-9);
    }

    #[test]
    fn export_import_state_resumes_training_bitwise() {
        let (gt, labels, split) = easy_dataset();
        let cfg = TrainConfig::default();
        let model_a = build_model(Backbone::Gcn, 16, 3, &ModelConfig::default());
        let mut a = Trainer::new(model_a.as_ref(), &cfg);
        a.train_epochs(model_a.as_ref(), &gt, &labels, &split.train, 7);
        let state = a.export_state();

        // A model built fresh from the same config, state imported.
        let model_b = build_model(Backbone::Gcn, 16, 3, &ModelConfig::default());
        let mut b = Trainer::new(model_b.as_ref(), &cfg);
        b.import_state(&state);

        for _ in 0..5 {
            let la = a.train_epoch(model_a.as_ref(), &gt, &labels, &split.train);
            let lb = b.train_epoch(model_b.as_ref(), &gt, &labels, &split.train);
            assert_eq!(la, lb, "resumed trainer diverged");
        }
        for (pa, pb) in a.export_state().params.iter().zip(&b.export_state().params) {
            assert_eq!(pa.as_slice(), pb.as_slice());
        }
    }

    #[test]
    fn evaluate_is_side_effect_free() {
        let (gt, labels, split) = easy_dataset();
        let model = build_model(Backbone::Gcn, 16, 3, &ModelConfig::default());
        let a = evaluate(model.as_ref(), &gt, &labels, &split.test);
        let b = evaluate(model.as_ref(), &gt, &labels, &split.test);
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.loss, b.loss);
    }
}
