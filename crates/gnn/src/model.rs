//! The [`GnnModel`] trait and the per-topology operator cache.

use std::cell::OnceCell;
use std::rc::Rc;

use rand::rngs::StdRng;

use graphrare_graph::{ops, EdgeEdit, Graph};
use graphrare_tensor::{AdjList, CsrMatrix, Matrix, Param, Tape, Var};

/// A snapshot of one graph topology with lazily built propagation
/// operators.
///
/// GraphRARE re-trains the GNN on a *changing* topology (`G_t`, `G_{t+1}`,
/// …); every snapshot gets its own `GraphTensors` so cached operators can
/// never leak across topologies. Operators are built on first use: a GCN
/// never pays for the two-hop operator H2GCN needs.
pub struct GraphTensors {
    graph: Graph,
    features: Rc<Matrix>,
    /// Incrementally maintained `d̂^{-1/2}` vector: only edit endpoints
    /// change degree, so [`apply_edits`](GraphTensors::apply_edits) /
    /// [`apply_flips`](GraphTensors::apply_flips) re-derive just those
    /// entries and `gcn_norm` (re)builds skip their from-scratch degree
    /// pass.
    inv_sqrt: Vec<f32>,
    gcn: OnceCell<Rc<CsrMatrix>>,
    row: OnceCell<Rc<CsrMatrix>>,
    two_hop: OnceCell<Rc<CsrMatrix>>,
    attn: OnceCell<Rc<AdjList>>,
    /// Reusable scratch for the in-place operator rebuilds and the
    /// row-patch analysis, so steady-state topology updates allocate
    /// nothing in the dense regime.
    op_scratch: ops::OperatorScratch,
    touched: Vec<usize>,
    wide: Vec<usize>,
}

impl GraphTensors {
    /// Snapshots `g` (topology and features).
    pub fn new(g: &Graph) -> Self {
        Self {
            graph: g.clone(),
            features: Rc::new(g.features().clone()),
            inv_sqrt: ops::inv_sqrt_degrees(g),
            gcn: OnceCell::new(),
            row: OnceCell::new(),
            two_hop: OnceCell::new(),
            attn: OnceCell::new(),
            op_scratch: ops::OperatorScratch::default(),
            touched: Vec::new(),
            wide: Vec::new(),
        }
    }

    /// Re-derives the cached `d̂^{-1/2}` entries of the given endpoint
    /// pairs from the (already mutated) snapshot graph. Idempotent for
    /// unchanged degrees, so no-op edits in a batch are harmless.
    fn refresh_inv_sqrt(&mut self, pairs: impl Iterator<Item = (usize, usize)>) {
        let n = self.graph.num_nodes();
        for (u, v) in pairs {
            if u < n {
                self.inv_sqrt[u] = ops::inv_sqrt_degree(&self.graph, u);
            }
            if v < n {
                self.inv_sqrt[v] = ops::inv_sqrt_degree(&self.graph, v);
            }
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// The snapshotted graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Node features (shared).
    pub fn features(&self) -> Rc<Matrix> {
        self.features.clone()
    }

    /// GCN-normalised operator `D̂^{-1/2}(A+I)D̂^{-1/2}`.
    pub fn gcn_norm(&self) -> Rc<CsrMatrix> {
        self.gcn
            .get_or_init(|| Rc::new(ops::gcn_norm_with_inv(&self.graph, &self.inv_sqrt)))
            .clone()
    }

    /// Row-normalised adjacency `D^{-1}A`.
    pub fn row_norm(&self) -> Rc<CsrMatrix> {
        self.row.get_or_init(|| Rc::new(ops::row_norm_adj(&self.graph))).clone()
    }

    /// Row-normalised strict two-hop operator (H2GCN's `N_2`).
    pub fn two_hop(&self) -> Rc<CsrMatrix> {
        self.two_hop.get_or_init(|| Rc::new(ops::row_norm_two_hop(&self.graph))).clone()
    }

    /// Attention neighbour lists (self + one-hop) for GAT.
    pub fn attention(&self) -> Rc<AdjList> {
        self.attn.get_or_init(|| Rc::new(ops::attention_lists(&self.graph))).clone()
    }

    /// Applies a batch of topology edits in place, rebuilding only the
    /// operator rows the edits touch.
    ///
    /// This is the incremental-rewiring counterpart of building a fresh
    /// `GraphTensors` from the edited graph: the internal snapshot graph
    /// applies the whole batch in one CSR splice (`Graph::apply_edits`),
    /// and every *already built* operator cache is patched row-wise via
    /// the per-row builders in `graphrare_graph::ops`, which yields
    /// bit-identical operators at O(touched rows) instead of O(N+E) cost.
    /// Patches go through `Rc::make_mut` + `apply_rows`: rows whose nnz is
    /// unchanged by the batch (neighbour rows that only re-weight — the
    /// bulk of a typical batch) are written in place with no splice and no
    /// reallocation, and only the resized rows (the edit endpoints) go
    /// through one splice. A batch dirtying more than half the rows
    /// instead rebuilds the operator wholesale with the full builder — the
    /// same bits (the full and per-row builders agree row by row) without
    /// per-row merge overhead. Operators not built yet stay lazy and will
    /// build from the edited graph on first use. Features are untouched —
    /// rewiring never changes `X`. Outstanding `Rc` handles from before
    /// the call keep observing the pre-edit operator (`make_mut` clones a
    /// shared cache before writing — snapshot semantics), only this cache
    /// moves.
    ///
    /// Dirty-row analysis per operator:
    /// * `gcn_norm` — an endpoint's degree change re-weights its whole row
    ///   *and* the rows of all its neighbours: endpoints ∪ N(endpoints);
    /// * `two_hop` — rings reach distance 2: endpoints ∪ N(endpoints)
    ///   (removed neighbours are themselves endpoints of this batch);
    /// * `row_norm` / `attention` — only the endpoints' own rows.
    pub fn apply_edits(&mut self, removed: &[(usize, usize)], added: &[(usize, usize)]) {
        if removed.is_empty() && added.is_empty() {
            return;
        }
        // One batched CSR splice. Removals are listed first so an edge
        // named on both sides resolves to "added" (last edit wins),
        // matching the former remove-then-add call order.
        let mut edits: Vec<(usize, usize, EdgeEdit)> =
            Vec::with_capacity(removed.len() + added.len());
        edits.extend(removed.iter().map(|&(u, v)| (u, v, EdgeEdit::Remove)));
        edits.extend(added.iter().map(|&(u, v)| (u, v, EdgeEdit::Add)));
        self.graph.apply_edits(&edits);
        self.refresh_inv_sqrt(edits.iter().map(|&(u, v, _)| (u, v)));
        if edits.len() * 2 > self.graph.num_nodes() {
            self.rebuild_built_operators();
        } else {
            self.patch_operator_rows(removed.iter().chain(added).copied());
        }
    }

    /// [`apply_edits`](GraphTensors::apply_edits) for callers that already
    /// know each edge's presence flip: `flips` must be distinct in-bounds
    /// non-loop edges in ascending edge-key order, each genuinely changing
    /// presence (see [`Graph::apply_flips_sorted`]). The incremental
    /// rewiring engine's reconciliation produces exactly this, so the hot
    /// path skips the dedup sort and per-edge membership checks.
    pub fn apply_flips(&mut self, flips: &[(usize, usize, bool)]) {
        if flips.is_empty() {
            return;
        }
        self.graph.apply_flips_sorted(flips);
        self.refresh_inv_sqrt(flips.iter().map(|&(u, v, _)| (u, v)));
        if flips.len() * 2 > self.graph.num_nodes() {
            self.rebuild_built_operators();
        } else {
            self.patch_operator_rows(flips.iter().map(|&(u, v, _)| (u, v)));
        }
    }

    /// Wholesale rebuild of every *built* operator from the (already
    /// edited) snapshot graph. Taken when a batch names more than half the
    /// nodes twice over: the raw edit count bounds the dirty-row sets from
    /// above, so the per-row sort/dedup analysis would be pure overhead —
    /// the dense exploration regime lands here every step.
    ///
    /// Each rebuild goes through `Rc::make_mut` + the `*_into` builders:
    /// at refcount 1 (the steady state — tapes drop their operator
    /// handles between steps) the cached CSR storage is refilled in place
    /// with zero allocations, while outstanding snapshot handles still
    /// trigger a copy-on-write clone first, preserving snapshot
    /// semantics.
    fn rebuild_built_operators(&mut self) {
        let mut rebuilds = 0u64;
        if let Some(rc) = self.gcn.get_mut() {
            rebuilds += 1;
            ops::gcn_norm_with_inv_into(
                &self.graph,
                &self.inv_sqrt,
                Rc::make_mut(rc),
                &mut self.op_scratch,
            );
        }
        if let Some(rc) = self.two_hop.get_mut() {
            rebuilds += 1;
            ops::row_norm_two_hop_into(&self.graph, Rc::make_mut(rc), &mut self.op_scratch);
        }
        if let Some(rc) = self.row.get_mut() {
            rebuilds += 1;
            ops::row_norm_adj_into(&self.graph, Rc::make_mut(rc), &mut self.op_scratch);
        }
        if let Some(rc) = self.attn.get_mut() {
            rebuilds += 1;
            ops::attention_lists_into(&self.graph, Rc::make_mut(rc));
        }
        graphrare_telemetry::counter("rewire.operator_rebuilds", rebuilds);
    }

    /// Row-patches every built operator for a batch whose undirected
    /// endpoint pairs are `pairs`. Per operator, a batch still dirtying
    /// more than half the rows rebuilds wholesale instead — bit-identical
    /// either way because the full and per-row builders agree row by row.
    fn patch_operator_rows(&mut self, pairs: impl Iterator<Item = (usize, usize)>) {
        self.touched.clear();
        for (u, v) in pairs {
            self.touched.push(u);
            self.touched.push(v);
        }
        self.touched.sort_unstable();
        self.touched.dedup();
        let mut rows_patched = 0u64;
        let mut rows_inplace = 0u64;
        let mut rows_spliced = 0u64;
        let mut rebuilds = 0u64;
        let need_wide = self.gcn.get().is_some() || self.two_hop.get().is_some();
        self.wide.clear();
        if need_wide {
            for &v in &self.touched {
                self.wide.push(v);
                self.wide.extend(self.graph.neighbor_slice(v).iter().map(|&u| u as usize));
            }
            self.wide.sort_unstable();
            self.wide.dedup();
        }
        let n = self.graph.num_nodes();
        let dense_wide = self.wide.len() * 2 > n;
        let dense_touched = self.touched.len() * 2 > n;
        if let Some(rc) = self.gcn.get_mut() {
            if dense_wide {
                rebuilds += 1;
                ops::gcn_norm_with_inv_into(
                    &self.graph,
                    &self.inv_sqrt,
                    Rc::make_mut(rc),
                    &mut self.op_scratch,
                );
            } else {
                let rows: Vec<(usize, Vec<(usize, f32)>)> = self
                    .wide
                    .iter()
                    .map(|&v| (v, ops::gcn_norm_row_with_inv(&self.graph, &self.inv_sqrt, v)))
                    .collect();
                rows_patched += rows.len() as u64;
                let n_in = Rc::make_mut(rc).apply_rows(&rows) as u64;
                rows_inplace += n_in;
                rows_spliced += rows.len() as u64 - n_in;
            }
        }
        if let Some(rc) = self.two_hop.get_mut() {
            if dense_wide {
                rebuilds += 1;
                ops::row_norm_two_hop_into(&self.graph, Rc::make_mut(rc), &mut self.op_scratch);
            } else {
                let rows: Vec<(usize, Vec<(usize, f32)>)> = self
                    .wide
                    .iter()
                    .map(|&v| (v, ops::row_norm_two_hop_row(&self.graph, v)))
                    .collect();
                rows_patched += rows.len() as u64;
                let n_in = Rc::make_mut(rc).apply_rows(&rows) as u64;
                rows_inplace += n_in;
                rows_spliced += rows.len() as u64 - n_in;
            }
        }
        if let Some(rc) = self.row.get_mut() {
            if dense_touched {
                rebuilds += 1;
                ops::row_norm_adj_into(&self.graph, Rc::make_mut(rc), &mut self.op_scratch);
            } else {
                let rows: Vec<(usize, Vec<(usize, f32)>)> = self
                    .touched
                    .iter()
                    .map(|&v| (v, ops::row_norm_adj_row(&self.graph, v)))
                    .collect();
                rows_patched += rows.len() as u64;
                let n_in = Rc::make_mut(rc).apply_rows(&rows) as u64;
                rows_inplace += n_in;
                rows_spliced += rows.len() as u64 - n_in;
            }
        }
        if let Some(rc) = self.attn.get_mut() {
            if dense_touched {
                rebuilds += 1;
                ops::attention_lists_into(&self.graph, Rc::make_mut(rc));
            } else {
                let rows: Vec<(usize, Vec<usize>)> =
                    self.touched.iter().map(|&v| (v, ops::attention_row(&self.graph, v))).collect();
                rows_patched += rows.len() as u64;
                let n_in = Rc::make_mut(rc).apply_rows(&rows) as u64;
                rows_inplace += n_in;
                rows_spliced += rows.len() as u64 - n_in;
            }
        }
        graphrare_telemetry::counter("rewire.rows_patched", rows_patched);
        graphrare_telemetry::counter("rewire.rows_inplace", rows_inplace);
        graphrare_telemetry::counter("rewire.rows_spliced", rows_spliced);
        graphrare_telemetry::counter("rewire.operator_rebuilds", rebuilds);
    }
}

/// A trainable node-classification GNN.
///
/// Models are topology-agnostic: `forward` receives the operator cache for
/// whatever snapshot the caller is currently training on, which is how the
/// same weights continue training across GraphRARE's rewiring steps.
pub trait GnnModel {
    /// Runs a forward pass and returns `n x num_classes` logits.
    ///
    /// `train` enables dropout (using `rng` for masks); evaluation passes
    /// run deterministically with `train = false`.
    fn forward(&self, tape: &mut Tape, gt: &GraphTensors, train: bool, rng: &mut StdRng) -> Var;

    /// All trainable parameters.
    fn params(&self) -> Vec<Param>;

    /// Short display name (matches the paper's tables).
    fn name(&self) -> &'static str;

    /// Total number of scalar weights.
    fn num_weights(&self) -> usize {
        self.params().iter().map(Param::len).sum()
    }
}

/// Backbone selector used by experiment harnesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backbone {
    /// Feature-only multilayer perceptron.
    Mlp,
    /// Graph convolutional network (Kipf & Welling 2017).
    Gcn,
    /// GraphSAGE with mean aggregation (Hamilton et al. 2017).
    Sage,
    /// Graph attention network (Veličković et al. 2018).
    Gat,
    /// H2GCN (Zhu et al. 2020).
    H2gcn,
}

impl Backbone {
    /// The four backbones the paper wraps with GraphRARE, plus MLP.
    pub const ALL: [Backbone; 5] =
        [Backbone::Mlp, Backbone::Gcn, Backbone::Sage, Backbone::Gat, Backbone::H2gcn];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Backbone::Mlp => "MLP",
            Backbone::Gcn => "GCN",
            Backbone::Sage => "GraphSAGE",
            Backbone::Gat => "GAT",
            Backbone::H2gcn => "H2GCN",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Graph {
        Graph::from_edges(
            4,
            &[(0, 1), (1, 2), (2, 3)],
            Matrix::from_fn(4, 3, |r, c| ((r + c) % 2) as f32),
            vec![0, 1, 0, 1],
            2,
        )
    }

    #[test]
    fn tensors_cache_is_shared() {
        let gt = GraphTensors::new(&toy());
        let a = gt.gcn_norm();
        let b = gt.gcn_norm();
        assert!(Rc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_isolated_from_source_mutation() {
        let mut g = toy();
        let gt = GraphTensors::new(&g);
        let before = gt.gcn_norm();
        g.add_edge(0, 3);
        // The snapshot's operator is unaffected by later edits.
        assert_eq!(*before, *GraphTensors::new(&toy()).gcn_norm());
    }

    #[test]
    fn backbone_names() {
        assert_eq!(Backbone::Gcn.name(), "GCN");
        assert_eq!(Backbone::ALL.len(), 5);
    }

    fn assert_matches_fresh(gt: &GraphTensors) {
        let fresh = GraphTensors::new(gt.graph());
        assert_eq!(*gt.gcn_norm(), *fresh.gcn_norm(), "gcn_norm");
        assert_eq!(*gt.row_norm(), *fresh.row_norm(), "row_norm");
        assert_eq!(*gt.two_hop(), *fresh.two_hop(), "two_hop");
        assert_eq!(*gt.attention(), *fresh.attention(), "attention");
    }

    #[test]
    fn apply_edits_patches_all_built_operators() {
        let mut gt = GraphTensors::new(&toy());
        // Build every cache so all four take the patch path.
        gt.gcn_norm();
        gt.row_norm();
        gt.two_hop();
        gt.attention();
        gt.apply_edits(&[(1, 2)], &[(0, 3), (0, 2)]);
        assert_eq!(gt.graph().num_edges(), 4);
        assert_matches_fresh(&gt);
        // A second batch on the already-patched cache.
        gt.apply_edits(&[(0, 2), (2, 3)], &[]);
        assert_matches_fresh(&gt);
    }

    #[test]
    fn apply_edits_leaves_unbuilt_operators_lazy() {
        let mut gt = GraphTensors::new(&toy());
        gt.gcn_norm(); // only this one is built
        gt.apply_edits(&[], &[(0, 3)]);
        // Built cache was patched; the rest build lazily from the edited graph.
        assert_matches_fresh(&gt);
    }

    #[test]
    fn apply_flips_matches_fresh() {
        let mut gt = GraphTensors::new(&toy());
        gt.gcn_norm();
        gt.row_norm();
        gt.two_hop();
        gt.attention();
        // Small batch: the row-patch path.
        gt.apply_flips(&[(0, 2, true), (2, 3, false)]);
        assert_eq!(gt.graph().num_edges(), 3);
        assert_matches_fresh(&gt);
        // Large batch (2 * flips > n on the 4-node toy): wholesale rebuild.
        gt.apply_flips(&[(0, 2, false), (0, 3, true), (2, 3, true)]);
        assert_eq!(gt.graph().num_edges(), 4);
        assert_matches_fresh(&gt);
    }

    #[test]
    fn inv_sqrt_cache_tracks_degrees_bit_exactly() {
        let mut gt = GraphTensors::new(&toy());
        gt.gcn_norm();
        // Batches with genuine flips, no-op edits, and a wholesale-sized
        // batch; the cached vector must always equal the from-scratch pass.
        gt.apply_edits(&[(1, 2)], &[(0, 3), (0, 1)]);
        let check = |gt: &GraphTensors| {
            let fresh = graphrare_graph::ops::inv_sqrt_degrees(gt.graph());
            assert_eq!(gt.inv_sqrt.len(), fresh.len());
            for (v, (a, b)) in gt.inv_sqrt.iter().zip(&fresh).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "inv_sqrt[{v}]");
            }
        };
        check(&gt);
        gt.apply_flips(&[(0, 2, true), (1, 2, true), (2, 3, false)]);
        check(&gt);
        assert_matches_fresh(&gt);
    }

    #[test]
    fn apply_edits_empty_batch_keeps_cache_pointers() {
        let mut gt = GraphTensors::new(&toy());
        let before = gt.gcn_norm();
        gt.apply_edits(&[], &[]);
        assert!(Rc::ptr_eq(&before, &gt.gcn_norm()));
    }

    #[test]
    fn apply_edits_preserves_outstanding_snapshots() {
        // An Rc handed out before the patch must keep observing the
        // pre-edit operator (Rc::make_mut clones the shared cache).
        let mut gt = GraphTensors::new(&toy());
        let before = gt.gcn_norm();
        let before_bits = (*before).clone();
        gt.apply_edits(&[], &[(0, 2)]);
        assert_eq!(*before, before_bits, "outstanding snapshot changed");
        assert!(!Rc::ptr_eq(&before, &gt.gcn_norm()));
        assert_matches_fresh(&gt);
    }

    #[test]
    fn apply_edits_isolating_and_reconnecting_node() {
        // Remove node 3's only edge (isolated row), then reconnect it.
        let mut gt = GraphTensors::new(&toy());
        gt.gcn_norm();
        gt.row_norm();
        gt.two_hop();
        gt.attention();
        gt.apply_edits(&[(2, 3)], &[]);
        assert_matches_fresh(&gt);
        gt.apply_edits(&[], &[(1, 3)]);
        assert_matches_fresh(&gt);
    }
}
