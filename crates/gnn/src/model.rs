//! The [`GnnModel`] trait and the per-topology operator cache.

use std::cell::OnceCell;
use std::rc::Rc;

use rand::rngs::StdRng;

use graphrare_graph::{ops, Graph};
use graphrare_tensor::{AdjList, CsrMatrix, Matrix, Param, Tape, Var};

/// A snapshot of one graph topology with lazily built propagation
/// operators.
///
/// GraphRARE re-trains the GNN on a *changing* topology (`G_t`, `G_{t+1}`,
/// …); every snapshot gets its own `GraphTensors` so cached operators can
/// never leak across topologies. Operators are built on first use: a GCN
/// never pays for the two-hop operator H2GCN needs.
pub struct GraphTensors {
    graph: Graph,
    features: Rc<Matrix>,
    gcn: OnceCell<Rc<CsrMatrix>>,
    row: OnceCell<Rc<CsrMatrix>>,
    two_hop: OnceCell<Rc<CsrMatrix>>,
    attn: OnceCell<Rc<AdjList>>,
}

impl GraphTensors {
    /// Snapshots `g` (topology and features).
    pub fn new(g: &Graph) -> Self {
        Self {
            graph: g.clone(),
            features: Rc::new(g.features().clone()),
            gcn: OnceCell::new(),
            row: OnceCell::new(),
            two_hop: OnceCell::new(),
            attn: OnceCell::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// The snapshotted graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Node features (shared).
    pub fn features(&self) -> Rc<Matrix> {
        self.features.clone()
    }

    /// GCN-normalised operator `D̂^{-1/2}(A+I)D̂^{-1/2}`.
    pub fn gcn_norm(&self) -> Rc<CsrMatrix> {
        self.gcn.get_or_init(|| Rc::new(ops::gcn_norm(&self.graph))).clone()
    }

    /// Row-normalised adjacency `D^{-1}A`.
    pub fn row_norm(&self) -> Rc<CsrMatrix> {
        self.row.get_or_init(|| Rc::new(ops::row_norm_adj(&self.graph))).clone()
    }

    /// Row-normalised strict two-hop operator (H2GCN's `N_2`).
    pub fn two_hop(&self) -> Rc<CsrMatrix> {
        self.two_hop.get_or_init(|| Rc::new(ops::row_norm_two_hop(&self.graph))).clone()
    }

    /// Attention neighbour lists (self + one-hop) for GAT.
    pub fn attention(&self) -> Rc<AdjList> {
        self.attn.get_or_init(|| Rc::new(ops::attention_lists(&self.graph))).clone()
    }
}

/// A trainable node-classification GNN.
///
/// Models are topology-agnostic: `forward` receives the operator cache for
/// whatever snapshot the caller is currently training on, which is how the
/// same weights continue training across GraphRARE's rewiring steps.
pub trait GnnModel {
    /// Runs a forward pass and returns `n x num_classes` logits.
    ///
    /// `train` enables dropout (using `rng` for masks); evaluation passes
    /// run deterministically with `train = false`.
    fn forward(&self, tape: &mut Tape, gt: &GraphTensors, train: bool, rng: &mut StdRng) -> Var;

    /// All trainable parameters.
    fn params(&self) -> Vec<Param>;

    /// Short display name (matches the paper's tables).
    fn name(&self) -> &'static str;

    /// Total number of scalar weights.
    fn num_weights(&self) -> usize {
        self.params().iter().map(Param::len).sum()
    }
}

/// Backbone selector used by experiment harnesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backbone {
    /// Feature-only multilayer perceptron.
    Mlp,
    /// Graph convolutional network (Kipf & Welling 2017).
    Gcn,
    /// GraphSAGE with mean aggregation (Hamilton et al. 2017).
    Sage,
    /// Graph attention network (Veličković et al. 2018).
    Gat,
    /// H2GCN (Zhu et al. 2020).
    H2gcn,
}

impl Backbone {
    /// The four backbones the paper wraps with GraphRARE, plus MLP.
    pub const ALL: [Backbone; 5] =
        [Backbone::Mlp, Backbone::Gcn, Backbone::Sage, Backbone::Gat, Backbone::H2gcn];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Backbone::Mlp => "MLP",
            Backbone::Gcn => "GCN",
            Backbone::Sage => "GraphSAGE",
            Backbone::Gat => "GAT",
            Backbone::H2gcn => "H2GCN",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Graph {
        Graph::from_edges(
            4,
            &[(0, 1), (1, 2), (2, 3)],
            Matrix::from_fn(4, 3, |r, c| ((r + c) % 2) as f32),
            vec![0, 1, 0, 1],
            2,
        )
    }

    #[test]
    fn tensors_cache_is_shared() {
        let gt = GraphTensors::new(&toy());
        let a = gt.gcn_norm();
        let b = gt.gcn_norm();
        assert!(Rc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_isolated_from_source_mutation() {
        let mut g = toy();
        let gt = GraphTensors::new(&g);
        let before = gt.gcn_norm();
        g.add_edge(0, 3);
        // The snapshot's operator is unaffected by later edits.
        assert_eq!(*before, *GraphTensors::new(&toy()).gcn_norm());
    }

    #[test]
    fn backbone_names() {
        assert_eq!(Backbone::Gcn.name(), "GCN");
        assert_eq!(Backbone::ALL.len(), 5);
    }
}
