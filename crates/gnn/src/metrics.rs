//! Classification metrics: accuracy and macro one-vs-rest AUC.

use graphrare_tensor::Matrix;

/// Accuracy of `logits` against `labels` over the nodes in `mask`.
pub fn accuracy(logits: &Matrix, labels: &[usize], mask: &[usize]) -> f64 {
    if mask.is_empty() {
        return 0.0;
    }
    let pred = logits.row_argmax();
    let correct = mask.iter().filter(|&&i| pred[i] == labels[i]).count();
    correct as f64 / mask.len() as f64
}

/// Macro-averaged one-vs-rest ROC-AUC over the nodes in `mask`, computed
/// rank-based (Mann–Whitney U). Classes absent from the mask (no positives
/// or no negatives) are skipped; returns 0.5 if nothing is scorable.
///
/// Used by the paper's alternative-reward ablation (Table V,
/// "GCN-RARE-reward").
pub fn macro_auc(logits: &Matrix, labels: &[usize], mask: &[usize], num_classes: usize) -> f64 {
    let mut total = 0.0;
    let mut counted = 0usize;
    for class in 0..num_classes {
        let mut scored: Vec<(f32, bool)> =
            mask.iter().map(|&i| (logits.get(i, class), labels[i] == class)).collect();
        let pos = scored.iter().filter(|&&(_, p)| p).count();
        let neg = scored.len() - pos;
        if pos == 0 || neg == 0 {
            continue;
        }
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Average ranks with tie handling.
        let mut rank_sum_pos = 0.0f64;
        let mut i = 0;
        while i < scored.len() {
            let mut j = i;
            while j + 1 < scored.len() && scored[j + 1].0 == scored[i].0 {
                j += 1;
            }
            let avg_rank = (i + j) as f64 / 2.0 + 1.0;
            for item in &scored[i..=j] {
                if item.1 {
                    rank_sum_pos += avg_rank;
                }
            }
            i = j + 1;
        }
        let u = rank_sum_pos - (pos as f64 * (pos as f64 + 1.0)) / 2.0;
        total += u / (pos as f64 * neg as f64);
        counted += 1;
    }
    if counted == 0 {
        0.5
    } else {
        total / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_perfect_and_zero() {
        let logits = Matrix::from_vec(3, 2, vec![2.0, 1.0, 0.0, 5.0, 3.0, 1.0]);
        // Predictions: 0, 1, 0.
        assert_eq!(accuracy(&logits, &[0, 1, 0], &[0, 1, 2]), 1.0);
        assert_eq!(accuracy(&logits, &[1, 0, 1], &[0, 1, 2]), 0.0);
    }

    #[test]
    fn accuracy_respects_mask() {
        let logits = Matrix::from_vec(3, 2, vec![2.0, 1.0, 0.0, 5.0, 3.0, 1.0]);
        assert_eq!(accuracy(&logits, &[0, 0, 0], &[0, 2]), 1.0);
        assert_eq!(accuracy(&logits, &[0, 0, 0], &[1]), 0.0);
        assert_eq!(accuracy(&logits, &[0, 0, 0], &[]), 0.0);
    }

    #[test]
    fn auc_perfect_separation() {
        // Class-0 scores separate positives (rows 0,1) from negatives.
        let logits = Matrix::from_vec(
            4,
            2,
            vec![
                0.9, 0.1, //
                0.8, 0.2, //
                0.1, 0.9, //
                0.2, 0.8,
            ],
        );
        let auc = macro_auc(&logits, &[0, 0, 1, 1], &[0, 1, 2, 3], 2);
        assert!((auc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_random_is_half() {
        // Identical scores for everyone: ties give AUC 0.5.
        let logits = Matrix::filled(4, 2, 0.5);
        let auc = macro_auc(&logits, &[0, 0, 1, 1], &[0, 1, 2, 3], 2);
        assert!((auc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_inverted_is_zero() {
        let logits = Matrix::from_vec(
            4,
            2,
            vec![
                0.1, 0.9, //
                0.2, 0.8, //
                0.9, 0.1, //
                0.8, 0.2,
            ],
        );
        let auc = macro_auc(&logits, &[0, 0, 1, 1], &[0, 1, 2, 3], 2);
        assert!(auc.abs() < 1e-12);
    }

    #[test]
    fn auc_skips_unscorable_classes() {
        // Only class 0 present in the mask: nothing scorable => 0.5.
        let logits = Matrix::filled(2, 2, 0.0);
        let auc = macro_auc(&logits, &[0, 0], &[0, 1], 2);
        assert_eq!(auc, 0.5);
    }

    #[test]
    fn auc_is_stable_under_nan_scores() {
        // A NaN logit used to collapse the ranking sort through
        // `partial_cmp(..).unwrap_or(Equal)`, making the AUC depend on
        // the mask's iteration order. `total_cmp` keeps the order total:
        // the result is finite, in range, and invariant to mask order.
        let logits = Matrix::from_vec(
            4,
            2,
            vec![
                f32::NAN,
                0.0, //
                0.5,
                0.2, //
                0.1,
                0.9, //
                0.8,
                0.3,
            ],
        );
        let labels = [0usize, 1, 1, 0];
        let auc = macro_auc(&logits, &labels, &[0, 1, 2, 3], 2);
        assert!(auc.is_finite() && (0.0..=1.0).contains(&auc), "auc {auc}");
        assert_eq!(auc, macro_auc(&logits, &labels, &[3, 1, 0, 2], 2));
    }
}
