//! H2GCN (Zhu et al., NeurIPS 2020): the strongest heterophily-aware
//! backbone the paper enhances.
//!
//! H2GCN's three designs are implemented faithfully:
//! 1. **Ego/neighbour separation** — the ego embedding is never mixed into
//!    the aggregates;
//! 2. **Higher-order neighbourhoods** — each round aggregates over the
//!    strict one-hop *and* strict two-hop neighbourhoods separately;
//! 3. **Intermediate-representation combination** — the classifier reads
//!    the concatenation of the ego embedding and every round's output, with
//!    no nonlinearity between rounds.

use rand::rngs::StdRng;
use rand::SeedableRng;

use graphrare_tensor::{Param, Tape, Var};

use crate::linear::Linear;
use crate::model::{GnnModel, GraphTensors};

/// H2GCN with `rounds` aggregation rounds (the paper of Zhu et al. uses
/// K=2, which is the default used here).
pub struct H2gcn {
    embed: Linear,
    classify: Linear,
    rounds: usize,
    hidden: usize,
    dropout: f32,
}

impl H2gcn {
    /// Creates the model with K=2 rounds.
    pub fn new(in_dim: usize, hidden: usize, out_dim: usize, dropout: f32, seed: u64) -> Self {
        Self::with_rounds(in_dim, hidden, out_dim, 2, dropout, seed)
    }

    /// Creates the model with an explicit round count.
    pub fn with_rounds(
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        rounds: usize,
        dropout: f32,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Final representation: ego + per-round [1-hop ‖ 2-hop] blocks.
        // Round r's width doubles each time: hidden * 2^r.
        let final_dim: usize = hidden + (1..=rounds).map(|r| hidden << r).sum::<usize>();
        Self {
            embed: Linear::new("h2gcn.embed", in_dim, hidden, &mut rng),
            classify: Linear::new("h2gcn.classify", final_dim, out_dim, &mut rng),
            rounds,
            hidden,
            dropout,
        }
    }

    /// Aggregation rounds K.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Hidden width of the ego embedding.
    pub fn hidden(&self) -> usize {
        self.hidden
    }
}

impl GnnModel for H2gcn {
    fn forward(&self, tape: &mut Tape, gt: &GraphTensors, train: bool, rng: &mut StdRng) -> Var {
        let one_hop = gt.row_norm();
        let two_hop = gt.two_hop();
        let mut x = tape.constant((*gt.features()).clone());
        if train && self.dropout > 0.0 {
            x = tape.dropout(x, self.dropout, rng);
        }
        let ego = self.embed.forward(tape, x);
        let ego = tape.relu(ego);

        let mut reps = vec![ego];
        let mut current = ego;
        for _ in 0..self.rounds {
            let h1 = tape.spmm(one_hop.clone(), current);
            let h2 = tape.spmm(two_hop.clone(), current);
            current = tape.concat_cols(&[h1, h2]);
            reps.push(current);
        }
        let mut combined = tape.concat_cols(&reps);
        if train && self.dropout > 0.0 {
            combined = tape.dropout(combined, self.dropout, rng);
        }
        self.classify.forward(tape, combined)
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.embed.params();
        p.extend(self.classify.params());
        p
    }

    fn name(&self) -> &'static str {
        "H2GCN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrare_graph::Graph;
    use graphrare_tensor::Matrix;

    fn toy() -> GraphTensors {
        let g = Graph::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)],
            Matrix::from_fn(6, 4, |r, c| ((r * 2 + c) % 3) as f32),
            vec![0, 1, 0, 1, 0, 1],
            2,
        );
        GraphTensors::new(&g)
    }

    #[test]
    fn forward_shape_default_rounds() {
        let gt = toy();
        let m = H2gcn::new(4, 8, 2, 0.5, 0);
        assert_eq!(m.rounds(), 2);
        let mut t = Tape::new();
        let mut rng = StdRng::seed_from_u64(0);
        let y = m.forward(&mut t, &gt, true, &mut rng);
        assert_eq!(t.value(y).shape(), (6, 2));
    }

    #[test]
    fn final_dim_accounts_for_round_doubling() {
        // hidden=4, rounds=2: 4 + 8 + 16 = 28 classifier inputs.
        let m = H2gcn::with_rounds(4, 4, 2, 2, 0.0, 0);
        assert_eq!(m.params()[2].shape().0, 28);
    }

    #[test]
    fn one_round_variant_works() {
        let gt = toy();
        let m = H2gcn::with_rounds(4, 4, 2, 1, 0.0, 0);
        let mut t = Tape::new();
        let mut rng = StdRng::seed_from_u64(0);
        let y = m.forward(&mut t, &gt, false, &mut rng);
        assert_eq!(t.value(y).shape(), (6, 2));
        assert!(t.value(y).all_finite());
    }

    #[test]
    fn two_hop_information_reaches_output() {
        // Moving a remote edge (distance-2 relation) must change logits.
        let gt1 = toy();
        let m = H2gcn::new(4, 4, 2, 0.0, 3);
        let mut rng = StdRng::seed_from_u64(0);
        let mut t1 = Tape::new();
        let y1 = m.forward(&mut t1, &gt1, false, &mut rng);

        let mut g2 = gt1.graph().clone();
        g2.add_edge(0, 5);
        let gt2 = GraphTensors::new(&g2);
        let mut t2 = Tape::new();
        let y2 = m.forward(&mut t2, &gt2, false, &mut rng);
        assert!(t1.value(y1).max_abs_diff(t2.value(y2)) > 1e-6);
    }
}
