//! The GNN backbones evaluated in the paper.

pub mod gat;
pub mod gcn;
pub mod h2gcn;
pub mod mlp;
pub mod sage;

pub use gat::Gat;
pub use gcn::Gcn;
pub use h2gcn::H2gcn;
pub use mlp::Mlp;
pub use sage::GraphSage;

use crate::model::{Backbone, GnnModel};

/// Hyper-parameters shared by every backbone (paper Sec. V-C).
#[derive(Clone, Copy, Debug)]
pub struct ModelConfig {
    /// Hidden width (paper selects from {48, 64, 128}).
    pub hidden: usize,
    /// Dropout rate (paper: 0.5).
    pub dropout: f32,
    /// Attention heads for GAT.
    pub gat_heads: usize,
    /// Weight-initialisation seed.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self { hidden: 48, dropout: 0.5, gat_heads: 4, seed: 0 }
    }
}

/// Instantiates a backbone for a dataset shape.
pub fn build_model(
    backbone: Backbone,
    in_dim: usize,
    out_dim: usize,
    cfg: &ModelConfig,
) -> Box<dyn GnnModel> {
    match backbone {
        Backbone::Mlp => Box::new(Mlp::new(in_dim, cfg.hidden, out_dim, cfg.dropout, cfg.seed)),
        Backbone::Gcn => Box::new(Gcn::new(in_dim, cfg.hidden, out_dim, cfg.dropout, cfg.seed)),
        Backbone::Sage => {
            Box::new(GraphSage::new(in_dim, cfg.hidden, out_dim, cfg.dropout, cfg.seed))
        }
        Backbone::Gat => {
            let hidden = cfg.hidden - cfg.hidden % cfg.gat_heads;
            Box::new(Gat::new(in_dim, hidden, out_dim, cfg.gat_heads, cfg.dropout, cfg.seed))
        }
        Backbone::H2gcn => Box::new(H2gcn::new(in_dim, cfg.hidden, out_dim, cfg.dropout, cfg.seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GraphTensors;
    use graphrare_graph::Graph;
    use graphrare_tensor::{Matrix, Tape};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn factory_builds_every_backbone() {
        let g = Graph::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)],
            Matrix::from_fn(6, 5, |r, c| ((r + c) % 2) as f32),
            vec![0, 1, 2, 0, 1, 2],
            3,
        );
        let gt = GraphTensors::new(&g);
        let cfg = ModelConfig::default();
        for b in Backbone::ALL {
            let m = build_model(b, 5, 3, &cfg);
            let mut t = Tape::new();
            let mut rng = StdRng::seed_from_u64(0);
            let y = m.forward(&mut t, &gt, false, &mut rng);
            assert_eq!(t.value(y).shape(), (6, 3), "{}", m.name());
            assert!(m.num_weights() > 0);
        }
    }
}
