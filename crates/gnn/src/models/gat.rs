//! Graph Attention Network (Veličković et al., ICLR 2018).

use rand::rngs::StdRng;
use rand::SeedableRng;

use graphrare_tensor::{init, Matrix, Param, Tape, Var};

use crate::model::{GnnModel, GraphTensors};

const LEAKY_SLOPE: f32 = 0.2;

/// One attention head: projection `W` plus the split attention vector
/// `a = [a_l ‖ a_r]`, so that `e_ij = LeakyReLU(a_l·Wh_i + a_r·Wh_j)`.
struct Head {
    w: Param,
    a_l: Param,
    a_r: Param,
}

impl Head {
    fn new(name: &str, in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        Self {
            w: Param::new(format!("{name}.w"), init::glorot_uniform(rng, in_dim, out_dim)),
            a_l: Param::new(format!("{name}.a_l"), init::glorot_uniform(rng, out_dim, 1)),
            a_r: Param::new(format!("{name}.a_r"), init::glorot_uniform(rng, out_dim, 1)),
        }
    }

    fn forward(&self, tape: &mut Tape, gt: &GraphTensors, x: Var) -> Var {
        let w = tape.param(&self.w);
        let wh = tape.matmul(x, w);
        let al = tape.param(&self.a_l);
        let ar = tape.param(&self.a_r);
        let sl = tape.matmul(wh, al);
        let sr = tape.matmul(wh, ar);
        tape.edge_attention(wh, sl, sr, gt.attention(), LEAKY_SLOPE)
    }

    fn params(&self) -> Vec<Param> {
        vec![self.w.clone(), self.a_l.clone(), self.a_r.clone()]
    }
}

/// Two-layer GAT: a multi-head concatenated first layer with ELU, then a
/// single-head output layer, with dropout on the inputs of both layers.
pub struct Gat {
    heads: Vec<Head>,
    out_head: Head,
    dropout: f32,
}

impl Gat {
    /// Creates the model. `hidden` is the total first-layer width; it is
    /// split evenly over `num_heads` heads.
    ///
    /// # Panics
    /// Panics if `hidden` is not divisible by `num_heads`.
    pub fn new(
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        num_heads: usize,
        dropout: f32,
        seed: u64,
    ) -> Self {
        assert!(num_heads > 0 && hidden.is_multiple_of(num_heads), "hidden must divide by heads");
        let mut rng = StdRng::seed_from_u64(seed);
        let per_head = hidden / num_heads;
        let heads = (0..num_heads)
            .map(|h| Head::new(&format!("gat.h{h}"), in_dim, per_head, &mut rng))
            .collect();
        let out_head = Head::new("gat.out", hidden, out_dim, &mut rng);
        Self { heads, out_head, dropout }
    }

    /// Number of first-layer heads.
    pub fn num_heads(&self) -> usize {
        self.heads.len()
    }

    /// Attention coefficients of the first head on the current topology
    /// (diagnostic helper; re-runs a forward pass without dropout).
    pub fn first_layer_logits(&self, gt: &GraphTensors) -> Matrix {
        let mut tape = Tape::new();
        let x = tape.constant((*gt.features()).clone());
        let h = self.heads[0].forward(&mut tape, gt, x);
        tape.value(h).clone()
    }
}

impl GnnModel for Gat {
    fn forward(&self, tape: &mut Tape, gt: &GraphTensors, train: bool, rng: &mut StdRng) -> Var {
        let mut x = tape.constant((*gt.features()).clone());
        if train && self.dropout > 0.0 {
            x = tape.dropout(x, self.dropout, rng);
        }
        let head_outs: Vec<Var> = self.heads.iter().map(|h| h.forward(tape, gt, x)).collect();
        let cat = if head_outs.len() == 1 { head_outs[0] } else { tape.concat_cols(&head_outs) };
        let mut h = tape.elu(cat, 1.0);
        if train && self.dropout > 0.0 {
            h = tape.dropout(h, self.dropout, rng);
        }
        self.out_head.forward(tape, gt, h)
    }

    fn params(&self) -> Vec<Param> {
        let mut out: Vec<Param> = self.heads.iter().flat_map(Head::params).collect();
        out.extend(self.out_head.params());
        out
    }

    fn name(&self) -> &'static str {
        "GAT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrare_graph::Graph;

    fn toy() -> GraphTensors {
        let g = Graph::from_edges(
            5,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)],
            Matrix::from_fn(5, 6, |r, c| ((r + 2 * c) % 3) as f32),
            vec![0, 1, 2, 0, 1],
            3,
        );
        GraphTensors::new(&g)
    }

    #[test]
    fn forward_shape_multi_head() {
        let gt = toy();
        let m = Gat::new(6, 8, 3, 4, 0.5, 0);
        assert_eq!(m.num_heads(), 4);
        let mut t = Tape::new();
        let mut rng = StdRng::seed_from_u64(0);
        let y = m.forward(&mut t, &gt, true, &mut rng);
        assert_eq!(t.value(y).shape(), (5, 3));
        assert!(t.value(y).all_finite());
    }

    #[test]
    #[should_panic(expected = "hidden must divide by heads")]
    fn indivisible_heads_panic() {
        let _ = Gat::new(6, 7, 3, 4, 0.5, 0);
    }

    #[test]
    fn gradients_flow_through_attention() {
        let gt = toy();
        let m = Gat::new(6, 4, 3, 2, 0.0, 0);
        let mut t = Tape::new();
        let mut rng = StdRng::seed_from_u64(0);
        let y = m.forward(&mut t, &gt, true, &mut rng);
        let lp = t.log_softmax_rows(y);
        let loss = t.nll_masked(
            lp,
            std::rc::Rc::new(vec![0, 1, 2, 0, 1]),
            std::rc::Rc::new(vec![0, 1, 2, 3, 4]),
        );
        t.backward(loss);
        for p in m.params() {
            assert!(
                p.grad().as_slice().iter().any(|&v| v != 0.0),
                "parameter {} received no gradient",
                p.name()
            );
        }
    }

    #[test]
    fn single_head_output_layer_shape() {
        let gt = toy();
        let m = Gat::new(6, 8, 3, 1, 0.0, 7);
        let logits = m.first_layer_logits(&gt);
        assert_eq!(logits.shape(), (5, 8));
    }
}
