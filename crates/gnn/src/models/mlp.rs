//! Feature-only multilayer perceptron (the paper's attribute-only
//! baseline).

use rand::rngs::StdRng;
use rand::SeedableRng;

use graphrare_tensor::{Param, Tape, Var};

use crate::linear::Linear;
use crate::model::{GnnModel, GraphTensors};

/// Two-layer MLP over raw node features; ignores topology entirely.
pub struct Mlp {
    l1: Linear,
    l2: Linear,
    dropout: f32,
}

impl Mlp {
    /// Creates the model.
    pub fn new(in_dim: usize, hidden: usize, out_dim: usize, dropout: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            l1: Linear::new("mlp.l1", in_dim, hidden, &mut rng),
            l2: Linear::new("mlp.l2", hidden, out_dim, &mut rng),
            dropout,
        }
    }
}

impl GnnModel for Mlp {
    fn forward(&self, tape: &mut Tape, gt: &GraphTensors, train: bool, rng: &mut StdRng) -> Var {
        let mut x = tape.constant((*gt.features()).clone());
        if train && self.dropout > 0.0 {
            x = tape.dropout(x, self.dropout, rng);
        }
        let h = self.l1.forward(tape, x);
        let mut h = tape.relu(h);
        if train && self.dropout > 0.0 {
            h = tape.dropout(h, self.dropout, rng);
        }
        self.l2.forward(tape, h)
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.l1.params();
        p.extend(self.l2.params());
        p
    }

    fn name(&self) -> &'static str {
        "MLP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrare_graph::Graph;
    use graphrare_tensor::Matrix;

    #[test]
    fn logits_shape_matches_classes() {
        let g = Graph::from_edges(5, &[(0, 1)], Matrix::ones(5, 7), vec![0, 1, 2, 0, 1], 3);
        let gt = GraphTensors::new(&g);
        let m = Mlp::new(7, 8, 3, 0.5, 0);
        let mut t = Tape::new();
        let mut rng = StdRng::seed_from_u64(0);
        let y = m.forward(&mut t, &gt, false, &mut rng);
        assert_eq!(t.value(y).shape(), (5, 3));
        assert_eq!(m.params().len(), 4);
        assert!(m.num_weights() > 0);
    }

    #[test]
    fn eval_mode_is_deterministic() {
        let g = Graph::from_edges(3, &[], Matrix::ones(3, 4), vec![0, 1, 0], 2);
        let gt = GraphTensors::new(&g);
        let m = Mlp::new(4, 6, 2, 0.5, 1);
        let run = || {
            let mut t = Tape::new();
            let mut rng = StdRng::seed_from_u64(99);
            let y = m.forward(&mut t, &gt, false, &mut rng);
            t.value(y).clone()
        };
        assert_eq!(run(), run());
    }
}
