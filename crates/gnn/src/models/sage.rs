//! GraphSAGE with mean aggregation (Hamilton et al., NeurIPS 2017).

use rand::rngs::StdRng;
use rand::SeedableRng;

use graphrare_tensor::{Param, Tape, Var};

use crate::linear::Linear;
use crate::model::{GnnModel, GraphTensors};

/// Two-layer GraphSAGE-mean: each layer computes
/// `h' = ReLU(W_self · h + W_nbr · mean_{u∈N(v)} h_u + b)`, the full-batch
/// form of the sampled aggregator (the paper trains full-batch too).
pub struct GraphSage {
    self1: Linear,
    nbr1: Linear,
    self2: Linear,
    nbr2: Linear,
    dropout: f32,
}

impl GraphSage {
    /// Creates the model.
    pub fn new(in_dim: usize, hidden: usize, out_dim: usize, dropout: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            self1: Linear::new("sage.self1", in_dim, hidden, &mut rng),
            nbr1: Linear::with_bias("sage.nbr1", in_dim, hidden, false, &mut rng),
            self2: Linear::new("sage.self2", hidden, out_dim, &mut rng),
            nbr2: Linear::with_bias("sage.nbr2", hidden, out_dim, false, &mut rng),
            dropout,
        }
    }

    fn layer(
        &self,
        tape: &mut Tape,
        gt: &GraphTensors,
        x: Var,
        self_lin: &Linear,
        nbr_lin: &Linear,
    ) -> Var {
        let mean_nbr = tape.spmm(gt.row_norm(), x);
        let a = self_lin.forward(tape, x);
        let b = nbr_lin.forward(tape, mean_nbr);
        tape.add(a, b)
    }
}

impl GnnModel for GraphSage {
    fn forward(&self, tape: &mut Tape, gt: &GraphTensors, train: bool, rng: &mut StdRng) -> Var {
        let mut x = tape.constant((*gt.features()).clone());
        if train && self.dropout > 0.0 {
            x = tape.dropout(x, self.dropout, rng);
        }
        let h = self.layer(tape, gt, x, &self.self1, &self.nbr1);
        let mut h = tape.relu(h);
        if train && self.dropout > 0.0 {
            h = tape.dropout(h, self.dropout, rng);
        }
        self.layer(tape, gt, h, &self.self2, &self.nbr2)
    }

    fn params(&self) -> Vec<Param> {
        [&self.self1, &self.nbr1, &self.self2, &self.nbr2].iter().flat_map(|l| l.params()).collect()
    }

    fn name(&self) -> &'static str {
        "GraphSAGE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrare_graph::Graph;
    use graphrare_tensor::Matrix;

    #[test]
    fn forward_shape_and_params() {
        let g = Graph::from_edges(
            5,
            &[(0, 1), (1, 2), (3, 4)],
            Matrix::ones(5, 6),
            vec![0, 1, 2, 0, 1],
            3,
        );
        let gt = GraphTensors::new(&g);
        let m = GraphSage::new(6, 8, 3, 0.5, 0);
        let mut t = Tape::new();
        let mut rng = StdRng::seed_from_u64(0);
        let y = m.forward(&mut t, &gt, false, &mut rng);
        assert_eq!(t.value(y).shape(), (5, 3));
        // self layers have bias, neighbour layers don't: 2+1+2+1 params.
        assert_eq!(m.params().len(), 6);
    }

    #[test]
    fn isolated_node_uses_self_path_only() {
        // An isolated node's logits must still be finite and non-trivial.
        let g = Graph::from_edges(3, &[(0, 1)], Matrix::ones(3, 4), vec![0, 1, 0], 2);
        let gt = GraphTensors::new(&g);
        let m = GraphSage::new(4, 4, 2, 0.0, 1);
        let mut t = Tape::new();
        let mut rng = StdRng::seed_from_u64(0);
        let y = m.forward(&mut t, &gt, false, &mut rng);
        assert!(t.value(y).all_finite());
        assert!(t.value(y).row(2).iter().any(|&v| v != 0.0));
    }
}
