//! Graph Convolutional Network (Kipf & Welling, ICLR 2017).

use rand::rngs::StdRng;
use rand::SeedableRng;

use graphrare_tensor::{Param, Tape, Var};

use crate::linear::Linear;
use crate::model::{GnnModel, GraphTensors};

/// Two-layer GCN: `Â · ReLU(Â X W₁) W₂` with dropout before each layer.
pub struct Gcn {
    l1: Linear,
    l2: Linear,
    dropout: f32,
}

impl Gcn {
    /// Creates the model.
    pub fn new(in_dim: usize, hidden: usize, out_dim: usize, dropout: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            l1: Linear::new("gcn.l1", in_dim, hidden, &mut rng),
            l2: Linear::new("gcn.l2", hidden, out_dim, &mut rng),
            dropout,
        }
    }
}

impl GnnModel for Gcn {
    fn forward(&self, tape: &mut Tape, gt: &GraphTensors, train: bool, rng: &mut StdRng) -> Var {
        let a_hat = gt.gcn_norm();
        let mut x = tape.constant((*gt.features()).clone());
        if train && self.dropout > 0.0 {
            x = tape.dropout(x, self.dropout, rng);
        }
        // Layer 1: project then propagate (projection first is cheaper when
        // in_dim >> hidden, and algebraically identical).
        let xw = self.l1.forward(tape, x);
        let h = tape.spmm(a_hat.clone(), xw);
        let mut h = tape.relu(h);
        if train && self.dropout > 0.0 {
            h = tape.dropout(h, self.dropout, rng);
        }
        let hw = self.l2.forward(tape, h);
        tape.spmm(a_hat, hw)
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.l1.params();
        p.extend(self.l2.params());
        p
    }

    fn name(&self) -> &'static str {
        "GCN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrare_graph::Graph;
    use graphrare_tensor::Matrix;

    fn toy() -> GraphTensors {
        let g = Graph::from_edges(
            4,
            &[(0, 1), (1, 2), (2, 3)],
            Matrix::from_fn(4, 5, |r, c| ((r * c) % 3) as f32),
            vec![0, 1, 0, 1],
            2,
        );
        GraphTensors::new(&g)
    }

    #[test]
    fn forward_shape() {
        let gt = toy();
        let m = Gcn::new(5, 8, 2, 0.5, 0);
        let mut t = Tape::new();
        let mut rng = StdRng::seed_from_u64(0);
        let y = m.forward(&mut t, &gt, true, &mut rng);
        assert_eq!(t.value(y).shape(), (4, 2));
    }

    #[test]
    fn propagation_uses_topology() {
        // Changing an edge must change the logits (unlike an MLP).
        let m = Gcn::new(5, 8, 2, 0.0, 0);
        let mut rng = StdRng::seed_from_u64(0);

        let gt1 = toy();
        let mut t1 = Tape::new();
        let y1 = m.forward(&mut t1, &gt1, false, &mut rng);

        let g2 = {
            let mut g = gt1.graph().clone();
            g.add_edge(0, 3);
            g
        };
        let gt2 = GraphTensors::new(&g2);
        let mut t2 = Tape::new();
        let y2 = m.forward(&mut t2, &gt2, false, &mut rng);
        assert!(t1.value(y1).max_abs_diff(t2.value(y2)) > 1e-6);
    }

    #[test]
    fn gradients_flow_to_all_params() {
        let gt = toy();
        let m = Gcn::new(5, 8, 2, 0.0, 0);
        let mut t = Tape::new();
        let mut rng = StdRng::seed_from_u64(0);
        let y = m.forward(&mut t, &gt, true, &mut rng);
        let lp = t.log_softmax_rows(y);
        let loss = t.nll_masked(
            lp,
            std::rc::Rc::new(vec![0, 1, 0, 1]),
            std::rc::Rc::new(vec![0, 1, 2, 3]),
        );
        t.backward(loss);
        for p in m.params() {
            assert!(
                p.grad().as_slice().iter().any(|&v| v != 0.0),
                "parameter {} received no gradient",
                p.name()
            );
        }
    }
}
