//! # graphrare-gnn
//!
//! GNN backbones and training harness for the GraphRARE workspace. The
//! paper enhances four standard backbones — GCN, GraphSAGE, GAT and H2GCN
//! — and compares against an attribute-only MLP; all five live here,
//! implemented from their defining equations on the `graphrare-tensor`
//! autograd substrate.
//!
//! * [`model`] — the [`GnnModel`] trait plus
//!   [`GraphTensors`], the per-topology operator
//!   cache that lets one set of weights keep training while GraphRARE
//!   rewires the graph under it.
//! * [`models`] — the five backbones and a
//!   [`build_model`] factory.
//! * [`trainer`] — full-batch training with validation-based early
//!   stopping (the paper's Sec. V-C protocol).
//! * [`metrics`] — accuracy and macro ROC-AUC (the alternative-reward
//!   ablation's metric).

#![warn(missing_docs)]

pub mod linear;
pub mod metrics;
pub mod model;
pub mod models;
pub mod trainer;

pub use model::{Backbone, GnnModel, GraphTensors};
pub use models::{build_model, Gat, Gcn, GraphSage, H2gcn, Mlp, ModelConfig};
pub use trainer::{evaluate, fit, EvalResult, FitReport, TrainConfig, Trainer, TrainerState};
