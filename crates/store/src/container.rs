//! The container format: named, typed, checksummed sections in one file.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [0..8)    magic  b"GRRSTORE"
//! [8..12)   format version (u32)
//! [12..)    section payloads, back to back
//! table     count u32, then per section:
//!             name (u16-prefixed utf-8), kind u16,
//!             offset u64, len u64, crc32 u32
//! trailer   table offset u64, file crc32 u32
//! ```
//!
//! The file CRC covers every byte except the trailing CRC itself, so a
//! flip anywhere — header, payload, table, even the table offset — is
//! detected. Each section additionally carries its own CRC so the
//! failing section can be named in the error.

use std::path::Path;

use graphrare_tensor::optim::AdamSnapshot;
use graphrare_tensor::Matrix;

use crate::atomic::write_atomic;
use crate::crc::crc32;
use crate::error::StoreError;
use crate::section::{self, SectionKind, TopologyRecord};
use crate::wire::{ByteReader, ByteWriter};
use crate::{FORMAT_VERSION, MAGIC};

/// Builder that accumulates typed sections and serialises them into a
/// single container.
#[derive(Default)]
pub struct ContainerWriter {
    sections: Vec<(String, SectionKind, Vec<u8>)>,
}

impl ContainerWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, name: &str, kind: SectionKind, payload: Vec<u8>) {
        debug_assert!(
            !self.sections.iter().any(|(n, _, _)| n == name),
            "duplicate section name '{name}'"
        );
        self.sections.push((name.to_string(), kind, payload));
    }

    /// Adds an uninterpreted byte section.
    pub fn put_bytes(&mut self, name: &str, bytes: &[u8]) {
        self.push(name, SectionKind::Bytes, bytes.to_vec());
    }

    /// Adds a dense `f32` matrix.
    pub fn put_matrix(&mut self, name: &str, m: &Matrix) {
        let mut w = ByteWriter::with_capacity(8 + m.as_slice().len() * 4);
        section::encode_matrix(&mut w, m);
        self.push(name, SectionKind::Matrix, w.into_bytes());
    }

    /// Adds a named parameter set (model or policy weights).
    pub fn put_param_set(&mut self, name: &str, params: &[(String, Matrix)]) {
        let mut w = ByteWriter::new();
        section::encode_param_set(&mut w, params);
        self.push(name, SectionKind::ParamSet, w.into_bytes());
    }

    /// Adds Adam optimiser state.
    pub fn put_adam(&mut self, name: &str, snap: &AdamSnapshot) {
        let mut w = ByteWriter::new();
        section::encode_adam(&mut w, snap);
        self.push(name, SectionKind::AdamState, w.into_bytes());
    }

    /// Adds an RNG stream state.
    pub fn put_rng(&mut self, name: &str, state: [u64; 4]) {
        let mut w = ByteWriter::with_capacity(32);
        section::encode_rng(&mut w, state);
        self.push(name, SectionKind::Rng, w.into_bytes());
    }

    /// Adds a graph topology.
    pub fn put_topology(&mut self, name: &str, t: &TopologyRecord) {
        let mut w = ByteWriter::with_capacity(16 + t.edges.len() * 8);
        section::encode_topology(&mut w, t);
        self.push(name, SectionKind::Topology, w.into_bytes());
    }

    /// Adds a `u16` vector.
    pub fn put_u16_vec(&mut self, name: &str, v: &[u16]) {
        let mut w = ByteWriter::with_capacity(8 + v.len() * 2);
        section::encode_u16_vec(&mut w, v);
        self.push(name, SectionKind::U16Vec, w.into_bytes());
    }

    /// Adds an `f32` vector.
    pub fn put_f32_vec(&mut self, name: &str, v: &[f32]) {
        let mut w = ByteWriter::with_capacity(8 + v.len() * 4);
        section::encode_f32_vec(&mut w, v);
        self.push(name, SectionKind::F32Vec, w.into_bytes());
    }

    /// Adds an `f64` vector.
    pub fn put_f64_vec(&mut self, name: &str, v: &[f64]) {
        let mut w = ByteWriter::with_capacity(8 + v.len() * 8);
        section::encode_f64_vec(&mut w, v);
        self.push(name, SectionKind::F64Vec, w.into_bytes());
    }

    /// Adds a `u64` vector.
    pub fn put_u64_vec(&mut self, name: &str, v: &[u64]) {
        let mut w = ByteWriter::with_capacity(8 + v.len() * 8);
        section::encode_u64_vec(&mut w, v);
        self.push(name, SectionKind::U64Vec, w.into_bytes());
    }

    /// Adds a named map of `f64` scalars.
    pub fn put_scalars(&mut self, name: &str, entries: &[(String, f64)]) {
        let mut w = ByteWriter::new();
        section::encode_scalars(&mut w, entries);
        self.push(name, SectionKind::Scalars, w.into_bytes());
    }

    /// Serialises the container to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload_total: usize = self.sections.iter().map(|(_, _, p)| p.len()).sum();
        let mut w = ByteWriter::with_capacity(payload_total + 64 * self.sections.len() + 32);
        w.put_bytes(MAGIC);
        w.put_u32(FORMAT_VERSION);

        let mut entries = Vec::with_capacity(self.sections.len());
        let mut offset = (MAGIC.len() + 4) as u64;
        for (name, kind, payload) in &self.sections {
            entries.push((name, *kind, offset, payload.len() as u64, crc32(payload)));
            w.put_bytes(payload);
            offset += payload.len() as u64;
        }

        let table_offset = offset;
        w.put_u32(entries.len() as u32);
        for (name, kind, off, len, crc) in entries {
            w.put_str(name);
            w.put_u16(kind as u16);
            w.put_u64(off);
            w.put_u64(len);
            w.put_u32(crc);
        }
        w.put_u64(table_offset);

        let mut bytes = w.into_bytes();
        let file_crc = crc32(&bytes);
        bytes.extend_from_slice(&file_crc.to_le_bytes());
        bytes
    }

    /// Serialises and atomically writes the container to `path`.
    /// Returns the number of bytes written.
    pub fn write_atomic(&self, path: &Path) -> Result<u64, StoreError> {
        let bytes = self.to_bytes();
        let written = write_atomic(path, &bytes)?;
        graphrare_telemetry::counter("store.saves", 1);
        Ok(written)
    }
}

/// One parsed section: name, kind, payload slice into the file buffer.
struct Section {
    name: String,
    kind: SectionKind,
    start: usize,
    len: usize,
}

/// A validated, read-only container.
///
/// Construction verifies the magic, version, file CRC, table structure
/// and every section CRC; typed getters then verify the kind tag and
/// decode the payload with full bounds checks. Nothing in the read path
/// panics on malformed input.
pub struct Container {
    bytes: Vec<u8>,
    sections: Vec<Section>,
}

impl std::fmt::Debug for Container {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_map();
        for s in &self.sections {
            d.entry(&s.name, &format_args!("{} ({} bytes)", s.kind.name(), s.len));
        }
        d.finish()
    }
}

impl Container {
    /// Parses and validates a container from raw bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, StoreError> {
        let header_len = MAGIC.len() + 4;
        // Minimum: header + empty table (count) + trailer.
        let min_len = header_len + 4 + 12;
        if bytes.len() < min_len {
            return Err(StoreError::Truncated {
                context: "container header/trailer",
                needed: min_len as u64,
                available: bytes.len() as u64,
            });
        }

        if &bytes[..MAGIC.len()] != MAGIC {
            let mut found = [0u8; 8];
            let n = bytes.len().min(8);
            found[..n].copy_from_slice(&bytes[..n]);
            return Err(StoreError::BadMagic { found });
        }

        let version = u32::from_le_bytes(bytes[MAGIC.len()..header_len].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }

        let crc_at = bytes.len() - 4;
        let stored_crc = u32::from_le_bytes(bytes[crc_at..].try_into().unwrap());
        let computed_crc = crc32(&bytes[..crc_at]);
        if stored_crc != computed_crc {
            return Err(StoreError::FileCrcMismatch { stored: stored_crc, computed: computed_crc });
        }

        let table_offset = u64::from_le_bytes(bytes[crc_at - 8..crc_at].try_into().unwrap());
        let table_offset = usize::try_from(table_offset)
            .ok()
            .filter(|&o| o >= header_len && o <= crc_at - 8)
            .ok_or_else(|| StoreError::Corrupt {
                context: format!("table offset {table_offset} outside file"),
            })?;

        let table_bytes = &bytes[table_offset..crc_at - 8];
        let mut r = ByteReader::new(table_bytes, "section table");
        let count = r.get_u32()? as usize;
        if count > table_bytes.len() / 22 + 1 {
            return Err(StoreError::Corrupt {
                context: format!("section count {count} exceeds table size"),
            });
        }
        let mut sections = Vec::with_capacity(count);
        for _ in 0..count {
            let name = r.get_str()?;
            let raw_kind = r.get_u16()?;
            let kind = SectionKind::from_raw(raw_kind)
                .ok_or_else(|| StoreError::UnknownKind { section: name.clone(), raw: raw_kind })?;
            let off = r.get_u64()?;
            let len = r.get_u64()?;
            let crc = r.get_u32()?;

            let start = usize::try_from(off).ok();
            let plen = usize::try_from(len).ok();
            let (start, plen) = match (start, plen) {
                (Some(s), Some(l))
                    if s >= header_len
                        && l <= table_offset.saturating_sub(s)
                        && s <= table_offset =>
                {
                    (s, l)
                }
                _ => {
                    return Err(StoreError::Corrupt {
                        context: format!(
                            "section '{name}' range [{off}, {off}+{len}) outside payload area"
                        ),
                    })
                }
            };

            let payload = &bytes[start..start + plen];
            let computed = crc32(payload);
            if computed != crc {
                return Err(StoreError::SectionCrcMismatch {
                    section: name,
                    stored: crc,
                    computed,
                });
            }
            sections.push(Section { name, kind, start, len: plen });
        }
        r.expect_exhausted("section table")?;

        Ok(Self { bytes, sections })
    }

    /// Reads and validates a container file.
    pub fn read(path: &Path) -> Result<Self, StoreError> {
        let bytes = std::fs::read(path)?;
        let c = Self::from_bytes(bytes)?;
        graphrare_telemetry::counter("store.loads", 1);
        Ok(c)
    }

    /// Section names with kinds, in file order (for `store_dump`).
    pub fn sections(&self) -> impl Iterator<Item = (&str, SectionKind, u64)> {
        self.sections.iter().map(|s| (s.name.as_str(), s.kind, s.len as u64))
    }

    /// Whether a section with this name exists (any kind).
    pub fn has(&self, name: &str) -> bool {
        self.sections.iter().any(|s| s.name == name)
    }

    fn payload(&self, name: &str, kind: SectionKind) -> Result<&[u8], StoreError> {
        let s = self
            .sections
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| StoreError::MissingSection { section: name.to_string() })?;
        if s.kind != kind {
            return Err(StoreError::KindMismatch {
                section: name.to_string(),
                expected: kind,
                found: s.kind,
            });
        }
        Ok(&self.bytes[s.start..s.start + s.len])
    }

    fn decode<T>(
        &self,
        name: &str,
        kind: SectionKind,
        decode: impl FnOnce(&mut ByteReader<'_>) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        let payload = self.payload(name, kind)?;
        let mut r = ByteReader::new(payload, "section payload");
        let value = decode(&mut r)?;
        r.expect_exhausted(name)?;
        Ok(value)
    }

    /// Reads an uninterpreted byte section.
    pub fn bytes(&self, name: &str) -> Result<&[u8], StoreError> {
        self.payload(name, SectionKind::Bytes)
    }

    /// Reads a matrix section.
    pub fn matrix(&self, name: &str) -> Result<Matrix, StoreError> {
        self.decode(name, SectionKind::Matrix, section::decode_matrix)
    }

    /// Reads a parameter-set section.
    pub fn param_set(&self, name: &str) -> Result<Vec<(String, Matrix)>, StoreError> {
        self.decode(name, SectionKind::ParamSet, section::decode_param_set)
    }

    /// Reads an Adam-state section.
    pub fn adam(&self, name: &str) -> Result<AdamSnapshot, StoreError> {
        self.decode(name, SectionKind::AdamState, section::decode_adam)
    }

    /// Reads an RNG-state section.
    pub fn rng(&self, name: &str) -> Result<[u64; 4], StoreError> {
        self.decode(name, SectionKind::Rng, section::decode_rng)
    }

    /// Reads a topology section.
    pub fn topology(&self, name: &str) -> Result<TopologyRecord, StoreError> {
        self.decode(name, SectionKind::Topology, section::decode_topology)
    }

    /// Reads a `u16` vector section.
    pub fn u16_vec(&self, name: &str) -> Result<Vec<u16>, StoreError> {
        self.decode(name, SectionKind::U16Vec, section::decode_u16_vec)
    }

    /// Reads an `f32` vector section.
    pub fn f32_vec(&self, name: &str) -> Result<Vec<f32>, StoreError> {
        self.decode(name, SectionKind::F32Vec, section::decode_f32_vec)
    }

    /// Reads an `f64` vector section.
    pub fn f64_vec(&self, name: &str) -> Result<Vec<f64>, StoreError> {
        self.decode(name, SectionKind::F64Vec, section::decode_f64_vec)
    }

    /// Reads a `u64` vector section.
    pub fn u64_vec(&self, name: &str) -> Result<Vec<u64>, StoreError> {
        self.decode(name, SectionKind::U64Vec, section::decode_u64_vec)
    }

    /// Reads a scalar-map section as ordered `(name, value)` pairs.
    pub fn scalars(&self, name: &str) -> Result<Vec<(String, f64)>, StoreError> {
        self.decode(name, SectionKind::Scalars, section::decode_scalars)
    }

    /// Reads one named scalar out of a scalar-map section.
    pub fn scalar(&self, section: &str, key: &str) -> Result<f64, StoreError> {
        let entries = self.scalars(section)?;
        entries.iter().find(|(k, _)| k == key).map(|&(_, v)| v).ok_or_else(|| {
            StoreError::Mismatch {
                context: format!("scalar section '{section}' has no key '{key}'"),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ContainerWriter {
        let mut w = ContainerWriter::new();
        w.put_matrix("weights", &Matrix::from_vec(2, 2, vec![1.0, -2.5, 0.0, 4.25]));
        w.put_rng("rng", [1, 2, 3, u64::MAX]);
        w.put_f64_vec("acc", &[0.5, 0.625]);
        w.put_scalars("meta", &[("step".into(), 7.0), ("seed".into(), 42.0)]);
        w.put_bytes("raw", b"\x00\xFFpayload");
        w
    }

    #[test]
    fn roundtrip_through_bytes() {
        let bytes = sample().to_bytes();
        let c = Container::from_bytes(bytes).unwrap();
        assert_eq!(c.matrix("weights").unwrap().as_slice(), &[1.0, -2.5, 0.0, 4.25]);
        assert_eq!(c.rng("rng").unwrap(), [1, 2, 3, u64::MAX]);
        assert_eq!(c.f64_vec("acc").unwrap(), vec![0.5, 0.625]);
        assert_eq!(c.scalar("meta", "step").unwrap(), 7.0);
        assert_eq!(c.bytes("raw").unwrap(), b"\x00\xFFpayload");
        assert_eq!(c.sections().count(), 5);
    }

    #[test]
    fn empty_container_roundtrips() {
        let bytes = ContainerWriter::new().to_bytes();
        let c = Container::from_bytes(bytes).unwrap();
        assert_eq!(c.sections().count(), 0);
        assert!(matches!(c.rng("missing"), Err(StoreError::MissingSection { .. })));
    }

    #[test]
    fn kind_mismatch_is_typed() {
        let bytes = sample().to_bytes();
        let c = Container::from_bytes(bytes).unwrap();
        assert!(matches!(c.matrix("rng"), Err(StoreError::KindMismatch { .. })));
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(Container::from_bytes(bytes), Err(StoreError::BadMagic { .. })));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = sample().to_bytes();
        // Bump version and re-seal the CRC so only the version differs.
        bytes[8] = 99;
        let crc_at = bytes.len() - 4;
        let crc = crc32(&bytes[..crc_at]);
        bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Container::from_bytes(bytes),
            Err(StoreError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn any_single_byte_flip_is_detected() {
        let bytes = sample().to_bytes();
        for i in 0..bytes.len() {
            let mut copy = bytes.clone();
            copy[i] ^= 0x01;
            assert!(Container::from_bytes(copy).is_err(), "flip at byte {i} was not detected");
        }
    }

    #[test]
    fn truncation_at_every_length_is_detected() {
        let bytes = sample().to_bytes();
        for len in 0..bytes.len() {
            assert!(
                Container::from_bytes(bytes[..len].to_vec()).is_err(),
                "truncation to {len} bytes was not detected"
            );
        }
    }

    #[test]
    fn atomic_write_and_read_roundtrip() {
        let dir = std::env::temp_dir().join(format!("grr-store-container-{}", std::process::id()));
        let path = dir.join("ckpt.grrs");
        let written = sample().write_atomic(&path).unwrap();
        assert_eq!(written, std::fs::metadata(&path).unwrap().len());
        let c = Container::read(&path).unwrap();
        assert_eq!(c.rng("rng").unwrap(), [1, 2, 3, u64::MAX]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
