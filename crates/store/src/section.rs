//! Typed section payloads and their codecs.
//!
//! Every section in a container carries a [`SectionKind`] tag so that a
//! reader asking for a matrix can never misinterpret, say, an RNG stream:
//! the kind is checked before the payload is decoded. Floats are stored
//! as raw IEEE-754 bits, so every round-trip is exact — the foundation of
//! the bit-identical resume contract.

use graphrare_graph::Graph;
use graphrare_tensor::optim::AdamSnapshot;
use graphrare_tensor::Matrix;

use crate::error::StoreError;
use crate::wire::{ByteReader, ByteWriter};

/// Payload type tag of one container section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum SectionKind {
    /// Uninterpreted bytes (caller-defined encoding).
    Bytes = 0,
    /// One dense `f32` matrix.
    Matrix = 1,
    /// A named list of matrices (a model/policy parameter set).
    ParamSet = 2,
    /// Adam optimiser state: step counter plus `(m, v)` moment pairs.
    AdamState = 3,
    /// A 256-bit RNG stream state (`[u64; 4]`, see `rand::rngs::StdRng`).
    Rng = 4,
    /// Graph topology: node count, class count and an undirected edge list.
    Topology = 5,
    /// A `u16` vector (`TopoState` counters and bounds).
    U16Vec = 6,
    /// An `f32` vector (rewards, log-probs, RL histories).
    F32Vec = 7,
    /// An `f64` vector (accuracy/loss/homophily histories).
    F64Vec = 8,
    /// A `u64` vector.
    U64Vec = 9,
    /// A named map of `f64` scalars (loop counters, metadata).
    Scalars = 10,
}

impl SectionKind {
    /// All kinds, for iteration in diagnostics.
    pub const ALL: [SectionKind; 11] = [
        SectionKind::Bytes,
        SectionKind::Matrix,
        SectionKind::ParamSet,
        SectionKind::AdamState,
        SectionKind::Rng,
        SectionKind::Topology,
        SectionKind::U16Vec,
        SectionKind::F32Vec,
        SectionKind::F64Vec,
        SectionKind::U64Vec,
        SectionKind::Scalars,
    ];

    /// Decodes a raw tag, or `None` for unknown tags.
    pub fn from_raw(raw: u16) -> Option<Self> {
        Self::ALL.into_iter().find(|k| *k as u16 == raw)
    }

    /// Human-readable name for `store_dump`.
    pub fn name(self) -> &'static str {
        match self {
            SectionKind::Bytes => "bytes",
            SectionKind::Matrix => "matrix",
            SectionKind::ParamSet => "param-set",
            SectionKind::AdamState => "adam-state",
            SectionKind::Rng => "rng",
            SectionKind::Topology => "topology",
            SectionKind::U16Vec => "u16-vec",
            SectionKind::F32Vec => "f32-vec",
            SectionKind::F64Vec => "f64-vec",
            SectionKind::U64Vec => "u64-vec",
            SectionKind::Scalars => "scalars",
        }
    }
}

/// Graph topology as stored on disk: shape metadata plus an undirected
/// edge list. Features and labels are *not* stored — a rewired graph
/// shares them with the base graph it was derived from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopologyRecord {
    /// Number of nodes.
    pub n: u32,
    /// Number of classes (kept for cross-checking against the base graph).
    pub num_classes: u32,
    /// Undirected edges, each stored once with `u < v` not required but
    /// deduplicated by the `Graph` on reconstruction.
    pub edges: Vec<(u32, u32)>,
}

impl TopologyRecord {
    /// Captures the topology of `g`.
    pub fn from_graph(g: &Graph) -> Self {
        Self {
            n: g.num_nodes() as u32,
            num_classes: g.num_classes() as u32,
            edges: g.edge_vec().into_iter().map(|(u, v)| (u as u32, v as u32)).collect(),
        }
    }

    /// The edge list widened back to `usize` pairs.
    pub fn edge_vec(&self) -> Vec<(usize, usize)> {
        self.edges.iter().map(|&(u, v)| (u as usize, v as usize)).collect()
    }

    /// Rebuilds a full graph by combining this topology with the features
    /// and labels of `base` (the graph the topology was derived from).
    /// Fails with a typed error if the shapes do not line up.
    pub fn to_graph(&self, base: &Graph) -> Result<Graph, StoreError> {
        if self.n as usize != base.num_nodes() {
            return Err(StoreError::Mismatch {
                context: format!(
                    "stored topology has {} nodes, base graph has {}",
                    self.n,
                    base.num_nodes()
                ),
            });
        }
        if self.num_classes as usize != base.num_classes() {
            return Err(StoreError::Mismatch {
                context: format!(
                    "stored topology has {} classes, base graph has {}",
                    self.num_classes,
                    base.num_classes()
                ),
            });
        }
        if let Some(&(u, v)) = self.edges.iter().find(|&&(u, v)| u >= self.n || v >= self.n) {
            return Err(StoreError::Corrupt {
                context: format!("topology edge ({u},{v}) references a node >= {}", self.n),
            });
        }
        Ok(Graph::from_edges(
            self.n as usize,
            &self.edge_vec(),
            base.features().clone(),
            base.labels().to_vec(),
            base.num_classes(),
        ))
    }
}

// ---------------------------------------------------------------------------
// Codecs. Encoders are infallible; decoders validate every length.
// ---------------------------------------------------------------------------

pub(crate) fn encode_matrix(w: &mut ByteWriter, m: &Matrix) {
    w.put_u32(m.rows() as u32);
    w.put_u32(m.cols() as u32);
    for &v in m.as_slice() {
        w.put_f32(v);
    }
}

pub(crate) fn decode_matrix(r: &mut ByteReader<'_>) -> Result<Matrix, StoreError> {
    let rows = r.get_u32()? as usize;
    let cols = r.get_u32()? as usize;
    let count = rows.checked_mul(cols).ok_or_else(|| StoreError::Corrupt {
        context: format!("matrix shape {rows}x{cols} overflows"),
    })?;
    if count.checked_mul(4).is_none_or(|bytes| bytes > r.remaining()) {
        return Err(StoreError::Corrupt {
            context: format!(
                "matrix shape {rows}x{cols} needs {count} f32s, {} bytes remain",
                r.remaining()
            ),
        });
    }
    let mut data = Vec::with_capacity(count);
    for _ in 0..count {
        data.push(r.get_f32()?);
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

pub(crate) fn encode_param_set(w: &mut ByteWriter, params: &[(String, Matrix)]) {
    w.put_u32(params.len() as u32);
    for (name, m) in params {
        w.put_str(name);
        encode_matrix(w, m);
    }
}

pub(crate) fn decode_param_set(
    r: &mut ByteReader<'_>,
) -> Result<Vec<(String, Matrix)>, StoreError> {
    let count = r.get_u32()? as usize;
    // Each entry needs at least a name length and a matrix header.
    if count > r.remaining() / 10 + 1 {
        return Err(StoreError::Corrupt {
            context: format!("param set count {count} exceeds payload size"),
        });
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let name = r.get_str()?;
        let m = decode_matrix(r)?;
        out.push((name, m));
    }
    Ok(out)
}

pub(crate) fn encode_adam(w: &mut ByteWriter, snap: &AdamSnapshot) {
    w.put_u64(snap.t);
    w.put_u32(snap.moments.len() as u32);
    for (m, v) in &snap.moments {
        encode_matrix(w, m);
        encode_matrix(w, v);
    }
}

pub(crate) fn decode_adam(r: &mut ByteReader<'_>) -> Result<AdamSnapshot, StoreError> {
    let t = r.get_u64()?;
    let count = r.get_u32()? as usize;
    if count > r.remaining() / 16 + 1 {
        return Err(StoreError::Corrupt {
            context: format!("adam state count {count} exceeds payload size"),
        });
    }
    let mut moments = Vec::with_capacity(count);
    for _ in 0..count {
        let m = decode_matrix(r)?;
        let v = decode_matrix(r)?;
        if m.shape() != v.shape() {
            return Err(StoreError::Corrupt {
                context: format!("adam moment shapes differ: {:?} vs {:?}", m.shape(), v.shape()),
            });
        }
        moments.push((m, v));
    }
    Ok(AdamSnapshot { t, moments })
}

pub(crate) fn encode_rng(w: &mut ByteWriter, state: [u64; 4]) {
    for s in state {
        w.put_u64(s);
    }
}

pub(crate) fn decode_rng(r: &mut ByteReader<'_>) -> Result<[u64; 4], StoreError> {
    Ok([r.get_u64()?, r.get_u64()?, r.get_u64()?, r.get_u64()?])
}

pub(crate) fn encode_topology(w: &mut ByteWriter, t: &TopologyRecord) {
    w.put_u32(t.n);
    w.put_u32(t.num_classes);
    w.put_u64(t.edges.len() as u64);
    for &(u, v) in &t.edges {
        w.put_u32(u);
        w.put_u32(v);
    }
}

pub(crate) fn decode_topology(r: &mut ByteReader<'_>) -> Result<TopologyRecord, StoreError> {
    let n = r.get_u32()?;
    let num_classes = r.get_u32()?;
    let count = r.get_count(r.remaining() / 8, "topology edges")?;
    let mut edges = Vec::with_capacity(count);
    for _ in 0..count {
        edges.push((r.get_u32()?, r.get_u32()?));
    }
    Ok(TopologyRecord { n, num_classes, edges })
}

pub(crate) fn encode_u16_vec(w: &mut ByteWriter, v: &[u16]) {
    w.put_u64(v.len() as u64);
    for &x in v {
        w.put_u16(x);
    }
}

pub(crate) fn decode_u16_vec(r: &mut ByteReader<'_>) -> Result<Vec<u16>, StoreError> {
    let count = r.get_count(r.remaining() / 2, "u16 vec")?;
    (0..count).map(|_| r.get_u16()).collect()
}

pub(crate) fn encode_f32_vec(w: &mut ByteWriter, v: &[f32]) {
    w.put_u64(v.len() as u64);
    for &x in v {
        w.put_f32(x);
    }
}

pub(crate) fn decode_f32_vec(r: &mut ByteReader<'_>) -> Result<Vec<f32>, StoreError> {
    let count = r.get_count(r.remaining() / 4, "f32 vec")?;
    (0..count).map(|_| r.get_f32()).collect()
}

pub(crate) fn encode_f64_vec(w: &mut ByteWriter, v: &[f64]) {
    w.put_u64(v.len() as u64);
    for &x in v {
        w.put_f64(x);
    }
}

pub(crate) fn decode_f64_vec(r: &mut ByteReader<'_>) -> Result<Vec<f64>, StoreError> {
    let count = r.get_count(r.remaining() / 8, "f64 vec")?;
    (0..count).map(|_| r.get_f64()).collect()
}

pub(crate) fn encode_u64_vec(w: &mut ByteWriter, v: &[u64]) {
    w.put_u64(v.len() as u64);
    for &x in v {
        w.put_u64(x);
    }
}

pub(crate) fn decode_u64_vec(r: &mut ByteReader<'_>) -> Result<Vec<u64>, StoreError> {
    let count = r.get_count(r.remaining() / 8, "u64 vec")?;
    (0..count).map(|_| r.get_u64()).collect()
}

pub(crate) fn encode_scalars(w: &mut ByteWriter, entries: &[(String, f64)]) {
    w.put_u32(entries.len() as u32);
    for (name, v) in entries {
        w.put_str(name);
        w.put_f64(*v);
    }
}

pub(crate) fn decode_scalars(r: &mut ByteReader<'_>) -> Result<Vec<(String, f64)>, StoreError> {
    let count = r.get_u32()? as usize;
    if count > r.remaining() / 10 + 1 {
        return Err(StoreError::Corrupt {
            context: format!("scalar map count {count} exceeds payload size"),
        });
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let name = r.get_str()?;
        let v = r.get_f64()?;
        out.push((name, v));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_tags_roundtrip() {
        for kind in SectionKind::ALL {
            assert_eq!(SectionKind::from_raw(kind as u16), Some(kind));
        }
        assert_eq!(SectionKind::from_raw(999), None);
    }

    #[test]
    fn matrix_codec_is_exact_for_odd_floats() {
        let m =
            Matrix::from_vec(2, 3, vec![0.0, -0.0, f32::MIN_POSITIVE, 1e-38, f32::MAX, -1.5e-7]);
        let mut w = ByteWriter::new();
        encode_matrix(&mut w, &m);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "test");
        let back = decode_matrix(&mut r).unwrap();
        assert_eq!(back.shape(), (2, 3));
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn matrix_decode_rejects_oversized_shape() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "test");
        assert!(matches!(decode_matrix(&mut r), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn topology_roundtrips_and_validates() {
        let t = TopologyRecord { n: 5, num_classes: 2, edges: vec![(0, 1), (2, 4)] };
        let mut w = ByteWriter::new();
        encode_topology(&mut w, &t);
        let bytes = w.into_bytes();
        let back = decode_topology(&mut ByteReader::new(&bytes, "test")).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn topology_to_graph_rejects_out_of_range_edges() {
        let base = Graph::from_edges(3, &[(0, 1)], Matrix::zeros(3, 2), vec![0, 1, 0], 2);
        let t = TopologyRecord { n: 3, num_classes: 2, edges: vec![(0, 7)] };
        assert!(matches!(t.to_graph(&base), Err(StoreError::Corrupt { .. })));
        let t2 = TopologyRecord { n: 9, num_classes: 2, edges: vec![] };
        assert!(matches!(t2.to_graph(&base), Err(StoreError::Mismatch { .. })));
    }
}
