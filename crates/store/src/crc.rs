//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! Every section payload and the container as a whole carry a CRC so that
//! torn writes, bit rot and truncation are detected loudly at read time
//! instead of surfacing as silently-wrong model weights. Table-driven,
//! with the table built at compile time.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (IEEE, as used by zip/png/ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_byte_flip_changes_crc() {
        let base = b"graphrare checkpoint payload".to_vec();
        let crc = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut copy = base.clone();
                copy[i] ^= 1 << bit;
                assert_ne!(crc32(&copy), crc, "flip at byte {i} bit {bit} undetected");
            }
        }
    }
}
