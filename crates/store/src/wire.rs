//! Little-endian primitive encoding shared by all section codecs.
//!
//! [`ByteWriter`] appends primitives to a growable buffer; [`ByteReader`]
//! consumes them with bounds checks. Readers never panic on malformed
//! input: every decode failure becomes a [`StoreError::Truncated`] or
//! [`StoreError::Corrupt`].

use crate::error::StoreError;

/// Append-only encoder over a `Vec<u8>`.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap) }
    }

    /// Finishes encoding and returns the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` (raw IEEE-754 bits — round-trips exactly).
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` (raw IEEE-754 bits — round-trips exactly).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a `u16`-length-prefixed UTF-8 string.
    ///
    /// # Panics
    /// Panics if `s` exceeds `u16::MAX` bytes (section and parameter
    /// names are short by construction).
    pub fn put_str(&mut self, s: &str) {
        assert!(s.len() <= u16::MAX as usize, "string too long for wire format");
        self.put_u16(s.len() as u16);
        self.put_bytes(s.as_bytes());
    }
}

/// Bounds-checked decoder over a byte slice.
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Name used in error contexts ("section 'x' payload", "table", ...).
    context: &'static str,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `bytes`; `context` labels decode errors.
    pub fn new(bytes: &'a [u8], context: &'static str) -> Self {
        Self { bytes, pos: 0, context }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails unless the reader consumed the payload exactly.
    pub fn expect_exhausted(&self, what: &str) -> Result<(), StoreError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(StoreError::Corrupt {
                context: format!("{what}: {} trailing bytes after payload", self.remaining()),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated {
                context: self.context,
                needed: (self.pos + n) as u64,
                available: self.bytes.len() as u64,
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u16`.
    pub fn get_u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u64` and checks it fits in `usize` and is at most `cap`
    /// (a sanity bound derived from the remaining payload size, so a
    /// corrupted length cannot trigger a huge allocation).
    pub fn get_count(&mut self, cap: usize, what: &str) -> Result<usize, StoreError> {
        let raw = self.get_u64()?;
        let n = usize::try_from(raw).map_err(|_| StoreError::Corrupt {
            context: format!("{what}: count {raw} overflows"),
        })?;
        if n > cap {
            return Err(StoreError::Corrupt {
                context: format!("{what}: count {n} exceeds plausible bound {cap}"),
            });
        }
        Ok(n)
    }

    /// Reads an `f32`.
    pub fn get_f32(&mut self) -> Result<f32, StoreError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads an `f64`.
    pub fn get_f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        self.take(n)
    }

    /// Reads a `u16`-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, StoreError> {
        let len = self.get_u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::Corrupt {
            context: format!("{}: invalid utf-8", self.context),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f32(-0.0);
        w.put_f64(f64::MIN_POSITIVE);
        w.put_str("hello");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "test");
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.get_f64().unwrap(), f64::MIN_POSITIVE);
        assert_eq!(r.get_str().unwrap(), "hello");
        assert!(r.is_exhausted());
    }

    #[test]
    fn reads_past_end_are_truncation_errors() {
        let mut r = ByteReader::new(&[1, 2, 3], "test");
        assert!(matches!(r.get_u64(), Err(StoreError::Truncated { .. })));
        // Failed read consumes nothing.
        assert_eq!(r.get_u16().unwrap(), 0x0201);
    }

    #[test]
    fn count_bound_rejects_absurd_lengths() {
        let mut w = ByteWriter::new();
        w.put_u64(1 << 40);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "test");
        assert!(matches!(r.get_count(1024, "vec"), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let r = ByteReader::new(&[0], "test");
        assert!(matches!(r.expect_exhausted("payload"), Err(StoreError::Corrupt { .. })));
    }
}
