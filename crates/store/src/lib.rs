//! `graphrare-store`: versioned binary artifact store.
//!
//! One file format for everything GraphRARE persists: checkpoints of the
//! Algorithm-1 driver loop, trained model parameter sets, optimised graph
//! topologies and accuracy histories. Design goals, in order:
//!
//! 1. **Bit-exactness.** Floats are stored as raw IEEE-754 bits; a
//!    snapshot restored into a fresh process continues the run with
//!    results identical to an uninterrupted one.
//! 2. **Loud failure.** Magic, format version, a whole-file CRC-32 and a
//!    per-section CRC-32 mean corrupted, truncated or foreign files are
//!    rejected with a typed [`StoreError`] — never a panic, never silently
//!    wrong weights.
//! 3. **Crash safety.** Writes go through a temp-file-then-rename helper
//!    ([`write_atomic`]) so a kill mid-checkpoint leaves the previous
//!    checkpoint intact.
//! 4. **No dependencies.** std only, like the rest of the workspace.
//!
//! The format is a flat list of named, typed sections — see
//! [`container`] for the byte layout and [`SectionKind`] for the payload
//! types. Higher layers (the `graphrare-core` persist module) decide
//! which sections a checkpoint contains; this crate only guarantees they
//! round-trip exactly.

#![warn(missing_docs)]

/// First bytes of every container file.
pub const MAGIC: &[u8; 8] = b"GRRSTORE";

/// Current container format version. Bump on any layout change; readers
/// reject versions they do not understand with
/// [`StoreError::UnsupportedVersion`].
pub const FORMAT_VERSION: u32 = 1;

/// Conventional file extension for container files.
pub const FILE_EXTENSION: &str = "grrs";

pub mod atomic;
pub mod container;
pub mod crc;
pub mod error;
pub mod section;
pub mod wire;

pub use atomic::write_atomic;
pub use container::{Container, ContainerWriter};
pub use crc::crc32;
pub use error::StoreError;
pub use section::{SectionKind, TopologyRecord};
