//! Crash-safe file replacement.
//!
//! A checkpoint that is half-written is worse than no checkpoint: a
//! resumed run would silently diverge or fail mid-restore. All store
//! writes therefore go to a temporary sibling first, are flushed to
//! disk, and only then renamed over the destination — readers observe
//! either the complete old file or the complete new file, never a
//! partial one.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::process;

use crate::error::StoreError;

/// Atomically replaces `path` with `bytes`.
///
/// The parent directory is created if absent. The bytes are written to
/// a process-unique temporary sibling, fsynced, and renamed into place;
/// the directory itself is then fsynced on a best-effort basis so the
/// rename survives a power loss. On any error the temporary file is
/// removed. Returns the number of bytes written.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<u64, StoreError> {
    let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = parent {
        fs::create_dir_all(dir)?;
    }

    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", process::id()));
    let tmp = std::path::PathBuf::from(tmp);

    let result = (|| -> Result<(), StoreError> {
        let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)?;
        Ok(())
    })();

    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result?;

    // Persist the rename itself; not all filesystems support opening a
    // directory for sync, so failures here are ignored.
    if let Some(dir) = parent {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(bytes.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("grr-store-atomic-{tag}-{}", process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = temp_dir("replace");
        let path = dir.join("sub").join("file.bin");
        assert_eq!(write_atomic(&path, b"first").unwrap(), 5);
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        // No temp litter left behind.
        let names: Vec<_> = fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(names, vec!["file.bin"]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_write_reports_io_error() {
        let dir = temp_dir("fail");
        // Destination parent is a *file*, so create_dir_all fails.
        let blocker = dir.join("blocker");
        fs::write(&blocker, b"x").unwrap();
        let path = blocker.join("child.bin");
        assert!(matches!(write_atomic(&path, b"data"), Err(StoreError::Io(_))));
        fs::remove_dir_all(&dir).unwrap();
    }
}
