//! Typed errors for every store read and write path.
//!
//! The contract of the store is that **no malformed input panics**: a
//! corrupted byte, a truncated file, a wrong magic number or an
//! unsupported format version each surface as a distinct [`StoreError`]
//! variant the caller can match on.

use std::fmt;
use std::io;

use crate::section::SectionKind;

/// Any failure while writing or reading a container.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The file does not start with the container magic.
    BadMagic {
        /// The first bytes actually found (zero-padded if shorter).
        found: [u8; 8],
    },
    /// The container was written by an unknown format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Highest version this build understands.
        supported: u32,
    },
    /// The file ends before a structure it promises is complete.
    Truncated {
        /// What was being read.
        context: &'static str,
        /// Bytes the structure needs.
        needed: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// The whole-file checksum does not match.
    FileCrcMismatch {
        /// CRC stored in the trailer.
        stored: u32,
        /// CRC computed over the file contents.
        computed: u32,
    },
    /// A section payload's checksum does not match.
    SectionCrcMismatch {
        /// Section name.
        section: String,
        /// CRC stored in the section table.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// A requested section is absent.
    MissingSection {
        /// Section name.
        section: String,
    },
    /// A section exists but holds a different payload kind.
    KindMismatch {
        /// Section name.
        section: String,
        /// Kind the caller asked for.
        expected: SectionKind,
        /// Kind recorded in the section table.
        found: SectionKind,
    },
    /// A section table entry carries a kind tag this build does not know.
    UnknownKind {
        /// Section name (empty if the name itself was unreadable).
        section: String,
        /// The raw tag.
        raw: u16,
    },
    /// Structural inconsistency: lengths, offsets or counts that cannot
    /// all be true at once (detected before or despite valid CRCs).
    Corrupt {
        /// Description of the inconsistency.
        context: String,
    },
    /// The decoded value is well-formed but violates a caller-supplied
    /// expectation (shape, count, metadata mismatch on restore).
    Mismatch {
        /// Description of the expectation that failed.
        context: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::BadMagic { found } => {
                write!(f, "not a graphrare store container (magic {found:02x?})")
            }
            StoreError::UnsupportedVersion { found, supported } => {
                write!(f, "container format version {found} unsupported (this build reads <= {supported})")
            }
            StoreError::Truncated { context, needed, available } => {
                write!(
                    f,
                    "truncated container: {context} needs {needed} bytes, {available} available"
                )
            }
            StoreError::FileCrcMismatch { stored, computed } => {
                write!(f, "file checksum mismatch: stored {stored:08x}, computed {computed:08x}")
            }
            StoreError::SectionCrcMismatch { section, stored, computed } => {
                write!(
                    f,
                    "section '{section}' checksum mismatch: stored {stored:08x}, computed {computed:08x}"
                )
            }
            StoreError::MissingSection { section } => {
                write!(f, "container has no section '{section}'")
            }
            StoreError::KindMismatch { section, expected, found } => {
                write!(f, "section '{section}' holds {found:?}, expected {expected:?}")
            }
            StoreError::UnknownKind { section, raw } => {
                write!(f, "section '{section}' has unknown payload kind tag {raw}")
            }
            StoreError::Corrupt { context } => write!(f, "corrupt container: {context}"),
            StoreError::Mismatch { context } => write!(f, "container mismatch: {context}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}
