//! Property tests: every section codec round-trips bit-exactly through
//! a serialised container, for arbitrary shapes and raw float bit
//! patterns (including NaN payloads, which must survive unchanged).

use proptest::prelude::*;

use graphrare_store::{Container, ContainerWriter, TopologyRecord};
use graphrare_tensor::optim::AdamSnapshot;
use graphrare_tensor::Matrix;

fn bits_eq(a: &Matrix, b: &Matrix) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn arb_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..6, 1usize..6).prop_flat_map(|(r, c)| {
        proptest::collection::vec(any::<u32>(), r * c).prop_map(move |bits| {
            Matrix::from_vec(r, c, bits.into_iter().map(f32::from_bits).collect())
        })
    })
}

fn arb_param_set() -> impl Strategy<Value = Vec<(String, Matrix)>> {
    proptest::collection::vec(arb_matrix(), 0..5)
        .prop_map(|ms| ms.into_iter().enumerate().map(|(i, m)| (format!("p{i}"), m)).collect())
}

fn arb_adam() -> impl Strategy<Value = AdamSnapshot> {
    // Decode enforces m/v shape equality per pair, so generate pairs
    // sharing one shape.
    let pair = arb_matrix().prop_flat_map(|m| {
        let (r, c) = (m.rows(), m.cols());
        (
            Just(m),
            proptest::collection::vec(any::<u32>(), r * c).prop_map(move |bits| {
                Matrix::from_vec(r, c, bits.into_iter().map(f32::from_bits).collect())
            }),
        )
    });
    (any::<u64>(), proptest::collection::vec(pair, 0..4))
        .prop_map(|(t, moments)| AdamSnapshot { t, moments })
}

fn arb_topology() -> impl Strategy<Value = TopologyRecord> {
    (1u32..40, 1u32..8).prop_flat_map(|(n, num_classes)| {
        proptest::collection::vec((0..n, 0..n), 0..60).prop_map(move |edges| TopologyRecord {
            n,
            num_classes,
            edges,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matrix_roundtrips_bit_exactly(m in arb_matrix()) {
        let mut w = ContainerWriter::new();
        w.put_matrix("m", &m);
        let c = Container::from_bytes(w.to_bytes()).unwrap();
        prop_assert!(bits_eq(&c.matrix("m").unwrap(), &m));
    }

    #[test]
    fn param_set_roundtrips_names_order_and_bits(ps in arb_param_set()) {
        let mut w = ContainerWriter::new();
        w.put_param_set("ps", &ps);
        let c = Container::from_bytes(w.to_bytes()).unwrap();
        let back = c.param_set("ps").unwrap();
        prop_assert_eq!(back.len(), ps.len());
        for ((an, am), (bn, bm)) in back.iter().zip(&ps) {
            prop_assert_eq!(an, bn);
            prop_assert!(bits_eq(am, bm));
        }
    }

    #[test]
    fn adam_roundtrips_step_and_moments(snap in arb_adam()) {
        let mut w = ContainerWriter::new();
        w.put_adam("adam", &snap);
        let c = Container::from_bytes(w.to_bytes()).unwrap();
        let back = c.adam("adam").unwrap();
        prop_assert_eq!(back.t, snap.t);
        prop_assert_eq!(back.moments.len(), snap.moments.len());
        for ((am, av), (bm, bv)) in back.moments.iter().zip(&snap.moments) {
            prop_assert!(bits_eq(am, bm));
            prop_assert!(bits_eq(av, bv));
        }
    }

    #[test]
    fn rng_roundtrips(state in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())) {
        let state = [state.0, state.1, state.2, state.3];
        let mut w = ContainerWriter::new();
        w.put_rng("rng", state);
        let c = Container::from_bytes(w.to_bytes()).unwrap();
        prop_assert_eq!(c.rng("rng").unwrap(), state);
    }

    #[test]
    fn topology_roundtrips(t in arb_topology()) {
        let mut w = ContainerWriter::new();
        w.put_topology("g", &t);
        let c = Container::from_bytes(w.to_bytes()).unwrap();
        let back = c.topology("g").unwrap();
        prop_assert_eq!(back.n, t.n);
        prop_assert_eq!(back.num_classes, t.num_classes);
        prop_assert_eq!(back.edges, t.edges);
    }

    #[test]
    fn u16_vec_roundtrips(v in proptest::collection::vec(any::<u16>(), 0..50)) {
        let mut w = ContainerWriter::new();
        w.put_u16_vec("v", &v);
        let c = Container::from_bytes(w.to_bytes()).unwrap();
        prop_assert_eq!(c.u16_vec("v").unwrap(), v);
    }

    #[test]
    fn f32_vec_roundtrips_raw_bits(bits in proptest::collection::vec(any::<u32>(), 0..50)) {
        let v: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let mut w = ContainerWriter::new();
        w.put_f32_vec("v", &v);
        let c = Container::from_bytes(w.to_bytes()).unwrap();
        let back: Vec<u32> = c.f32_vec("v").unwrap().iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(back, bits);
    }

    #[test]
    fn f64_vec_roundtrips_raw_bits(bits in proptest::collection::vec(any::<u64>(), 0..50)) {
        let v: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let mut w = ContainerWriter::new();
        w.put_f64_vec("v", &v);
        let c = Container::from_bytes(w.to_bytes()).unwrap();
        let back: Vec<u64> = c.f64_vec("v").unwrap().iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(back, bits);
    }

    #[test]
    fn u64_vec_roundtrips(v in proptest::collection::vec(any::<u64>(), 0..50)) {
        let mut w = ContainerWriter::new();
        w.put_u64_vec("v", &v);
        let c = Container::from_bytes(w.to_bytes()).unwrap();
        prop_assert_eq!(c.u64_vec("v").unwrap(), v);
    }

    #[test]
    fn scalars_roundtrip_keys_order_and_bits(bits in proptest::collection::vec(any::<u64>(), 0..12)) {
        let entries: Vec<(String, f64)> = bits
            .iter()
            .enumerate()
            .map(|(i, &b)| (format!("k{i}"), f64::from_bits(b)))
            .collect();
        let mut w = ContainerWriter::new();
        w.put_scalars("s", &entries);
        let c = Container::from_bytes(w.to_bytes()).unwrap();
        let back = c.scalars("s").unwrap();
        prop_assert_eq!(back.len(), entries.len());
        for ((ak, av), (bk, bv)) in back.iter().zip(&entries) {
            prop_assert_eq!(ak, bk);
            prop_assert_eq!(av.to_bits(), bv.to_bits());
        }
    }

    #[test]
    fn bytes_roundtrip(v in proptest::collection::vec(any::<u8>(), 0..200)) {
        let mut w = ContainerWriter::new();
        w.put_bytes("b", &v);
        let c = Container::from_bytes(w.to_bytes()).unwrap();
        prop_assert_eq!(c.bytes("b").unwrap(), v.as_slice());
    }

    /// A container holding one section of every kind survives a full
    /// serialise/parse cycle with names, kinds and contents intact.
    #[test]
    fn mixed_container_roundtrips(
        m in arb_matrix(),
        t in arb_topology(),
        u16s in proptest::collection::vec(any::<u16>(), 0..20),
        raw in proptest::collection::vec(any::<u8>(), 0..40),
    ) {
        let mut w = ContainerWriter::new();
        w.put_matrix("matrix", &m);
        w.put_topology("topology", &t);
        w.put_u16_vec("u16s", &u16s);
        w.put_bytes("raw", &raw);
        w.put_rng("rng", [0, 1, 2, 3]);
        w.put_scalars("meta", &[("step".into(), 4.0)]);
        let c = Container::from_bytes(w.to_bytes()).unwrap();
        prop_assert_eq!(c.sections().count(), 6);
        prop_assert!(c.has("topology"));
        prop_assert!(!c.has("missing"));
        prop_assert!(bits_eq(&c.matrix("matrix").unwrap(), &m));
        prop_assert_eq!(c.u16_vec("u16s").unwrap(), u16s);
        prop_assert_eq!(c.bytes("raw").unwrap(), raw.as_slice());
        prop_assert_eq!(c.scalar("meta", "step").unwrap(), 4.0);
    }
}
