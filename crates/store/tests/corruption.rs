//! Adversarial inputs: corrupted, truncated, mislabelled and random
//! byte streams must come back as typed [`StoreError`]s — the read path
//! never panics, whatever the bytes.

use proptest::prelude::*;

use graphrare_store::{crc32, Container, ContainerWriter, SectionKind, StoreError, TopologyRecord};
use graphrare_tensor::Matrix;

/// A container shaped like a real checkpoint: several kinds, non-trivial
/// payload sizes.
fn sample() -> Vec<u8> {
    let mut w = ContainerWriter::new();
    w.put_matrix("trainer/params", &Matrix::from_vec(3, 4, (0..12).map(|i| i as f32).collect()));
    w.put_rng("trainer/rng", [9, 8, 7, 6]);
    w.put_topology(
        "best/graph",
        &TopologyRecord { n: 5, num_classes: 2, edges: vec![(0, 1), (3, 4)] },
    );
    w.put_u16_vec("topo/k", &[0, 1, 2, 3, 4]);
    w.put_scalars("floats", &[("best_val".into(), 0.75)]);
    w.to_bytes()
}

/// Recomputes and rewrites the trailing whole-file CRC after tampering,
/// so the per-section checks (not the file CRC) are what must catch the
/// damage.
fn reseal(bytes: &mut [u8]) {
    let crc_at = bytes.len() - 4;
    let crc = crc32(&bytes[..crc_at]);
    bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
}

/// Byte offset of the first table entry's kind tag.
fn first_kind_tag_at(bytes: &[u8]) -> usize {
    let crc_at = bytes.len() - 4;
    let table_offset = u64::from_le_bytes(bytes[crc_at - 8..crc_at].try_into().unwrap()) as usize;
    let name_len =
        u16::from_le_bytes(bytes[table_offset + 4..table_offset + 6].try_into().unwrap()) as usize;
    table_offset + 6 + name_len
}

#[test]
fn payload_flip_is_pinned_to_the_damaged_section() {
    // Flip a byte inside the first payload (right after the 12-byte
    // header), then re-seal the file CRC: the section CRC must catch it
    // and name the section.
    let mut bytes = sample();
    bytes[12] ^= 0x40;
    reseal(&mut bytes);
    match Container::from_bytes(bytes) {
        Err(StoreError::SectionCrcMismatch { section, .. }) => {
            assert_eq!(section, "trainer/params");
        }
        other => panic!("expected SectionCrcMismatch, got {other:?}"),
    }
}

#[test]
fn unknown_kind_tag_is_rejected_by_name() {
    let mut bytes = sample();
    let at = first_kind_tag_at(&bytes);
    bytes[at..at + 2].copy_from_slice(&999u16.to_le_bytes());
    reseal(&mut bytes);
    match Container::from_bytes(bytes) {
        Err(StoreError::UnknownKind { section, raw: 999 }) => {
            assert_eq!(section, "trainer/params");
        }
        other => panic!("expected UnknownKind, got {other:?}"),
    }
}

#[test]
fn getter_on_mislabelled_section_is_a_typed_error() {
    let bytes = sample();
    let c = Container::from_bytes(bytes).unwrap();
    assert!(matches!(
        c.matrix("trainer/rng"),
        Err(StoreError::KindMismatch {
            expected: SectionKind::Matrix,
            found: SectionKind::Rng,
            ..
        })
    ));
    assert!(matches!(c.rng("nope"), Err(StoreError::MissingSection { .. })));
}

#[test]
fn missing_file_is_an_io_error() {
    let err = Container::read(std::path::Path::new("/nonexistent/ckpt.grrs")).unwrap_err();
    assert!(matches!(err, StoreError::Io(_)));
}

fn try_every_getter(c: &Container, name: &str) {
    // Exercising each typed getter on arbitrary payload bytes: any
    // outcome is fine as long as it is a `Result`, never a panic.
    let _ = c.bytes(name);
    let _ = c.matrix(name);
    let _ = c.param_set(name);
    let _ = c.adam(name);
    let _ = c.rng(name);
    let _ = c.topology(name);
    let _ = c.u16_vec(name);
    let _ = c.f32_vec(name);
    let _ = c.f64_vec(name);
    let _ = c.u64_vec(name);
    let _ = c.scalars(name);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any single-byte corruption anywhere in the file is detected at
    /// parse time (the file CRC covers everything but itself, and the
    /// CRC bytes themselves are part of the comparison).
    #[test]
    fn random_flip_never_parses(seed in any::<u64>(), mask in 1u8..=255) {
        let mut bytes = sample();
        let at = (seed % bytes.len() as u64) as usize;
        bytes[at] ^= mask;
        prop_assert!(Container::from_bytes(bytes).is_err());
    }

    /// Every proper prefix of a valid file is rejected.
    #[test]
    fn random_truncation_never_parses(seed in any::<u64>()) {
        let bytes = sample();
        let len = (seed % bytes.len() as u64) as usize;
        prop_assert!(Container::from_bytes(bytes[..len].to_vec()).is_err());
    }

    /// Fully random byte soup never parses and never panics.
    #[test]
    fn garbage_never_parses(garbage in proptest::collection::vec(any::<u8>(), 0..300)) {
        prop_assert!(Container::from_bytes(garbage).is_err());
    }

    /// Arbitrary payload bytes presented under every kind tag in turn:
    /// the typed decoders must reject or accept, never panic — even
    /// when length prefixes inside the payload lie about the size.
    #[test]
    fn decoders_never_panic_on_arbitrary_payloads(
        payload in proptest::collection::vec(any::<u8>(), 0..120),
    ) {
        let mut w = ContainerWriter::new();
        w.put_bytes("x", &payload);
        let mut bytes = w.to_bytes();
        let at = first_kind_tag_at(&bytes);
        for kind in SectionKind::ALL {
            bytes[at..at + 2].copy_from_slice(&(kind as u16).to_le_bytes());
            reseal(&mut bytes);
            if let Ok(c) = Container::from_bytes(bytes.clone()) {
                try_every_getter(&c, "x");
            }
        }
    }
}
