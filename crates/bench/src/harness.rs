//! Shared experiment orchestration for the `repro_*` binaries.

use std::time::Instant;

use graphrare::{run, GraphRareConfig, RareReport};
use graphrare_baselines::{run_baseline, BaselineConfig, BaselineKind};
use graphrare_datasets::{generate_spec, ten_splits, Dataset, Split};
use graphrare_gnn::{build_model, fit, Backbone, GraphTensors, ModelConfig, TrainConfig};
use graphrare_graph::Graph;

/// Experiment scale: `Mini` uses the scaled-down dataset specs (default),
/// `Full` the exact Table II sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down datasets for CPU-friendly runs.
    Mini,
    /// Exact Table II sizes (slow on CPU; provided for completeness).
    Full,
}

/// Command-line options shared by all repro binaries.
#[derive(Clone, Debug)]
pub struct HarnessOptions {
    /// Dataset scale.
    pub scale: Scale,
    /// Number of data splits evaluated per cell (the paper uses 10).
    pub splits: usize,
    /// Base seed.
    pub seed: u64,
    /// Restrict to these datasets (empty = all seven).
    pub datasets: Vec<Dataset>,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        Self { scale: Scale::Mini, splits: 3, seed: 42, datasets: Dataset::ALL.to_vec() }
    }
}

impl HarnessOptions {
    /// Parses options from the process arguments:
    /// `--full`, `--splits N`, `--seed N`, `--datasets name,name`,
    /// `--quiet`.
    ///
    /// Also initialises the telemetry registry from
    /// `GRAPHRARE_TELEMETRY`, so every repro binary honours the same
    /// observability switches as the `graphrare` CLI. Progress lines go
    /// to stderr (suppressed by `--quiet`); stdout carries only the
    /// machine-parseable tables.
    pub fn from_args() -> Self {
        graphrare_telemetry::init_from_env();
        let mut opts = Self::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => opts.scale = Scale::Full,
                "--quiet" => graphrare_telemetry::set_quiet(true),
                "--splits" => {
                    i += 1;
                    opts.splits = args[i].parse().expect("--splits needs a number");
                }
                "--seed" => {
                    i += 1;
                    opts.seed = args[i].parse().expect("--seed needs a number");
                }
                "--datasets" => {
                    i += 1;
                    opts.datasets = args[i]
                        .split(',')
                        .map(|name| {
                            Dataset::ALL
                                .into_iter()
                                .find(|d| d.name().eq_ignore_ascii_case(name))
                                .unwrap_or_else(|| panic!("unknown dataset {name}"))
                        })
                        .collect();
                }
                other => panic!("unknown argument {other}"),
            }
            i += 1;
        }
        opts
    }

    /// Generates a dataset graph at the configured scale.
    pub fn graph(&self, d: Dataset) -> Graph {
        match self.scale {
            Scale::Mini => generate_spec(&d.spec_mini(), self.seed),
            Scale::Full => generate_spec(&d.spec(), self.seed),
        }
    }

    /// The first `self.splits` of the paper's ten-splits protocol.
    pub fn splits_for(&self, g: &Graph) -> Vec<Split> {
        let mut all = ten_splits(g.labels(), g.num_classes(), self.seed);
        all.truncate(self.splits.clamp(1, 10));
        all
    }
}

/// Everything Table III compares: MLP, the four backbones, the nine SOTA
/// baselines and the four GraphRARE-enhanced models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// A plain backbone (or MLP).
    Plain(Backbone),
    /// A published heterophily baseline.
    Sota(BaselineKind),
    /// GraphRARE wrapping a backbone.
    Rare(Backbone),
}

impl Method {
    /// All seventeen Table III rows, in paper order.
    pub fn table3_rows() -> Vec<Method> {
        let mut rows = vec![
            Method::Plain(Backbone::Mlp),
            Method::Plain(Backbone::Gcn),
            Method::Plain(Backbone::Sage),
            Method::Plain(Backbone::Gat),
        ];
        rows.push(Method::Sota(BaselineKind::MixHop));
        rows.push(Method::Plain(Backbone::H2gcn));
        rows.extend(
            [
                BaselineKind::GeomGcn,
                BaselineKind::Ugcn,
                BaselineKind::SimpGcn,
                BaselineKind::OtgNet,
                BaselineKind::GbkGnn,
                BaselineKind::PolarGnn,
                BaselineKind::HogGcn,
            ]
            .map(Method::Sota),
        );
        rows.extend(
            [Backbone::Gcn, Backbone::Sage, Backbone::Gat, Backbone::H2gcn].map(Method::Rare),
        );
        rows
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> String {
        match self {
            Method::Plain(b) => b.name().to_string(),
            Method::Sota(k) => k.name().to_string(),
            Method::Rare(b) => format!("{}-RARE", b.name()),
        }
    }

    /// Whether this is one of "our" GraphRARE rows.
    pub fn is_rare(&self) -> bool {
        matches!(self, Method::Rare(_))
    }
}

/// Per-run budget knobs for the harness.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Max epochs for plain/baseline fits.
    pub epochs: usize,
    /// Early-stopping patience.
    pub patience: usize,
    /// DRL steps for RARE runs.
    pub rare_steps: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Self { epochs: 120, patience: 25, rare_steps: 160 }
    }
}

/// Result of one (method, dataset, split) cell.
#[derive(Clone, Copy, Debug)]
pub struct CellResult {
    /// Test accuracy at the best-validation checkpoint.
    pub test_acc: f64,
    /// Wall-clock seconds spent.
    pub seconds: f64,
}

/// Runs one method on one split.
pub fn run_method(
    method: Method,
    graph: &Graph,
    split: &Split,
    seed: u64,
    budget: &Budget,
) -> CellResult {
    let start = Instant::now();
    let train = TrainConfig {
        epochs: budget.epochs,
        patience: budget.patience,
        seed: seed.wrapping_add(101),
        ..Default::default()
    };
    let test_acc = match method {
        Method::Plain(backbone) => {
            let model_cfg = ModelConfig { seed, ..Default::default() };
            let model = build_model(backbone, graph.feat_dim(), graph.num_classes(), &model_cfg);
            let labels = graph.labels().to_vec();
            fit(model.as_ref(), &GraphTensors::new(graph), &labels, split, &train).test_acc
        }
        Method::Sota(kind) => {
            let cfg = BaselineConfig { train, seed, ..Default::default() };
            run_baseline(kind, graph, split, &cfg).test_acc
        }
        Method::Rare(backbone) => rare_report(backbone, graph, split, seed, budget).test_acc,
    };
    CellResult { test_acc, seconds: start.elapsed().as_secs_f64() }
}

/// Runs GraphRARE wrapping `backbone` and returns the full report (used
/// by the figure binaries that need traces and graphs, not just accuracy).
pub fn rare_report(
    backbone: Backbone,
    graph: &Graph,
    split: &Split,
    seed: u64,
    budget: &Budget,
) -> RareReport {
    let mut cfg = GraphRareConfig::default().with_seed(seed);
    cfg.steps = budget.rare_steps;
    cfg.train.epochs = budget.epochs;
    cfg.train.patience = budget.patience;
    run(graph, split, backbone, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_rows_match_paper_count() {
        let rows = Method::table3_rows();
        assert_eq!(rows.len(), 17, "4 traditional + MLP + 9 SOTA - overlap + 4 RARE");
        assert_eq!(rows.iter().filter(|m| m.is_rare()).count(), 4);
        let names: std::collections::HashSet<String> = rows.iter().map(Method::name).collect();
        assert_eq!(names.len(), rows.len(), "duplicate method row");
    }

    #[test]
    fn method_names_follow_paper() {
        assert_eq!(Method::Rare(Backbone::Gcn).name(), "GCN-RARE");
        assert_eq!(Method::Plain(Backbone::Mlp).name(), "MLP");
        assert_eq!(Method::Sota(BaselineKind::HogGcn).name(), "HOG-GCN");
    }

    #[test]
    fn options_generate_consistent_datasets() {
        let opts = HarnessOptions::default();
        let g = opts.graph(Dataset::Cornell);
        assert_eq!(g.num_nodes(), 183);
        let splits = opts.splits_for(&g);
        assert_eq!(splits.len(), 3);
    }

    #[test]
    fn run_method_smoke_plain() {
        let opts = HarnessOptions { splits: 1, ..Default::default() };
        let g = opts.graph(Dataset::Cornell);
        let splits = opts.splits_for(&g);
        let budget = Budget { epochs: 10, patience: 10, rare_steps: 4 };
        let cell = run_method(Method::Plain(Backbone::Mlp), &g, &splits[0], 0, &budget);
        assert!((0.0..=1.0).contains(&cell.test_acc));
        assert!(cell.seconds >= 0.0);
    }
}
