//! # graphrare-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! GraphRARE paper's evaluation (Sec. V). Each artefact has a dedicated
//! binary:
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `repro_table2` | Table II — dataset statistics |
//! | `repro_table3` | Table III — node classification, 17 methods × 7 datasets |
//! | `repro_table4` | Table IV — λ sweep {0.1, 0.5, 1.0, 10.0} |
//! | `repro_table5` | Table V — ablations (RE/RA/add/remove/reward) |
//! | `repro_table6` | Table VI — per-epoch runtime + entropy cost |
//! | `repro_fig5` | Fig. 5 — fixed (k, d) grids vs the DRL module |
//! | `repro_fig6` | Fig. 6 — training curves (accuracy, homophily, reward) |
//! | `repro_fig7` | Fig. 7 — homophily: original vs optimised graphs |
//! | `repro_fig8` | Fig. 8 — pairwise relative-entropy heat matrices |
//!
//! All binaries accept `--full` (exact Table II sizes), `--splits N`,
//! `--seed N` and `--datasets a,b,...`; defaults run the mini-scaled
//! datasets with 3 splits. Outputs are printed as aligned text tables and
//! written as CSV under `results/`.
//!
//! Criterion microbenches (`cargo bench`) cover the hot kernels: entropy
//! computation, sparse propagation, GNN epochs, PPO updates and topology
//! rebuilds.

#![warn(missing_docs)]

pub mod harness;
pub mod table;

pub use harness::{rare_report, run_method, Budget, CellResult, HarnessOptions, Method, Scale};
pub use table::{mean, mean_std_pct, TextTable};
