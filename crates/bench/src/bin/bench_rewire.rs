//! Incremental-rewiring benchmark: times the Algorithm-1 hot path —
//! per-step rewire + propagation-operator refresh + homophily — through
//! the reference full-rebuild pipeline (`TopologyOptimizer::materialize`
//! plus a fresh `GraphTensors`) and through the persistent
//! [`graphrare::rewire::RewiredGraph`], and writes `BENCH_rewire.json`.
//!
//! ```text
//! bench_rewire [--quick] [--check-only] [--output BENCH_rewire.json]
//! ```
//!
//! The timed matrix is **strategy × regime** (× graph size): the action
//! traces come from the real [`Rewirer`](graphrare::Rewirer) strategies
//! (`ppo`, `dhgr`, `reference`, `none`) driven exactly like the driver
//! drives them, under two proposal-intensity regimes:
//!
//! * `dense` — the strategy's natural proposals (PPO's exploration phase
//!   moves most counters; heuristics march every node toward its
//!   target);
//! * `sparse` — a seeded ~2% per-step node mask on top of the proposals,
//!   the converged-policy regime where almost every counter holds.
//!   Incremental rewiring is O(changed nodes), so this is where the
//!   asymptotic win shows.
//!
//! Every cell first replays its whole trace once with *both* engines in
//! lock-step and asserts bit-identical results (edge sets, edge counts,
//! homophily bits, `gcn_norm` rows); a mismatch exits non-zero, which is
//! what `scripts/check.sh` relies on for its smoke. `--quick` shrinks
//! the graphs for that smoke; `--check-only` skips the timed passes (the
//! equivalence replays and the arena still run).
//!
//! The report ends with a head-to-head **arena**: one end-to-end driver
//! run per strategy on the same small synthetic heterophilic dataset
//! (reduced-budget config), recording final validation/test accuracy and
//! the homophily shift each strategy achieves.
//!
//! Graphs are heterophilic by construction (target homophily 0.15, the
//! regime GraphRARE targets) so deletion prefixes are non-trivial and
//! the "never isolate an endpoint" guard is exercised.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use graphrare_telemetry as telemetry;

use graphrare::rewire::{RewireDelta, RewiredGraph};
use graphrare::rewirer::build_rewirer;
use graphrare::topology::{EditMode, TopologyOptimizer};
use graphrare::{GraphRareConfig, RewirerKind, TopoState};
use graphrare_datasets::{generate_spec, stratified_split, DatasetSpec};
use graphrare_entropy::{
    CandidatePool, EntropySequences, RelativeEntropyConfig, RelativeEntropyTable, SequenceConfig,
};
use graphrare_gnn::{Backbone, GraphTensors};
use graphrare_graph::metrics;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// Heap accounting for the benchmark report: `BENCH_rewire.json` carries
// allocation count/bytes/peak alongside the timing numbers.
graphrare_telemetry::install_counting_allocator!();

/// Per-node candidate cap for the timed matrix (the reduced-budget
/// driver configuration's `k_cap`).
const CAP: usize = 6;

struct CellRecord {
    strategy: &'static str,
    regime: &'static str,
    n: usize,
    edges: usize,
    steps: usize,
    full_ns_per_step: u128,
    incremental_ns_per_step: u128,
}

struct ArenaRecord {
    strategy: &'static str,
    best_val_acc: f64,
    test_acc: f64,
    original_homophily: f64,
    optimized_homophily: f64,
}

/// Median total wall time of `runs` full replays of `f`.
fn median_ns(runs: usize, mut f: impl FnMut()) -> u128 {
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_nanos());
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn heterophilic_spec(n: usize) -> DatasetSpec {
    DatasetSpec {
        name: "synthetic-hetero",
        num_nodes: n,
        num_edges: 4 * n,
        feat_dim: 32,
        num_classes: 5,
        homophily: 0.15,
        degree_exponent: 0.25,
        feature_signal: 6.0,
        feature_density: 0.05,
    }
}

struct Instance {
    topo: TopologyOptimizer,
    /// Per-step ±1 action vectors, the driver's access pattern.
    trace: Vec<Vec<u8>>,
}

/// Proposal-intensity regimes over a strategy's trace (see module doc).
#[derive(Clone, Copy, PartialEq)]
enum Regime {
    Dense,
    Sparse,
}

impl Regime {
    fn name(self) -> &'static str {
        match self {
            Regime::Dense => "dense",
            Regime::Sparse => "sparse",
        }
    }
}

/// Builds one matrix cell: the optimiser plus the action trace the given
/// strategy actually proposes against it, mirroring the driver's loop
/// (propose → apply → feedback) with the regime's node mask applied
/// between propose and apply.
fn build_instance(
    n: usize,
    steps: usize,
    seed: u64,
    kind: RewirerKind,
    regime: Regime,
) -> Instance {
    let g = generate_spec(&heterophilic_spec(n), seed);
    let table = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
    let seqs = EntropySequences::build(
        &g,
        &table,
        &SequenceConfig {
            pool: CandidatePool::GlobalSample { per_node: 16, seed: seed ^ 0xBE7C },
            max_additions: 8,
        },
    );
    let topo = TopologyOptimizer::new(g, seqs, EditMode::Both);

    let mut cfg = GraphRareConfig::fast().with_seed(seed);
    cfg.rewirer = kind;
    cfg.k_cap = CAP;
    // The bench has no GNN split; let every other node count as
    // training-labelled (only DHGR's label term reads it).
    let train: Vec<usize> = (0..n).step_by(2).collect();
    let mut rewirer = build_rewirer(&topo, &cfg, &train);

    let mut state = fresh_state(&topo);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
    let mut trace = Vec::with_capacity(steps);
    for i in 0..steps {
        let mut actions = rewirer.propose(&state);
        if regime == Regime::Sparse {
            // Keep ~2% of the nodes' proposals, hold everything else.
            let mut mask = vec![false; n];
            for _ in 0..(n / 50).max(1) {
                mask[rng.gen_range(0..n)] = true;
            }
            for v in 0..n {
                if !mask[v] {
                    actions[2 * v] = 1;
                    actions[2 * v + 1] = 1;
                }
            }
        }
        state.apply(&actions);
        let window_end = (i + 1) % cfg.update_every == 0;
        rewirer.feedback(0.01, window_end, false, &state);
        trace.push(actions);
    }
    Instance { topo, trace }
}

fn fresh_state(topo: &TopologyOptimizer) -> TopoState {
    TopoState::new(topo.k_bounds(CAP), topo.d_bounds(CAP))
}

/// Lock-step replay of both engines; returns an error message on the
/// first divergence.
fn verify(inst: &Instance) -> Result<(), String> {
    let mut state = fresh_state(&inst.topo);
    let mut rw = RewiredGraph::new(&inst.topo);
    rw.tensors().gcn_norm();
    for (i, actions) in inst.trace.iter().enumerate() {
        state.apply(actions);
        rw.apply(&inst.topo, &state).map_err(|e| format!("step {i}: rewire rejected: {e}"))?;
        let want = inst.topo.materialize(&state);
        if rw.graph().edge_vec() != want.edge_vec() {
            return Err(format!("step {i}: edge sets diverge"));
        }
        if rw.num_edges() != want.num_edges() {
            return Err(format!("step {i}: edge counts diverge"));
        }
        if rw.homophily_ratio().to_bits() != metrics::homophily_ratio(&want).to_bits() {
            return Err(format!("step {i}: homophily bits diverge"));
        }
        let fresh = GraphTensors::new(&want);
        if *rw.tensors().gcn_norm() != *fresh.gcn_norm() {
            return Err(format!("step {i}: gcn_norm diverges"));
        }
    }
    Ok(())
}

/// One end-to-end driver run per strategy on the same dataset and seed:
/// the head-to-head accuracy arena.
fn run_arena(n: usize) -> Vec<ArenaRecord> {
    let g = generate_spec(&heterophilic_spec(n), 11);
    let split = stratified_split(g.labels(), g.num_classes(), 0);
    let mut records = Vec::new();
    for kind in RewirerKind::ALL {
        let mut cfg = GraphRareConfig::fast().with_seed(11);
        cfg.rewirer = kind;
        let t = Instant::now();
        let report = graphrare::run(&g, &split, Backbone::Gcn, &cfg);
        telemetry::progress!(
            "arena {:<9} val {:.3} test {:.3} homophily {:.3} -> {:.3}  ({:.2}s)",
            kind.name(),
            report.best_val_acc,
            report.test_acc,
            report.original_homophily,
            report.optimized_homophily,
            t.elapsed().as_secs_f64()
        );
        records.push(ArenaRecord {
            strategy: kind.name(),
            best_val_acc: report.best_val_acc as f64,
            test_acc: report.test_acc as f64,
            original_homophily: report.original_homophily as f64,
            optimized_homophily: report.optimized_homophily as f64,
        });
    }
    records
}

fn main() {
    let mut output = PathBuf::from("BENCH_rewire.json");
    let mut quick = false;
    let mut check_only = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => quick = true,
            "--check-only" => check_only = true,
            "--output" => {
                i += 1;
                output = PathBuf::from(argv.get(i).map(String::as_str).unwrap_or_else(|| {
                    eprintln!("usage: bench_rewire [--quick] [--check-only] [--output FILE]");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "unknown argument {other}; usage: bench_rewire [--quick] [--check-only] [--output FILE]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    telemetry::install_panic_hook();
    telemetry::init_from_env();
    telemetry::set_enabled(true);
    let counter_base = telemetry::snapshot();
    let alloc_base = telemetry::alloc::snapshot();

    let sizes: &[usize] = if quick { &[300] } else { &[500, 2_000] };
    let steps = if quick { 8 } else { 20 };
    let runs = if quick { 3 } else { 5 };

    let mut records = Vec::new();
    for &n in sizes {
        for kind in RewirerKind::ALL {
            for regime in [Regime::Dense, Regime::Sparse] {
                let strategy = kind.name();
                let regime_name = regime.name();
                let inst = build_instance(n, steps, 7, kind, regime);
                let base_edges = inst.topo.base().num_edges();
                telemetry::progress!(
                    "n={n} edges={base_edges} strategy={strategy} regime={regime_name}: verifying full-vs-incremental lock-step"
                );
                if let Err(e) = verify(&inst) {
                    eprintln!(
                        "bench_rewire: equivalence FAILED at n={n} strategy={strategy} regime={regime_name}: {e}"
                    );
                    std::process::exit(1);
                }
                if check_only {
                    records.push(CellRecord {
                        strategy,
                        regime: regime_name,
                        n,
                        edges: base_edges,
                        steps,
                        full_ns_per_step: 0,
                        incremental_ns_per_step: 0,
                    });
                    continue;
                }

                // Reference path: every step rebuilds the graph and its
                // operators from scratch, exactly what RareDriver::step
                // did before the incremental engine.
                let full_total = median_ns(runs, || {
                    let mut state = fresh_state(&inst.topo);
                    for actions in &inst.trace {
                        state.apply(actions);
                        let g = inst.topo.materialize(&state);
                        let t = GraphTensors::new(&g);
                        std::hint::black_box(t.gcn_norm());
                        std::hint::black_box(metrics::homophily_ratio(&g));
                        std::hint::black_box(g.num_edges());
                    }
                });

                // Incremental path: one persistent engine absorbing
                // per-step deltas. The engine is rebuilt per run (outside
                // nothing is reused), so each sample covers the same
                // trace from the same start state.
                let pre_inc = telemetry::snapshot();
                let inc_total = median_ns(runs, || {
                    let mut state = fresh_state(&inst.topo);
                    let mut rw = RewiredGraph::new(&inst.topo);
                    let mut delta = RewireDelta::default();
                    rw.tensors().gcn_norm();
                    for actions in &inst.trace {
                        state.apply(actions);
                        rw.apply_into(&inst.topo, &state, &mut delta)
                            .expect("bench state was built against this optimizer");
                        std::hint::black_box(rw.tensors().gcn_norm());
                        std::hint::black_box(rw.homophily_ratio());
                        std::hint::black_box(rw.num_edges());
                    }
                });

                // Where the incremental path spends its time, summed over
                // all timed replays of this cell (the `rewire.apply`
                // total is the whole engine; the sub-spans partition it).
                for s in telemetry::snapshot().since(&pre_inc).spans {
                    if s.name.starts_with("rewire.") {
                        telemetry::progress!(
                            "    {:<20} count {:>5}  total {:>8.2} ms",
                            s.name,
                            s.count,
                            s.total_ns as f64 / 1e6
                        );
                    }
                }

                let full_ns_per_step = full_total / steps as u128;
                let incremental_ns_per_step = inc_total / steps as u128;
                let speedup = full_ns_per_step as f64 / incremental_ns_per_step.max(1) as f64;
                telemetry::progress!(
                    "n={n:<6} {strategy:<9} {regime_name:<7} full {full_ns_per_step:>12} ns/step   incremental {incremental_ns_per_step:>10} ns/step   speedup {speedup:.1}x"
                );
                records.push(CellRecord {
                    strategy,
                    regime: regime_name,
                    n,
                    edges: base_edges,
                    steps,
                    full_ns_per_step,
                    incremental_ns_per_step,
                });
            }
        }
    }

    let arena = run_arena(if quick { 120 } else { 240 });

    let counters = telemetry::snapshot().since(&counter_base);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"rewire\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"check_only\": {check_only},");
    let _ = writeln!(json, "  \"equivalence_checked\": true,");
    json.push_str("  \"rewire_counters\": {");
    let rewire_counters: Vec<_> =
        counters.counters.iter().filter(|(name, _)| name.starts_with("rewire.")).collect();
    for (i, (name, value)) in rewire_counters.iter().enumerate() {
        json.push_str(if i == 0 { "\n" } else { ",\n" });
        json.push_str("    ");
        telemetry::escape_json_str(name, &mut json);
        let _ = write!(json, ": {value}");
    }
    json.push_str("\n  },\n");
    // Heap traffic across the whole benchmark (counting allocator; peak
    // is the process high-water mark, not a delta), or `null` if the
    // wrapper is somehow absent.
    let _ = writeln!(json, "  \"alloc\": {},", telemetry::alloc::delta_json(&alloc_base));
    json.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let speedup = r.full_ns_per_step as f64 / r.incremental_ns_per_step.max(1) as f64;
        let _ = writeln!(
            json,
            "    {{\"strategy\": \"{}\", \"regime\": \"{}\", \"n\": {}, \"base_edges\": {}, \"steps\": {}, \"full_ns_per_step\": {}, \"incremental_ns_per_step\": {}, \"speedup\": {:.2}}}{comma}",
            r.strategy, r.regime, r.n, r.edges, r.steps, r.full_ns_per_step,
            r.incremental_ns_per_step, speedup
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"arena\": [\n");
    for (i, a) in arena.iter().enumerate() {
        let comma = if i + 1 < arena.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"strategy\": \"{}\", \"best_val_acc\": {:.6}, \"test_acc\": {:.6}, \"original_homophily\": {:.6}, \"optimized_homophily\": {:.6}}}{comma}",
            a.strategy, a.best_val_acc, a.test_acc, a.original_homophily, a.optimized_homophily
        );
    }
    json.push_str("  ]\n}\n");

    if let Err(e) = std::fs::write(&output, json) {
        eprintln!("failed to write {}: {e}", output.display());
        std::process::exit(1);
    }
    telemetry::progress!("wrote {}", output.display());
    // Flush any GRAPHRARE_TELEMETRY-configured JSONL sink before exit.
    telemetry::clear_sinks();
}
