//! `telemetry_lint` — validates a GraphRARE telemetry JSONL stream.
//!
//! ```text
//! telemetry_lint EVENTS.jsonl           # validate; exit 1 on any bad line
//! telemetry_lint --make-fixture PREFIX  # write a small graph bundle
//! ```
//!
//! The validator re-uses the schema checks of
//! [`graphrare_telemetry::json`]: every line must parse as RFC 8259
//! JSON and carry an accepted `"v"` schema version (v1–v3) plus an
//! `"event"` kind. `span` events additionally must carry well-formed
//! `span_id`/`parent_id`/`path`/`ns` fields, the optional v3 `run_id`
//! tag must be a positive integer, and the stream as a whole must form
//! a closed span tree — a `parent_id` that never appears as a
//! `span_id` (a truncated trace) fails the lint. `--make-fixture`
//! exists so `scripts/check.sh` can smoke the CLI's `--telemetry-out`
//! flag without shipping a data file.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use graphrare_datasets::{generate_spec, DatasetSpec};
use graphrare_graph::io;
use graphrare_telemetry::json;

fn usage() -> ! {
    eprintln!("usage: telemetry_lint EVENTS.jsonl | telemetry_lint --make-fixture PREFIX");
    std::process::exit(2);
}

fn make_fixture(prefix: &Path) -> ExitCode {
    let spec = DatasetSpec {
        name: "lint-fixture",
        num_nodes: 50,
        num_edges: 110,
        feat_dim: 16,
        num_classes: 3,
        homophily: 0.15,
        degree_exponent: 0.3,
        feature_signal: 0.8,
        feature_density: 0.05,
    };
    let g = generate_spec(&spec, 1);
    match io::write_graph(&g, prefix) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("failed to write {}: {e}", prefix.display());
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.as_slice() {
        [flag, prefix] if flag == "--make-fixture" => make_fixture(&PathBuf::from(prefix)),
        [path] if !path.starts_with("--") => match json::validate_jsonl_file(Path::new(path)) {
            Ok(n) => {
                let accepted: Vec<String> =
                    json::ACCEPTED_VERSIONS.iter().map(|v| format!("v{v}")).collect();
                println!("{path}: {n} events, span tree closed, schema {}", accepted.join("/"));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}
