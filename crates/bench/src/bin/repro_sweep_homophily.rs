//! Extension sweep (beyond the paper's tables): how does the GraphRARE
//! advantage vary with the homophily ratio of the input graph?
//!
//! The paper's Table III samples seven fixed datasets; this sweep holds
//! every other generator parameter constant and varies only `H` from
//! strongly heterophilic to strongly homophilic, measuring GCN and
//! GCN-RARE on each point. The expected shape: a large RARE advantage at
//! low `H` that shrinks toward parity as `H` grows (the paper's
//! observation (1) vs (2) in Sec. V-D).

use graphrare::{run, run_plain, GraphRareConfig};
use graphrare_bench::{mean, mean_std_pct, Budget, HarnessOptions, TextTable};
use graphrare_datasets::{generate_spec, stratified_split, DatasetSpec};
use graphrare_gnn::Backbone;

const HOMOPHILY_GRID: [f64; 7] = [0.05, 0.15, 0.25, 0.4, 0.55, 0.7, 0.85];

fn main() {
    let opts = HarnessOptions::from_args();
    let budget = Budget::default();

    let mut table =
        TextTable::new(&["H target", "H generated", "GCN", "GCN-RARE", "RARE - GCN (points)"]);

    for h in HOMOPHILY_GRID {
        let spec = DatasetSpec {
            name: "sweep",
            num_nodes: 220,
            num_edges: 900,
            feat_dim: 96,
            num_classes: 4,
            homophily: h,
            degree_exponent: 0.4,
            feature_signal: 0.6,
            feature_density: 0.03,
        };
        let g = generate_spec(&spec, opts.seed);
        let generated_h = graphrare_graph::metrics::homophily_ratio(&g);
        let mut gcn_accs = Vec::new();
        let mut rare_accs = Vec::new();
        for i in 0..opts.splits as u64 {
            let split = stratified_split(g.labels(), g.num_classes(), opts.seed + i);
            let mut cfg = GraphRareConfig::default().with_seed(opts.seed + i);
            cfg.steps = budget.rare_steps;
            cfg.train.epochs = budget.epochs;
            cfg.train.patience = budget.patience;
            gcn_accs.push(run_plain(&g, &split, Backbone::Gcn, &cfg).test_acc);
            rare_accs.push(run(&g, &split, Backbone::Gcn, &cfg).test_acc);
        }
        graphrare_telemetry::progress!("H={h:.2} done");
        table.row(vec![
            format!("{h:.2}"),
            format!("{generated_h:.3}"),
            mean_std_pct(&gcn_accs),
            mean_std_pct(&rare_accs),
            format!("{:+.2}", 100.0 * (mean(&rare_accs) - mean(&gcn_accs))),
        ]);
    }

    println!(
        "\nExtension sweep — GraphRARE advantage vs homophily ratio ({} splits, seed {})\n",
        opts.splits, opts.seed
    );
    println!("{}", table.render());
    table.write_csv(std::path::Path::new("results/sweep_homophily.csv")).expect("write csv");
    println!("CSV written to results/sweep_homophily.csv");
}
