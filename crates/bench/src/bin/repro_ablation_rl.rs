//! Extension ablation (beyond the paper's tables): which RL algorithm
//! drives the topology optimisation?
//!
//! Sec. IV-B claims that "other reinforcement learning algorithms can
//! also be conveniently applied to the proposed framework". This bench
//! substantiates that: the same GraphRARE loop is driven by PPO (the
//! paper's choice), by A2C, and — as a floor — by random per-node `k, d`
//! (no learning at all).

use graphrare::{run, run_random_kd, GraphRareConfig, RlAlgo};
use graphrare_bench::{mean, mean_std_pct, Budget, HarnessOptions, TextTable};
use graphrare_datasets::Dataset;
use graphrare_gnn::Backbone;

fn main() {
    let mut opts = HarnessOptions::from_args();
    if opts.datasets.len() == Dataset::ALL.len() {
        opts.datasets = Dataset::HETEROPHILIC.to_vec();
    }
    let budget = Budget::default();
    let agents = ["GCN-RARE (PPO)", "GCN-RARE (A2C)", "GCN-RE[0..10] (random)"];

    let mut table = TextTable::new(
        &std::iter::once("Agent")
            .chain(opts.datasets.iter().map(|d| d.name()))
            .chain(std::iter::once("Average"))
            .collect::<Vec<_>>(),
    );

    for agent in agents {
        let mut cells = vec![agent.to_string()];
        let mut dataset_means = Vec::new();
        for d in &opts.datasets {
            let g = opts.graph(*d);
            let splits = opts.splits_for(&g);
            let accs: Vec<f64> = splits
                .iter()
                .enumerate()
                .map(|(i, split)| {
                    let seed = opts.seed + i as u64;
                    let mut cfg = GraphRareConfig::default().with_seed(seed);
                    cfg.steps = budget.rare_steps;
                    cfg.train.epochs = budget.epochs;
                    cfg.train.patience = budget.patience;
                    match agent {
                        "GCN-RARE (PPO)" => run(&g, split, Backbone::Gcn, &cfg).test_acc,
                        "GCN-RARE (A2C)" => {
                            cfg.algo = RlAlgo::A2c;
                            run(&g, split, Backbone::Gcn, &cfg).test_acc
                        }
                        _ => run_random_kd(&g, split, Backbone::Gcn, 10, seed, &cfg).test_acc,
                    }
                })
                .collect();
            graphrare_telemetry::progress!("{agent:<24} {:<10} {}", d.name(), mean_std_pct(&accs));
            dataset_means.push(mean(&accs));
            cells.push(mean_std_pct(&accs));
        }
        cells.push(format!("{:.2}", 100.0 * mean(&dataset_means)));
        table.row(cells);
    }

    println!(
        "\nExtension ablation — RL algorithm choice ({:?} scale, {} splits, seed {})\n",
        opts.scale, opts.splits, opts.seed
    );
    println!("{}", table.render());
    table.write_csv(std::path::Path::new("results/ablation_rl.csv")).expect("write csv");
    println!("CSV written to results/ablation_rl.csv");
}
