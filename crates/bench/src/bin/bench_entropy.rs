//! Incremental-entropy benchmark: times the sequence-refresh hot path —
//! `H_s` table + per-node rankings after a batch of edge flips — through
//! the reference full-rebuild pipeline (`StructuralEntropyTable` +
//! `EntropySequences::build`, i.e. the engine's wholesale fallback) and
//! through the per-row path of
//! [`graphrare_entropy::IncrementalEntropy`], and writes
//! `BENCH_entropy.json`.
//!
//! ```text
//! bench_entropy [--quick] [--check-only] [--output BENCH_entropy.json]
//! ```
//!
//! Every run first replays the whole flip trace once with *both* engines
//! in lock-step and asserts bit-identical results (graph mirrors, `H`
//! bits, rankings); a mismatch exits non-zero, which is what
//! `scripts/check.sh` relies on for its smoke. `--quick` shrinks the
//! graphs for that smoke; `--check-only` skips the timed passes.
//!
//! Flip batches are sparse (a handful of flips per batch on graphs of
//! thousands of nodes) — the converged-policy regime of the DRL loop,
//! where per-step rewiring deltas are small and the dirty-rows
//! asymptotics show.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use graphrare_telemetry as telemetry;

// Attribute the refresh pipeline's allocation traffic (count/bytes/peak)
// into BENCH_entropy.json alongside the timings.
telemetry::install_counting_allocator!();

use graphrare_datasets::{generate_spec, DatasetSpec};
use graphrare_entropy::{CandidatePool, IncrementalEntropy, RelativeEntropyConfig, SequenceConfig};
use graphrare_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct SizeRecord {
    pool: &'static str,
    n: usize,
    edges: usize,
    batches: usize,
    flips_per_batch: usize,
    full_ns_per_batch: u128,
    incremental_ns_per_batch: u128,
}

/// Average degree 4, the citation-graph regime GraphRARE evaluates on
/// (Cora/Citeseer): sparse enough that the RemoteRing dirty balls stay a
/// small fraction of the graph, which is the precondition for per-row
/// refresh to win (denser graphs push the engine into its wholesale
/// fallback instead).
fn heterophilic_spec(n: usize) -> DatasetSpec {
    DatasetSpec {
        name: "synthetic-hetero",
        num_nodes: n,
        num_edges: 2 * n,
        feat_dim: 32,
        num_classes: 5,
        homophily: 0.15,
        degree_exponent: 0.25,
        feature_signal: 6.0,
        feature_density: 0.05,
    }
}

fn pool_name(pool: CandidatePool) -> &'static str {
    match pool {
        CandidatePool::RemoteRing { .. } => "remote_ring",
        CandidatePool::GlobalSample { .. } => "global_sample",
    }
}

struct Instance {
    graph: Graph,
    cfg: SequenceConfig,
    /// Per-batch genuine presence flips against the evolving graph.
    trace: Vec<Vec<(usize, usize, bool)>>,
}

/// Sparse flip trace: each batch flips `flips_per_batch` distinct random
/// pairs, each a genuine presence change against the graph as of that
/// batch (mirrored locally so the trace is replayable from the start
/// graph any number of times).
fn build_instance(
    n: usize,
    batches: usize,
    flips_per_batch: usize,
    seed: u64,
    pool: CandidatePool,
) -> Instance {
    let graph = generate_spec(&heterophilic_spec(n), seed);
    let mut mirror = graph.clone();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
    let trace = (0..batches)
        .map(|_| {
            let mut batch: Vec<(usize, usize, bool)> = Vec::with_capacity(flips_per_batch);
            while batch.len() < flips_per_batch {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u == v || batch.iter().any(|&(a, b, _)| (a, b) == (u, v) || (b, a) == (u, v)) {
                    continue;
                }
                batch.push((u, v, !mirror.has_edge(u, v)));
            }
            let (added, removed) = {
                use graphrare_graph::EdgeEdit;
                let edits: Vec<(usize, usize, EdgeEdit)> = batch
                    .iter()
                    .map(|&(u, v, add)| (u, v, if add { EdgeEdit::Add } else { EdgeEdit::Remove }))
                    .collect();
                mirror.apply_edits(&edits)
            };
            assert_eq!(added + removed, batch.len(), "trace batches must be genuine flips");
            batch
        })
        .collect();
    Instance { graph, cfg: SequenceConfig { pool, max_additions: 8 }, trace }
}

/// Threshold ≥ 1 pins the benchmarked engine to its per-row path even
/// when a dirty ball covers most of a (small, quick-mode) graph; the
/// shipping default (0.5) would fall back to the very baseline being
/// compared against, which is safe but not what this bench measures.
const PER_ROW: f64 = 2.0;

/// Lock-step replay of the per-row path against the wholesale fallback
/// (threshold 0 → every batch is a from-scratch rebuild); returns an
/// error message on the first divergence. `H` bits are compared all-pairs
/// up to 1000 nodes and over a deterministic 200-node sample above that;
/// the ranking comparison (`EntropySequences` equality, entropy values
/// included) always covers every node.
fn verify(inst: &Instance) -> Result<(), String> {
    let ecfg = RelativeEntropyConfig::default();
    let mut inc = IncrementalEntropy::new(&inst.graph, &ecfg, inst.cfg);
    inc.set_wholesale_threshold(PER_ROW);
    let mut full = IncrementalEntropy::new(&inst.graph, &ecfg, inst.cfg);
    full.set_wholesale_threshold(0.0);
    let n = inst.graph.num_nodes();
    let probe: Vec<usize> =
        if n <= 1000 { (0..n).collect() } else { (0..200).map(|i| (i * 9973) % n).collect() };
    for (i, batch) in inst.trace.iter().enumerate() {
        let stats = inc.apply_flips(batch);
        let full_stats = full.apply_flips(batch);
        if !full_stats.wholesale {
            return Err(format!("batch {i}: baseline engine skipped its wholesale rebuild"));
        }
        if stats.wholesale {
            return Err(format!("batch {i}: per-row engine fell back despite threshold {PER_ROW}"));
        }
        if inc.graph().edge_vec() != full.graph().edge_vec() {
            return Err(format!("batch {i}: graph mirrors diverge"));
        }
        for &v in &probe {
            for &u in &probe {
                if inc.table().entropy(v, u).to_bits() != full.table().entropy(v, u).to_bits() {
                    return Err(format!("batch {i}: H({v},{u}) diverges"));
                }
            }
        }
        if inc.sequences() != full.sequences() {
            return Err(format!("batch {i}: rankings diverge"));
        }
    }
    Ok(())
}

/// Median over `runs` of the trace replay through an engine at the given
/// wholesale threshold; engine construction stays outside the timer.
fn median_replay_ns(inst: &Instance, threshold: f64, runs: usize) -> u128 {
    let ecfg = RelativeEntropyConfig::default();
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let mut engine = IncrementalEntropy::new(&inst.graph, &ecfg, inst.cfg);
        engine.set_wholesale_threshold(threshold);
        let t = Instant::now();
        for batch in &inst.trace {
            std::hint::black_box(engine.apply_flips(batch));
        }
        samples.push(t.elapsed().as_nanos());
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let mut output = PathBuf::from("BENCH_entropy.json");
    let mut quick = false;
    let mut check_only = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => quick = true,
            "--check-only" => check_only = true,
            "--output" => {
                i += 1;
                output = PathBuf::from(argv.get(i).map(String::as_str).unwrap_or_else(|| {
                    eprintln!("usage: bench_entropy [--quick] [--check-only] [--output FILE]");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "unknown argument {other}; usage: bench_entropy [--quick] [--check-only] [--output FILE]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    telemetry::install_panic_hook();
    telemetry::init_from_env();
    telemetry::set_enabled(true);
    let counter_base = telemetry::snapshot();
    let alloc_base = telemetry::alloc::snapshot();

    let sizes: &[usize] = if quick { &[300] } else { &[500, 2_000, 5_000] };
    let pools: &[CandidatePool] = &[
        CandidatePool::RemoteRing { hops: 2 },
        CandidatePool::GlobalSample { per_node: 16, seed: 0xBE7C },
    ];
    let batches = if quick { 6 } else { 16 };
    let runs = if quick { 2 } else { 3 };

    let mut records = Vec::new();
    for &n in sizes {
        for &pool in pools {
            // A couple of flips per batch: the converged-policy regime,
            // where most DRL steps barely move the topology. The full
            // baseline's cost is batch-size independent (it always
            // rebuilds everything), so this isolates the dirty-rows
            // asymptotics the engine exists for.
            let flips_per_batch = 2;
            let inst = build_instance(n, batches, flips_per_batch, 7, pool);
            let base_edges = inst.graph.num_edges();
            let name = pool_name(pool);
            telemetry::progress!(
                "n={n} edges={base_edges} pool={name}: verifying incremental-vs-full lock-step"
            );
            if let Err(e) = verify(&inst) {
                eprintln!("bench_entropy: equivalence FAILED at n={n} pool={name}: {e}");
                std::process::exit(1);
            }
            if check_only {
                records.push(SizeRecord {
                    pool: name,
                    n,
                    edges: base_edges,
                    batches,
                    flips_per_batch,
                    full_ns_per_batch: 0,
                    incremental_ns_per_batch: 0,
                });
                continue;
            }

            // Reference path: threshold 0 forces the wholesale fallback on
            // every batch — a from-scratch structural-table + sequence
            // rebuild, what a frozen-sequence refresh would have to pay.
            let full_total = median_replay_ns(&inst, 0.0, runs);
            // Per-row path, pinned past the fallback (see PER_ROW).
            let inc_total = median_replay_ns(&inst, PER_ROW, runs);

            let full_ns_per_batch = full_total / batches as u128;
            let incremental_ns_per_batch = inc_total / batches as u128;
            let speedup = full_ns_per_batch as f64 / incremental_ns_per_batch.max(1) as f64;
            telemetry::progress!(
                "n={n:<6} {name:<13} full {full_ns_per_batch:>12} ns/batch   incremental {incremental_ns_per_batch:>10} ns/batch   speedup {speedup:.1}x"
            );
            records.push(SizeRecord {
                pool: name,
                n,
                edges: base_edges,
                batches,
                flips_per_batch,
                full_ns_per_batch,
                incremental_ns_per_batch,
            });
        }
    }

    let counters = telemetry::snapshot().since(&counter_base);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"entropy\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"check_only\": {check_only},");
    let _ = writeln!(json, "  \"equivalence_checked\": true,");
    json.push_str("  \"entropy_counters\": {");
    let entropy_counters: Vec<_> =
        counters.counters.iter().filter(|(name, _)| name.starts_with("entropy.")).collect();
    for (i, (name, value)) in entropy_counters.iter().enumerate() {
        json.push_str(if i == 0 { "\n" } else { ",\n" });
        json.push_str("    ");
        telemetry::escape_json_str(name, &mut json);
        let _ = write!(json, ": {value}");
    }
    json.push_str("\n  },\n");
    let _ = writeln!(json, "  \"alloc\": {},", telemetry::alloc::delta_json(&alloc_base));
    json.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let speedup = r.full_ns_per_batch as f64 / r.incremental_ns_per_batch.max(1) as f64;
        let _ = writeln!(
            json,
            "    {{\"pool\": \"{}\", \"n\": {}, \"base_edges\": {}, \"batches\": {}, \"flips_per_batch\": {}, \"full_ns_per_batch\": {}, \"incremental_ns_per_batch\": {}, \"speedup\": {:.2}}}{comma}",
            r.pool,
            r.n,
            r.edges,
            r.batches,
            r.flips_per_batch,
            r.full_ns_per_batch,
            r.incremental_ns_per_batch,
            speedup
        );
    }
    json.push_str("  ]\n}\n");

    if let Err(e) = std::fs::write(&output, json) {
        eprintln!("failed to write {}: {e}", output.display());
        std::process::exit(1);
    }
    telemetry::progress!("wrote {}", output.display());
    telemetry::clear_sinks();
}
