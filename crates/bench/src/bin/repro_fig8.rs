//! Reproduces **Figure 8**: visualisation of the node relative entropy on
//! Wisconsin and Cora. The paper's qualitative claim is that same-label
//! node pairs exhibit higher relative entropy; this binary quantifies it
//! (mean entropy of same-label vs cross-label pairs plus a coarse ASCII
//! heat matrix over label-sorted nodes).

use graphrare_bench::{HarnessOptions, TextTable};
use graphrare_datasets::Dataset;
use graphrare_entropy::{RelativeEntropyConfig, RelativeEntropyTable};

fn main() {
    let mut opts = HarnessOptions::from_args();
    if opts.datasets.len() == Dataset::ALL.len() {
        opts.datasets = vec![Dataset::Wisconsin, Dataset::Cora];
    }

    let mut summary = TextTable::new(&[
        "Dataset",
        "H same-label (mean)",
        "H cross-label (mean)",
        "same/cross ratio",
    ]);

    for d in &opts.datasets {
        let g = opts.graph(*d);
        let table = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
        let n = g.num_nodes();

        let mut same_sum = 0.0;
        let mut same_count = 0usize;
        let mut cross_sum = 0.0;
        let mut cross_count = 0usize;
        for v in 0..n {
            for u in (v + 1)..n {
                let h = table.entropy(v, u);
                if g.label(v) == g.label(u) {
                    same_sum += h;
                    same_count += 1;
                } else {
                    cross_sum += h;
                    cross_count += 1;
                }
            }
        }
        let same_mean = same_sum / same_count.max(1) as f64;
        let cross_mean = cross_sum / cross_count.max(1) as f64;
        summary.row(vec![
            d.name().to_string(),
            format!("{same_mean:.4}"),
            format!("{cross_mean:.4}"),
            format!("{:.3}", same_mean / cross_mean.max(1e-12)),
        ]);

        // Coarse heat matrix: nodes sorted by label, bucketed into a
        // 24x24 grid; darker glyph = higher mean entropy in the bucket.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&v| g.label(v));
        let buckets = 24.min(n);
        let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let mut grid = vec![vec![0f64; buckets]; buckets];
        for (bi, row) in grid.iter_mut().enumerate() {
            for (bj, cell) in row.iter_mut().enumerate() {
                let vi = order[bi * n / buckets];
                let vj = order[bj * n / buckets];
                *cell = table.entropy(vi, vj);
            }
        }
        let lo = grid.iter().flatten().copied().fold(f64::INFINITY, f64::min);
        let hi = grid.iter().flatten().copied().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "\nFig. 8 — relative-entropy heat matrix on {} (nodes sorted by label):",
            d.name()
        );
        for row in &grid {
            let line: String = row
                .iter()
                .map(|&h| {
                    let t = if hi > lo { (h - lo) / (hi - lo) } else { 0.0 };
                    glyphs[((t * (glyphs.len() - 1) as f64).round() as usize).min(glyphs.len() - 1)]
                })
                .collect();
            println!("  {line}");
        }

        // Export the full matrix for small graphs.
        if n <= 600 {
            let dense = table.dense_matrix();
            let mut csv = TextTable::new(
                &(0..n)
                    .map(|i| i.to_string())
                    .collect::<Vec<_>>()
                    .iter()
                    .map(String::as_str)
                    .collect::<Vec<_>>(),
            );
            for v in 0..n {
                csv.row(dense.row(v).iter().map(|x| format!("{x:.5}")).collect());
            }
            let path = format!("results/fig8_{}_matrix.csv", d.name().to_lowercase());
            csv.write_csv(std::path::Path::new(&path)).expect("write csv");
        }
        graphrare_telemetry::progress!("{} done", d.name());
    }

    println!("\nFig. 8 — same-label vs cross-label relative entropy\n");
    println!("{}", summary.render());
    println!("The paper's claim reproduces when same/cross ratio > 1.");
    summary.write_csv(std::path::Path::new("results/fig8_summary.csv")).expect("write csv");
    println!("CSV written to results/fig8_summary.csv (+ per-dataset matrices)");
}
