//! Reproduces **Table VI**: real running time. Each method is trained for
//! a fixed number of epochs on each heterophilic dataset and the average
//! time per epoch is reported, together with the one-off relative-entropy
//! computation time (which happens once before training).

use std::time::Instant;

use graphrare::{run, GraphRareConfig};
use graphrare_baselines::{run_baseline, BaselineConfig, BaselineKind};
use graphrare_bench::{HarnessOptions, TextTable};
use graphrare_datasets::Dataset;
use graphrare_entropy::{RelativeEntropyConfig, RelativeEntropyTable};
use graphrare_gnn::{build_model, Backbone, GraphTensors, ModelConfig, TrainConfig, Trainer};

/// Epochs used for the per-epoch timing average. The paper uses 500; the
/// mini harness defaults to 50 (the ratio between methods is what Table VI
/// compares, not the absolute count).
fn timing_epochs(full: bool) -> usize {
    if full {
        500
    } else {
        50
    }
}

fn time_backbone(b: Backbone, g: &graphrare_graph::Graph, epochs: usize, seed: u64) -> f64 {
    let model_cfg = ModelConfig { seed, ..Default::default() };
    let model = build_model(b, g.feat_dim(), g.num_classes(), &model_cfg);
    let labels = g.labels().to_vec();
    let train_mask: Vec<usize> = (0..g.num_nodes()).step_by(2).collect();
    let gt = GraphTensors::new(g);
    let mut trainer = Trainer::new(model.as_ref(), &TrainConfig::default());
    let start = Instant::now();
    trainer.train_epochs(model.as_ref(), &gt, &labels, &train_mask, epochs);
    start.elapsed().as_secs_f64() / epochs as f64
}

fn main() {
    let opts = HarnessOptions::from_args();
    let datasets: Vec<Dataset> =
        opts.datasets.iter().copied().filter(|d| Dataset::HETEROPHILIC.contains(d)).collect();
    let epochs = timing_epochs(matches!(opts.scale, graphrare_bench::Scale::Full));

    let mut table = TextTable::new(
        &std::iter::once("Method").chain(datasets.iter().map(|d| d.name())).collect::<Vec<_>>(),
    );

    let fmt_ms = |secs: f64| format!("{:.2}ms", 1000.0 * secs);

    // Plain backbones: average seconds per epoch.
    for b in [Backbone::Gcn, Backbone::Gat, Backbone::Sage, Backbone::H2gcn] {
        let mut cells = vec![b.name().to_string()];
        for d in &datasets {
            let g = opts.graph(*d);
            cells.push(fmt_ms(time_backbone(b, &g, epochs, opts.seed)));
            graphrare_telemetry::progress!("{} timed on {}", b.name(), d.name());
        }
        table.row(cells);
    }

    // SOTA baselines the paper times (SimP-GCN, HOG-GCN): full fit wall
    // clock divided by epochs run.
    for kind in [BaselineKind::SimpGcn, BaselineKind::HogGcn] {
        let mut cells = vec![format!("{}*", kind.name())];
        for d in &datasets {
            let g = opts.graph(*d);
            let split = &opts.splits_for(&g)[0];
            let cfg = BaselineConfig {
                train: TrainConfig { epochs, patience: epochs, ..Default::default() },
                seed: opts.seed,
                ..Default::default()
            };
            let start = Instant::now();
            let report = run_baseline(kind, &g, split, &cfg);
            cells.push(fmt_ms(start.elapsed().as_secs_f64() / report.epochs_run.max(1) as f64));
            graphrare_telemetry::progress!("{} timed on {}", kind.name(), d.name());
        }
        table.row(cells);
    }

    // GraphRARE variants: wall clock of the full run divided by its DRL
    // steps (each step is one evaluate+optimise cycle on the graph).
    for b in [Backbone::Gcn, Backbone::Gat, Backbone::Sage, Backbone::H2gcn] {
        let mut cells = vec![format!("{}-RARE (ours)", b.name())];
        for d in &datasets {
            let g = opts.graph(*d);
            let split = &opts.splits_for(&g)[0];
            let mut cfg = GraphRareConfig::default().with_seed(opts.seed);
            cfg.steps = 16;
            let start = Instant::now();
            let _ = run(&g, split, b, &cfg);
            cells.push(fmt_ms(start.elapsed().as_secs_f64() / cfg.steps as f64));
            graphrare_telemetry::progress!("{}-RARE timed on {}", b.name(), d.name());
        }
        table.row(cells);
    }

    // One-off entropy computation.
    let mut cells = vec!["Entropy Computation".to_string()];
    for d in &datasets {
        let g = opts.graph(*d);
        let start = Instant::now();
        let _ = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
        cells.push(format!("{:.3}s", start.elapsed().as_secs_f64()));
        graphrare_telemetry::progress!("entropy timed on {}", d.name());
    }
    table.row(cells);

    println!(
        "\nTable VI — running time per epoch / per DRL step ({:?} scale, {} epochs)\n",
        opts.scale, epochs
    );
    println!("{}", table.render());
    println!("[*] denotes SOTA models; entropy is computed once before training.");
    table.write_csv(std::path::Path::new("results/table6.csv")).expect("write csv");
    println!("CSV written to results/table6.csv");
}
