//! Reproduces **Table V**: the ablation study on the relative entropy and
//! the DRL module, all with the GCN backbone:
//!
//! * `GCN` — the plain backbone;
//! * `GCN-RE[0..max]` — random per-node k, d in `0..=max` for
//!   max ∈ {5, 10, 15, 20} (no DRL);
//! * `GCN-RA` — DRL but shuffled (entropy-free) candidate rankings;
//! * `GCN-RARE-add` / `GCN-RARE-remove` — only one edit direction;
//! * `GCN-RARE-reward` — AUC reward instead of Eq. 11;
//! * `GCN-RARE` — the full framework.

use graphrare::{
    run, run_plain, run_random_kd, EditMode, GraphRareConfig, RewardKind, SequenceMode,
};
use graphrare_bench::{mean, mean_std_pct, Budget, HarnessOptions, TextTable};
use graphrare_datasets::Split;
use graphrare_gnn::Backbone;
use graphrare_graph::Graph;

fn base_cfg(budget: &Budget, seed: u64) -> GraphRareConfig {
    let mut cfg = GraphRareConfig::default().with_seed(seed);
    cfg.steps = budget.rare_steps;
    cfg.train.epochs = budget.epochs;
    cfg.train.patience = budget.patience;
    cfg
}

fn run_variant(name: &str, g: &Graph, split: &Split, seed: u64, budget: &Budget) -> f64 {
    let cfg = base_cfg(budget, seed);
    match name {
        "GCN" => run_plain(g, split, Backbone::Gcn, &cfg).test_acc,
        "GCN-RE[0..5]" => run_random_kd(g, split, Backbone::Gcn, 5, seed, &cfg).test_acc,
        "GCN-RE[0..10]" => run_random_kd(g, split, Backbone::Gcn, 10, seed, &cfg).test_acc,
        "GCN-RE[0..15]" => run_random_kd(g, split, Backbone::Gcn, 15, seed, &cfg).test_acc,
        "GCN-RE[0..20]" => run_random_kd(g, split, Backbone::Gcn, 20, seed, &cfg).test_acc,
        "GCN-RA" => {
            let mut cfg = cfg;
            cfg.sequence_mode = SequenceMode::Shuffled { seed: seed.wrapping_add(5) };
            run(g, split, Backbone::Gcn, &cfg).test_acc
        }
        "GCN-RARE-add" => {
            let mut cfg = cfg;
            cfg.edit_mode = EditMode::AddOnly;
            run(g, split, Backbone::Gcn, &cfg).test_acc
        }
        "GCN-RARE-remove" => {
            let mut cfg = cfg;
            cfg.edit_mode = EditMode::RemoveOnly;
            run(g, split, Backbone::Gcn, &cfg).test_acc
        }
        "GCN-RARE-reward" => {
            let mut cfg = cfg;
            cfg.reward = RewardKind::Auc;
            run(g, split, Backbone::Gcn, &cfg).test_acc
        }
        "GCN-RARE" => run(g, split, Backbone::Gcn, &cfg).test_acc,
        other => panic!("unknown variant {other}"),
    }
}

fn main() {
    let opts = HarnessOptions::from_args();
    let budget = Budget::default();
    let variants = [
        "GCN",
        "GCN-RE[0..5]",
        "GCN-RE[0..10]",
        "GCN-RE[0..15]",
        "GCN-RE[0..20]",
        "GCN-RA",
        "GCN-RARE-add",
        "GCN-RARE-remove",
        "GCN-RARE-reward",
        "GCN-RARE",
    ];

    let mut table = TextTable::new(
        &std::iter::once("Method")
            .chain(opts.datasets.iter().map(|d| d.name()))
            .chain(std::iter::once("Average"))
            .collect::<Vec<_>>(),
    );

    for variant in variants {
        let mut cells = vec![variant.to_string()];
        let mut dataset_means = Vec::new();
        for d in &opts.datasets {
            let g = opts.graph(*d);
            let splits = opts.splits_for(&g);
            let accs: Vec<f64> = splits
                .iter()
                .enumerate()
                .map(|(i, split)| run_variant(variant, &g, split, opts.seed + i as u64, &budget))
                .collect();
            graphrare_telemetry::progress!(
                "{variant:<18} {:<10} {}",
                d.name(),
                mean_std_pct(&accs)
            );
            dataset_means.push(mean(&accs));
            cells.push(mean_std_pct(&accs));
        }
        cells.push(format!("{:.2}", 100.0 * mean(&dataset_means)));
        table.row(cells);
    }

    println!(
        "\nTable V — ablation study on relative entropy and the DRL module \
         ({:?} scale, {} splits, seed {})\n",
        opts.scale, opts.splits, opts.seed
    );
    println!("{}", table.render());
    table.write_csv(std::path::Path::new("results/table5.csv")).expect("write csv");
    println!("CSV written to results/table5.csv");
}
