//! Reproduces **Table III**: mean test accuracy ± std over data splits
//! for all seventeen methods on the seven datasets, plus the per-backbone
//! improvement rows of the GraphRARE variants.

use std::collections::HashMap;

use graphrare_bench::{mean, mean_std_pct, run_method, Budget, HarnessOptions, Method, TextTable};
use graphrare_gnn::Backbone;

fn main() {
    let opts = HarnessOptions::from_args();
    let budget = Budget::default();
    let methods = Method::table3_rows();

    let mut table = TextTable::new(
        &std::iter::once("Method")
            .chain(opts.datasets.iter().map(|d| d.name()))
            .chain(std::iter::once("Average"))
            .collect::<Vec<_>>(),
    );

    // accs[method][dataset] = per-split accuracies.
    let mut accs: HashMap<String, Vec<Vec<f64>>> = HashMap::new();
    for method in &methods {
        let mut per_dataset = Vec::new();
        for d in &opts.datasets {
            let g = opts.graph(*d);
            let splits = opts.splits_for(&g);
            let cells: Vec<f64> = splits
                .iter()
                .enumerate()
                .map(|(i, split)| {
                    run_method(*method, &g, split, opts.seed + i as u64, &budget).test_acc
                })
                .collect();
            graphrare_telemetry::progress!(
                "{:<16} {:<10} {}",
                method.name(),
                d.name(),
                mean_std_pct(&cells)
            );
            per_dataset.push(cells);
        }
        accs.insert(method.name(), per_dataset);
    }

    for method in &methods {
        let per_dataset = &accs[&method.name()];
        let mut cells = vec![method.name()];
        let mut dataset_means = Vec::new();
        for split_accs in per_dataset {
            cells.push(mean_std_pct(split_accs));
            dataset_means.push(mean(split_accs));
        }
        cells.push(format!("{:.2}", 100.0 * mean(&dataset_means)));
        table.row(cells);
    }

    println!(
        "\nTable III — node classification accuracy ({:?} scale, {} splits, seed {})\n",
        opts.scale, opts.splits, opts.seed
    );
    println!("{}", table.render());

    // Improvement rows: RARE vs its own backbone, averaged over datasets.
    let mut improvements = TextTable::new(&["Enhanced model", "Backbone avg", "RARE avg", "Δ"]);
    for backbone in [Backbone::Gcn, Backbone::Sage, Backbone::Gat, Backbone::H2gcn] {
        let plain = &accs[&Method::Plain(backbone).name()];
        let rare = &accs[&Method::Rare(backbone).name()];
        let plain_avg = 100.0 * mean(&plain.iter().map(|v| mean(v)).collect::<Vec<_>>());
        let rare_avg = 100.0 * mean(&rare.iter().map(|v| mean(v)).collect::<Vec<_>>());
        improvements.row(vec![
            Method::Rare(backbone).name(),
            format!("{plain_avg:.2}"),
            format!("{rare_avg:.2}"),
            format!("{:+.2}", rare_avg - plain_avg),
        ]);
    }
    println!("{}", improvements.render());

    table.write_csv(std::path::Path::new("results/table3.csv")).expect("write csv");
    improvements
        .write_csv(std::path::Path::new("results/table3_improvements.csv"))
        .expect("write csv");
    println!("CSV written to results/table3.csv and results/table3_improvements.csv");
}
