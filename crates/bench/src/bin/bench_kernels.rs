//! Parallel-runtime microbenchmark: times the kernels wired through
//! [`graphrare_tensor::parallel`] at several forced thread counts and
//! writes the results to `BENCH_kernels.json`.
//!
//! ```text
//! bench_kernels [--output BENCH_kernels.json]
//! ```
//!
//! Covered kernels: dense `matmul` (1024³), sparse `spmm` over a random
//! graph operator, and the full `EntropySequences::build` precompute on
//! a 5 000-node synthetic graph (GlobalSample pool, exercising the
//! per-node RNG path). Thread counts `{1, 2, 4, available}` are forced
//! with `with_threads`, so `GRAPHRARE_THREADS` does not skew the
//! comparison; every kernel is bit-identical across rows, only the wall
//! time changes.
//!
//! The JSON output carries run metadata — available parallelism, the
//! raw `GRAPHRARE_THREADS` value and the thread count it resolves to —
//! plus the telemetry kernel counters accumulated over the whole run
//! (`kernel.*.calls` / `kernel.*.rows`), so a result file is
//! self-describing about how much work it actually timed.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use graphrare_telemetry as telemetry;

// Attribute kernel allocation traffic (count/bytes/peak) into
// BENCH_kernels.json alongside the timings.
telemetry::install_counting_allocator!();

use graphrare_entropy::{
    CandidatePool, EntropySequences, RelativeEntropyConfig, RelativeEntropyTable, SequenceConfig,
};
use graphrare_graph::{ops, Graph};
use graphrare_tensor::{parallel, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Record {
    op: &'static str,
    size: String,
    threads: usize,
    ns_per_iter: u128,
}

/// Median-of-runs wall time per call: one warm-up call, then repeated
/// timed calls until ≥300 ms or 20 iterations.
fn time_ns(mut f: impl FnMut()) -> u128 {
    f();
    let mut samples = Vec::new();
    let budget = Instant::now();
    while samples.len() < 20 && (samples.len() < 3 || budget.elapsed().as_millis() < 300) {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_nanos());
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn synthetic_graph(n: usize, avg_degree: usize, dim: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n * avg_degree / 2);
    for v in 1..n {
        edges.push((v - 1, v));
        for _ in 0..(avg_degree / 2) {
            let u = rng.gen_range(0..n);
            if u != v {
                edges.push((v.min(u), v.max(u)));
            }
        }
    }
    let classes = 5;
    let labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..classes)).collect();
    let mut feats = Matrix::zeros(n, dim);
    for v in 0..n {
        for d in 0..dim {
            if rng.gen_bool(0.2) {
                feats.set(v, d, rng.gen_range(0.0f32..1.0));
            }
        }
    }
    Graph::from_edges(n, &edges, feats, labels, classes)
}

fn main() {
    let mut output = PathBuf::from("BENCH_kernels.json");
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--output" => {
                i += 1;
                output = PathBuf::from(argv.get(i).map(String::as_str).unwrap_or_else(|| {
                    eprintln!("usage: bench_kernels [--output FILE]");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument {other}; usage: bench_kernels [--output FILE]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // Count kernel invocations over the whole run; the per-call cost is
    // one relaxed load + a counter bump, noise next to the timed 1024³
    // matmul. `init_from_env` still honours GRAPHRARE_TELEMETRY sinks.
    telemetry::install_panic_hook();
    telemetry::init_from_env();
    telemetry::set_enabled(true);
    let counter_base = telemetry::snapshot();
    let alloc_base = telemetry::alloc::snapshot();

    let available = parallel::available_threads();
    let threads_env = std::env::var("GRAPHRARE_THREADS").ok();
    let resolved_threads = parallel::current_threads();
    let mut thread_counts = vec![1usize, 2, 4, available];
    thread_counts.sort_unstable();
    thread_counts.dedup();
    telemetry::progress!("available parallelism: {available}; thread counts: {thread_counts:?}");

    let mut records = Vec::new();

    // Dense matmul, 1024 x 1024 x 1024.
    let a = Matrix::from_fn(1024, 1024, |r, c| ((r * 31 + c * 7) % 17) as f32 * 0.1 - 0.8);
    let b = Matrix::from_fn(1024, 1024, |r, c| ((r * 13 + c * 3) % 19) as f32 * 0.1 - 0.9);
    for &t in &thread_counts {
        let ns = time_ns(|| {
            parallel::with_threads(t, || {
                std::hint::black_box(a.matmul(&b));
            })
        });
        telemetry::progress!("matmul 1024x1024      threads={t:<3} {:>12} ns/iter", ns);
        records.push(Record {
            op: "matmul",
            size: "1024x1024x1024".into(),
            threads: t,
            ns_per_iter: ns,
        });
    }

    // Sparse propagation on a 5k-node random operator, 64-wide features.
    let g = synthetic_graph(5_000, 16, 32, 7);
    let a_hat = ops::gcn_norm(&g);
    let x = Matrix::from_fn(g.num_nodes(), 64, |r, c| ((r * 7 + c) % 13) as f32 * 0.1);
    let size = format!("{}x{} nnz={} cols=64", a_hat.rows(), a_hat.cols(), a_hat.nnz());
    for &t in &thread_counts {
        let ns = time_ns(|| {
            parallel::with_threads(t, || {
                std::hint::black_box(a_hat.spmm(&x));
            })
        });
        telemetry::progress!("spmm 5k x 64          threads={t:<3} {:>12} ns/iter", ns);
        records.push(Record { op: "spmm", size: size.clone(), threads: t, ns_per_iter: ns });
    }

    // Entropy sequence precompute on the same 5k-node graph.
    let table = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
    let cfg = SequenceConfig {
        pool: CandidatePool::GlobalSample { per_node: 32, seed: 0xBE7C },
        max_additions: 16,
    };
    for &t in &thread_counts {
        let ns = time_ns(|| {
            parallel::with_threads(t, || {
                std::hint::black_box(EntropySequences::build(&g, &table, &cfg));
            })
        });
        telemetry::progress!("sequence_build 5k     threads={t:<3} {:>12} ns/iter", ns);
        records.push(Record {
            op: "sequence_build",
            size: "5000 nodes, GlobalSample per_node=32".into(),
            threads: t,
            ns_per_iter: ns,
        });
    }

    let counters = telemetry::snapshot().since(&counter_base);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"kernels\",");
    let _ = writeln!(json, "  \"available_parallelism\": {available},");
    match &threads_env {
        Some(v) => {
            json.push_str("  \"graphrare_threads_env\": ");
            telemetry::escape_json_str(v, &mut json);
            json.push_str(",\n");
        }
        None => json.push_str("  \"graphrare_threads_env\": null,\n"),
    }
    let _ = writeln!(json, "  \"resolved_threads\": {resolved_threads},");
    json.push_str("  \"kernel_counters\": {");
    for (i, (name, value)) in counters.counters.iter().enumerate() {
        json.push_str(if i == 0 { "\n" } else { ",\n" });
        json.push_str("    ");
        telemetry::escape_json_str(name, &mut json);
        let _ = write!(json, ": {value}");
    }
    json.push_str("\n  },\n");
    let _ = writeln!(json, "  \"alloc\": {},", telemetry::alloc::delta_json(&alloc_base));
    json.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"op\": \"{}\", \"size\": \"{}\", \"threads\": {}, \"ns_per_iter\": {}}}{comma}",
            r.op, r.size, r.threads, r.ns_per_iter
        );
    }
    json.push_str("  ]\n}\n");

    if let Err(e) = std::fs::write(&output, json) {
        eprintln!("failed to write {}: {e}", output.display());
        std::process::exit(1);
    }
    telemetry::progress!("wrote {}", output.display());
    telemetry::clear_sinks();
}
