//! Reproduces **Table II**: statistics and properties of the seven
//! datasets (nodes, edges, features, classes, homophily ratio), comparing
//! the paper's reported values against the generated graphs.

use graphrare_bench::{HarnessOptions, Scale, TextTable};
use graphrare_graph::metrics::homophily_ratio;

fn main() {
    let opts = HarnessOptions::from_args();
    let mut table = TextTable::new(&[
        "Datasets",
        "#Nodes",
        "#Edges",
        "#Features",
        "#Classes",
        "H (paper)",
        "H (generated)",
    ]);
    for d in &opts.datasets {
        let spec = match opts.scale {
            Scale::Mini => d.spec_mini(),
            Scale::Full => d.spec(),
        };
        let g = opts.graph(*d);
        table.row(vec![
            d.name().to_string(),
            g.num_nodes().to_string(),
            g.num_edges().to_string(),
            g.feat_dim().to_string(),
            g.num_classes().to_string(),
            format!("{:.2}", spec.homophily),
            format!("{:.2}", homophily_ratio(&g)),
        ]);
    }
    println!("Table II — dataset statistics ({:?} scale, seed {})\n", opts.scale, opts.seed);
    println!("{}", table.render());
    let path = std::path::Path::new("results/table2.csv");
    table.write_csv(path).expect("write results/table2.csv");
    println!("CSV written to {}", path.display());
}
