//! Serving-daemon benchmark: submit/step throughput and request
//! latency percentiles at 1, 4 and 8 concurrent runs, written to
//! `BENCH_serve.json`.
//!
//! ```text
//! bench_serve [--quick] [--output BENCH_serve.json]
//! ```
//!
//! Each concurrency level gets a fresh daemon on a temp unix socket
//! with exactly that many worker slots; the benchmark submits that many
//! same-shape runs over the real frame protocol, polls them to
//! completion while sampling per-request round-trip latency into the
//! trace profiler's [`Reservoir`]s, and reports steps/sec throughput.
//! One probe seed recurs at every level and its artifact bytes must be
//! identical across 1/4/8-way multiplexing — concurrency must never
//! change a result.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use graphrare_datasets::{generate_spec, DatasetSpec};
use graphrare_graph::io;
use graphrare_serve::{Connection, Listen, Request, Response, RunSpec, ServeConfig, Server};
use graphrare_telemetry::{self as telemetry, Reservoir};

struct LevelRecord {
    concurrency: usize,
    steps_per_run: u64,
    wall_ms: f64,
    steps_per_sec: f64,
    submit: Reservoir,
    status: Reservoir,
    requests: u64,
}

fn toy_spec() -> DatasetSpec {
    DatasetSpec {
        name: "serve-bench",
        num_nodes: 40,
        num_edges: 90,
        feat_dim: 12,
        num_classes: 3,
        homophily: 0.2,
        degree_exponent: 0.3,
        feature_signal: 0.8,
        feature_density: 0.08,
    }
}

fn run_spec(input: &str, seed: u64, steps: u64) -> RunSpec {
    RunSpec {
        input: input.to_string(),
        backbone: graphrare_gnn::Backbone::Gcn,
        steps,
        seed,
        split_seed: 0,
        k_cap: 10,
        lambda: 1.0,
        algo: graphrare::RlAlgo::Ppo,
        threads: 1,
        paced: false,
        rewirer: graphrare::RewirerKind::Ppo,
    }
}

/// Drives one daemon at `concurrency` slots to completion; returns the
/// timing record and the probe run's artifact bytes.
fn bench_level(
    scratch: &Path,
    input: &str,
    concurrency: usize,
    steps_per_run: u64,
) -> (LevelRecord, Vec<u8>) {
    let state = scratch.join(format!("state-{concurrency}"));
    let socket = scratch.join(format!("daemon-{concurrency}.sock"));
    let mut cfg = ServeConfig::new(&state);
    cfg.max_runs = concurrency;
    cfg.max_queue = concurrency;
    let server = Server::start(cfg, &[Listen::Unix(socket.clone())]).expect("daemon starts");
    let mut conn = Connection::connect(&Listen::Unix(socket)).expect("client connects");

    let mut submit = Reservoir::default();
    let mut status = Reservoir::default();
    let mut requests = 0u64;

    // Seed 5 is the cross-level probe; the rest differ per slot.
    let seeds: Vec<u64> =
        (0..concurrency as u64).map(|i| if i == 0 { 5 } else { 100 + i }).collect();
    let wall = Instant::now();
    let mut ids = Vec::new();
    for &seed in &seeds {
        let t = Instant::now();
        let resp = conn.request(&Request::SubmitRun(run_spec(input, seed, steps_per_run)));
        submit.record(t.elapsed().as_nanos() as u64);
        requests += 1;
        match resp {
            Ok(Response::Submitted(run_id)) => ids.push(run_id),
            other => panic!("submit failed: {other:?}"),
        }
    }

    // Poll every run until terminal, timing each status round-trip.
    let mut pending = ids.clone();
    while !pending.is_empty() {
        pending.retain(|&run_id| {
            let t = Instant::now();
            let resp = conn.request(&Request::Status(run_id));
            status.record(t.elapsed().as_nanos() as u64);
            requests += 1;
            match resp {
                Ok(Response::RunStatus(info)) => {
                    if info.state == graphrare_serve::RunState::Done {
                        false
                    } else {
                        assert!(!info.state.is_terminal(), "run {run_id} ended {:?}", info.state);
                        true
                    }
                }
                other => panic!("status failed: {other:?}"),
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let total_steps = steps_per_run * concurrency as u64;
    let steps_per_sec = total_steps as f64 / (wall_ms / 1e3);

    let probe = match conn.request(&Request::FetchResult(ids[0])) {
        Ok(Response::RunResult { artifact, .. }) => artifact,
        other => panic!("fetch failed: {other:?}"),
    };
    server.request_shutdown();
    server.join();

    telemetry::progress!(
        "concurrency {concurrency}: {total_steps} steps in {wall_ms:.0} ms ({steps_per_sec:.1} steps/s), submit p50 {} us, status p50 {} us",
        submit.percentile(50.0) / 1_000,
        status.percentile(50.0) / 1_000
    );
    (
        LevelRecord {
            concurrency,
            steps_per_run,
            wall_ms,
            steps_per_sec,
            submit,
            status,
            requests,
        },
        probe,
    )
}

fn latency_json(r: &Reservoir) -> String {
    format!(
        "{{\"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}}}",
        r.percentile(50.0),
        r.percentile(90.0),
        r.percentile(99.0)
    )
}

fn main() {
    let mut output = PathBuf::from("BENCH_serve.json");
    let mut quick = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => quick = true,
            "--output" => {
                i += 1;
                output = PathBuf::from(argv.get(i).map(String::as_str).unwrap_or_else(|| {
                    eprintln!("usage: bench_serve [--quick] [--output FILE]");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument {other}; usage: bench_serve [--quick] [--output FILE]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    telemetry::install_panic_hook();
    telemetry::init_from_env();

    let scratch =
        std::env::temp_dir().join(format!("graphrare-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let input = scratch.join("toy");
    io::write_graph(&generate_spec(&toy_spec(), 1), &input).expect("write toy graph");
    let input = input.to_str().unwrap().to_string();

    let steps_per_run: u64 = if quick { 6 } else { 16 };
    let levels: &[usize] = &[1, 4, 8];

    let mut records = Vec::new();
    let mut probes: Vec<Vec<u8>> = Vec::new();
    for &concurrency in levels {
        let (record, probe) = bench_level(&scratch, &input, concurrency, steps_per_run);
        records.push(record);
        probes.push(probe);
    }

    // Concurrency must never change bits: the probe run (same spec and
    // seed at every level) produced identical artifacts under 1-, 4-
    // and 8-way multiplexing.
    let identical = probes.windows(2).all(|w| w[0] == w[1]);
    if !identical {
        eprintln!("bench_serve: probe artifacts DIVERGE across concurrency levels");
        std::process::exit(1);
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"serve\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"identical_across_levels\": {identical},");
    json.push_str("  \"levels\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"concurrency\": {}, \"steps_per_run\": {}, \"wall_ms\": {:.1}, \"steps_per_sec\": {:.2}, \"requests\": {}, \"submit_latency\": {}, \"status_latency\": {}}}{comma}",
            r.concurrency,
            r.steps_per_run,
            r.wall_ms,
            r.steps_per_sec,
            r.requests,
            latency_json(&r.submit),
            latency_json(&r.status)
        );
    }
    json.push_str("  ]\n}\n");

    if let Err(e) = std::fs::write(&output, json) {
        eprintln!("failed to write {}: {e}", output.display());
        std::process::exit(1);
    }
    telemetry::progress!("wrote {}", output.display());
    let _ = std::fs::remove_dir_all(&scratch);
    telemetry::clear_sinks();
}
