//! `store_dump` — inspects a `graphrare-store` container file.
//!
//! ```text
//! store_dump FILE.grrs
//! ```
//!
//! Prints the container header (format version, total size) and one row
//! per named section: name, section kind, payload length. Sections of
//! kind `Scalars` and `U64Vec` are small by construction, so their
//! values are printed inline — `store_dump` on a checkpoint therefore
//! shows the step counter and the tracked metrics without any other
//! tooling. Exits non-zero (with the typed error message) on anything
//! `Container::read` rejects: bad magic, unsupported version, CRC
//! mismatch, truncation.

use std::path::Path;
use std::process::ExitCode;

use graphrare_store::{Container, SectionKind, FORMAT_VERSION};

fn dump(path: &Path) -> Result<(), String> {
    let size = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    let c = Container::read(path).map_err(|e| e.to_string())?;
    println!("{}: format v{FORMAT_VERSION}, {size} bytes", path.display());
    let width = c.sections().map(|(name, _, _)| name.len()).max().unwrap_or(4).max(4);
    println!("{:<width$}  {:<10}  {:>10}", "name", "kind", "bytes");
    for (name, kind, len) in c.sections() {
        println!("{name:<width$}  {:<10}  {len:>10}", kind.name());
    }
    // Inline small metadata so a checkpoint is self-describing.
    let named: Vec<(String, SectionKind)> =
        c.sections().map(|(name, kind, _)| (name.to_string(), kind)).collect();
    for (name, kind) in named {
        match kind {
            SectionKind::Scalars => {
                let pairs = c.scalars(&name).map_err(|e| e.to_string())?;
                for (key, value) in pairs {
                    println!("  {name}/{key} = {value}");
                }
            }
            SectionKind::U64Vec => {
                let values = c.u64_vec(&name).map_err(|e| e.to_string())?;
                if values.len() <= 16 {
                    println!("  {name} = {values:?}");
                }
            }
            _ => {}
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let [path] = argv.as_slice() else {
        eprintln!("usage: store_dump FILE.grrs");
        return ExitCode::from(2);
    };
    match dump(Path::new(path)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{path}: {e}");
            ExitCode::FAILURE
        }
    }
}
