//! Reproduces **Figure 5**: the ablation on the DRL module's
//! contribution. For each backbone × dataset it evaluates a grid of fixed
//! `(k, d)` values (every node gets the same counts, no DRL) and compares
//! against the full DRL-driven GraphRARE. The printed matrix holds the
//! accuracy *degradation* versus GraphRARE (deeper = worse in the paper's
//! heatmaps; here: larger positive numbers).

use graphrare::{run_fixed_kd, GraphRareConfig};
use graphrare_bench::{mean, rare_report, Budget, HarnessOptions, TextTable};
use graphrare_datasets::Dataset;
use graphrare_gnn::Backbone;

fn main() {
    let mut opts = HarnessOptions::from_args();
    // The paper shows Chameleon, Squirrel and Cora; keep that default but
    // honour an explicit --datasets flag.
    if opts.datasets.len() == Dataset::ALL.len() {
        opts.datasets = vec![Dataset::Chameleon, Dataset::Squirrel, Dataset::Cora];
    }
    let budget = Budget::default();
    let grid: Vec<usize> = vec![0, 2, 4, 6, 8, 10];
    let backbones = [Backbone::Gcn, Backbone::Sage, Backbone::Gat, Backbone::H2gcn];

    for backbone in backbones {
        for d in &opts.datasets {
            let g = opts.graph(*d);
            let splits = opts.splits_for(&g);
            // DRL reference accuracy.
            let rare_accs: Vec<f64> = splits
                .iter()
                .enumerate()
                .map(|(i, s)| rare_report(backbone, &g, s, opts.seed + i as u64, &budget).test_acc)
                .collect();
            let rare_acc = mean(&rare_accs);

            let mut table = TextTable::new(
                &std::iter::once("k\\d".to_string())
                    .chain(grid.iter().map(|d| d.to_string()))
                    .collect::<Vec<String>>()
                    .iter()
                    .map(String::as_str)
                    .collect::<Vec<&str>>(),
            );
            for &k in &grid {
                let mut cells = vec![k.to_string()];
                for &del in &grid {
                    let accs: Vec<f64> = splits
                        .iter()
                        .enumerate()
                        .map(|(i, s)| {
                            let mut cfg =
                                GraphRareConfig::default().with_seed(opts.seed + i as u64);
                            cfg.train.epochs = budget.epochs;
                            cfg.train.patience = budget.patience;
                            cfg.k_cap = 10;
                            run_fixed_kd(&g, s, backbone, k, del, &cfg).test_acc
                        })
                        .collect();
                    // Degradation vs the DRL module, in accuracy points.
                    cells.push(format!("{:+.1}", 100.0 * (rare_acc - mean(&accs))));
                }
                table.row(cells);
                graphrare_telemetry::progress!("{} {} k={k} done", backbone.name(), d.name());
            }
            println!(
                "\nFig. 5 — {} on {}: degradation (accuracy points) of fixed (k, d) vs \
                 GraphRARE's DRL ({}-RARE = {:.2}%)",
                backbone.name(),
                d.name(),
                backbone.name(),
                100.0 * rare_acc
            );
            println!("{}", table.render());
            let path = format!(
                "results/fig5_{}_{}.csv",
                backbone.name().to_lowercase(),
                d.name().to_lowercase()
            );
            table.write_csv(std::path::Path::new(&path)).expect("write csv");
        }
    }
    println!("CSV matrices written under results/fig5_*.csv");
}
