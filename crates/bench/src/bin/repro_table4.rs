//! Reproduces **Table IV**: the λ hyper-parameter sweep
//! ({0.1, 0.5, 1.0, 10.0}) weighting structural entropy in Eq. (9), for
//! the four GraphRARE-enhanced backbones on every dataset.

use graphrare::{run, GraphRareConfig};
use graphrare_bench::{mean, mean_std_pct, Budget, HarnessOptions, TextTable};
use graphrare_gnn::Backbone;

const LAMBDAS: [f64; 4] = [0.1, 0.5, 1.0, 10.0];

fn main() {
    let opts = HarnessOptions::from_args();
    let budget = Budget::default();
    let backbones = [Backbone::Gcn, Backbone::Sage, Backbone::Gat, Backbone::H2gcn];

    let mut table = TextTable::new(
        &std::iter::once("Method")
            .chain(std::iter::once("lambda"))
            .chain(opts.datasets.iter().map(|d| d.name()))
            .chain(std::iter::once("Average"))
            .collect::<Vec<_>>(),
    );

    for backbone in backbones {
        for lambda in LAMBDAS {
            let mut cells = vec![format!("{}-RARE", backbone.name()), format!("{lambda}")];
            let mut dataset_means = Vec::new();
            for d in &opts.datasets {
                let g = opts.graph(*d);
                let splits = opts.splits_for(&g);
                let accs: Vec<f64> = splits
                    .iter()
                    .enumerate()
                    .map(|(i, split)| {
                        let mut cfg = GraphRareConfig::default().with_seed(opts.seed + i as u64);
                        cfg.steps = budget.rare_steps;
                        cfg.train.epochs = budget.epochs;
                        cfg.train.patience = budget.patience;
                        cfg.entropy.lambda = lambda;
                        run(&g, split, backbone, &cfg).test_acc
                    })
                    .collect();
                graphrare_telemetry::progress!(
                    "{}-RARE lambda={lambda:<4} {:<10} {}",
                    backbone.name(),
                    d.name(),
                    mean_std_pct(&accs)
                );
                dataset_means.push(mean(&accs));
                cells.push(mean_std_pct(&accs));
            }
            cells.push(format!("{:.2}", 100.0 * mean(&dataset_means)));
            table.row(cells);
        }
    }

    println!(
        "\nTable IV — lambda sweep ({:?} scale, {} splits, seed {})\n",
        opts.scale, opts.splits, opts.seed
    );
    println!("{}", table.render());
    table.write_csv(std::path::Path::new("results/table4.csv")).expect("write csv");
    println!("CSV written to results/table4.csv");
}
