//! Reproduces **Figure 6**: the training process of GCN-RARE on Cornell —
//! (a) node-classification accuracy (min/mean/max over runs), (b) the
//! homophily ratio of the evolving topology, and (c) the mean episode
//! reward of the DRL module.

use graphrare_bench::{rare_report, Budget, HarnessOptions, TextTable};
use graphrare_datasets::Dataset;
use graphrare_gnn::Backbone;

fn main() {
    let mut opts = HarnessOptions::from_args();
    if opts.datasets.len() == Dataset::ALL.len() {
        opts.datasets = vec![Dataset::Cornell];
    }
    let budget = Budget { rare_steps: 48, ..Default::default() };
    let dataset = opts.datasets[0];
    let g = opts.graph(dataset);
    let splits = opts.splits_for(&g);

    let reports: Vec<_> = splits
        .iter()
        .enumerate()
        .map(|(i, s)| {
            graphrare_telemetry::progress!("run {i} ...");
            rare_report(Backbone::Gcn, &g, s, opts.seed + i as u64, &budget)
        })
        .collect();

    // (a) accuracy curve: min / mean / max across runs per step.
    let steps = reports[0].traces.val_acc.len();
    let mut acc_table = TextTable::new(&["step", "val_acc_min", "val_acc_mean", "val_acc_max"]);
    for t in 0..steps {
        let vals: Vec<f64> = reports.iter().map(|r| r.traces.val_acc[t]).collect();
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        acc_table.row(vec![
            t.to_string(),
            format!("{min:.4}"),
            format!("{mean:.4}"),
            format!("{max:.4}"),
        ]);
    }

    // (b) homophily-ratio curve (mean across runs).
    let mut hom_table = TextTable::new(&["step", "homophily_mean"]);
    for t in 0..steps {
        let mean: f64 =
            reports.iter().map(|r| r.traces.homophily[t]).sum::<f64>() / reports.len() as f64;
        hom_table.row(vec![t.to_string(), format!("{mean:.4}")]);
    }

    // (c) mean episode reward.
    let episodes = reports[0].traces.episode_rewards.len();
    let mut rew_table = TextTable::new(&["episode", "mean_reward"]);
    for e in 0..episodes {
        let mean: f64 = reports.iter().map(|r| r.traces.episode_rewards[e] as f64).sum::<f64>()
            / reports.len() as f64;
        rew_table.row(vec![e.to_string(), format!("{mean:+.4}")]);
    }

    println!(
        "\nFig. 6 — GCN-RARE training on {} ({:?} scale, {} runs)\n",
        dataset.name(),
        opts.scale,
        reports.len()
    );
    println!("(a) node classification accuracy per DRL step");
    println!("{}", acc_table.render());
    println!(
        "(b) homophily ratio of the evolving topology (original = {:.3})",
        reports[0].original_homophily
    );
    println!("{}", hom_table.render());
    println!("(c) mean episode reward of the DRL module");
    println!("{}", rew_table.render());

    acc_table.write_csv(std::path::Path::new("results/fig6a_accuracy.csv")).expect("csv");
    hom_table.write_csv(std::path::Path::new("results/fig6b_homophily.csv")).expect("csv");
    rew_table.write_csv(std::path::Path::new("results/fig6c_reward.csv")).expect("csv");
    println!("CSV written to results/fig6a_accuracy.csv, fig6b_homophily.csv, fig6c_reward.csv");
}
