//! Reproduces **Figure 7**: homophily ratios of the original graphs
//! versus the graphs optimised by the four GraphRARE models, on all seven
//! datasets.

use graphrare_bench::{mean, rare_report, Budget, HarnessOptions, TextTable};
use graphrare_gnn::Backbone;

fn main() {
    let opts = HarnessOptions::from_args();
    let budget = Budget::default();
    let backbones = [Backbone::Gcn, Backbone::Sage, Backbone::Gat, Backbone::H2gcn];

    let mut table = TextTable::new(
        &std::iter::once("Graph")
            .chain(opts.datasets.iter().map(|d| d.name()))
            .chain(std::iter::once("Avg lift"))
            .collect::<Vec<_>>(),
    );

    // Original homophily row.
    let mut originals = Vec::new();
    let mut row = vec!["Original".to_string()];
    for d in &opts.datasets {
        let g = opts.graph(*d);
        let h = graphrare_graph::metrics::homophily_ratio(&g);
        originals.push(h);
        row.push(format!("{h:.3}"));
    }
    row.push("-".to_string());
    table.row(row);

    for backbone in backbones {
        let mut row = vec![format!("{}-RARE", backbone.name())];
        let mut lifts = Vec::new();
        for (di, d) in opts.datasets.iter().enumerate() {
            let g = opts.graph(*d);
            let splits = opts.splits_for(&g);
            let hs: Vec<f64> = splits
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    rare_report(backbone, &g, s, opts.seed + i as u64, &budget).optimized_homophily
                })
                .collect();
            let h = mean(&hs);
            lifts.push(h - originals[di]);
            row.push(format!("{h:.3}"));
            graphrare_telemetry::progress!("{}-RARE on {} done", backbone.name(), d.name());
        }
        row.push(format!("{:+.3}", mean(&lifts)));
        table.row(row);
    }

    println!(
        "\nFig. 7 — homophily ratio: original vs optimised graphs ({:?} scale, {} splits)\n",
        opts.scale, opts.splits
    );
    println!("{}", table.render());
    table.write_csv(std::path::Path::new("results/fig7.csv")).expect("write csv");
    println!("CSV written to results/fig7.csv");
}
