//! Plain-text table rendering and CSV output for the repro harness.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple aligned text table with a header row.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}", w = *w);
            }
            out.push('\n');
        };
        write_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }

    /// Writes the table as CSV to `path`, creating parent directories.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut out = String::new();
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(&self.header.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        fs::write(path, out)
    }
}

/// Formats `mean ± std` of accuracies in percent, paper style.
pub fn mean_std_pct(values: &[f64]) -> String {
    if values.is_empty() {
        return "-".to_string();
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
    format!("{:.2}±{:.2}", 100.0 * mean, 100.0 * var.sqrt())
}

/// Mean of a slice (0 when empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(&["Method", "Acc"]);
        t.row(vec!["GCN".into(), "59.08".into()]);
        t.row(vec!["GraphSAGE-RARE".into(), "69.28".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("Method"));
        assert!(lines[2].starts_with("GCN "));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let dir = std::env::temp_dir().join("graphrare-table-test");
        let path = dir.join("t.csv");
        let mut t = TextTable::new(&["name", "note"]);
        t.row(vec!["a,b".into(), "plain".into()]);
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"a,b\""));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn mean_std_formatting() {
        assert_eq!(mean_std_pct(&[0.5, 0.5]), "50.00±0.00");
        assert_eq!(mean_std_pct(&[]), "-");
        let s = mean_std_pct(&[0.6, 0.8]);
        assert!(s.starts_with("70.00±"));
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
