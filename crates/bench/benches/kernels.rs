//! Criterion microbenchmarks of the workspace's hot kernels: the
//! quantities behind Table VI's runtime comparison (per-epoch GNN cost,
//! one-off entropy cost, per-step DRL cost, topology rebuild cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use graphrare::{EditMode, TopoState, TopologyOptimizer};
use graphrare_datasets::{generate_mini, Dataset};
use graphrare_entropy::{
    EntropySequences, RelativeEntropyConfig, RelativeEntropyTable, SequenceConfig,
};
use graphrare_gnn::{build_model, Backbone, GraphTensors, ModelConfig, TrainConfig, Trainer};
use graphrare_graph::ops;
use graphrare_rl::{GlobalPolicy, PpoAgent, PpoConfig, RolloutBuffer, ValueNet};
use graphrare_tensor::{parallel, Matrix};

fn bench_entropy(c: &mut Criterion) {
    let mut group = c.benchmark_group("entropy");
    for dataset in [Dataset::Cornell, Dataset::Wisconsin] {
        let g = generate_mini(dataset, 42);
        group.bench_with_input(
            BenchmarkId::new("relative_entropy_table", dataset.name()),
            &g,
            |b, g| {
                b.iter(|| RelativeEntropyTable::new(g, &RelativeEntropyConfig::default()));
            },
        );
        let table = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
        group.bench_with_input(BenchmarkId::new("sequence_build", dataset.name()), &g, |b, g| {
            b.iter(|| EntropySequences::build(g, &table, &SequenceConfig::default()));
        });
    }
    group.finish();
}

fn bench_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("propagation");
    let g = generate_mini(Dataset::Chameleon, 42);
    let a_hat = ops::gcn_norm(&g);
    let x = Matrix::from_fn(g.num_nodes(), 48, |r, c| ((r * 7 + c) % 13) as f32 * 0.1);
    group.bench_function("spmm_chameleon_48", |b| {
        b.iter(|| a_hat.spmm(&x));
    });
    group.bench_function("gcn_norm_build_chameleon", |b| {
        b.iter(|| ops::gcn_norm(&g));
    });
    group.bench_function("two_hop_build_chameleon", |b| {
        b.iter(|| ops::row_norm_two_hop(&g));
    });
    group.finish();
}

fn bench_gnn_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("gnn_epoch");
    group.sample_size(20);
    let g = generate_mini(Dataset::Cornell, 42);
    let gt = GraphTensors::new(&g);
    let labels = g.labels().to_vec();
    let mask: Vec<usize> = (0..g.num_nodes()).step_by(2).collect();
    for backbone in [Backbone::Gcn, Backbone::Sage, Backbone::Gat, Backbone::H2gcn] {
        let model = build_model(backbone, g.feat_dim(), g.num_classes(), &ModelConfig::default());
        let mut trainer = Trainer::new(model.as_ref(), &TrainConfig::default());
        group.bench_function(BenchmarkId::new("train_epoch", backbone.name()), |b| {
            b.iter(|| trainer.train_epoch(model.as_ref(), &gt, &labels, &mask));
        });
    }
    group.finish();
}

fn bench_ppo(c: &mut Criterion) {
    let mut group = c.benchmark_group("ppo");
    group.sample_size(20);
    let nodes = 180;
    let state_dim = 2 * nodes;
    let policy = GlobalPolicy::new(state_dim, 64, 2 * nodes, 0);
    let value = ValueNet::new(state_dim, 64, 1);
    let mut agent = PpoAgent::new(policy, value, PpoConfig::default());
    let state = vec![0.25f32; state_dim];
    group.bench_function("act_180_nodes", |b| {
        b.iter(|| agent.act(&state));
    });
    // A realistic 8-step buffer, as used by one update window.
    let mut buffer = RolloutBuffer::new();
    for t in 0..8 {
        let (actions, logp, v) = agent.act(&state);
        buffer.push(state.clone(), actions, logp, v, 0.01 * t as f32, t == 7);
    }
    group.bench_function("update_8_steps_180_nodes", |b| {
        b.iter(|| agent.update(&buffer, 0.0));
    });
    group.finish();
}

fn bench_topology(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology");
    let g = generate_mini(Dataset::Wisconsin, 42);
    let table = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
    let seqs = EntropySequences::build(&g, &table, &SequenceConfig::default());
    let topo = TopologyOptimizer::new(g.clone(), seqs, EditMode::Both);
    let mut state = TopoState::new(topo.k_bounds(10), topo.d_bounds(10));
    for v in 0..g.num_nodes() {
        state.set_k(v, 3);
        state.set_d(v, 1);
    }
    group.bench_function("materialize_wisconsin_k3_d1", |b| {
        b.iter(|| topo.materialize(&state));
    });
    let rewired = topo.materialize(&state);
    group.bench_function("graph_tensors_snapshot", |b| {
        b.iter(|| {
            let gt = GraphTensors::new(&rewired);
            gt.gcn_norm()
        });
    });
    group.finish();
}

/// Serial vs parallel runs of the kernels wired through
/// [`graphrare_tensor::parallel`]. Thread counts are forced with
/// `with_threads`, so the comparison is meaningful even when
/// `GRAPHRARE_THREADS` is set in the environment.
fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);
    let mut thread_counts = vec![1usize, 2, 4, parallel::available_threads()];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    let a = Matrix::from_fn(256, 256, |r, c| ((r * 31 + c * 7) % 17) as f32 * 0.1 - 0.8);
    let b = Matrix::from_fn(256, 256, |r, c| ((r * 13 + c * 3) % 19) as f32 * 0.1 - 0.9);
    for &t in &thread_counts {
        group.bench_function(BenchmarkId::new("matmul_256", t), |bch| {
            bch.iter(|| parallel::with_threads(t, || a.matmul(&b)));
        });
    }

    let g = generate_mini(Dataset::Chameleon, 42);
    let a_hat = ops::gcn_norm(&g);
    let x = Matrix::from_fn(g.num_nodes(), 48, |r, c| ((r * 7 + c) % 13) as f32 * 0.1);
    for &t in &thread_counts {
        group.bench_function(BenchmarkId::new("spmm_chameleon_48", t), |bch| {
            bch.iter(|| parallel::with_threads(t, || a_hat.spmm(&x)));
        });
    }

    let table = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
    for &t in &thread_counts {
        group.bench_function(BenchmarkId::new("sequence_build_chameleon", t), |bch| {
            bch.iter(|| {
                parallel::with_threads(t, || {
                    EntropySequences::build(&g, &table, &SequenceConfig::default())
                })
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_entropy,
    bench_propagation,
    bench_gnn_epoch,
    bench_ppo,
    bench_topology,
    bench_parallel
);
criterion_main!(benches);
