//! # graphrare-telemetry
//!
//! Zero-dependency (std-only) observability for the GraphRARE
//! workspace: lightweight spans with wall-clock timing, counters and
//! fixed-bucket histograms aggregated per span, and structured
//! training/kernel event streams with a stable, versioned JSONL
//! schema.
//!
//! ## Model
//!
//! * **Spans** ([`span`], [`SpanGuard`]) measure wall time with RAII
//!   guards, aggregate per name (count / total / min / max plus a
//!   duration histogram), and are **hierarchical**: a per-thread span
//!   stack gives every span a `span_id`/`parent_id` and a call *path*
//!   aggregated in per-path profiles with self time and exact
//!   reservoir-sampled p50/p90/p99 percentiles.
//! * **Counters** ([`counter`], [`gauge_max`]) are monotonic `u64`
//!   aggregates keyed by static names — the tensor runtime counts
//!   kernel calls, rows and threads through them.
//! * **Allocation accounting** ([`alloc`],
//!   [`install_counting_allocator!`]) is an opt-in counting
//!   `#[global_allocator]` wrapper; when a binary installs it, span
//!   paths carry allocation count/bytes/peak attribution.
//! * **Events** ([`Event`], [`emit_with`]) are structured records
//!   fanned out to pluggable [`Sink`]s: a human-readable stderr sink
//!   and a machine-readable JSONL sink with schema version
//!   [`SCHEMA_VERSION`]; completed spans emit `span` events consumed
//!   offline by the `graphrare-trace` CLI (flamegraphs, timelines,
//!   percentile tables, run diffs). Threads driving one of many
//!   multiplexed runs (the serving daemon) tag every event with a
//!   `run_id` via [`set_run_id`].
//! * The **registry** ([`registry`]) is global and thread-safe,
//!   controlled by the `GRAPHRARE_TELEMETRY` environment variable
//!   ([`init_from_env`]) or CLI flags, and costs one relaxed atomic
//!   load per instrumentation point while disabled. Its
//!   [`install_panic_hook`] flushes sinks on crashes so traces are
//!   never truncated mid-record.
//!
//! ## Contract
//!
//! Telemetry is strictly observational: enabling it must not change
//! any numeric result. Instrumentation only reads values the
//! computation already produced and never touches an RNG, so a run
//! with telemetry on is bit-identical to the same run with telemetry
//! off (asserted by `crates/core/tests/telemetry.rs`).

#![warn(missing_docs)]

pub mod alloc;
pub mod event;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod sink;

pub use alloc::{AllocSnapshot, CountingAlloc};
pub use event::{escape_json_str, Event, Value, SCHEMA_VERSION};
pub use metrics::{
    Histogram, MetricsStore, PathStats, PathSummary, Reservoir, SpanStats, SpanSummary, Summary,
};
pub use registry::{
    add_sink, clear_sinks, counter, current_run_id, emit, emit_with, enabled, flush, gauge_max,
    init_from_env, install_panic_hook, progress_args, quiet, record_span, reset, set_enabled,
    set_quiet, set_run_id, snapshot, span, SpanGuard, Stopwatch,
};
pub use sink::{JsonlSink, Sink, StderrSink, VecSink};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// The registry is process-global; tests that flip it on must not
    /// interleave.
    fn exclusive() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let _x = exclusive();
        set_enabled(false);
        reset();
        counter("test.disabled", 5);
        {
            let _span = span("test.disabled.span");
        }
        let s = snapshot();
        assert_eq!(s.counter("test.disabled"), 0);
        assert!(s.span("test.disabled.span").is_none());
    }

    #[test]
    fn enabled_registry_aggregates_counters_and_spans() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        counter("test.calls", 2);
        counter("test.calls", 3);
        gauge_max("test.max", 7);
        gauge_max("test.max", 4);
        {
            let _span = span("test.span");
            std::hint::black_box(());
        }
        record_span("test.span", 1_000);
        let s = snapshot();
        set_enabled(false);
        assert_eq!(s.counter("test.calls"), 5);
        assert_eq!(s.counter("test.max"), 7);
        let sp = s.span("test.span").unwrap();
        assert_eq!(sp.count, 2);
        assert!(sp.total_ns >= 1_000);
    }

    #[test]
    fn nested_spans_each_record_once() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        {
            let _outer = span("test.outer");
            {
                let _inner = span("test.inner");
            }
            {
                let _inner = span("test.inner");
            }
        }
        let s = snapshot();
        set_enabled(false);
        assert_eq!(s.span("test.outer").unwrap().count, 1);
        assert_eq!(s.span("test.inner").unwrap().count, 2);
        // The outer span covers both inner spans.
        assert!(
            s.span("test.outer").unwrap().total_ns >= s.span("test.inner").unwrap().total_ns,
            "outer shorter than the inners it encloses"
        );
    }

    #[test]
    fn events_reach_installed_sinks_only_while_enabled() {
        let _x = exclusive();
        set_enabled(false);
        reset();
        clear_sinks();
        let (sink, events) = VecSink::new();
        add_sink(Box::new(sink));
        emit_with(|| Event::new("dropped"));
        set_enabled(true);
        emit_with(|| Event::new("kept").u64("n", 1));
        set_enabled(false);
        clear_sinks();
        let events = events.lock().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind(), "kept");
    }

    #[test]
    fn stopwatch_reads_zero_while_disabled() {
        let _x = exclusive();
        set_enabled(false);
        let mut sw = Stopwatch::start();
        assert_eq!(sw.ns(), 0);
        assert_eq!(sw.lap_ns(), 0);
        set_enabled(true);
        let sw = Stopwatch::start();
        set_enabled(false);
        // Enabled at construction: the clock is live regardless of the
        // flag afterwards.
        let _ = sw.ns();
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..250 {
                        counter("test.concurrent", 1);
                    }
                });
            }
        });
        let s = snapshot();
        set_enabled(false);
        assert_eq!(s.counter("test.concurrent"), 1000);
    }

    #[test]
    fn jsonl_sink_writes_validatable_lines() {
        let _x = exclusive();
        set_enabled(false);
        reset();
        clear_sinks();
        let path = std::env::temp_dir().join("graphrare-telemetry-unit.jsonl");
        add_sink(Box::new(JsonlSink::create(&path).unwrap()));
        set_enabled(true);
        emit_with(|| Event::new("a").u64("x", 1));
        emit_with(|| Event::new("b").f64("y", -0.5).str("s", "multi\nline"));
        set_enabled(false);
        clear_sinks();
        let n = json::validate_jsonl_file(&path).unwrap();
        assert_eq!(n, 2);
        let _ = std::fs::remove_file(path);
    }

    fn event_u64(e: &Event, key: &str) -> Option<u64> {
        match e.field(key) {
            Some(Value::U64(n)) => Some(*n),
            _ => None,
        }
    }

    fn event_str<'e>(e: &'e Event, key: &str) -> Option<&'e str> {
        match e.field(key) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    #[test]
    fn nested_guards_build_paths_self_time_and_span_events() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        clear_sinks();
        let (sink, events) = VecSink::new();
        add_sink(Box::new(sink));
        {
            let _root = span("test.h.root");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _child = span("test.h.child");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            // A self-measured duration counts as a child of the open span.
            record_span("test.h.direct", 500);
        }
        let s = snapshot();
        set_enabled(false);
        clear_sinks();

        let root = s.path("test.h.root").expect("root path recorded");
        let child = s.path("test.h.root/test.h.child").expect("child path recorded");
        let direct = s.path("test.h.root/test.h.direct").expect("direct path recorded");
        assert_eq!((root.count, child.count, direct.count), (1, 1, 1));
        assert!(root.total_ns >= child.total_ns, "parent covers its child");
        // Self time excludes both the nested guard and the direct span.
        assert!(
            root.self_ns <= root.total_ns - child.total_ns - 500,
            "self {} vs total {} child {}",
            root.self_ns,
            root.total_ns,
            child.total_ns
        );
        assert_eq!(direct.self_ns, 500);
        // One observation: the percentiles are that observation, exactly.
        assert_eq!(child.p50_ns, child.total_ns);
        assert_eq!(child.p99_ns, child.total_ns);
        assert_eq!(child.sampled, 1);
        assert_eq!(s.paths_named("test.h.child").count(), 1);

        let events = events.lock().unwrap();
        let spans: Vec<&Event> = events.iter().filter(|e| e.kind() == "span").collect();
        assert_eq!(spans.len(), 3, "one span event per completed span");
        // Children complete (and emit) before their parent.
        assert_eq!(event_str(spans[0], "name"), Some("test.h.child"));
        assert_eq!(event_str(spans[1], "name"), Some("test.h.direct"));
        assert_eq!(event_str(spans[2], "name"), Some("test.h.root"));
        let root_id = event_u64(spans[2], "span_id").unwrap();
        assert!(root_id > 0);
        assert_eq!(event_u64(spans[2], "parent_id"), None, "roots omit parent_id");
        assert_eq!(event_u64(spans[0], "parent_id"), Some(root_id));
        assert_eq!(event_u64(spans[1], "parent_id"), Some(root_id));
        assert_eq!(event_str(spans[0], "path"), Some("test.h.root/test.h.child"));
        for e in &spans {
            assert!(event_u64(e, "ns").is_some());
            assert!(event_u64(e, "self_ns").is_some());
            assert!(event_u64(e, "start_ns").is_some());
            assert!(json::validate_event_line(&e.to_json_line()).is_ok());
        }
        // Sibling roots opened later get fresh root paths.
        assert!(s.path("test.h.child").is_none(), "child must not appear as a root path");
    }

    #[test]
    fn run_id_tags_events_and_spans_per_thread() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        clear_sinks();
        let (sink, events) = VecSink::new();
        add_sink(Box::new(sink));
        assert_eq!(current_run_id(), None);
        set_run_id(Some(42));
        assert_eq!(current_run_id(), Some(42));
        emit_with(|| Event::new("tagged").u64("n", 1));
        {
            let _s = span("test.run.tagged");
        }
        record_span("test.run.direct", 10);
        // Another thread is untagged: run ids never leak across workers.
        std::thread::scope(|scope| {
            scope.spawn(|| {
                assert_eq!(current_run_id(), None);
                emit_with(|| Event::new("untagged"));
            });
        });
        set_run_id(None);
        emit_with(|| Event::new("cleared"));
        set_enabled(false);
        clear_sinks();
        let events = events.lock().unwrap();
        let run_of = |kind: &str| {
            events.iter().find(|e| e.kind() == kind).and_then(|e| event_u64(e, "run_id"))
        };
        assert_eq!(run_of("tagged"), Some(42));
        assert_eq!(run_of("span"), Some(42), "span events carry the worker's run_id");
        assert_eq!(run_of("untagged"), None);
        assert_eq!(run_of("cleared"), None);
        for e in events.iter() {
            assert!(json::validate_event_line(&e.to_json_line()).is_ok());
        }
    }

    #[test]
    fn sequential_roots_do_not_nest() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        {
            let _a = span("test.seq.a");
        }
        {
            let _b = span("test.seq.b");
        }
        let s = snapshot();
        set_enabled(false);
        assert!(s.path("test.seq.a").is_some());
        assert!(s.path("test.seq.b").is_some(), "closed roots must not parent later spans");
        assert!(s.path("test.seq.a/test.seq.b").is_none());
    }

    #[test]
    fn panic_hook_flushes_buffered_sink_and_records_the_panic() {
        let _x = exclusive();
        set_enabled(false);
        reset();
        clear_sinks();
        install_panic_hook();
        let path = std::env::temp_dir().join("graphrare-telemetry-panic.jsonl");
        add_sink(Box::new(JsonlSink::create(&path).unwrap()));
        set_enabled(true);
        let result = std::panic::catch_unwind(|| {
            emit_with(|| Event::new("before_crash").u64("x", 1));
            panic!("induced panic for telemetry test");
        });
        assert!(result.is_err());
        set_enabled(false);
        // No explicit flush: only the panic hook can have drained the
        // BufWriter. Drop the sink without flushing again.
        with_sinks_cleared_unflushed();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"event\":\"before_crash\""), "pre-panic event lost: {text:?}");
        assert!(text.contains("\"event\":\"panic\""), "panic event missing: {text:?}");
        assert!(text.contains("induced panic for telemetry test"));
        assert!(text.ends_with('\n'), "stream truncated mid-record");
        let _ = std::fs::remove_file(path);
    }

    /// Drops all sinks without flushing them first (the panic-hook test
    /// must prove the *hook* flushed, not `clear_sinks`). `JsonlSink`'s
    /// `BufWriter` flushes on drop, so swap the sinks out and leak them.
    fn with_sinks_cleared_unflushed() {
        let sinks: Vec<Box<dyn Sink>> = Vec::new();
        let old = registry_swap_sinks(sinks);
        std::mem::forget(old);
    }

    fn registry_swap_sinks(new: Vec<Box<dyn Sink>>) -> Vec<Box<dyn Sink>> {
        registry::swap_sinks_for_tests(new)
    }
}
