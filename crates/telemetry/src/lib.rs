//! # graphrare-telemetry
//!
//! Zero-dependency (std-only) observability for the GraphRARE
//! workspace: lightweight spans with wall-clock timing, counters and
//! fixed-bucket histograms aggregated per span, and structured
//! training/kernel event streams with a stable, versioned JSONL
//! schema.
//!
//! ## Model
//!
//! * **Spans** ([`span`], [`SpanGuard`]) measure wall time with RAII
//!   guards and aggregate per name (count / total / min / max plus a
//!   duration histogram).
//! * **Counters** ([`counter`], [`gauge_max`]) are monotonic `u64`
//!   aggregates keyed by static names — the tensor runtime counts
//!   kernel calls, rows and threads through them.
//! * **Events** ([`Event`], [`emit_with`]) are structured records
//!   fanned out to pluggable [`Sink`]s: a human-readable stderr sink
//!   and a machine-readable JSONL sink with schema version
//!   [`SCHEMA_VERSION`].
//! * The **registry** ([`registry`]) is global and thread-safe,
//!   controlled by the `GRAPHRARE_TELEMETRY` environment variable
//!   ([`init_from_env`]) or CLI flags, and costs one relaxed atomic
//!   load per instrumentation point while disabled.
//!
//! ## Contract
//!
//! Telemetry is strictly observational: enabling it must not change
//! any numeric result. Instrumentation only reads values the
//! computation already produced and never touches an RNG, so a run
//! with telemetry on is bit-identical to the same run with telemetry
//! off (asserted by `crates/core/tests/telemetry.rs`).

#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod sink;

pub use event::{escape_json_str, Event, Value, SCHEMA_VERSION};
pub use metrics::{Histogram, MetricsStore, SpanStats, SpanSummary, Summary};
pub use registry::{
    add_sink, clear_sinks, counter, emit, emit_with, enabled, flush, gauge_max, init_from_env,
    progress_args, quiet, record_span, reset, set_enabled, set_quiet, snapshot, span, SpanGuard,
    Stopwatch,
};
pub use sink::{JsonlSink, Sink, StderrSink, VecSink};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// The registry is process-global; tests that flip it on must not
    /// interleave.
    fn exclusive() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let _x = exclusive();
        set_enabled(false);
        reset();
        counter("test.disabled", 5);
        {
            let _span = span("test.disabled.span");
        }
        let s = snapshot();
        assert_eq!(s.counter("test.disabled"), 0);
        assert!(s.span("test.disabled.span").is_none());
    }

    #[test]
    fn enabled_registry_aggregates_counters_and_spans() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        counter("test.calls", 2);
        counter("test.calls", 3);
        gauge_max("test.max", 7);
        gauge_max("test.max", 4);
        {
            let _span = span("test.span");
            std::hint::black_box(());
        }
        record_span("test.span", 1_000);
        let s = snapshot();
        set_enabled(false);
        assert_eq!(s.counter("test.calls"), 5);
        assert_eq!(s.counter("test.max"), 7);
        let sp = s.span("test.span").unwrap();
        assert_eq!(sp.count, 2);
        assert!(sp.total_ns >= 1_000);
    }

    #[test]
    fn nested_spans_each_record_once() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        {
            let _outer = span("test.outer");
            {
                let _inner = span("test.inner");
            }
            {
                let _inner = span("test.inner");
            }
        }
        let s = snapshot();
        set_enabled(false);
        assert_eq!(s.span("test.outer").unwrap().count, 1);
        assert_eq!(s.span("test.inner").unwrap().count, 2);
        // The outer span covers both inner spans.
        assert!(
            s.span("test.outer").unwrap().total_ns >= s.span("test.inner").unwrap().total_ns,
            "outer shorter than the inners it encloses"
        );
    }

    #[test]
    fn events_reach_installed_sinks_only_while_enabled() {
        let _x = exclusive();
        set_enabled(false);
        reset();
        clear_sinks();
        let (sink, events) = VecSink::new();
        add_sink(Box::new(sink));
        emit_with(|| Event::new("dropped"));
        set_enabled(true);
        emit_with(|| Event::new("kept").u64("n", 1));
        set_enabled(false);
        clear_sinks();
        let events = events.lock().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind(), "kept");
    }

    #[test]
    fn stopwatch_reads_zero_while_disabled() {
        let _x = exclusive();
        set_enabled(false);
        let mut sw = Stopwatch::start();
        assert_eq!(sw.ns(), 0);
        assert_eq!(sw.lap_ns(), 0);
        set_enabled(true);
        let sw = Stopwatch::start();
        set_enabled(false);
        // Enabled at construction: the clock is live regardless of the
        // flag afterwards.
        let _ = sw.ns();
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..250 {
                        counter("test.concurrent", 1);
                    }
                });
            }
        });
        let s = snapshot();
        set_enabled(false);
        assert_eq!(s.counter("test.concurrent"), 1000);
    }

    #[test]
    fn jsonl_sink_writes_validatable_lines() {
        let _x = exclusive();
        set_enabled(false);
        reset();
        clear_sinks();
        let path = std::env::temp_dir().join("graphrare-telemetry-unit.jsonl");
        add_sink(Box::new(JsonlSink::create(&path).unwrap()));
        set_enabled(true);
        emit_with(|| Event::new("a").u64("x", 1));
        emit_with(|| Event::new("b").f64("y", -0.5).str("s", "multi\nline"));
        set_enabled(false);
        clear_sinks();
        let n = json::validate_jsonl_file(&path).unwrap();
        assert_eq!(n, 2);
        let _ = std::fs::remove_file(path);
    }
}
