//! The structured event schema emitted to telemetry sinks.
//!
//! Every event serialises to one JSON object per line (JSONL). The
//! schema is versioned: each line carries `"v"` ([`SCHEMA_VERSION`])
//! and an `"event"` discriminator, followed by flat key/value fields.
//! Consumers must ignore unknown keys; producers may add keys but
//! never remove or retype existing ones within a schema version.

use std::fmt::Write as _;

/// Version stamped into every JSONL line as the `"v"` field.
///
/// Bump only when an existing key is removed or changes type; adding
/// keys or event kinds is backwards-compatible within a version.
///
/// History: v1 — flat events (`iter`, `run_end`, `entropy_*`, …);
/// v2 — adds the hierarchical `span` event (`span_id`, optional
/// `parent_id`, `path`, `ns`, `self_ns`, `start_ns`, optional
/// `alloc_n`/`alloc_bytes`); v3 — adds the optional `run_id` field on
/// every event kind, tagging events of a run multiplexed through the
/// serving daemon. Consumers accept all three.
pub const SCHEMA_VERSION: u32 = 3;

/// A single telemetry field value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer (counters, sizes, step indices).
    U64(u64),
    /// Signed integer (deltas).
    I64(i64),
    /// Floating-point metric. Non-finite values serialise as `null`.
    F64(f64),
    /// Short string (names, phases).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

/// One structured telemetry event: a kind plus flat key/value fields.
///
/// Built with the chainable setters and serialised with
/// [`Event::to_json_line`]; construction is only worth paying for when
/// telemetry is enabled, so call sites go through
/// [`crate::emit_with`], which skips the builder closure entirely when
/// the registry is off.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    kind: &'static str,
    fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Starts an event of the given kind (e.g. `"iter"`).
    pub fn new(kind: &'static str) -> Self {
        Self { kind, fields: Vec::new() }
    }

    /// The event kind.
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// The fields in insertion order.
    pub fn fields(&self) -> &[(&'static str, Value)] {
        &self.fields
    }

    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Adds an unsigned-integer field.
    pub fn u64(mut self, key: &'static str, value: u64) -> Self {
        self.fields.push((key, Value::U64(value)));
        self
    }

    /// Adds a signed-integer field.
    pub fn i64(mut self, key: &'static str, value: i64) -> Self {
        self.fields.push((key, Value::I64(value)));
        self
    }

    /// Adds a floating-point field.
    pub fn f64(mut self, key: &'static str, value: f64) -> Self {
        self.fields.push((key, Value::F64(value)));
        self
    }

    /// Adds a string field.
    pub fn str(mut self, key: &'static str, value: impl Into<String>) -> Self {
        self.fields.push((key, Value::Str(value.into())));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &'static str, value: bool) -> Self {
        self.fields.push((key, Value::Bool(value)));
        self
    }

    /// Serialises the event as one JSONL line (no trailing newline):
    /// `{"v":3,"event":"<kind>",...fields...}`.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64 + 16 * self.fields.len());
        let _ = write!(out, "{{\"v\":{SCHEMA_VERSION},\"event\":");
        escape_json_str(self.kind, &mut out);
        for (key, value) in &self.fields {
            out.push(',');
            escape_json_str(key, &mut out);
            out.push(':');
            match value {
                Value::U64(n) => {
                    let _ = write!(out, "{n}");
                }
                Value::I64(n) => {
                    let _ = write!(out, "{n}");
                }
                Value::F64(x) if x.is_finite() => {
                    let _ = write!(out, "{x}");
                }
                Value::F64(_) => out.push_str("null"),
                Value::Str(s) => escape_json_str(s, &mut out),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            }
        }
        out.push('}');
        out
    }
}

/// Appends `s` as a JSON string literal (quoted, escaped) to `out`.
/// Public so ad-hoc JSON writers (e.g. the bench harness) can share the
/// event encoder's escaping rules.
pub fn escape_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_is_stable() {
        // Golden encoding: pins the field order, version stamp and
        // number formatting of the current schema.
        let e = Event::new("iter")
            .u64("step", 3)
            .f64("reward", 0.5)
            .i64("edge_delta", -2)
            .bool("finetuned", true)
            .str("phase", "drl");
        assert_eq!(
            e.to_json_line(),
            "{\"v\":3,\"event\":\"iter\",\"step\":3,\"reward\":0.5,\
             \"edge_delta\":-2,\"finetuned\":true,\"phase\":\"drl\"}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let e = Event::new("x").f64("nan", f64::NAN).f64("inf", f64::INFINITY);
        assert_eq!(e.to_json_line(), "{\"v\":3,\"event\":\"x\",\"nan\":null,\"inf\":null}");
    }

    #[test]
    fn strings_are_escaped() {
        let e = Event::new("x").str("s", "a\"b\\c\nd\u{1}");
        assert_eq!(e.to_json_line(), "{\"v\":3,\"event\":\"x\",\"s\":\"a\\\"b\\\\c\\nd\\u0001\"}");
    }

    #[test]
    fn field_lookup_finds_values() {
        let e = Event::new("x").u64("a", 1).f64("b", 2.0);
        assert_eq!(e.field("a"), Some(&Value::U64(1)));
        assert_eq!(e.field("b"), Some(&Value::F64(2.0)));
        assert_eq!(e.field("c"), None);
        assert_eq!(e.kind(), "x");
    }

    #[test]
    fn floats_round_trip_shortest() {
        // Rust's `{}` float Display prints the shortest representation
        // that round-trips; pin a couple of awkward values.
        let e = Event::new("x").f64("a", 0.1).f64("b", 1.0 / 3.0);
        let line = e.to_json_line();
        assert!(line.contains("\"a\":0.1,"), "{line}");
        assert!(line.contains("\"b\":0.3333333333333333}"), "{line}");
    }
}
