//! Minimal recursive-descent JSON parser.
//!
//! Exists so the JSONL event stream can be validated — by the golden
//! schema tests, the `telemetry_lint` tool and the `scripts/check.sh`
//! smoke gate — without pulling a serde stack into the offline build.
//! It accepts exactly RFC 8259 JSON; numbers are parsed as `f64`, which
//! is lossless for every integer the schema emits (all well below
//! 2^53).

use std::path::Path;

use crate::event::SCHEMA_VERSION;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, preserving key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one complete JSON document, rejecting trailing garbage.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: decode when a low half
                            // follows; lone surrogates are rejected.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + low.checked_sub(0xDC00).ok_or("bad surrogate pair")?;
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or("invalid \\u escape")?);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control character at byte {}", self.pos))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or("truncated \\u escape")?;
        let hex = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|e| e.to_string())?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

/// Schema versions a consumer accepts: v1 (flat events), v2 (adds the
/// hierarchical `span` event) and v3 (adds the optional `run_id`
/// tag). See [`SCHEMA_VERSION`] history.
pub const ACCEPTED_VERSIONS: [u32; 3] = [1, 2, SCHEMA_VERSION];

/// Reads a field as a non-negative integer (the schema emits all ids,
/// counts and durations as u64, well below 2^53).
fn get_u64(value: &Json, key: &str) -> Option<u64> {
    let x = value.get(key)?.as_f64()?;
    (x.is_finite() && x >= 0.0 && x.fract() == 0.0).then_some(x as u64)
}

/// Validates one JSONL event line: parses it, checks it is an object
/// carrying an accepted `"v"` schema version and an `"event"` string,
/// checks the optional v3 `run_id` tag (when present it must be a
/// positive integer on any event kind), and — for `span` events —
/// checks the required span fields (`name`, `span_id`, `path`, `ns`;
/// `parent_id` when present must be a positive integer).
pub fn validate_event_line(line: &str) -> Result<Json, String> {
    let value = parse(line)?;
    match value.get("v").and_then(Json::as_f64) {
        Some(v) if ACCEPTED_VERSIONS.iter().any(|&a| v == a as f64) => {}
        Some(v) => return Err(format!("schema version {v} not in {ACCEPTED_VERSIONS:?}")),
        None => return Err("missing \"v\" schema-version field".into()),
    }
    let kind = match value.get("event").and_then(Json::as_str) {
        Some(kind) => kind,
        None => return Err("missing \"event\" kind field".into()),
    };
    if value.get("run_id").is_some() && get_u64(&value, "run_id").is_none_or(|r| r == 0) {
        return Err("\"run_id\" must be a positive integer".into());
    }
    if kind == "span" {
        if value.get("name").and_then(Json::as_str).is_none() {
            return Err("span event: missing string \"name\"".into());
        }
        match get_u64(&value, "span_id") {
            Some(id) if id > 0 => {}
            Some(_) => return Err("span event: \"span_id\" must be positive".into()),
            None => return Err("span event: missing integer \"span_id\"".into()),
        }
        if value.get("parent_id").is_some() && get_u64(&value, "parent_id").is_none_or(|p| p == 0) {
            return Err("span event: \"parent_id\" must be a positive integer".into());
        }
        if value.get("path").and_then(Json::as_str).is_none() {
            return Err("span event: missing string \"path\"".into());
        }
        if get_u64(&value, "ns").is_none() {
            return Err("span event: missing integer \"ns\"".into());
        }
    }
    Ok(value)
}

/// Validates a whole JSONL event stream (already split into parsed
/// lines by [`validate_jsonl_file`]): every `parent_id` must refer to a
/// `span_id` that appears somewhere in the stream. Children drop (and
/// therefore emit) before their parents, so a truncated trace — parent
/// never emitted — is detected here as an orphaned parent id.
pub fn validate_span_stream(events: &[Json]) -> Result<(), String> {
    let mut ids = std::collections::BTreeSet::new();
    for e in events {
        if e.get("event").and_then(Json::as_str) == Some("span") {
            ids.extend(get_u64(e, "span_id"));
        }
    }
    for (idx, e) in events.iter().enumerate() {
        if e.get("event").and_then(Json::as_str) != Some("span") {
            continue;
        }
        if let Some(parent) = get_u64(e, "parent_id") {
            if !ids.contains(&parent) {
                return Err(format!(
                    "line {}: orphaned parent_id {parent} (no such span_id in stream)",
                    idx + 1
                ));
            }
        }
    }
    Ok(())
}

/// Validates a whole JSONL file — every line an accepted event, no
/// blank lines, no orphaned span parent ids — and returns the number
/// of events, or the first offending line's error.
pub fn validate_jsonl_file(path: &Path) -> Result<usize, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        events.push(validate_event_line(line).map_err(|e| format!("line {}: {e}", idx + 1))?);
    }
    if events.is_empty() {
        return Err(format!("{}: no events", path.display()));
    }
    validate_span_stream(&events)?;
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(parse(" \"a\\nb\" ").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": false}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        match v.get("a").unwrap() {
            Json::Arr(items) => {
                assert_eq!(items[0], Json::Num(1.0));
                assert_eq!(items[1].get("b"), Some(&Json::Bool(false)));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "{\"a\":}", "[1,]", "\"unterminated", "1 2", "{'a':1}", ""] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""é😀""#).unwrap(), Json::Str("é😀".into()));
        assert!(parse(r#""\ud800""#).is_err(), "lone surrogate accepted");
    }

    #[test]
    fn event_lines_round_trip_through_the_parser() {
        let line = Event::new("iter")
            .u64("step", 7)
            .f64("reward", -0.125)
            .str("phase", "a\"b")
            .to_json_line();
        let v = validate_event_line(&line).unwrap();
        assert_eq!(v.get("event").and_then(Json::as_str), Some("iter"));
        assert_eq!(v.get("step").and_then(Json::as_f64), Some(7.0));
        assert_eq!(v.get("reward").and_then(Json::as_f64), Some(-0.125));
        assert_eq!(v.get("phase").and_then(Json::as_str), Some("a\"b"));
    }

    #[test]
    fn validate_rejects_wrong_version_and_missing_kind() {
        assert!(validate_event_line("{\"v\":999,\"event\":\"x\"}").is_err());
        assert!(validate_event_line("{\"event\":\"x\"}").is_err());
        assert!(validate_event_line("{\"v\":1}").is_err());
        assert!(validate_event_line("not json").is_err());
    }

    #[test]
    fn validate_accepts_all_schema_versions() {
        assert!(validate_event_line("{\"v\":1,\"event\":\"iter\",\"step\":3}").is_ok());
        assert!(validate_event_line("{\"v\":2,\"event\":\"iter\",\"step\":3}").is_ok());
        assert!(validate_event_line("{\"v\":3,\"event\":\"iter\",\"step\":3}").is_ok());
    }

    #[test]
    fn validate_checks_run_id_tags() {
        assert!(validate_event_line("{\"v\":3,\"event\":\"iter\",\"run_id\":7}").is_ok());
        let span = "{\"v\":3,\"event\":\"span\",\"name\":\"a\",\"span_id\":1,\
                    \"path\":\"a\",\"ns\":1,\"run_id\":2}";
        assert!(validate_event_line(span).is_ok());
        for (bad, why) in [
            ("{\"v\":3,\"event\":\"iter\",\"run_id\":0}", "zero run_id"),
            ("{\"v\":3,\"event\":\"iter\",\"run_id\":1.5}", "fractional run_id"),
            ("{\"v\":3,\"event\":\"iter\",\"run_id\":\"x\"}", "string run_id"),
            ("{\"v\":3,\"event\":\"iter\",\"run_id\":-1}", "negative run_id"),
        ] {
            assert!(validate_event_line(bad).is_err(), "accepted event with {why}");
        }
    }

    #[test]
    fn validate_checks_span_event_fields() {
        let ok = "{\"v\":2,\"event\":\"span\",\"name\":\"a\",\"span_id\":3,\
                  \"parent_id\":1,\"path\":\"r/a\",\"ns\":42,\"self_ns\":42,\"start_ns\":7}";
        assert!(validate_event_line(ok).is_ok());
        let root = "{\"v\":2,\"event\":\"span\",\"name\":\"r\",\"span_id\":1,\
                    \"path\":\"r\",\"ns\":100}";
        assert!(validate_event_line(root).is_ok(), "parent_id is optional for roots");
        for (bad, why) in [
            ("{\"v\":2,\"event\":\"span\",\"span_id\":1,\"path\":\"a\",\"ns\":1}", "no name"),
            ("{\"v\":2,\"event\":\"span\",\"name\":\"a\",\"path\":\"a\",\"ns\":1}", "no span_id"),
            (
                "{\"v\":2,\"event\":\"span\",\"name\":\"a\",\"span_id\":0,\"path\":\"a\",\"ns\":1}",
                "zero span_id",
            ),
            ("{\"v\":2,\"event\":\"span\",\"name\":\"a\",\"span_id\":1,\"ns\":1}", "no path"),
            ("{\"v\":2,\"event\":\"span\",\"name\":\"a\",\"span_id\":1,\"path\":\"a\"}", "no ns"),
            (
                "{\"v\":2,\"event\":\"span\",\"name\":\"a\",\"span_id\":1,\
                 \"parent_id\":1.5,\"path\":\"a\",\"ns\":1}",
                "fractional parent_id",
            ),
        ] {
            assert!(validate_event_line(bad).is_err(), "accepted span with {why}");
        }
    }

    #[test]
    fn span_stream_validation_rejects_orphans() {
        let parse_all = |lines: &[&str]| -> Vec<Json> {
            lines.iter().map(|l| validate_event_line(l).unwrap()).collect()
        };
        let complete = parse_all(&[
            "{\"v\":2,\"event\":\"span\",\"name\":\"b\",\"span_id\":2,\
             \"parent_id\":1,\"path\":\"a/b\",\"ns\":5}",
            "{\"v\":2,\"event\":\"span\",\"name\":\"a\",\"span_id\":1,\"path\":\"a\",\"ns\":9}",
            "{\"v\":2,\"event\":\"run_end\",\"steps\":1}",
        ]);
        assert!(validate_span_stream(&complete).is_ok());
        // Truncated trace: the parent span never emitted (still open at
        // the crash), so its id appears only as a parent_id.
        let truncated = parse_all(&["{\"v\":2,\"event\":\"span\",\"name\":\"b\",\"span_id\":2,\
             \"parent_id\":1,\"path\":\"a/b\",\"ns\":5}"]);
        let err = validate_span_stream(&truncated).unwrap_err();
        assert!(err.contains("orphaned parent_id 1"), "{err}");
    }
}
