//! The global, thread-safe telemetry registry.
//!
//! One process-wide registry aggregates counters and spans and fans
//! events out to the installed sinks. It is **off by default**: every
//! recording entry point first checks a relaxed atomic flag and
//! returns immediately when disabled, so instrumentation in hot
//! kernels costs one predictable branch. Enabling telemetry only adds
//! observation — it never touches RNG streams, accumulation order or
//! any other numeric state, so results are bit-identical with
//! telemetry on or off.
//!
//! Spans are **hierarchical**: each thread keeps a stack of open
//! spans, so a [`SpanGuard`] knows its parent and its call *path*
//! (`driver.run/driver.step/rewire.apply`). On drop it folds wall time
//! into both the flat per-name aggregate and the per-path profile
//! (with *self time* — wall time minus enclosed children — exact
//! reservoir percentiles, and allocation deltas from [`crate::alloc`]
//! when the counting allocator is installed), and emits a schema-v2
//! `span` event carrying `span_id`/`parent_id`/`path` for offline
//! analysis by `graphrare-trace`.
//!
//! Control surface:
//! * programmatic — [`set_enabled`], [`add_sink`], [`reset`];
//! * environment — [`init_from_env`] reads `GRAPHRARE_TELEMETRY`
//!   (`0`/unset = off, `1` = aggregate only, `stderr` = aggregate +
//!   human-readable progress sink, anything else = path of a JSONL
//!   event file);
//! * CLI — the `graphrare` binary maps `--telemetry` /
//!   `--telemetry-out PATH` onto the same calls.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

use crate::alloc::{self, AllocSnapshot};
use crate::event::Event;
use crate::metrics::{MetricsStore, Summary};
use crate::sink::{JsonlSink, Sink, StderrSink};

/// Fast-path gate; all recording is skipped while this is `false`.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Gate for the human-readable progress stream (`progress!`).
static QUIET: AtomicBool = AtomicBool::new(false);

/// Process-wide span id allocator; ids are unique within a process and
/// strictly positive (0 is reserved for "no span").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

struct State {
    metrics: MetricsStore,
    sinks: Vec<Box<dyn Sink>>,
}

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(State { metrics: MetricsStore::default(), sinks: Vec::new() }))
}

fn with_state<R>(f: impl FnOnce(&mut State) -> R) -> R {
    // A poisoned mutex means a panic mid-record; telemetry is
    // best-effort, so keep serving the remaining threads.
    let mut guard = state().lock().unwrap_or_else(|p| p.into_inner());
    f(&mut guard)
}

/// The process trace epoch: all `start_ns` offsets in span events are
/// relative to this instant (first telemetry touch), which lets the
/// offline timeline order spans without wall-clock timestamps.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// One open span on the current thread's stack.
struct Frame {
    span_id: u64,
    parent_id: Option<u64>,
    path: String,
    /// Wall time already consumed by completed child spans; the span's
    /// self time is its own wall time minus this.
    child_ns: u64,
    start_offset_ns: u64,
    alloc_start: AllocSnapshot,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };

    /// The run this thread's events belong to, when it executes one of
    /// many multiplexed runs (the serving daemon sets it per worker).
    static RUN_ID: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Tags every event emitted from this thread with `run_id` (schema-v3
/// optional field), or clears the tag with `None`. Scoped to the
/// calling thread: a daemon worker sets it once before driving a run
/// so multiplexed JSONL streams stay separable per run.
pub fn set_run_id(id: Option<u64>) {
    RUN_ID.with(|cell| cell.set(id));
}

/// The calling thread's run tag, if any. Reads `None` once the
/// thread-local has been torn down (the panic hook may fire during
/// thread exit), so tagging never aborts a crashing process.
pub fn current_run_id() -> Option<u64> {
    RUN_ID.try_with(Cell::get).unwrap_or(None)
}

/// Appends the thread's `run_id` field when a run tag is set.
fn tag_run(event: Event) -> Event {
    match current_run_id() {
        Some(id) => event.u64("run_id", id),
        None => event,
    }
}

/// Whether telemetry recording is on. One relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns telemetry recording on or off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the human-readable progress stream is suppressed.
#[inline]
pub fn quiet() -> bool {
    QUIET.load(Ordering::Relaxed)
}

/// Suppresses (or restores) the progress stream; the CLI's `--quiet`.
pub fn set_quiet(on: bool) {
    QUIET.store(on, Ordering::Relaxed);
}

/// Configures the registry from `GRAPHRARE_TELEMETRY`:
/// unset/empty/`0` leaves it off; `1` enables aggregation; `stderr`
/// additionally installs the human-readable sink; any other value is
/// treated as the path of a JSONL event file. Returns whether
/// telemetry ended up enabled.
pub fn init_from_env() -> bool {
    match std::env::var("GRAPHRARE_TELEMETRY") {
        Err(_) => false,
        Ok(v) => {
            let v = v.trim();
            match v {
                "" | "0" => false,
                "1" => {
                    set_enabled(true);
                    true
                }
                "stderr" => {
                    add_sink(Box::new(StderrSink));
                    set_enabled(true);
                    true
                }
                path => {
                    match JsonlSink::create(std::path::Path::new(path)) {
                        Ok(sink) => add_sink(Box::new(sink)),
                        Err(e) => eprintln!("telemetry: cannot open {path}: {e}"),
                    }
                    set_enabled(true);
                    true
                }
            }
        }
    }
}

/// Installs a sink; it receives every event emitted from now on.
pub fn add_sink(sink: Box<dyn Sink>) {
    with_state(|s| s.sinks.push(sink));
}

/// Flushes and removes every installed sink.
pub fn clear_sinks() {
    with_state(|s| {
        for sink in &mut s.sinks {
            sink.flush();
        }
        s.sinks.clear();
    });
}

/// Swaps out the installed sinks without flushing them (in-crate test
/// support: the panic-hook test must prove the *hook* drained the
/// buffers, so it cannot go through `clear_sinks`).
#[cfg(test)]
pub(crate) fn swap_sinks_for_tests(new: Vec<Box<dyn Sink>>) -> Vec<Box<dyn Sink>> {
    with_state(|s| std::mem::replace(&mut s.sinks, new))
}

/// Flushes every installed sink (e.g. before reading an output file).
pub fn flush() {
    with_state(|s| {
        for sink in &mut s.sinks {
            sink.flush();
        }
    });
}

/// Installs a process panic hook that emits a `panic` event and
/// flushes every sink before the default hook runs, so JSONL traces
/// from crashed runs end on a complete line instead of being truncated
/// mid-record. Idempotent; chains to the previously installed hook.
pub fn install_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // The panicking thread may already hold the registry mutex
            // (a sink panicked mid-emit); a blocking lock would
            // deadlock inside the hook, so only flush when the lock is
            // free. Poisoning cannot have happened yet — we are still
            // unwinding — so a failed try_lock means "held", not
            // "poisoned".
            if let Ok(mut guard) = state().try_lock() {
                if enabled() {
                    let message = if let Some(s) = info.payload().downcast_ref::<&str>() {
                        (*s).to_string()
                    } else if let Some(s) = info.payload().downcast_ref::<String>() {
                        s.clone()
                    } else {
                        "non-string panic payload".to_string()
                    };
                    let mut ev = Event::new("panic").str("message", message);
                    if let Some(loc) = info.location() {
                        ev = ev.str("file", loc.file()).u64("line", u64::from(loc.line()));
                    }
                    let ev = tag_run(ev);
                    for sink in &mut guard.sinks {
                        sink.emit(&ev);
                    }
                }
                for sink in &mut guard.sinks {
                    sink.flush();
                }
            }
            prev(info);
        }));
    });
}

/// Zeroes all counters and span/path aggregates. Sinks stay installed.
pub fn reset() {
    with_state(|s| s.metrics = MetricsStore::default());
}

/// Adds `delta` to a counter. No-op while disabled.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if enabled() {
        with_state(|s| s.metrics.add(name, delta));
    }
}

/// Raises a max-gauge to `value` if it is currently lower. No-op while
/// disabled.
#[inline]
pub fn gauge_max(name: &'static str, value: u64) {
    if enabled() {
        with_state(|s| s.metrics.raise(name, value));
    }
}

/// Records a completed span duration directly (for call sites that
/// measure themselves). The duration is attributed under the current
/// thread's open span path — it counts as a *child* of the enclosing
/// span, with all of `ns` as self time — and emitted as a `span` event
/// with a synthesised id. No-op while disabled.
#[inline]
pub fn record_span(name: &'static str, ns: u64) {
    if !enabled() {
        return;
    }
    let (parent_id, path) = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        match stack.last_mut() {
            Some(top) => {
                top.child_ns = top.child_ns.saturating_add(ns);
                (Some(top.span_id), format!("{}/{name}", top.path))
            }
            None => (None, name.to_string()),
        }
    });
    let span_id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let end_offset_ns = epoch().elapsed().as_nanos() as u64;
    with_state(|s| {
        s.metrics.record_span(name, ns);
        s.metrics.record_path(&path, ns, ns, 0, 0, None);
        let event = tag_run(span_event(
            name,
            span_id,
            parent_id,
            &path,
            ns,
            ns,
            end_offset_ns.saturating_sub(ns),
            0,
            0,
        ));
        for sink in &mut s.sinks {
            sink.emit(&event);
        }
    });
}

#[allow(clippy::too_many_arguments)]
fn span_event(
    name: &'static str,
    span_id: u64,
    parent_id: Option<u64>,
    path: &str,
    ns: u64,
    self_ns: u64,
    start_ns: u64,
    alloc_n: u64,
    alloc_bytes: u64,
) -> Event {
    let mut event = Event::new("span").str("name", name).u64("span_id", span_id);
    if let Some(pid) = parent_id {
        event = event.u64("parent_id", pid);
    }
    event = event.str("path", path).u64("ns", ns).u64("self_ns", self_ns).u64("start_ns", start_ns);
    if alloc_n > 0 || alloc_bytes > 0 {
        event = event.u64("alloc_n", alloc_n).u64("alloc_bytes", alloc_bytes);
    }
    event
}

/// Sends a pre-built event to every sink. Prefer [`emit_with`], which
/// skips event construction while disabled.
pub fn emit(event: Event) {
    if !enabled() {
        return;
    }
    let event = tag_run(event);
    with_state(|s| {
        for sink in &mut s.sinks {
            sink.emit(&event);
        }
    });
}

/// Builds and emits an event only when telemetry is enabled; the
/// closure (and all its field formatting/allocation) is skipped
/// entirely otherwise.
#[inline]
pub fn emit_with(build: impl FnOnce() -> Event) {
    if enabled() {
        emit(build());
    }
}

/// Point-in-time copy of all counters, span aggregates and path
/// profiles.
pub fn snapshot() -> Summary {
    with_state(|s| s.metrics.summary())
}

/// RAII span: measures wall time from construction to drop, tracks its
/// position in the per-thread span stack, and on drop folds the
/// duration into the flat aggregate and the per-path profile (self
/// time, percentile reservoir, allocation deltas) while emitting a
/// schema-v2 `span` event. When telemetry is disabled at construction
/// the guard holds no clock and drop is a no-op.
#[must_use = "a span measures until it is dropped"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
    span_id: u64,
}

impl SpanGuard {
    /// This span's process-unique id (0 when the guard is inert).
    pub fn span_id(&self) -> u64 {
        self.span_id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start.take() else { return };
        let ns = start.elapsed().as_nanos() as u64;
        // Pop our frame. Guards are stack-shaped by construction
        // (RAII), so our frame is the top one; if it is not — the guard
        // migrated threads or a child was leaked — fall back to the
        // flat aggregate only rather than corrupting the stack.
        let frame = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if stack.last().is_some_and(|f| f.span_id == self.span_id) {
                let frame = stack.pop();
                if let Some(parent) = stack.last_mut() {
                    parent.child_ns = parent.child_ns.saturating_add(ns);
                }
                frame
            } else {
                None
            }
        });
        if !enabled() {
            return;
        }
        match frame {
            None => with_state(|s| s.metrics.record_span(self.name, ns)),
            Some(frame) => {
                let self_ns = ns.saturating_sub(frame.child_ns);
                let alloc_now = alloc::snapshot();
                let alloc_n = alloc_now.count.saturating_sub(frame.alloc_start.count);
                let alloc_bytes = alloc_now.bytes.saturating_sub(frame.alloc_start.bytes);
                // Attribute the process-wide live-heap peak to this
                // path only if a new peak was set while we were open.
                let peak = (alloc_now.peak_bytes > frame.alloc_start.peak_bytes)
                    .then_some(alloc_now.peak_bytes);
                with_state(|s| {
                    s.metrics.record_span(self.name, ns);
                    s.metrics.record_path(&frame.path, ns, self_ns, alloc_n, alloc_bytes, peak);
                    let event = tag_run(span_event(
                        self.name,
                        frame.span_id,
                        frame.parent_id,
                        &frame.path,
                        ns,
                        self_ns,
                        frame.start_offset_ns,
                        alloc_n,
                        alloc_bytes,
                    ));
                    for sink in &mut s.sinks {
                        sink.emit(&event);
                    }
                });
            }
        }
    }
}

/// Opens a named span; see [`SpanGuard`].
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { name, start: None, span_id: 0 };
    }
    let epoch = epoch();
    let start = Instant::now();
    let span_id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let (parent_id, path) = match stack.last() {
            Some(top) => (Some(top.span_id), format!("{}/{name}", top.path)),
            None => (None, name.to_string()),
        };
        stack.push(Frame {
            span_id,
            parent_id,
            path,
            child_ns: 0,
            start_offset_ns: start.saturating_duration_since(epoch).as_nanos() as u64,
            alloc_start: alloc::snapshot(),
        });
    });
    SpanGuard { name, start: Some(start), span_id }
}

/// A manual wall-clock; reads 0 while telemetry is disabled so timing
/// fields can be computed unconditionally at instrumented call sites.
pub struct Stopwatch {
    start: Option<Instant>,
}

impl Stopwatch {
    /// Starts the clock (a no-op clock when telemetry is disabled).
    pub fn start() -> Self {
        Self { start: enabled().then(Instant::now) }
    }

    /// Nanoseconds since start (0 while disabled).
    pub fn ns(&self) -> u64 {
        self.start.map_or(0, |s| s.elapsed().as_nanos() as u64)
    }

    /// Nanoseconds since start or the previous `lap_ns` call
    /// (0 while disabled).
    pub fn lap_ns(&mut self) -> u64 {
        match self.start {
            None => 0,
            Some(prev) => {
                let now = Instant::now();
                let ns = now.duration_since(prev).as_nanos() as u64;
                self.start = Some(now);
                ns
            }
        }
    }
}

/// Writes a human-readable progress line to stderr unless `--quiet`
/// ([`set_quiet`]) is in effect. This is the uniform progress channel
/// of the CLI and the repro binaries — stdout stays machine-parseable.
pub fn progress_args(args: std::fmt::Arguments<'_>) {
    if !quiet() {
        eprintln!("{args}");
    }
}

/// `println!`-style progress output routed through the progress sink
/// (stderr, suppressed by `--quiet`).
#[macro_export]
macro_rules! progress {
    ($($arg:tt)*) => {
        $crate::progress_args(::std::format_args!($($arg)*))
    };
}
