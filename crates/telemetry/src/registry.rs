//! The global, thread-safe telemetry registry.
//!
//! One process-wide registry aggregates counters and spans and fans
//! events out to the installed sinks. It is **off by default**: every
//! recording entry point first checks a relaxed atomic flag and
//! returns immediately when disabled, so instrumentation in hot
//! kernels costs one predictable branch. Enabling telemetry only adds
//! observation — it never touches RNG streams, accumulation order or
//! any other numeric state, so results are bit-identical with
//! telemetry on or off.
//!
//! Control surface:
//! * programmatic — [`set_enabled`], [`add_sink`], [`reset`];
//! * environment — [`init_from_env`] reads `GRAPHRARE_TELEMETRY`
//!   (`0`/unset = off, `1` = aggregate only, `stderr` = aggregate +
//!   human-readable progress sink, anything else = path of a JSONL
//!   event file);
//! * CLI — the `graphrare` binary maps `--telemetry` /
//!   `--telemetry-out PATH` onto the same calls.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::event::Event;
use crate::metrics::{MetricsStore, Summary};
use crate::sink::{JsonlSink, Sink, StderrSink};

/// Fast-path gate; all recording is skipped while this is `false`.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Gate for the human-readable progress stream (`progress!`).
static QUIET: AtomicBool = AtomicBool::new(false);

struct State {
    metrics: MetricsStore,
    sinks: Vec<Box<dyn Sink>>,
}

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(State { metrics: MetricsStore::default(), sinks: Vec::new() }))
}

fn with_state<R>(f: impl FnOnce(&mut State) -> R) -> R {
    // A poisoned mutex means a panic mid-record; telemetry is
    // best-effort, so keep serving the remaining threads.
    let mut guard = state().lock().unwrap_or_else(|p| p.into_inner());
    f(&mut guard)
}

/// Whether telemetry recording is on. One relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns telemetry recording on or off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the human-readable progress stream is suppressed.
#[inline]
pub fn quiet() -> bool {
    QUIET.load(Ordering::Relaxed)
}

/// Suppresses (or restores) the progress stream; the CLI's `--quiet`.
pub fn set_quiet(on: bool) {
    QUIET.store(on, Ordering::Relaxed);
}

/// Configures the registry from `GRAPHRARE_TELEMETRY`:
/// unset/empty/`0` leaves it off; `1` enables aggregation; `stderr`
/// additionally installs the human-readable sink; any other value is
/// treated as the path of a JSONL event file. Returns whether
/// telemetry ended up enabled.
pub fn init_from_env() -> bool {
    match std::env::var("GRAPHRARE_TELEMETRY") {
        Err(_) => false,
        Ok(v) => {
            let v = v.trim();
            match v {
                "" | "0" => false,
                "1" => {
                    set_enabled(true);
                    true
                }
                "stderr" => {
                    add_sink(Box::new(StderrSink));
                    set_enabled(true);
                    true
                }
                path => {
                    match JsonlSink::create(std::path::Path::new(path)) {
                        Ok(sink) => add_sink(Box::new(sink)),
                        Err(e) => eprintln!("telemetry: cannot open {path}: {e}"),
                    }
                    set_enabled(true);
                    true
                }
            }
        }
    }
}

/// Installs a sink; it receives every event emitted from now on.
pub fn add_sink(sink: Box<dyn Sink>) {
    with_state(|s| s.sinks.push(sink));
}

/// Flushes and removes every installed sink.
pub fn clear_sinks() {
    with_state(|s| {
        for sink in &mut s.sinks {
            sink.flush();
        }
        s.sinks.clear();
    });
}

/// Flushes every installed sink (e.g. before reading an output file).
pub fn flush() {
    with_state(|s| {
        for sink in &mut s.sinks {
            sink.flush();
        }
    });
}

/// Zeroes all counters and span aggregates. Sinks stay installed.
pub fn reset() {
    with_state(|s| s.metrics = MetricsStore::default());
}

/// Adds `delta` to a counter. No-op while disabled.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if enabled() {
        with_state(|s| s.metrics.add(name, delta));
    }
}

/// Raises a max-gauge to `value` if it is currently lower. No-op while
/// disabled.
#[inline]
pub fn gauge_max(name: &'static str, value: u64) {
    if enabled() {
        with_state(|s| s.metrics.raise(name, value));
    }
}

/// Records a completed span duration directly (for call sites that
/// measure themselves). No-op while disabled.
#[inline]
pub fn record_span(name: &'static str, ns: u64) {
    if enabled() {
        with_state(|s| s.metrics.record_span(name, ns));
    }
}

/// Sends a pre-built event to every sink. Prefer [`emit_with`], which
/// skips event construction while disabled.
pub fn emit(event: Event) {
    if !enabled() {
        return;
    }
    with_state(|s| {
        for sink in &mut s.sinks {
            sink.emit(&event);
        }
    });
}

/// Builds and emits an event only when telemetry is enabled; the
/// closure (and all its field formatting/allocation) is skipped
/// entirely otherwise.
#[inline]
pub fn emit_with(build: impl FnOnce() -> Event) {
    if enabled() {
        emit(build());
    }
}

/// Point-in-time copy of all counters and span aggregates.
pub fn snapshot() -> Summary {
    with_state(|s| s.metrics.summary())
}

/// RAII span: measures wall time from construction to drop and folds
/// it into the named span aggregate. When telemetry is disabled at
/// construction the guard holds no clock and drop is a no-op.
#[must_use = "a span measures until it is dropped"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            record_span(self.name, start.elapsed().as_nanos() as u64);
        }
    }
}

/// Opens a named span; see [`SpanGuard`].
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard { name, start: enabled().then(Instant::now) }
}

/// A manual wall-clock; reads 0 while telemetry is disabled so timing
/// fields can be computed unconditionally at instrumented call sites.
pub struct Stopwatch {
    start: Option<Instant>,
}

impl Stopwatch {
    /// Starts the clock (a no-op clock when telemetry is disabled).
    pub fn start() -> Self {
        Self { start: enabled().then(Instant::now) }
    }

    /// Nanoseconds since start (0 while disabled).
    pub fn ns(&self) -> u64 {
        self.start.map_or(0, |s| s.elapsed().as_nanos() as u64)
    }

    /// Nanoseconds since start or the previous `lap_ns` call
    /// (0 while disabled).
    pub fn lap_ns(&mut self) -> u64 {
        match self.start {
            None => 0,
            Some(prev) => {
                let now = Instant::now();
                let ns = now.duration_since(prev).as_nanos() as u64;
                self.start = Some(now);
                ns
            }
        }
    }
}

/// Writes a human-readable progress line to stderr unless `--quiet`
/// ([`set_quiet`]) is in effect. This is the uniform progress channel
/// of the CLI and the repro binaries — stdout stays machine-parseable.
pub fn progress_args(args: std::fmt::Arguments<'_>) {
    if !quiet() {
        eprintln!("{args}");
    }
}

/// `println!`-style progress output routed through the progress sink
/// (stderr, suppressed by `--quiet`).
#[macro_export]
macro_rules! progress {
    ($($arg:tt)*) => {
        $crate::progress_args(::std::format_args!($($arg)*))
    };
}
