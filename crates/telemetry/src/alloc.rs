//! Opt-in heap accounting: a counting [`GlobalAlloc`] wrapper around
//! the system allocator, feeding allocation count/bytes/peak into the
//! hierarchical span profiler.
//!
//! The wrapper is *installed* per binary — a library crate must never
//! claim `#[global_allocator]` — via [`install_counting_allocator!`]:
//!
//! ```ignore
//! graphrare_telemetry::install_counting_allocator!();
//! ```
//!
//! Binaries that do not install it see all-zero counters; nothing else
//! changes. The bookkeeping is four relaxed atomics (no thread-locals:
//! lazy TLS initialisation may itself allocate, which would recurse
//! into the allocator), so counting is cheap, allocation-order
//! insensitive, and — crucially for the telemetry contract — has no
//! effect on any computed numeric result.
//!
//! **Attribution caveat**: the counters are process-wide. The span
//! profiler attributes the *delta* observed between a span's start and
//! end to that span's path, which over-attributes allocations made by
//! concurrent threads during the span. For the repro's mostly
//! single-threaded driver loop this is exact; under the parallel
//! kernels it is an upper bound. Peaks are attributed to a path when a
//! new process-wide live-heap peak was *set* while a span at that path
//! was active.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
// Live bytes can go negative transiently if blocks allocated before the
// wrapper was active are freed through it; signed arithmetic keeps the
// peak computation from wrapping.
static LIVE: AtomicI64 = AtomicI64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

/// A `GlobalAlloc` that forwards to [`System`] and counts.
pub struct CountingAlloc;

impl CountingAlloc {
    /// Const constructor for the `#[global_allocator]` static.
    pub const fn new() -> Self {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

fn on_alloc(size: usize) {
    ALLOCS.fetch_add(1, Relaxed);
    BYTES.fetch_add(size as u64, Relaxed);
    let live = LIVE.fetch_add(size as i64, Relaxed) + size as i64;
    if live > 0 {
        PEAK.fetch_max(live as u64, Relaxed);
    }
}

fn on_dealloc(size: usize) {
    LIVE.fetch_sub(size as i64, Relaxed);
}

// SAFETY: all methods forward verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the bookkeeping around the calls never
// allocates and never panics.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            // Count a realloc as one allocation of the new size and a
            // free of the old; grows and shrinks both update live bytes.
            on_alloc(new_size);
            on_dealloc(layout.size());
        }
        p
    }
}

/// Point-in-time allocator counters (all zero when the counting
/// allocator is not installed in this binary).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Cumulative number of allocations.
    pub count: u64,
    /// Cumulative bytes requested.
    pub bytes: u64,
    /// High-water mark of live heap bytes.
    pub peak_bytes: u64,
}

/// Reads the current counters (relaxed; consistent enough for
/// attribution, not a synchronisation point).
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        count: ALLOCS.load(Relaxed),
        bytes: BYTES.load(Relaxed),
        peak_bytes: PEAK.load(Relaxed),
    }
}

/// Whether the counting allocator is live in this binary. Any Rust
/// process allocates long before user code runs, so a zero allocation
/// count reliably means the wrapper was never installed.
pub fn active() -> bool {
    ALLOCS.load(Relaxed) != 0
}

/// Renders the allocator delta since `base` as a JSON value for the
/// `"alloc"` key of a `BENCH_*.json` report: an object with
/// `count`/`bytes`/`peak_bytes` when the counting allocator is live, and
/// the literal `null` when it was never installed — all-zero counts
/// would be indistinguishable from a genuinely allocation-free run.
/// Consumers (`graphrare-trace`, `telemetry_lint`) accept both forms.
pub fn delta_json(base: &AllocSnapshot) -> String {
    render_delta_json(active(), &snapshot(), base)
}

fn render_delta_json(active: bool, now: &AllocSnapshot, base: &AllocSnapshot) -> String {
    if !active {
        return "null".to_string();
    }
    format!(
        "{{\"count\": {}, \"bytes\": {}, \"peak_bytes\": {}}}",
        now.count.saturating_sub(base.count),
        now.bytes.saturating_sub(base.bytes),
        now.peak_bytes
    )
}

/// Installs [`CountingAlloc`] as the binary's `#[global_allocator]`.
/// Invoke once, at the crate root of a *binary* (or integration-test)
/// crate.
#[macro_export]
macro_rules! install_counting_allocator {
    () => {
        #[global_allocator]
        static GRAPHRARE_COUNTING_ALLOC: $crate::alloc::CountingAlloc =
            $crate::alloc::CountingAlloc::new();
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The telemetry unit-test binary does not install the wrapper, so
    // this test drives the bookkeeping directly. One test only: the
    // counters are process-global and tests run concurrently.
    #[test]
    fn bookkeeping_tracks_count_bytes_and_peak_without_wrapping() {
        let before = snapshot();
        on_alloc(1_000);
        on_alloc(24);
        on_dealloc(1_000);
        let after = snapshot();
        assert_eq!(after.count - before.count, 2);
        assert_eq!(after.bytes - before.bytes, 1_024);
        assert!(after.peak_bytes >= 1_000);

        // A block allocated before the wrapper was active is freed
        // through it: live goes negative, and the peak must not wrap to
        // ~u64::MAX when the next allocation lands.
        on_dealloc(1 << 40);
        on_alloc(8);
        let peak = snapshot().peak_bytes;
        assert!(peak < (1 << 39), "negative live heap wrapped into the peak: {peak}");
        // Restore the live balance for the rest of the binary.
        on_alloc(1 << 40);
        on_dealloc(8);
    }

    // Drives the renderer directly (not the globals): whether `active()`
    // is true here depends on test interleaving with the bookkeeping
    // test above.
    #[test]
    fn delta_json_is_null_without_the_allocator_and_an_object_with_it() {
        let base = AllocSnapshot { count: 10, bytes: 100, peak_bytes: 50 };
        let now = AllocSnapshot { count: 25, bytes: 4_196, peak_bytes: 96 };
        assert_eq!(render_delta_json(false, &now, &base), "null");
        assert_eq!(
            render_delta_json(true, &now, &base),
            "{\"count\": 15, \"bytes\": 4096, \"peak_bytes\": 96}"
        );
        // A stale base (counters reset) must not wrap.
        assert_eq!(
            render_delta_json(true, &base, &now),
            "{\"count\": 0, \"bytes\": 0, \"peak_bytes\": 50}"
        );
    }
}
