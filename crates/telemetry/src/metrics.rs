//! Aggregated metrics: counters, fixed-bucket histograms and per-span
//! duration statistics.
//!
//! Everything here is plain data — the global registry
//! ([`crate::registry`]) owns one [`MetricsStore`] behind a mutex and
//! the driver surfaces run-scoped [`Summary`] diffs in its report.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Upper bounds (inclusive, nanoseconds) of the fixed duration buckets;
/// one decade per bucket from 1µs to 10s, with an overflow bucket after
/// the last bound.
pub const DURATION_BUCKET_BOUNDS_NS: [u64; 8] =
    [1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000, 10_000_000_000];

/// Number of histogram buckets (the bounds plus one overflow bucket).
pub const NUM_BUCKETS: usize = DURATION_BUCKET_BOUNDS_NS.len() + 1;

/// A fixed-bucket histogram over nanosecond durations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; NUM_BUCKETS],
}

impl Histogram {
    /// Records one observation.
    pub fn record(&mut self, ns: u64) {
        let idx = DURATION_BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(NUM_BUCKETS - 1);
        self.counts[idx] += 1;
    }

    /// Merges another histogram into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Per-bucket counts; index `i` counts observations in
    /// `(bound[i-1], bound[i]]`, the last bucket everything above.
    pub fn counts(&self) -> &[u64; NUM_BUCKETS] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Bucket-wise saturating difference (`self` minus `earlier`); used
    /// for run-scoped aggregation against a baseline snapshot.
    pub fn saturating_diff(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::default();
        for (i, (a, b)) in self.counts.iter().zip(earlier.counts.iter()).enumerate() {
            out.counts[i] = a.saturating_sub(*b);
        }
        out
    }
}

/// Aggregated statistics of one named span.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of completed spans.
    pub count: u64,
    /// Summed wall time.
    pub total_ns: u64,
    /// Shortest observation (0 when `count == 0`).
    pub min_ns: u64,
    /// Longest observation.
    pub max_ns: u64,
    /// Duration histogram over [`DURATION_BUCKET_BOUNDS_NS`].
    pub hist: Histogram,
}

impl SpanStats {
    /// Folds one completed span into the stats.
    pub fn record(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns += ns;
        self.hist.record(ns);
    }

    /// Mean duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// The mutable aggregation state: counters and spans, keyed by static
/// names so hot paths never allocate.
#[derive(Clone, Debug, Default)]
pub struct MetricsStore {
    /// Monotonic counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Per-span aggregates.
    pub spans: BTreeMap<&'static str, SpanStats>,
}

impl MetricsStore {
    /// Adds `delta` to a counter.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Raises a counter to `value` if it is currently lower (a
    /// max-gauge; used for "threads used" style facts).
    pub fn raise(&mut self, name: &'static str, value: u64) {
        let slot = self.counters.entry(name).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Records a completed span duration.
    pub fn record_span(&mut self, name: &'static str, ns: u64) {
        self.spans.entry(name).or_default().record(ns);
    }

    /// Immutable summary copy of the current state.
    pub fn summary(&self) -> Summary {
        Summary {
            counters: self.counters.iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
            spans: self
                .spans
                .iter()
                .map(|(&k, &v)| SpanSummary {
                    name: k.to_string(),
                    count: v.count,
                    total_ns: v.total_ns,
                    min_ns: v.min_ns,
                    max_ns: v.max_ns,
                    buckets: *v.hist.counts(),
                })
                .collect(),
        }
    }
}

/// Read-only summary of one span, as surfaced in [`Summary`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanSummary {
    /// Span name.
    pub name: String,
    /// Completed spans.
    pub count: u64,
    /// Summed wall time.
    pub total_ns: u64,
    /// Shortest observation (from the later snapshot when diffed).
    pub min_ns: u64,
    /// Longest observation (from the later snapshot when diffed).
    pub max_ns: u64,
    /// Histogram bucket counts.
    pub buckets: [u64; NUM_BUCKETS],
}

/// A point-in-time (or run-scoped, when diffed) copy of every counter
/// and span aggregate, sorted by name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    /// `(name, value)` counter pairs.
    pub counters: Vec<(String, u64)>,
    /// Per-span aggregates.
    pub spans: Vec<SpanSummary>,
}

impl Summary {
    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Span summary by name.
    pub fn span(&self, name: &str) -> Option<&SpanSummary> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Run-scoped view: this snapshot minus an `earlier` baseline.
    /// Counters, span counts, totals and histogram buckets subtract;
    /// `min_ns`/`max_ns` are kept from `self` (extrema are not
    /// diffable). Entries that did not change are dropped.
    pub fn since(&self, earlier: &Summary) -> Summary {
        let counters = self
            .counters
            .iter()
            .filter_map(|(name, value)| {
                let delta = value.saturating_sub(earlier.counter(name));
                (delta > 0).then(|| (name.clone(), delta))
            })
            .collect();
        let spans = self
            .spans
            .iter()
            .filter_map(|s| {
                let base = earlier.span(&s.name);
                let count = s.count.saturating_sub(base.map_or(0, |b| b.count));
                if count == 0 {
                    return None;
                }
                let mut buckets = [0u64; NUM_BUCKETS];
                for (i, slot) in buckets.iter_mut().enumerate() {
                    *slot = s.buckets[i].saturating_sub(base.map_or(0, |b| b.buckets[i]));
                }
                Some(SpanSummary {
                    name: s.name.clone(),
                    count,
                    total_ns: s.total_ns.saturating_sub(base.map_or(0, |b| b.total_ns)),
                    min_ns: s.min_ns,
                    max_ns: s.max_ns,
                    buckets,
                })
            })
            .collect();
        Summary { counters, spans }
    }

    /// Renders the summary as an aligned, human-readable text table
    /// (spans first, then counters) for the repro binaries.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            let _ = writeln!(
                out,
                "{:<28} {:>9} {:>12} {:>12} {:>12}",
                "span", "count", "total_ms", "mean_us", "max_us"
            );
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "{:<28} {:>9} {:>12.3} {:>12.1} {:>12.1}",
                    s.name,
                    s.count,
                    s.total_ns as f64 / 1e6,
                    if s.count == 0 { 0.0 } else { s.total_ns as f64 / s.count as f64 / 1e3 },
                    s.max_ns as f64 / 1e3,
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{:<42} {:>16}", "counter", "value");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "{name:<42} {value:>16}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_observations_by_bound() {
        let mut h = Histogram::default();
        h.record(0); // <= 1µs -> bucket 0
        h.record(1_000); // inclusive bound -> bucket 0
        h.record(1_001); // -> bucket 1
        h.record(5_000_000); // -> bucket 4 (<= 10ms)
        h.record(u64::MAX); // overflow bucket
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[4], 1);
        assert_eq!(h.counts()[NUM_BUCKETS - 1], 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_merge_adds_bucketwise() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        a.record(10);
        a.record(2_000);
        b.record(10);
        b.record(20_000_000_000);
        a.merge(&b);
        assert_eq!(a.counts()[0], 2);
        assert_eq!(a.counts()[1], 1);
        assert_eq!(a.counts()[NUM_BUCKETS - 1], 1);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn histogram_diff_subtracts() {
        let mut early = Histogram::default();
        early.record(10);
        let mut late = early;
        late.record(10);
        late.record(5_000);
        let d = late.saturating_diff(&early);
        assert_eq!(d.counts()[0], 1);
        assert_eq!(d.counts()[1], 1);
        assert_eq!(d.total(), 2);
    }

    #[test]
    fn span_stats_track_extrema_and_mean() {
        let mut s = SpanStats::default();
        s.record(100);
        s.record(300);
        s.record(200);
        assert_eq!(s.count, 3);
        assert_eq!(s.total_ns, 600);
        assert_eq!(s.min_ns, 100);
        assert_eq!(s.max_ns, 300);
        assert_eq!(s.mean_ns(), 200);
    }

    #[test]
    fn store_counters_and_gauges() {
        let mut m = MetricsStore::default();
        m.add("calls", 2);
        m.add("calls", 3);
        m.raise("threads", 4);
        m.raise("threads", 2);
        let s = m.summary();
        assert_eq!(s.counter("calls"), 5);
        assert_eq!(s.counter("threads"), 4);
        assert_eq!(s.counter("absent"), 0);
    }

    #[test]
    fn summary_since_subtracts_and_drops_unchanged() {
        let mut m = MetricsStore::default();
        m.add("a", 1);
        m.add("b", 2);
        m.record_span("s", 50);
        let before = m.summary();
        m.add("a", 4);
        m.record_span("s", 150);
        m.record_span("t", 9);
        let delta = m.summary().since(&before);
        assert_eq!(delta.counter("a"), 4);
        assert!(delta.counters.iter().all(|(k, _)| k != "b"), "unchanged counter kept");
        let s = delta.span("s").unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.total_ns, 150);
        assert_eq!(delta.span("t").unwrap().count, 1);
    }

    #[test]
    fn render_table_mentions_every_entry() {
        let mut m = MetricsStore::default();
        m.add("kernel.matmul.calls", 7);
        m.record_span("train.epoch", 1_500);
        let text = m.summary().render_table();
        assert!(text.contains("kernel.matmul.calls"));
        assert!(text.contains("train.epoch"));
    }
}
