//! Aggregated metrics: counters, fixed-bucket histograms, per-span
//! duration statistics and hierarchical per-path profiles.
//!
//! Everything here is plain data — the global registry
//! ([`crate::registry`]) owns one [`MetricsStore`] behind a mutex and
//! the driver surfaces run-scoped [`Summary`] diffs in its report.
//!
//! Two aggregation granularities coexist:
//!
//! * **flat spans** ([`SpanStats`], keyed by the span's static name) —
//!   the schema-v1 view, cheap and allocation-free;
//! * **paths** ([`PathStats`], keyed by the call path the hierarchical
//!   span stack produces, e.g. `driver.run/driver.step/rewire.apply`)
//!   — carrying *self time* (total minus enclosed child spans), an
//!   exact-duration reservoir for true p50/p90/p99 percentiles, and
//!   allocation attribution from the opt-in counting allocator
//!   ([`crate::alloc`]).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Upper bounds (inclusive, nanoseconds) of the fixed duration buckets;
/// one decade per bucket from 1µs to 10s, with an overflow bucket after
/// the last bound.
pub const DURATION_BUCKET_BOUNDS_NS: [u64; 8] =
    [1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000, 10_000_000_000];

/// Number of histogram buckets (the bounds plus one overflow bucket).
pub const NUM_BUCKETS: usize = DURATION_BUCKET_BOUNDS_NS.len() + 1;

/// Capacity of the per-path duration reservoir. Percentiles are exact
/// while a path has at most this many observations and an unbiased
/// uniform sample beyond it.
pub const RESERVOIR_CAP: usize = 512;

/// A fixed-bucket histogram over nanosecond durations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; NUM_BUCKETS],
}

impl Histogram {
    /// Records one observation. Durations above the last bound land in
    /// the overflow bucket (including `u64::MAX`); bucket counts
    /// saturate instead of wrapping.
    pub fn record(&mut self, ns: u64) {
        let idx = DURATION_BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(NUM_BUCKETS - 1);
        self.counts[idx] = self.counts[idx].saturating_add(1);
    }

    /// Merges another histogram into this one (bucket-wise saturating
    /// addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
    }

    /// Per-bucket counts; index `i` counts observations in
    /// `(bound[i-1], bound[i]]`, the last bucket everything above.
    pub fn counts(&self) -> &[u64; NUM_BUCKETS] {
        &self.counts
    }

    /// Total number of observations (saturating).
    pub fn total(&self) -> u64 {
        self.counts.iter().fold(0u64, |acc, &c| acc.saturating_add(c))
    }

    /// Bucket-wise saturating difference (`self` minus `earlier`); used
    /// for run-scoped aggregation against a baseline snapshot.
    pub fn saturating_diff(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::default();
        for (i, (a, b)) in self.counts.iter().zip(earlier.counts.iter()).enumerate() {
            out.counts[i] = a.saturating_sub(*b);
        }
        out
    }
}

/// Fixed-capacity uniform reservoir of exact span durations
/// (Vitter's Algorithm R with a deterministic splitmix64 stream, so two
/// identical observation sequences keep identical samples).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reservoir {
    samples: Vec<u64>,
    seen: u64,
    rng: u64,
}

impl Default for Reservoir {
    fn default() -> Self {
        Self { samples: Vec::new(), seen: 0, rng: 0x9E37_79B9_7F4A_7C15 }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Reservoir {
    /// Folds one observation into the reservoir.
    pub fn record(&mut self, ns: u64) {
        self.seen = self.seen.saturating_add(1);
        if self.samples.len() < RESERVOIR_CAP {
            self.samples.push(ns);
        } else {
            let j = splitmix64(&mut self.rng) % self.seen;
            if (j as usize) < RESERVOIR_CAP {
                self.samples[j as usize] = ns;
            }
        }
    }

    /// Observations folded in so far (may exceed the sample count).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The retained samples, unsorted.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Nearest-rank percentile (`q` in 0..=100) over the retained
    /// samples. Exact while `seen() <= RESERVOIR_CAP`; 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        percentile_of(&mut self.samples.clone(), q)
    }
}

/// Nearest-rank percentile of a scratch slice (sorted in place).
///
/// For several quantiles over the same samples, sort once and query
/// [`percentile_of_sorted`] repeatedly instead — this entry point
/// re-sorts on every call.
pub fn percentile_of(samples: &mut [u64], q: f64) -> u64 {
    samples.sort_unstable();
    percentile_of_sorted(samples, q)
}

/// Nearest-rank percentile (`q` in 0..=100) of an already **ascending**
/// slice: rank `⌈q/100·n⌉` clamped into `1..=n`, so `q = 0` reads the
/// minimum and `q = 100` the maximum; 0 when empty. Callers needing
/// several quantiles sort once and query this repeatedly.
pub fn percentile_of_sorted(sorted: &[u64], q: f64) -> u64 {
    debug_assert!(sorted.is_sorted(), "percentile_of_sorted needs ascending samples");
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Aggregated statistics of one named span.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of completed spans (saturating).
    pub count: u64,
    /// Summed wall time (saturating — a saturated total under-reports,
    /// it never wraps).
    pub total_ns: u64,
    /// Shortest observation (0 when `count == 0`).
    pub min_ns: u64,
    /// Longest observation.
    pub max_ns: u64,
    /// Duration histogram over [`DURATION_BUCKET_BOUNDS_NS`].
    pub hist: Histogram,
}

impl SpanStats {
    /// Folds one completed span into the stats.
    pub fn record(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count = self.count.saturating_add(1);
        self.total_ns = self.total_ns.saturating_add(ns);
        self.hist.record(ns);
    }

    /// Mean duration in nanoseconds (0 when empty; an under-estimate
    /// once `total_ns` has saturated, never a panic or a wrap).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Aggregated statistics of one span *path* (the `/`-joined call chain
/// the hierarchical span stack produces).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PathStats {
    /// Completed spans at this path (saturating).
    pub count: u64,
    /// Summed wall time, children included (saturating).
    pub total_ns: u64,
    /// Summed *self* time: wall time minus the time spent in enclosed
    /// child spans (saturating).
    pub self_ns: u64,
    /// Shortest observation (0 when `count == 0`).
    pub min_ns: u64,
    /// Longest observation.
    pub max_ns: u64,
    /// Heap allocations attributed to spans at this path (children
    /// included; 0 unless the counting allocator is installed).
    pub alloc_count: u64,
    /// Heap bytes allocated during spans at this path (children
    /// included).
    pub alloc_bytes: u64,
    /// Largest process-wide live-heap peak *set* while a span at this
    /// path was active (see `crate::alloc` for the attribution caveat).
    pub alloc_peak_bytes: u64,
    /// Exact-duration reservoir behind the percentile queries.
    pub reservoir: Reservoir,
}

impl PathStats {
    /// Folds one completed span (plus its allocation deltas) in.
    pub fn record(&mut self, ns: u64, self_ns: u64, alloc_count: u64, alloc_bytes: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count = self.count.saturating_add(1);
        self.total_ns = self.total_ns.saturating_add(ns);
        self.self_ns = self.self_ns.saturating_add(self_ns);
        self.alloc_count = self.alloc_count.saturating_add(alloc_count);
        self.alloc_bytes = self.alloc_bytes.saturating_add(alloc_bytes);
        self.reservoir.record(ns);
    }
}

/// The mutable aggregation state: counters and flat spans keyed by
/// static names (hot paths never allocate for them), plus per-path
/// profiles keyed by owned path strings (built only when a span
/// completes with telemetry enabled).
#[derive(Clone, Debug, Default)]
pub struct MetricsStore {
    /// Monotonic counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Per-span aggregates (flat, by name).
    pub spans: BTreeMap<&'static str, SpanStats>,
    /// Per-path aggregates (hierarchical).
    pub paths: BTreeMap<String, PathStats>,
}

impl MetricsStore {
    /// Adds `delta` to a counter.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        let slot = self.counters.entry(name).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Raises a counter to `value` if it is currently lower (a
    /// max-gauge; used for "threads used" style facts).
    pub fn raise(&mut self, name: &'static str, value: u64) {
        let slot = self.counters.entry(name).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Records a completed span duration into the flat aggregate.
    pub fn record_span(&mut self, name: &'static str, ns: u64) {
        self.spans.entry(name).or_default().record(ns);
    }

    /// Records a completed span into the per-path profile.
    pub fn record_path(
        &mut self,
        path: &str,
        ns: u64,
        self_ns: u64,
        alloc_count: u64,
        alloc_bytes: u64,
        peak_bytes: Option<u64>,
    ) {
        let stats = match self.paths.get_mut(path) {
            Some(stats) => stats,
            None => self.paths.entry(path.to_string()).or_default(),
        };
        stats.record(ns, self_ns, alloc_count, alloc_bytes);
        if let Some(peak) = peak_bytes {
            stats.alloc_peak_bytes = stats.alloc_peak_bytes.max(peak);
        }
    }

    /// Immutable summary copy of the current state.
    pub fn summary(&self) -> Summary {
        Summary {
            counters: self.counters.iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
            spans: self
                .spans
                .iter()
                .map(|(&k, &v)| SpanSummary {
                    name: k.to_string(),
                    count: v.count,
                    total_ns: v.total_ns,
                    min_ns: v.min_ns,
                    max_ns: v.max_ns,
                    buckets: *v.hist.counts(),
                })
                .collect(),
            paths: self
                .paths
                .iter()
                .map(|(k, v)| {
                    let mut scratch = v.reservoir.samples().to_vec();
                    scratch.sort_unstable();
                    let pick = |q: f64| percentile_of_sorted(&scratch, q);
                    PathSummary {
                        path: k.clone(),
                        count: v.count,
                        total_ns: v.total_ns,
                        self_ns: v.self_ns,
                        min_ns: v.min_ns,
                        max_ns: v.max_ns,
                        p50_ns: pick(50.0),
                        p90_ns: pick(90.0),
                        p99_ns: pick(99.0),
                        sampled: v.reservoir.samples().len() as u64,
                        alloc_count: v.alloc_count,
                        alloc_bytes: v.alloc_bytes,
                        alloc_peak_bytes: v.alloc_peak_bytes,
                    }
                })
                .collect(),
        }
    }
}

/// Read-only summary of one span, as surfaced in [`Summary`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanSummary {
    /// Span name.
    pub name: String,
    /// Completed spans.
    pub count: u64,
    /// Summed wall time.
    pub total_ns: u64,
    /// Shortest observation (from the later snapshot when diffed).
    pub min_ns: u64,
    /// Longest observation (from the later snapshot when diffed).
    pub max_ns: u64,
    /// Histogram bucket counts.
    pub buckets: [u64; NUM_BUCKETS],
}

/// Read-only summary of one span path, as surfaced in [`Summary`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathSummary {
    /// The `/`-joined call path, e.g. `driver.run/driver.step`.
    pub path: String,
    /// Completed spans at this path.
    pub count: u64,
    /// Summed wall time (children included).
    pub total_ns: u64,
    /// Summed self time (children excluded).
    pub self_ns: u64,
    /// Shortest observation (from the later snapshot when diffed).
    pub min_ns: u64,
    /// Longest observation (from the later snapshot when diffed).
    pub max_ns: u64,
    /// Median duration (exact while `sampled == count`).
    pub p50_ns: u64,
    /// 90th-percentile duration.
    pub p90_ns: u64,
    /// 99th-percentile duration.
    pub p99_ns: u64,
    /// Reservoir samples behind the percentiles; `sampled == count`
    /// means they are exact, not estimates.
    pub sampled: u64,
    /// Attributed heap allocations (0 without the counting allocator).
    pub alloc_count: u64,
    /// Attributed heap bytes allocated.
    pub alloc_bytes: u64,
    /// Largest live-heap peak set during spans at this path.
    pub alloc_peak_bytes: u64,
}

impl PathSummary {
    /// The last path component (the span's own name).
    pub fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }
}

/// A point-in-time (or run-scoped, when diffed) copy of every counter,
/// span aggregate and path profile, sorted by name/path.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    /// `(name, value)` counter pairs.
    pub counters: Vec<(String, u64)>,
    /// Per-span aggregates (flat, by name).
    pub spans: Vec<SpanSummary>,
    /// Per-path aggregates (hierarchical) with exact percentiles and
    /// allocation attribution.
    pub paths: Vec<PathSummary>,
}

impl Summary {
    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Span summary by name.
    pub fn span(&self, name: &str) -> Option<&SpanSummary> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Path summary by exact path.
    pub fn path(&self, path: &str) -> Option<&PathSummary> {
        self.paths.iter().find(|p| p.path == path)
    }

    /// Path summaries whose final component equals `name` (a span can
    /// appear under several parents).
    pub fn paths_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a PathSummary> {
        self.paths.iter().filter(move |p| p.name() == name)
    }

    /// Run-scoped view: this snapshot minus an `earlier` baseline.
    /// Counters, span counts, totals, self times, allocation totals and
    /// histogram buckets subtract; `min_ns`/`max_ns`, percentiles and
    /// peak bytes are kept from `self` (extrema, reservoirs and peaks
    /// are not diffable). Entries that did not change are dropped.
    pub fn since(&self, earlier: &Summary) -> Summary {
        let counters = self
            .counters
            .iter()
            .filter_map(|(name, value)| {
                let delta = value.saturating_sub(earlier.counter(name));
                (delta > 0).then(|| (name.clone(), delta))
            })
            .collect();
        let spans = self
            .spans
            .iter()
            .filter_map(|s| {
                let base = earlier.span(&s.name);
                let count = s.count.saturating_sub(base.map_or(0, |b| b.count));
                if count == 0 {
                    return None;
                }
                let mut buckets = [0u64; NUM_BUCKETS];
                for (i, slot) in buckets.iter_mut().enumerate() {
                    *slot = s.buckets[i].saturating_sub(base.map_or(0, |b| b.buckets[i]));
                }
                Some(SpanSummary {
                    name: s.name.clone(),
                    count,
                    total_ns: s.total_ns.saturating_sub(base.map_or(0, |b| b.total_ns)),
                    min_ns: s.min_ns,
                    max_ns: s.max_ns,
                    buckets,
                })
            })
            .collect();
        let paths = self
            .paths
            .iter()
            .filter_map(|p| {
                let base = earlier.path(&p.path);
                let count = p.count.saturating_sub(base.map_or(0, |b| b.count));
                if count == 0 {
                    return None;
                }
                Some(PathSummary {
                    count,
                    total_ns: p.total_ns.saturating_sub(base.map_or(0, |b| b.total_ns)),
                    self_ns: p.self_ns.saturating_sub(base.map_or(0, |b| b.self_ns)),
                    alloc_count: p.alloc_count.saturating_sub(base.map_or(0, |b| b.alloc_count)),
                    alloc_bytes: p.alloc_bytes.saturating_sub(base.map_or(0, |b| b.alloc_bytes)),
                    ..p.clone()
                })
            })
            .collect();
        Summary { counters, spans, paths }
    }

    /// Renders the summary as an aligned, human-readable text table
    /// (paths first, then flat spans, then counters) for the repro
    /// binaries.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.paths.is_empty() {
            let _ = writeln!(
                out,
                "{:<52} {:>7} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9} {:>10}",
                "path",
                "count",
                "total_ms",
                "self_ms",
                "p50_us",
                "p90_us",
                "p99_us",
                "allocs",
                "alloc_kb"
            );
            for p in &self.paths {
                let _ = writeln!(
                    out,
                    "{:<52} {:>7} {:>10.3} {:>10.3} {:>9.1} {:>9.1} {:>9.1} {:>9} {:>10.1}",
                    p.path,
                    p.count,
                    p.total_ns as f64 / 1e6,
                    p.self_ns as f64 / 1e6,
                    p.p50_ns as f64 / 1e3,
                    p.p90_ns as f64 / 1e3,
                    p.p99_ns as f64 / 1e3,
                    p.alloc_count,
                    p.alloc_bytes as f64 / 1e3,
                );
            }
        }
        if !self.spans.is_empty() {
            let _ = writeln!(
                out,
                "{:<28} {:>9} {:>12} {:>12} {:>12}",
                "span", "count", "total_ms", "mean_us", "max_us"
            );
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "{:<28} {:>9} {:>12.3} {:>12.1} {:>12.1}",
                    s.name,
                    s.count,
                    s.total_ns as f64 / 1e6,
                    if s.count == 0 { 0.0 } else { s.total_ns as f64 / s.count as f64 / 1e3 },
                    s.max_ns as f64 / 1e3,
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{:<42} {:>16}", "counter", "value");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "{name:<42} {value:>16}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_observations_by_bound() {
        let mut h = Histogram::default();
        h.record(0); // <= 1µs -> bucket 0
        h.record(1_000); // inclusive bound -> bucket 0
        h.record(1_001); // -> bucket 1
        h.record(5_000_000); // -> bucket 4 (<= 10ms)
        h.record(u64::MAX); // overflow bucket
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[4], 1);
        assert_eq!(h.counts()[NUM_BUCKETS - 1], 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_merge_adds_bucketwise() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        a.record(10);
        a.record(2_000);
        b.record(10);
        b.record(20_000_000_000);
        a.merge(&b);
        assert_eq!(a.counts()[0], 2);
        assert_eq!(a.counts()[1], 1);
        assert_eq!(a.counts()[NUM_BUCKETS - 1], 1);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn histogram_saturates_instead_of_wrapping() {
        let mut a = Histogram::default();
        a.counts[NUM_BUCKETS - 1] = u64::MAX;
        a.record(u64::MAX); // overflow bucket already saturated
        assert_eq!(a.counts()[NUM_BUCKETS - 1], u64::MAX);
        let mut b = Histogram::default();
        b.record(u64::MAX);
        a.merge(&b);
        assert_eq!(a.counts()[NUM_BUCKETS - 1], u64::MAX);
        // total() over saturated buckets must not wrap either.
        a.counts[0] = u64::MAX;
        assert_eq!(a.total(), u64::MAX);
    }

    #[test]
    fn histogram_diff_subtracts() {
        let mut early = Histogram::default();
        early.record(10);
        let mut late = early;
        late.record(10);
        late.record(5_000);
        let d = late.saturating_diff(&early);
        assert_eq!(d.counts()[0], 1);
        assert_eq!(d.counts()[1], 1);
        assert_eq!(d.total(), 2);
    }

    #[test]
    fn span_stats_track_extrema_and_mean() {
        let mut s = SpanStats::default();
        s.record(100);
        s.record(300);
        s.record(200);
        assert_eq!(s.count, 3);
        assert_eq!(s.total_ns, 600);
        assert_eq!(s.min_ns, 100);
        assert_eq!(s.max_ns, 300);
        assert_eq!(s.mean_ns(), 200);
    }

    #[test]
    fn span_stats_saturate_near_u64_max() {
        let mut s = SpanStats::default();
        s.record(u64::MAX);
        s.record(u64::MAX);
        // Totals saturate (no wrap to a tiny number), extrema stay exact,
        // and the mean under-reports instead of panicking.
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, u64::MAX);
        assert_eq!(s.max_ns, u64::MAX);
        assert_eq!(s.mean_ns(), u64::MAX / 2);
        assert_eq!(s.hist.counts()[NUM_BUCKETS - 1], 2);
    }

    #[test]
    fn zero_count_mean_is_zero() {
        assert_eq!(SpanStats::default().mean_ns(), 0);
        let saturated = SpanStats { count: 0, total_ns: u64::MAX, ..Default::default() };
        assert_eq!(saturated.mean_ns(), 0, "zero-count mean must not divide");
    }

    #[test]
    fn reservoir_is_exact_below_capacity() {
        let mut r = Reservoir::default();
        for ns in (1..=100).rev() {
            r.record(ns);
        }
        assert_eq!(r.seen(), 100);
        assert_eq!(r.samples().len(), 100);
        assert_eq!(r.percentile(50.0), 50);
        assert_eq!(r.percentile(90.0), 90);
        assert_eq!(r.percentile(99.0), 99);
        assert_eq!(r.percentile(100.0), 100);
    }

    #[test]
    fn reservoir_samples_uniformly_past_capacity() {
        let mut r = Reservoir::default();
        for ns in 0..10_000u64 {
            r.record(ns);
        }
        assert_eq!(r.samples().len(), RESERVOIR_CAP);
        assert_eq!(r.seen(), 10_000);
        // A uniform sample of 0..10000 has a median near 5000; allow a
        // generous tolerance (the RNG stream is deterministic, so this
        // cannot flake).
        let p50 = r.percentile(50.0);
        assert!((3_500..=6_500).contains(&p50), "median {p50} implausible for uniform sample");
    }

    #[test]
    fn reservoir_stream_is_deterministic() {
        let mut a = Reservoir::default();
        let mut b = Reservoir::default();
        for ns in 0..5_000u64 {
            a.record(ns);
            b.record(ns);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn percentile_of_empty_is_zero() {
        assert_eq!(percentile_of(&mut [], 50.0), 0);
        assert_eq!(percentile_of_sorted(&[], 50.0), 0);
        assert_eq!(Reservoir::default().percentile(99.0), 0);
    }

    #[test]
    fn nearest_rank_is_pinned_at_small_counts() {
        // Nearest-rank: element at ceil(q/100 * n), clamped to 1..=n.
        // n = 1: every quantile is the single sample.
        for q in [0.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(percentile_of_sorted(&[7], q), 7, "n=1 q={q}");
        }
        // n = 2: p50 -> first (rank ceil(1.0) = 1), anything above -> second.
        assert_eq!(percentile_of_sorted(&[10, 20], 0.0), 10);
        assert_eq!(percentile_of_sorted(&[10, 20], 50.0), 10);
        assert_eq!(percentile_of_sorted(&[10, 20], 50.1), 20);
        assert_eq!(percentile_of_sorted(&[10, 20], 90.0), 20);
        assert_eq!(percentile_of_sorted(&[10, 20], 99.0), 20);
        assert_eq!(percentile_of_sorted(&[10, 20], 100.0), 20);
        // n = 3: rank boundaries at 33.3% and 66.6%.
        assert_eq!(percentile_of_sorted(&[1, 2, 3], 0.0), 1);
        assert_eq!(percentile_of_sorted(&[1, 2, 3], 33.0), 1);
        assert_eq!(percentile_of_sorted(&[1, 2, 3], 34.0), 2);
        assert_eq!(percentile_of_sorted(&[1, 2, 3], 50.0), 2);
        assert_eq!(percentile_of_sorted(&[1, 2, 3], 66.0), 2);
        assert_eq!(percentile_of_sorted(&[1, 2, 3], 67.0), 3);
        assert_eq!(percentile_of_sorted(&[1, 2, 3], 90.0), 3);
        assert_eq!(percentile_of_sorted(&[1, 2, 3], 99.0), 3);
    }

    #[test]
    fn percentile_of_sorts_then_matches_sorted_variant() {
        let mut unsorted = [90u64, 10, 50, 70, 30];
        let sorted = [10u64, 30, 50, 70, 90];
        for q in [0.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
            let mut scratch = unsorted;
            assert_eq!(percentile_of(&mut scratch, q), percentile_of_sorted(&sorted, q), "q={q}");
        }
        // The in-place sort is part of the contract.
        percentile_of(&mut unsorted, 50.0);
        assert_eq!(unsorted, sorted);
    }

    #[test]
    fn path_stats_accumulate_self_time_and_allocs() {
        let mut m = MetricsStore::default();
        m.record_path("a/b", 1_000, 400, 3, 256, Some(1_024));
        m.record_path("a/b", 3_000, 3_000, 1, 64, None);
        let s = m.summary();
        let p = s.path("a/b").unwrap();
        assert_eq!(p.count, 2);
        assert_eq!(p.total_ns, 4_000);
        assert_eq!(p.self_ns, 3_400);
        assert_eq!(p.alloc_count, 4);
        assert_eq!(p.alloc_bytes, 320);
        assert_eq!(p.alloc_peak_bytes, 1_024);
        assert_eq!(p.p50_ns, 1_000);
        assert_eq!(p.p99_ns, 3_000);
        assert_eq!(p.sampled, 2, "percentiles are exact below reservoir capacity");
        assert_eq!(p.name(), "b");
        assert_eq!(s.paths_named("b").count(), 1);
    }

    #[test]
    fn store_counters_and_gauges() {
        let mut m = MetricsStore::default();
        m.add("calls", 2);
        m.add("calls", 3);
        m.raise("threads", 4);
        m.raise("threads", 2);
        let s = m.summary();
        assert_eq!(s.counter("calls"), 5);
        assert_eq!(s.counter("threads"), 4);
        assert_eq!(s.counter("absent"), 0);
    }

    #[test]
    fn counters_saturate() {
        let mut m = MetricsStore::default();
        m.add("c", u64::MAX - 1);
        m.add("c", 5);
        assert_eq!(m.summary().counter("c"), u64::MAX);
    }

    #[test]
    fn summary_since_subtracts_and_drops_unchanged() {
        let mut m = MetricsStore::default();
        m.add("a", 1);
        m.add("b", 2);
        m.record_span("s", 50);
        m.record_path("s", 50, 50, 0, 0, None);
        let before = m.summary();
        m.add("a", 4);
        m.record_span("s", 150);
        m.record_span("t", 9);
        m.record_path("s", 150, 100, 2, 32, None);
        let delta = m.summary().since(&before);
        assert_eq!(delta.counter("a"), 4);
        assert!(delta.counters.iter().all(|(k, _)| k != "b"), "unchanged counter kept");
        let s = delta.span("s").unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.total_ns, 150);
        assert_eq!(delta.span("t").unwrap().count, 1);
        let p = delta.path("s").unwrap();
        assert_eq!(p.count, 1);
        assert_eq!(p.total_ns, 150);
        assert_eq!(p.self_ns, 100);
        assert_eq!(p.alloc_count, 2);
        assert_eq!(p.alloc_bytes, 32);
    }

    #[test]
    fn render_table_mentions_every_entry() {
        let mut m = MetricsStore::default();
        m.add("kernel.matmul.calls", 7);
        m.record_span("train.epoch", 1_500);
        m.record_path("driver.run/train.epoch", 1_500, 1_500, 0, 0, None);
        let text = m.summary().render_table();
        assert!(text.contains("kernel.matmul.calls"));
        assert!(text.contains("train.epoch"));
        assert!(text.contains("driver.run/train.epoch"));
        assert!(text.contains("p99_us"));
    }
}
