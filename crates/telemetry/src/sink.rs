//! Pluggable event sinks.
//!
//! Two implementations ship with the workspace: a structured
//! [`JsonlSink`] (one schema-versioned JSON object per line, for
//! machines) and a human-readable [`StderrSink`] (a compact progress
//! line per interesting event, for terminals). Both receive every
//! event the registry emits; a sink decides itself what to render.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use crate::event::{Event, Value};

/// Receives structured events from the registry.
///
/// Implementations must be cheap relative to the instrumented work and
/// must never panic on well-formed events; I/O errors are swallowed
/// (telemetry is strictly best-effort and must not perturb the run).
pub trait Sink: Send {
    /// Handles one event.
    fn emit(&mut self, event: &Event);
    /// Flushes buffered output (end of run, or before process exit).
    fn flush(&mut self) {}
}

/// Writes every event as one JSON line to a file.
///
/// Writes are buffered (hierarchical spans emit one event per guard, a
/// much higher volume than the v1 stream), so producers must call
/// [`crate::flush`] / [`crate::clear_sinks`] before reading the file or
/// exiting — statics never drop. The registry's panic hook
/// ([`crate::install_panic_hook`]) flushes on crashes, keeping traces
/// from dying runs whole-line valid.
pub struct JsonlSink {
    file: BufWriter<File>,
}

impl JsonlSink {
    /// Creates (truncating) the output file.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self { file: BufWriter::new(File::create(path)?) })
    }
}

impl Sink for JsonlSink {
    fn emit(&mut self, event: &Event) {
        let mut line = event.to_json_line();
        line.push('\n');
        let _ = self.file.write_all(line.as_bytes());
    }

    fn flush(&mut self) {
        let _ = self.file.flush();
    }
}

/// Renders a compact human-readable line per event to stderr.
///
/// High-frequency kinds (`epoch`, and `span` — one event per completed
/// guard) are summarised by the span/counter/path aggregates instead of
/// being printed, so a `--telemetry` terminal session stays readable
/// even on long runs.
pub struct StderrSink;

impl StderrSink {
    /// Event kinds skipped by the human-readable rendering.
    const SKIP: [&'static str; 2] = ["epoch", "span"];
}

impl Sink for StderrSink {
    fn emit(&mut self, event: &Event) {
        if Self::SKIP.contains(&event.kind()) {
            return;
        }
        let mut line = format!("[telemetry] {}", event.kind());
        for (key, value) in event.fields() {
            match value {
                Value::U64(n) => line.push_str(&format!(" {key}={n}")),
                Value::I64(n) => line.push_str(&format!(" {key}={n:+}")),
                Value::F64(x) => line.push_str(&format!(" {key}={x:.4}")),
                Value::Str(s) => line.push_str(&format!(" {key}={s}")),
                Value::Bool(b) => line.push_str(&format!(" {key}={b}")),
            }
        }
        eprintln!("{line}");
    }
}

/// Test helper: captures events in memory.
#[derive(Default)]
pub struct VecSink {
    events: std::sync::Arc<std::sync::Mutex<Vec<Event>>>,
}

impl VecSink {
    /// Creates a sink plus a shared handle to the captured events.
    pub fn new() -> (Self, std::sync::Arc<std::sync::Mutex<Vec<Event>>>) {
        let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        (Self { events: events.clone() }, events)
    }
}

impl Sink for VecSink {
    fn emit(&mut self, event: &Event) {
        self.events.lock().unwrap().push(event.clone());
    }
}
