//! Node feature entropy (Eqs. 3–4).
//!
//! Node features are embedded (`z_v = φ(x_v)`, Eq. 3) and a pair's
//! probability mass is its softmax-normalised dot product over all pairs:
//! `P(z_v, z_u) = e^{⟨z_v, z_u⟩} / Σ_{i,j} e^{⟨z_i, z_j⟩}`; the feature
//! entropy is `H_f(v, u) = −P log P` (Eq. 4). Because every pair's `P` is
//! far below `1/e`, `−P log P` is monotone in `P`, so larger feature
//! entropy ⇔ more similar features, exactly as the paper states.
//!
//! Two practical notes (both mirrored from the paper's complexity
//! discussion in Sec. IV-A):
//! * dot products are stabilised by subtracting the maximum observed dot
//!   before exponentiation, otherwise `e^{⟨z,z⟩}` overflows `f32` on
//!   bag-of-words features;
//! * the exact normaliser needs all `N²` dots; for large graphs a sampled
//!   estimate is used ([`Normalization::Sampled`]). The normaliser is a
//!   single shared constant, so sampling changes every `H_f` monotonically
//!   and leaves rankings — the only thing GraphRARE consumes — intact.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use graphrare_graph::Graph;
use graphrare_tensor::{init, Matrix};

/// The embedding function `φ` of Eq. (3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Embedding {
    /// Use the raw features (`φ = id`).
    Identity,
    /// Project to `dim` dimensions with a seeded random Gaussian matrix
    /// scaled by `1/sqrt(dim)` (a Johnson–Lindenstrauss sketch). This is
    /// the untrained stand-in for the paper's MLP embedding and keeps dot
    /// products of high-dimensional bag-of-words features well-scaled.
    RandomProjection {
        /// Target dimensionality `h`.
        dim: usize,
        /// Seed of the projection matrix.
        seed: u64,
    },
}

/// How to estimate the global normaliser `Σ_{i,j} e^{⟨z_i, z_j⟩}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Normalization {
    /// Exact double sum (`O(N²)` dots) — fine for a few thousand nodes.
    Exact,
    /// Monte-Carlo estimate from this many uniformly sampled pairs.
    Sampled(usize),
    /// `Exact` below 1500 nodes, `Sampled(200_000)` above.
    Auto,
}

/// Precomputed feature-entropy table: embeddings plus the shared
/// log-normaliser, supporting `O(h)` pairwise queries.
pub struct FeatureEntropyTable {
    z: Matrix,
    /// Stabiliser subtracted from every dot product.
    max_dot: f64,
    /// `log Σ_{i,j} e^{⟨z_i,z_j⟩ − max_dot}`.
    log_norm: f64,
}

impl FeatureEntropyTable {
    /// Builds the table from a graph's features.
    pub fn new(g: &Graph, embedding: Embedding, normalization: Normalization) -> Self {
        Self::from_features(g.features(), embedding, normalization)
    }

    /// Builds the table from an explicit feature matrix.
    pub fn from_features(
        features: &Matrix,
        embedding: Embedding,
        normalization: Normalization,
    ) -> Self {
        let z = match embedding {
            Embedding::Identity => features.clone(),
            Embedding::RandomProjection { dim, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let proj = init::normal(&mut rng, features.cols(), dim, 1.0 / (dim as f32).sqrt());
                features.matmul(&proj)
            }
        };
        let n = z.rows();
        let normalization = match normalization {
            Normalization::Auto => {
                if n <= 1500 {
                    Normalization::Exact
                } else {
                    Normalization::Sampled(200_000)
                }
            }
            other => other,
        };
        let (max_dot, log_norm) = match normalization {
            Normalization::Exact => exact_log_norm(&z),
            Normalization::Sampled(samples) => sampled_log_norm(&z, samples),
            Normalization::Auto => unreachable!("resolved above"),
        };
        Self { z, max_dot, log_norm }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.z.rows()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.z.rows() == 0
    }

    /// The embedded feature of node `v`.
    pub fn embedding(&self, v: usize) -> &[f32] {
        self.z.row(v)
    }

    /// Log-probability `log P(z_v, z_u)` under the global pair softmax.
    pub fn log_prob(&self, v: usize, u: usize) -> f64 {
        dot(self.z.row(v), self.z.row(u)) - self.max_dot - self.log_norm
    }

    /// Feature entropy `H_f(v, u) = −P log P` (Eq. 4). Symmetric; larger
    /// means more similar features.
    pub fn entropy(&self, v: usize, u: usize) -> f64 {
        let lp = self.log_prob(v, u);
        let p = lp.exp();
        if p <= 0.0 {
            0.0
        } else {
            -p * lp
        }
    }
}

fn dot(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x as f64) * (y as f64)).sum()
}

/// Exact `(max_dot, log Σ e^{dot − max_dot})` over all ordered pairs.
fn exact_log_norm(z: &Matrix) -> (f64, f64) {
    let n = z.rows();
    if n == 0 {
        return (0.0, 0.0);
    }
    // Two passes: find the max dot, then the stabilised sum. Symmetry
    // halves the work; the diagonal is counted once per ordered pair.
    let mut max_dot = f64::NEG_INFINITY;
    for i in 0..n {
        for j in i..n {
            max_dot = max_dot.max(dot(z.row(i), z.row(j)));
        }
    }
    let mut sum = 0.0f64;
    for i in 0..n {
        for j in i..n {
            let e = (dot(z.row(i), z.row(j)) - max_dot).exp();
            sum += if i == j { e } else { 2.0 * e };
        }
    }
    (max_dot, sum.ln())
}

/// Sampled estimate: `Σ ≈ N² · mean(e^{dot − max_dot})` over `samples`
/// uniform ordered pairs.
fn sampled_log_norm(z: &Matrix, samples: usize) -> (f64, f64) {
    let n = z.rows();
    if n == 0 {
        return (0.0, 0.0);
    }
    let mut rng = StdRng::seed_from_u64(0x5eed_facade);
    let pairs: Vec<(usize, usize)> =
        (0..samples.max(1)).map(|_| (rng.gen_range(0..n), rng.gen_range(0..n))).collect();
    let dots: Vec<f64> = pairs.iter().map(|&(i, j)| dot(z.row(i), z.row(j))).collect();
    // Include the self-dot maximum so no query can exceed the stabiliser by
    // much: the largest dot of all is always some ⟨z_i, z_i⟩ pairing when
    // features are non-negative, and cheap to scan exactly.
    let self_max = (0..n).map(|i| dot(z.row(i), z.row(i))).fold(f64::NEG_INFINITY, f64::max);
    let max_dot = dots.iter().copied().fold(self_max, f64::max);
    let mean = dots.iter().map(|&d| (d - max_dot).exp()).sum::<f64>() / dots.len() as f64;
    let log_norm = (n as f64).ln() * 2.0 + mean.max(f64::MIN_POSITIVE).ln();
    (max_dot, log_norm)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features() -> Matrix {
        // Nodes 0 and 1 nearly identical, node 2 different, node 3 zero.
        Matrix::from_vec(
            4,
            3,
            vec![
                1.0, 1.0, 0.0, //
                1.0, 0.9, 0.1, //
                0.0, 0.0, 1.0, //
                0.0, 0.0, 0.0,
            ],
        )
    }

    fn table() -> FeatureEntropyTable {
        FeatureEntropyTable::from_features(&features(), Embedding::Identity, Normalization::Exact)
    }

    #[test]
    fn probabilities_sum_to_one_exactly() {
        let t = table();
        let n = t.len();
        let total: f64 = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .map(|(i, j)| t.log_prob(i, j).exp())
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "total P = {total}");
    }

    #[test]
    fn similar_features_have_higher_entropy() {
        let t = table();
        let similar = t.entropy(0, 1);
        let dissimilar = t.entropy(0, 2);
        assert!(similar > dissimilar, "{similar} vs {dissimilar}");
    }

    #[test]
    fn entropy_is_symmetric() {
        let t = table();
        for i in 0..4 {
            for j in 0..4 {
                assert!((t.entropy(i, j) - t.entropy(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn entropy_is_positive_and_finite() {
        let t = table();
        for i in 0..4 {
            for j in 0..4 {
                let h = t.entropy(i, j);
                assert!(h.is_finite() && h > 0.0, "H_f({i},{j}) = {h}");
            }
        }
    }

    #[test]
    fn large_dots_do_not_overflow() {
        // Bag-of-words row with a huge self-dot.
        let m = Matrix::from_vec(2, 2, vec![60.0, 60.0, 1.0, 0.0]);
        let t = FeatureEntropyTable::from_features(&m, Embedding::Identity, Normalization::Exact);
        assert!(t.entropy(0, 0).is_finite());
        assert!(t.entropy(0, 1).is_finite());
    }

    #[test]
    fn sampled_normalizer_preserves_ranking() {
        let exact = table();
        let sampled = FeatureEntropyTable::from_features(
            &features(),
            Embedding::Identity,
            Normalization::Sampled(5_000),
        );
        // Rankings of pairs by entropy must agree.
        let pairs = [(0, 1), (0, 2), (1, 2), (2, 3)];
        let mut by_exact = pairs;
        by_exact.sort_by(|a, b| exact.entropy(a.0, a.1).total_cmp(&exact.entropy(b.0, b.1)));
        let mut by_sampled = pairs;
        by_sampled.sort_by(|a, b| sampled.entropy(a.0, a.1).total_cmp(&sampled.entropy(b.0, b.1)));
        assert_eq!(by_exact, by_sampled);
    }

    #[test]
    fn random_projection_is_deterministic() {
        let f = features();
        let a = FeatureEntropyTable::from_features(
            &f,
            Embedding::RandomProjection { dim: 8, seed: 3 },
            Normalization::Exact,
        );
        let b = FeatureEntropyTable::from_features(
            &f,
            Embedding::RandomProjection { dim: 8, seed: 3 },
            Normalization::Exact,
        );
        assert_eq!(a.entropy(0, 1), b.entropy(0, 1));
    }
}
