//! Node relative entropy `H(v, u) = H_f(v, u) + λ·H_s(v, u)` (Eq. 9).

use graphrare_graph::Graph;
use graphrare_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::feature::{Embedding, FeatureEntropyTable, Normalization};
use crate::structural::StructuralEntropyTable;

/// Configuration of the relative-entropy computation.
#[derive(Clone, Copy, Debug)]
pub struct RelativeEntropyConfig {
    /// The paper's `λ` (Eq. 9) weighting structural entropy; Table IV
    /// sweeps {0.1, 0.5, 1.0, 10.0} and settles on 1.0.
    pub lambda: f64,
    /// Embedding function `φ` of Eq. (3).
    pub embedding: Embedding,
    /// Normaliser strategy for the global pair softmax.
    pub normalization: Normalization,
    /// Rescale the feature entropy to `[0, 1]` over the graph so that
    /// `λ = 1` weighs the two terms comparably. `H_s` is already in
    /// `[0, 1]` by construction (Eq. 8), while raw `H_f = −P log P`
    /// values scale like `(log N²)/N²` — without rescaling the λ-sweep
    /// semantics of Table IV (λ=0.1 ≈ feature-only, λ=10 ≈
    /// structure-only) cannot hold. The rescale is min–max in the *log*
    /// domain (`log P`, i.e. the pairwise dot products), which orders
    /// pairs identically to Eq. 4 but spreads them evenly instead of
    /// letting one high-dot pair exponentially squash all others.
    /// Enabled by default.
    pub rescale_feature: bool,
}

impl Default for RelativeEntropyConfig {
    fn default() -> Self {
        Self {
            lambda: 1.0,
            embedding: Embedding::Identity,
            normalization: Normalization::Auto,
            rescale_feature: true,
        }
    }
}

/// Precomputed pairwise node relative entropy.
///
/// Built once before training (Algorithm 1, lines 1–5); queries are `O(h +
/// M)` per pair.
pub struct RelativeEntropyTable {
    feature: FeatureEntropyTable,
    structural: StructuralEntropyTable,
    lambda: f64,
    rescaled: bool,
    f_offset: f64,
    f_scale: f64,
}

impl RelativeEntropyTable {
    /// Computes both entropy components for `g`.
    pub fn new(g: &Graph, cfg: &RelativeEntropyConfig) -> Self {
        // Scoped guards give each build phase its own node in the span
        // tree; the stopwatch laps only feed the summary event below.
        let mut clock = graphrare_telemetry::Stopwatch::start();
        let feature = {
            let _span = graphrare_telemetry::span("entropy.feature_table");
            FeatureEntropyTable::new(g, cfg.embedding, cfg.normalization)
        };
        let feature_ns = clock.lap_ns();
        let structural = {
            let _span = graphrare_telemetry::span("entropy.structural_table");
            StructuralEntropyTable::new(g)
        };
        let structural_ns = clock.lap_ns();
        let (f_offset, f_scale) = {
            let _span = graphrare_telemetry::span("entropy.feature_range");
            if cfg.rescale_feature {
                feature_range(&feature, g.num_nodes())
            } else {
                (0.0, 1.0)
            }
        };
        let range_ns = clock.lap_ns();
        graphrare_telemetry::emit_with(|| {
            graphrare_telemetry::Event::new("entropy_table")
                .u64("nodes", g.num_nodes() as u64)
                .u64("feature_ns", feature_ns)
                .u64("structural_ns", structural_ns)
                .u64("range_ns", range_ns)
        });
        Self {
            feature,
            structural,
            lambda: cfg.lambda,
            rescaled: cfg.rescale_feature,
            f_offset,
            f_scale,
        }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.structural.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.structural.is_empty()
    }

    /// The λ in use.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Feature entropy `H_f(v, u)` after optional rescaling (see
    /// [`RelativeEntropyConfig::rescale_feature`]); without rescaling this
    /// is exactly Eq. 4's `−P log P`.
    pub fn feature_entropy(&self, v: usize, u: usize) -> f64 {
        if self.rescaled {
            ((self.feature.log_prob(v, u) - self.f_offset) * self.f_scale).clamp(0.0, 1.0)
        } else {
            self.feature.entropy(v, u)
        }
    }

    /// Structural entropy `H_s(v, u)` (Eq. 8).
    pub fn structural_entropy(&self, v: usize, u: usize) -> f64 {
        self.structural.entropy(v, u)
    }

    /// Node relative entropy `H(v, u)` (Eq. 9).
    pub fn entropy(&self, v: usize, u: usize) -> f64 {
        self.feature_entropy(v, u) + self.lambda * self.structural_entropy(v, u)
    }

    /// The structural component table.
    pub fn structural_table(&self) -> &StructuralEntropyTable {
        &self.structural
    }

    /// Refreshes exactly the given structural rows against the current
    /// graph. The feature component depends only on node features, which
    /// topology flips never touch, so it — and the frozen rescale range —
    /// stays valid verbatim.
    pub fn refresh_structural_rows(&mut self, g: &Graph, rows: &[usize]) {
        self.structural.refresh_rows(g, rows);
    }

    /// Rebuilds the whole structural component from scratch (the
    /// incremental engine's wholesale fallback). Feature side untouched,
    /// for the same reason as [`Self::refresh_structural_rows`].
    pub fn rebuild_structural(&mut self, g: &Graph) {
        self.structural = StructuralEntropyTable::new(g);
    }

    /// Dense `N x N` matrix of `H(v, u)` values (Fig. 8 visualisation;
    /// intended for small graphs).
    ///
    /// The upper triangle is computed row-parallel (each output row is
    /// owned by one thread), then mirrored serially; results are
    /// bit-identical for any thread count.
    pub fn dense_matrix(&self) -> Matrix {
        let n = self.len();
        let mut m = Matrix::zeros(n, n);
        graphrare_tensor::parallel::par_for_each_row(m.as_mut_slice(), n, |v, row| {
            for (u, slot) in row.iter_mut().enumerate().skip(v) {
                *slot = self.entropy(v, u) as f32;
            }
        });
        for v in 0..n {
            for u in (v + 1)..n {
                let h = m.get(v, u);
                m.set(u, v, h);
            }
        }
        m
    }
}

/// Min–max range of `log P` over the graph's off-diagonal pairs: exact
/// for small graphs, estimated from 100k sampled pairs otherwise.
/// Returns `(offset, scale)` such that `(log_p - offset) * scale ∈ [0, 1]`.
///
/// The exact branch is a parallel min/max fold over the row index; min
/// and max are exactly associative, so the result is bit-identical for
/// any thread count. The sampled branch keeps its single sequential RNG
/// stream (it is cheap and its determinism depends on draw order).
fn feature_range(feature: &FeatureEntropyTable, n: usize) -> (f64, f64) {
    // The diagonal is excluded: self-dots of sparse bag-of-words features
    // are far larger than any cross-pair dot and would squash every real
    // candidate pair into a sliver of the unit interval.
    let (lo, hi) = if n <= 1200 {
        graphrare_tensor::parallel::par_fold(
            n,
            || (f64::INFINITY, f64::NEG_INFINITY),
            |(mut lo, mut hi), v| {
                for u in (v + 1)..n {
                    let h = feature.log_prob(v, u);
                    lo = lo.min(h);
                    hi = hi.max(h);
                }
                (lo, hi)
            },
            |(lo_a, hi_a), (lo_b, hi_b)| (lo_a.min(lo_b), hi_a.max(hi_b)),
        )
    } else {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut rng = StdRng::seed_from_u64(0xfea7);
        for _ in 0..100_000 {
            let v = rng.gen_range(0..n);
            let u = rng.gen_range(0..n);
            if v != u {
                let h = feature.log_prob(v, u);
                lo = lo.min(h);
                hi = hi.max(h);
            }
        }
        (lo, hi)
    };
    if !lo.is_finite() || !hi.is_finite() || hi - lo < 1e-300 {
        (0.0, 1.0)
    } else {
        (lo, 1.0 / (hi - lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrare_tensor::Matrix;

    fn two_block_graph() -> Graph {
        // Nodes 0-2 share features & labels; 3-5 share different ones.
        let mut feats = Matrix::zeros(6, 4);
        for v in 0..3 {
            feats.set(v, 0, 1.0);
            feats.set(v, 1, 1.0);
        }
        for v in 3..6 {
            feats.set(v, 2, 1.0);
            feats.set(v, 3, 1.0);
        }
        Graph::from_edges(
            6,
            &[(0, 3), (1, 4), (2, 5), (0, 1), (3, 4)],
            feats,
            vec![0, 0, 0, 1, 1, 1],
            2,
        )
    }

    #[test]
    fn entropy_combines_components_linearly() {
        let g = two_block_graph();
        let cfg = RelativeEntropyConfig { lambda: 2.0, ..Default::default() };
        let t = RelativeEntropyTable::new(&g, &cfg);
        let h = t.entropy(0, 1);
        let want = t.feature_entropy(0, 1) + 2.0 * t.structural_entropy(0, 1);
        assert!((h - want).abs() < 1e-12);
    }

    #[test]
    fn same_block_pairs_rank_higher() {
        let g = two_block_graph();
        let t = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
        assert!(
            t.entropy(0, 1) > t.entropy(0, 4),
            "same-block {} vs cross-block {}",
            t.entropy(0, 1),
            t.entropy(0, 4)
        );
    }

    #[test]
    fn rescaled_feature_entropy_in_unit_interval() {
        let g = two_block_graph();
        let t = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
        for v in 0..6 {
            for u in 0..6 {
                let f = t.feature_entropy(v, u);
                assert!((0.0..=1.0).contains(&f), "H_f({v},{u}) = {f}");
            }
        }
    }

    #[test]
    fn lambda_zero_is_feature_only() {
        let g = two_block_graph();
        let cfg = RelativeEntropyConfig { lambda: 0.0, ..Default::default() };
        let t = RelativeEntropyTable::new(&g, &cfg);
        for v in 0..6 {
            for u in 0..6 {
                assert_eq!(t.entropy(v, u), t.feature_entropy(v, u));
            }
        }
    }

    #[test]
    fn dense_matrix_is_symmetric() {
        let g = two_block_graph();
        let t = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
        let m = t.dense_matrix();
        assert_eq!(m.shape(), (6, 6));
        for v in 0..6 {
            for u in 0..6 {
                assert_eq!(m.get(v, u), m.get(u, v));
            }
        }
    }
}
