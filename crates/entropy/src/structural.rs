//! Node structural entropy (Eqs. 5–8).
//!
//! The structural similarity of two nodes is measured on their *degree
//! profiles*: the descending sequence of degrees of the node and its
//! one-hop neighbours (Eq. 5), normalised to a distribution (Eq. 6). The
//! paper replaces the unbounded KL divergence of Zhang et al. with the
//! Jensen–Shannon divergence (Eq. 7), whose base-2 form lies in `[0, 1]`,
//! and defines `H_s(v, u) = 1 − JS(p(v) ‖ p(u))` (Eq. 8): larger values
//! mean more similar local structure.

use graphrare_graph::Graph;

/// Normalised degree profile `p(v)` of Eq. (6): the descending degree
/// sequence of `v` and its one-hop neighbours divided by its sum. An
/// isolated node yields the singleton distribution `[1.0]` over its own
/// (zero-padded) profile.
pub fn degree_distribution(g: &Graph, v: usize) -> Vec<f64> {
    let profile = g.degree_profile(v);
    let total: usize = profile.iter().sum();
    if total == 0 {
        // Isolated node: degenerate profile; treat as a point mass.
        return vec![1.0];
    }
    profile.iter().map(|&d| d as f64 / total as f64).collect()
}

/// `D_KL(p ‖ (p+q)/2)` in bits, over implicitly zero-padded sequences
/// (Eq. 7). Terms with `p_i = 0` contribute nothing.
pub fn kl_to_mixture(p: &[f64], q: &[f64]) -> f64 {
    let len = p.len().max(q.len());
    let mut total = 0.0;
    for i in 0..len {
        let pi = p.get(i).copied().unwrap_or(0.0);
        if pi <= 0.0 {
            continue;
        }
        let qi = q.get(i).copied().unwrap_or(0.0);
        let m = 0.5 * (pi + qi);
        total += pi * (pi / m).log2();
    }
    total
}

/// Jensen–Shannon divergence in bits: `JS(p, q) ∈ [0, 1]`.
pub fn js_divergence(p: &[f64], q: &[f64]) -> f64 {
    0.5 * (kl_to_mixture(p, q) + kl_to_mixture(q, p))
}

/// Node structural entropy `H_s(v, u) = 1 − JS(p(v) ‖ p(u))` (Eq. 8).
///
/// Symmetric, in `[0, 1]`; `1.0` means identical degree profiles.
pub fn structural_entropy(g: &Graph, v: usize, u: usize) -> f64 {
    let pv = degree_distribution(g, v);
    let pu = degree_distribution(g, u);
    1.0 - js_divergence(&pv, &pu)
}

/// Precomputed degree distributions for repeated pairwise queries.
///
/// GraphRARE evaluates `H_s` for every candidate pair once before
/// training; caching the `N` profiles turns that into `O(Σ pairs · M)`
/// without repeated BFS work.
pub struct StructuralEntropyTable {
    distributions: Vec<Vec<f64>>,
}

impl StructuralEntropyTable {
    /// Builds the table for all nodes of `g`.
    ///
    /// Per-node degree profiles are independent, so the build is
    /// parallelised over nodes ([`graphrare_tensor::parallel`]); the
    /// resulting table is identical for any thread count.
    pub fn new(g: &Graph) -> Self {
        let distributions =
            graphrare_tensor::parallel::par_map(g.num_nodes(), |v| degree_distribution(g, v));
        Self { distributions }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.distributions.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.distributions.is_empty()
    }

    /// `H_s(v, u)` from the cached profiles.
    pub fn entropy(&self, v: usize, u: usize) -> f64 {
        1.0 - js_divergence(&self.distributions[v], &self.distributions[u])
    }

    /// The cached degree distribution of node `v`.
    pub fn distribution(&self, v: usize) -> &[f64] {
        &self.distributions[v]
    }

    /// Recomputes exactly the given rows from the current graph (the
    /// same [`degree_distribution`] call the full build runs, so the
    /// refreshed rows are bit-identical to a from-scratch table). Used
    /// by the incremental entropy engine after edge flips.
    pub fn refresh_rows(&mut self, g: &Graph, rows: &[usize]) {
        let fresh =
            graphrare_tensor::parallel::par_map(rows.len(), |i| degree_distribution(g, rows[i]));
        for (&v, dist) in rows.iter().zip(fresh) {
            self.distributions[v] = dist;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrare_tensor::Matrix;

    fn graph(edges: &[(usize, usize)], n: usize) -> Graph {
        Graph::from_edges(n, edges, Matrix::zeros(n, 1), vec![0; n], 1)
    }

    #[test]
    fn identical_distributions_have_unit_entropy() {
        // Two symmetric endpoints of a path of 4: nodes 0 and 3.
        let g = graph(&[(0, 1), (1, 2), (2, 3)], 4);
        let h = structural_entropy(&g, 0, 3);
        assert!((h - 1.0).abs() < 1e-12, "h = {h}");
    }

    #[test]
    fn js_divergence_bounds() {
        let p = vec![1.0, 0.0];
        let q = vec![0.0, 1.0];
        // Disjoint supports: JS = 1 bit.
        assert!((js_divergence(&p, &q) - 1.0).abs() < 1e-12);
        assert_eq!(js_divergence(&p, &p), 0.0);
    }

    #[test]
    fn js_symmetry() {
        let p = vec![0.7, 0.2, 0.1];
        let q = vec![0.3, 0.3, 0.4];
        assert!((js_divergence(&p, &q) - js_divergence(&q, &p)).abs() < 1e-12);
    }

    #[test]
    fn structural_entropy_symmetric_and_bounded() {
        let g = graph(&[(0, 1), (0, 2), (0, 3), (3, 4), (4, 5)], 6);
        for v in 0..6 {
            for u in 0..6 {
                let h = structural_entropy(&g, v, u);
                assert!((0.0..=1.0).contains(&h), "H_s({v},{u}) = {h}");
                let h2 = structural_entropy(&g, u, v);
                assert!((h - h2).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn hub_vs_leaf_less_similar_than_leaf_vs_leaf() {
        // Star with center 0: leaves have identical profiles.
        let g = graph(&[(0, 1), (0, 2), (0, 3), (0, 4)], 5);
        let leaf_leaf = structural_entropy(&g, 1, 2);
        let hub_leaf = structural_entropy(&g, 0, 1);
        assert!(leaf_leaf > hub_leaf, "{leaf_leaf} vs {hub_leaf}");
        assert!((leaf_leaf - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_padding_handles_different_profile_lengths() {
        let g = graph(&[(0, 1), (1, 2), (1, 3)], 4);
        // Node 1 has profile length 4, node 0 length 2 — must not panic.
        let h = structural_entropy(&g, 0, 1);
        assert!((0.0..=1.0).contains(&h));
    }

    #[test]
    fn table_matches_direct_computation() {
        let g = graph(&[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)], 4);
        let table = StructuralEntropyTable::new(&g);
        for v in 0..4 {
            for u in 0..4 {
                assert!((table.entropy(v, u) - structural_entropy(&g, v, u)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn isolated_nodes_do_not_panic() {
        let g = graph(&[(0, 1)], 3);
        let h = structural_entropy(&g, 2, 0);
        assert!((0.0..=1.0).contains(&h));
        assert!((structural_entropy(&g, 2, 2) - 1.0).abs() < 1e-12);
    }
}
