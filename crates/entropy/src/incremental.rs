//! Incremental relative-entropy maintenance under edge flips.
//!
//! `H = H_f + λ·H_s` (Eq. 9) splits cleanly under topology edits:
//! feature entropy `H_f` depends only on node features, which flips
//! never touch, while structural entropy `H_s` (Eqs. 5–8) depends only
//! on *one-hop degree profiles*. A batch of edge flips therefore dirties
//! a bounded set of `H_s` rows and rankings, and everything else is
//! reusable verbatim — the same sparse-invalidation argument that made
//! rewiring incremental (`RewiredGraph` / `GraphTensors` dirty rows).
//!
//! ## Dirty-set rules
//!
//! With `E` the flipped endpoints (on the normalized batch):
//!
//! * **Profile-dirty** (`H_s` row must be recomputed): `E ∪ N_new(E)`.
//!   A node's profile is its own degree plus its neighbours' degrees;
//!   only endpoint degrees and endpoint neighbour-sets change. A node
//!   that was adjacent to an endpoint *before* the batch but not after
//!   lost that edge, so it is itself an endpoint — old neighbours are
//!   covered without consulting the pre-flip adjacency.
//! * **Sequence-dirty** ([`CandidatePool::RemoteRing`]): the radius
//!   `max(hops + 1, 2)` balls around `E` on **both** the pre- and
//!   post-flip graphs. Ring membership of `v` can only change when a
//!   path of length ≤ `hops` to an endpoint exists on one of the two
//!   graphs; a profile-dirty candidate `u ∈ ring(v)` puts `v` within
//!   `hops + 1` of an endpoint; deletion rankings reach distance 2
//!   (neighbour of a profile-dirty node), hence the radius floor.
//! * **Sequence-dirty** ([`CandidatePool::GlobalSample`]): `E` (the
//!   sample itself must be re-drawn — adjacency of `v` gates the draw) ∪
//!   profile-dirty ∪ `N_new(profile-dirty)` (deletion rankings) ∪ every
//!   node whose stored sample contains a profile-dirty candidate,
//!   found via an inverted `sampled_by` index. Non-endpoint draws are
//!   unchanged because `sample_non_neighbors` depends only on
//!   `has_edge(v, ·)`, `degree(v)` and `n`, all unchanged for them.
//!
//! ## Determinism and bit-identity
//!
//! Dirty rows are rebuilt by the *same* per-row code path the full
//! build runs ([`EntropySequences::build`]'s row closure), and
//! `GlobalSample` re-draws restart the per-node RNG at `seed ^ v`, so
//! the result is independent of visit order and bit-identical to a
//! from-scratch build after every batch — the proptest suite in
//! `tests/incremental_equivalence.rs` enforces exactly that.
//!
//! ## Wholesale fallback
//!
//! When the sequence-dirty fraction exceeds a threshold (default 0.5),
//! per-row bookkeeping costs more than it saves and the engine rebuilds
//! the structural table and sequences outright — still skipping the
//! feature table and its frozen rescale range, which no flip can
//! invalidate.

use rand::rngs::StdRng;
use rand::SeedableRng;

use graphrare_graph::{edge_key, traversal, unkey, Graph};

use crate::relative::{RelativeEntropyConfig, RelativeEntropyTable};
use crate::sequences::{self, CandidatePool, EntropySequences, SequenceConfig};

/// What one [`IncrementalEntropy::apply_flips`] call did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EntropyRefreshStats {
    /// `H_s` rows (degree profiles) recomputed.
    pub rows_dirty: usize,
    /// Sequence rows (addition + deletion rankings) rebuilt.
    pub rows_rebuilt: usize,
    /// Whether the wholesale-rebuild fallback fired.
    pub wholesale: bool,
}

/// Incrementally-maintained relative-entropy state: a graph mirror, its
/// [`RelativeEntropyTable`] and [`EntropySequences`], kept bit-identical
/// to a from-scratch build across [`apply_flips`](Self::apply_flips)
/// batches.
pub struct IncrementalEntropy {
    graph: Graph,
    table: RelativeEntropyTable,
    sequences: EntropySequences,
    cfg: SequenceConfig,
    wholesale_threshold: f64,
    /// Full (pre-truncation) candidate sample per node; empty unless the
    /// pool is [`CandidatePool::GlobalSample`].
    samples: Vec<Vec<u32>>,
    /// Inverted index: `sampled_by[u]` lists the nodes whose sample
    /// contains `u`.
    sampled_by: Vec<Vec<u32>>,
}

impl IncrementalEntropy {
    /// Builds the engine from scratch: full entropy table, full
    /// sequences, and (for [`CandidatePool::GlobalSample`]) the sample
    /// index.
    pub fn new(g: &Graph, entropy_cfg: &RelativeEntropyConfig, seq_cfg: SequenceConfig) -> Self {
        let table = RelativeEntropyTable::new(g, entropy_cfg);
        let sequences = EntropySequences::build(g, &table, &seq_cfg);
        let mut engine = Self {
            graph: g.clone(),
            table,
            sequences,
            cfg: seq_cfg,
            wholesale_threshold: 0.5,
            samples: Vec::new(),
            sampled_by: Vec::new(),
        };
        engine.rebuild_sample_index();
        engine
    }

    /// Sets the sequence-dirty fraction above which the engine rebuilds
    /// wholesale instead of per row. `0.0` forces wholesale on every
    /// non-empty batch (the benchmark's "full rebuild" baseline);
    /// values ≥ 1 never fall back.
    pub fn set_wholesale_threshold(&mut self, threshold: f64) {
        self.wholesale_threshold = threshold;
    }

    /// The engine's graph mirror (always equal to the sum of applied
    /// flips over the construction-time graph).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The maintained entropy table.
    pub fn table(&self) -> &RelativeEntropyTable {
        &self.table
    }

    /// The maintained sequences.
    pub fn sequences(&self) -> &EntropySequences {
        &self.sequences
    }

    /// The sequence configuration in use.
    pub fn config(&self) -> &SequenceConfig {
        &self.cfg
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Whether the engine covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.graph.num_nodes() == 0
    }

    /// Applies a batch of undirected edge flips (`(u, v, added)`) to the
    /// graph mirror and refreshes exactly the dirty entropy rows and
    /// sequence rankings.
    ///
    /// Flip semantics match [`Graph::apply_edits`]: self-loops and
    /// out-of-bounds pairs are dropped, the last flip per pair wins, and
    /// flips that do not change presence are no-ops. After the call,
    /// [`table`](Self::table) and [`sequences`](Self::sequences) are
    /// bit-identical to from-scratch builds on the flipped graph.
    pub fn apply_flips(&mut self, flips: &[(usize, usize, bool)]) -> EntropyRefreshStats {
        let clock = graphrare_telemetry::Stopwatch::start();
        let n = self.graph.num_nodes();
        let genuine = normalize_flips(&self.graph, flips);
        if genuine.is_empty() {
            return EntropyRefreshStats::default();
        }
        // Open the guard only once genuine work is known to happen, so
        // no-op calls record no refresh span (matching the old direct
        // `record_span` semantics). A wholesale fallback's full
        // sequence rebuild nests under this span in the trace.
        let _span = graphrare_telemetry::span("entropy.incremental_refresh");

        let mut endpoints: Vec<usize> = genuine.iter().flat_map(|&(u, v, _)| [u, v]).collect();
        endpoints.sort_unstable();
        endpoints.dedup();

        // RemoteRing dirtiness needs the ball on the *pre-flip* graph
        // too: a node whose ring lost members is reachable within the
        // radius only on the old adjacency.
        let ring_radius = match self.cfg.pool {
            CandidatePool::RemoteRing { hops } => Some((hops + 1).max(2)),
            CandidatePool::GlobalSample { .. } => None,
        };
        let old_ball =
            ring_radius.map(|r| traversal::multi_source_ball(&self.graph, &endpoints, r));

        self.graph.apply_flips_sorted(&genuine);

        // Profile-dirty: endpoints and their post-flip neighbours.
        let mut profile_dirty = endpoints.clone();
        for &e in &endpoints {
            profile_dirty.extend(self.graph.neighbors(e));
        }
        profile_dirty.sort_unstable();
        profile_dirty.dedup();

        let mut seq_dirty: Vec<usize> = match self.cfg.pool {
            CandidatePool::RemoteRing { .. } => {
                let r = ring_radius.expect("radius set for RemoteRing");
                let mut d = old_ball.expect("old ball computed for RemoteRing");
                d.extend(traversal::multi_source_ball(&self.graph, &endpoints, r));
                d
            }
            CandidatePool::GlobalSample { .. } => {
                let mut d = profile_dirty.clone();
                for &u in &profile_dirty {
                    d.extend(self.graph.neighbors(u));
                    d.extend(self.sampled_by[u].iter().map(|&v| v as usize));
                }
                d.extend(endpoints.iter().copied());
                d
            }
        };
        seq_dirty.sort_unstable();
        seq_dirty.dedup();

        let wholesale = seq_dirty.len() as f64 > self.wholesale_threshold * n as f64;
        let stats = if wholesale {
            self.table.rebuild_structural(&self.graph);
            self.sequences = EntropySequences::build(&self.graph, &self.table, &self.cfg);
            self.rebuild_sample_index();
            graphrare_telemetry::counter("entropy.wholesale_fallbacks", 1);
            EntropyRefreshStats { rows_dirty: profile_dirty.len(), rows_rebuilt: n, wholesale }
        } else {
            self.table.refresh_structural_rows(&self.graph, &profile_dirty);
            if matches!(self.cfg.pool, CandidatePool::GlobalSample { .. }) {
                for &e in &endpoints {
                    self.redraw_sample(e);
                }
            }
            self.sequences.rebuild_rows(&self.graph, &self.table, &self.cfg, &seq_dirty);
            EntropyRefreshStats {
                rows_dirty: profile_dirty.len(),
                rows_rebuilt: seq_dirty.len(),
                wholesale,
            }
        };
        graphrare_telemetry::counter("entropy.rows_dirty", stats.rows_dirty as u64);
        graphrare_telemetry::counter("entropy.rows_rebuilt", stats.rows_rebuilt as u64);
        let refresh_ns = clock.ns();
        graphrare_telemetry::emit_with(|| {
            graphrare_telemetry::Event::new("entropy_refresh")
                .u64("flips", genuine.len() as u64)
                .u64("rows_dirty", stats.rows_dirty as u64)
                .u64("rows_rebuilt", stats.rows_rebuilt as u64)
                .bool("wholesale", stats.wholesale)
                .u64("refresh_ns", refresh_ns)
        });
        stats
    }

    /// Re-draws node `v`'s candidate sample from its per-node RNG
    /// (`seed ^ v`, same stream as the full build) and patches the
    /// inverted index.
    fn redraw_sample(&mut self, v: usize) {
        let CandidatePool::GlobalSample { per_node, seed } = self.cfg.pool else {
            return;
        };
        let old = std::mem::take(&mut self.samples[v]);
        for &u in &old {
            let list = &mut self.sampled_by[u as usize];
            if let Some(pos) = list.iter().position(|&x| x as usize == v) {
                list.swap_remove(pos);
            }
        }
        let mut rng = StdRng::seed_from_u64(seed ^ v as u64);
        let fresh: Vec<u32> = sequences::sample_non_neighbors(&self.graph, v, per_node, &mut rng)
            .into_iter()
            .map(|u| u as u32)
            .collect();
        for &u in &fresh {
            self.sampled_by[u as usize].push(v as u32);
        }
        self.samples[v] = fresh;
    }

    /// Rebuilds the per-node samples and the inverted index from the
    /// current graph; a no-op (clears both) for [`CandidatePool::RemoteRing`].
    fn rebuild_sample_index(&mut self) {
        let CandidatePool::GlobalSample { per_node, seed } = self.cfg.pool else {
            self.samples.clear();
            self.sampled_by.clear();
            return;
        };
        let n = self.graph.num_nodes();
        let g = &self.graph;
        self.samples = graphrare_tensor::parallel::par_map(n, |v| {
            let mut rng = StdRng::seed_from_u64(seed ^ v as u64);
            sequences::sample_non_neighbors(g, v, per_node, &mut rng)
                .into_iter()
                .map(|u| u as u32)
                .collect()
        });
        self.sampled_by = vec![Vec::new(); n];
        for v in 0..n {
            for i in 0..self.samples[v].len() {
                let u = self.samples[v][i] as usize;
                self.sampled_by[u].push(v as u32);
            }
        }
    }
}

/// Normalizes a raw flip batch to [`Graph::apply_flips_sorted`]'s
/// contract: in-bounds non-loop pairs, ascending by edge key, last flip
/// per pair winning, and only genuine presence changes kept — the same
/// semantics `Graph::apply_edits` implements internally.
fn normalize_flips(g: &Graph, flips: &[(usize, usize, bool)]) -> Vec<(usize, usize, bool)> {
    let n = g.num_nodes();
    let mut keyed: Vec<(u64, u32, bool)> = flips
        .iter()
        .enumerate()
        .filter(|&(_, &(u, v, _))| u != v && u < n && v < n)
        .map(|(i, &(u, v, add))| (edge_key(u, v), i as u32, add))
        .collect();
    keyed.sort_unstable();
    let mut out = Vec::new();
    let mut i = 0;
    while i < keyed.len() {
        let key = keyed[i].0;
        while i + 1 < keyed.len() && keyed[i + 1].0 == key {
            i += 1; // the last flip for this pair wins
        }
        let want = keyed[i].2;
        i += 1;
        let (u, v) = unkey(key);
        if want != g.has_edge(u, v) {
            out.push((u, v, want));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrare_tensor::Matrix;

    fn fixture() -> Graph {
        let n = 10;
        let feats = Matrix::from_fn(n, 4, |r, c| ((r * 7 + c * 3 + r * c) % 5) as f32 / 4.0);
        let edges: Vec<(usize, usize)> =
            (0..n - 1).map(|i| (i, i + 1)).chain([(0, 5), (2, 7)]).collect();
        Graph::from_edges(n, &edges, feats, (0..n).map(|v| v % 3).collect(), 3)
    }

    fn assert_matches_fresh(engine: &IncrementalEntropy, ecfg: &RelativeEntropyConfig) {
        let g = engine.graph();
        let fresh_table = RelativeEntropyTable::new(g, ecfg);
        for v in 0..g.num_nodes() {
            for u in 0..g.num_nodes() {
                assert_eq!(
                    engine.table().entropy(v, u).to_bits(),
                    fresh_table.entropy(v, u).to_bits(),
                    "H({v},{u}) diverged"
                );
            }
        }
        let fresh = EntropySequences::build(g, &fresh_table, engine.config());
        assert_eq!(engine.sequences(), &fresh);
    }

    #[test]
    fn incremental_matches_fresh_after_each_batch() {
        let ecfg = RelativeEntropyConfig::default();
        for pool in [
            CandidatePool::RemoteRing { hops: 3 },
            CandidatePool::GlobalSample { per_node: 4, seed: 11 },
        ] {
            let g = fixture();
            let mut engine =
                IncrementalEntropy::new(&g, &ecfg, SequenceConfig { pool, max_additions: 8 });
            let batches: Vec<Vec<(usize, usize, bool)>> = vec![
                vec![(0, 3, true)],
                vec![(1, 2, false), (4, 9, true)],
                vec![(0, 3, false), (0, 3, true), (5, 6, false)],
            ];
            for batch in &batches {
                engine.apply_flips(batch);
                assert_matches_fresh(&engine, &ecfg);
            }
        }
    }

    #[test]
    fn degenerate_batches_are_noops() {
        let g = fixture();
        let mut engine = IncrementalEntropy::new(
            &g,
            &RelativeEntropyConfig::default(),
            SequenceConfig::default(),
        );
        let before = engine.sequences().clone();
        // Self-loop, out-of-bounds, add-present, remove-absent, and a
        // pair that flips back to its original state.
        let stats = engine.apply_flips(&[
            (2, 2, true),
            (0, 99, true),
            (0, 1, true),
            (0, 9, false),
            (3, 8, true),
            (3, 8, false),
        ]);
        assert_eq!(stats, EntropyRefreshStats::default());
        assert_eq!(engine.sequences(), &before);
        assert_eq!(engine.graph().edge_vec(), g.edge_vec());
    }

    /// Regression for sequence staleness: a frozen pre-flip build keeps
    /// serving deleted edges in `deletions(v)`, while the engine's
    /// refreshed rankings track the current graph exactly. This is the
    /// failure mode the driver's refresh boundary exists to fix.
    #[test]
    fn frozen_sequences_go_stale_but_engine_does_not() {
        let ecfg = RelativeEntropyConfig::default();
        let g = fixture();
        let mut engine = IncrementalEntropy::new(&g, &ecfg, SequenceConfig::default());
        let frozen = engine.sequences().clone();

        // Remove the (2,3) path edge and add a chord at node 2.
        engine.apply_flips(&[(2, 3, false), (2, 9, true)]);

        // The frozen deletion ranking still offers the removed edge…
        assert!(
            frozen.deletions(2).iter().any(|&(u, _)| u == 3),
            "fixture must start with edge (2,3) ranked for deletion"
        );
        // …while the engine's ranking lists exactly the current neighbours.
        let engine_del: Vec<u32> = {
            let mut d: Vec<u32> = engine.sequences().deletions(2).iter().map(|&(u, _)| u).collect();
            d.sort_unstable();
            d
        };
        let current: Vec<u32> = engine.graph().neighbors(2).map(|u| u as u32).collect();
        let mut current_sorted = current;
        current_sorted.sort_unstable();
        assert_eq!(engine_del, current_sorted);
        assert!(!engine_del.contains(&3));
        assert!(engine_del.contains(&9));
        assert_ne!(engine.sequences(), &frozen, "flips must invalidate the frozen build");
        assert_matches_fresh(&engine, &ecfg);
    }

    #[test]
    fn zero_threshold_forces_wholesale_and_stays_identical() {
        let ecfg = RelativeEntropyConfig::default();
        let g = fixture();
        let mut engine = IncrementalEntropy::new(&g, &ecfg, SequenceConfig::default());
        engine.set_wholesale_threshold(0.0);
        let stats = engine.apply_flips(&[(0, 4, true)]);
        assert!(stats.wholesale);
        assert_eq!(stats.rows_rebuilt, g.num_nodes());
        assert_matches_fresh(&engine, &ecfg);
    }
}
