//! # graphrare-entropy
//!
//! The node relative entropy of the GraphRARE paper (Sec. IV-A):
//!
//! * [`feature`] — node feature entropy `H_f` (Eqs. 3–4): softmax-normalised
//!   embedding dot products, `−P log P`.
//! * [`structural`] — node structural entropy `H_s` (Eqs. 5–8):
//!   `1 − JS(p(v) ‖ p(u))` over normalised local degree profiles.
//! * [`relative`] — the combined metric `H = H_f + λ·H_s` (Eq. 9),
//!   precomputed once before training.
//! * [`sequences`] — per-node ranked addition/deletion candidate lists
//!   (Sec. IV-A.4), the interface consumed by the topology optimiser.
//! * [`incremental`] — maintains the table + sequences pair under edge
//!   flips, recomputing only dirty rows (bit-identical to from-scratch).
//!
//! ```
//! use graphrare_entropy::prelude::*;
//! use graphrare_graph::Graph;
//! use graphrare_tensor::Matrix;
//!
//! let mut feats = Matrix::zeros(4, 2);
//! feats.set(0, 0, 1.0);
//! feats.set(1, 0, 1.0); // nodes 0 and 1 share features
//! feats.set(2, 1, 1.0);
//! feats.set(3, 1, 1.0);
//! let g = Graph::from_edges(4, &[(0, 2), (2, 1), (1, 3)], feats, vec![0, 0, 1, 1], 2);
//!
//! let table = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
//! let seqs = EntropySequences::build(&g, &table, &SequenceConfig::default());
//! // Node 0's remote candidates are ranked by descending entropy.
//! assert!(!seqs.additions(0).is_empty());
//! ```

#![warn(missing_docs)]

pub mod feature;
pub mod incremental;
pub mod relative;
pub mod sequences;
pub mod structural;

/// Convenient re-exports of the main types.
pub mod prelude {
    pub use crate::feature::{Embedding, FeatureEntropyTable, Normalization};
    pub use crate::incremental::{EntropyRefreshStats, IncrementalEntropy};
    pub use crate::relative::{RelativeEntropyConfig, RelativeEntropyTable};
    pub use crate::sequences::{CandidatePool, EntropySequences, SequenceConfig};
    pub use crate::structural::{structural_entropy, StructuralEntropyTable};
}

pub use prelude::*;
