//! Node entropy sequences (Sec. IV-A.4).
//!
//! For every node GraphRARE maintains two ranked lists built from the
//! relative entropy:
//!
//! * **additions** — remote candidates (distance ≥ 2) sorted by
//!   *descending* `H`; connecting the top-`k_v` of them is how the
//!   topology optimiser adds edges;
//! * **deletions** — current one-hop neighbours sorted by *ascending* `H`;
//!   removing the first `d_v` discards the least-related neighbours.
//!
//! The candidate pool is configurable: a BFS remote ring (the common case;
//! "semantically related nodes might be multi-hop away") or a global
//! sample for graphs whose rings explode.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use graphrare_graph::{traversal, Graph};

use crate::relative::RelativeEntropyTable;

/// Where addition candidates come from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CandidatePool {
    /// Nodes at BFS distance in `[2, hops]` from the ego node.
    RemoteRing {
        /// Maximum hop distance considered.
        hops: usize,
    },
    /// A seeded uniform sample of non-neighbour nodes (used when rings are
    /// too dense, e.g. Squirrel-like graphs).
    GlobalSample {
        /// Candidates sampled per node.
        per_node: usize,
        /// Sampling seed.
        seed: u64,
    },
}

/// Configuration of sequence construction.
#[derive(Clone, Copy, Debug)]
pub struct SequenceConfig {
    /// Candidate pool for additions.
    pub pool: CandidatePool,
    /// Keep at most this many ranked addition candidates per node (the DRL
    /// agent's `k` can never exceed it).
    pub max_additions: usize,
}

impl Default for SequenceConfig {
    fn default() -> Self {
        Self { pool: CandidatePool::RemoteRing { hops: 3 }, max_additions: 16 }
    }
}

/// One node's ranked `(candidate id, entropy)` list.
type Ranking = Vec<(u32, f32)>;

/// Descending entropy; node id breaks ties deterministically. Ids are
/// unique within a pool, so this is a strict total order and unstable
/// sorting/selection cannot reorder "equal" elements. `total_cmp` keeps
/// the order total even when degenerate features drive an entropy to NaN
/// (NaN ranks above every finite value in descending order —
/// deterministic, never a panic).
fn by_entropy_desc(a: &(u32, f32), b: &(u32, f32)) -> std::cmp::Ordering {
    b.1.total_cmp(&a.1).then(a.0.cmp(&b.0))
}

/// Ascending entropy: least-related first; ids ascending on ties.
fn by_entropy_asc(a: &(u32, f32), b: &(u32, f32)) -> std::cmp::Ordering {
    a.1.total_cmp(&b.1).then(a.0.cmp(&b.0))
}

/// Per-thread scratch for [`build_row`]: the BFS ring state and the
/// candidate id buffer, reused across nodes so the node-parallel build
/// allocates only its output rankings.
pub(crate) struct BuildScratch {
    ring: traversal::RingScratch,
    candidates: Vec<usize>,
}

impl BuildScratch {
    pub(crate) fn new() -> Self {
        Self { ring: traversal::RingScratch::new(), candidates: Vec::new() }
    }
}

/// Fills `scratch.candidates` with node `v`'s addition-candidate pool.
fn candidates_into(g: &Graph, pool: CandidatePool, v: usize, scratch: &mut BuildScratch) {
    scratch.candidates.clear();
    match pool {
        CandidatePool::RemoteRing { hops } => {
            traversal::remote_ring_into(g, v, hops, &mut scratch.ring, &mut scratch.candidates);
        }
        CandidatePool::GlobalSample { per_node, seed } => {
            let mut rng = StdRng::seed_from_u64(seed ^ v as u64);
            scratch.candidates.extend(sample_non_neighbors(g, v, per_node, &mut rng));
        }
    }
}

/// Builds node `v`'s `(additions, deletions)` rankings — the single code
/// path shared by the full build, the incremental engine's dirty-row
/// rebuilds, and the wholesale fallback, which is what makes their
/// outputs bit-identical by construction.
pub(crate) fn build_row(
    g: &Graph,
    table: &RelativeEntropyTable,
    cfg: &SequenceConfig,
    v: usize,
    scratch: &mut BuildScratch,
) -> (Ranking, Ranking) {
    candidates_into(g, cfg.pool, v, scratch);
    let mut ranked: Vec<(u32, f32)> =
        scratch.candidates.iter().map(|&u| (u as u32, table.entropy(v, u) as f32)).collect();
    // Partial selection: move the top `max_additions` to the front in
    // O(len), then sort only that prefix. With the total order above
    // this equals a full sort + truncate.
    if ranked.len() > cfg.max_additions {
        ranked.select_nth_unstable_by(cfg.max_additions, by_entropy_desc);
        ranked.truncate(cfg.max_additions);
    }
    ranked.sort_unstable_by(by_entropy_desc);

    let mut dels: Vec<(u32, f32)> =
        g.neighbors(v).map(|u| (u as u32, table.entropy(v, u) as f32)).collect();
    dels.sort_unstable_by(by_entropy_asc);
    (ranked, dels)
}

/// Per-node ranked addition and deletion candidates.
#[derive(Clone, Debug, PartialEq)]
pub struct EntropySequences {
    additions: Vec<Ranking>,
    deletions: Vec<Ranking>,
}

impl EntropySequences {
    /// Builds sequences for every node of `g` from a precomputed entropy
    /// table.
    ///
    /// Nodes are independent, so the build runs node-parallel
    /// ([`graphrare_tensor::parallel`]). [`CandidatePool::GlobalSample`]
    /// draws from a per-node RNG seeded `seed ^ v`, making the sample
    /// independent of visit order — the output is identical for any
    /// thread count.
    pub fn build(g: &Graph, table: &RelativeEntropyTable, cfg: &SequenceConfig) -> Self {
        let _span = graphrare_telemetry::span("entropy.sequence_build");
        let clock = graphrare_telemetry::Stopwatch::start();
        let n = g.num_nodes();
        let per_node: Vec<(Ranking, Ranking)> =
            graphrare_tensor::parallel::par_map_scratch(n, BuildScratch::new, |scratch, v| {
                build_row(g, table, cfg, v, scratch)
            });
        let (additions, deletions) = per_node.into_iter().unzip();
        let build_ns = clock.ns();
        graphrare_telemetry::emit_with(|| {
            graphrare_telemetry::Event::new("entropy_sequences")
                .u64("nodes", n as u64)
                .u64("build_ns", build_ns)
        });
        Self { additions, deletions }
    }

    /// Rebuilds the rankings of exactly the given rows in place, using
    /// the same per-row code path as [`EntropySequences::build`]. Rows
    /// outside `0..len` are a contract violation (panics on index).
    /// Used by the incremental engine for dirty-node refreshes.
    pub(crate) fn rebuild_rows(
        &mut self,
        g: &Graph,
        table: &RelativeEntropyTable,
        cfg: &SequenceConfig,
        rows: &[usize],
    ) {
        let rebuilt: Vec<(Ranking, Ranking)> = graphrare_tensor::parallel::par_map_scratch(
            rows.len(),
            BuildScratch::new,
            |scratch, i| build_row(g, table, cfg, rows[i], scratch),
        );
        for (&v, (adds, dels)) in rows.iter().zip(rebuilt) {
            self.additions[v] = adds;
            self.deletions[v] = dels;
        }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.additions.len()
    }

    /// Whether the sequences are empty.
    pub fn is_empty(&self) -> bool {
        self.additions.is_empty()
    }

    /// Ranked addition candidates of node `v` (descending entropy).
    pub fn additions(&self, v: usize) -> &[(u32, f32)] {
        &self.additions[v]
    }

    /// Ranked deletion candidates of node `v` (ascending entropy), as of
    /// sequence-construction time.
    pub fn deletions(&self, v: usize) -> &[(u32, f32)] {
        &self.deletions[v]
    }

    /// Largest usable `k` for node `v`.
    pub fn max_k(&self, v: usize) -> usize {
        self.additions[v].len()
    }

    /// Largest usable `d` for node `v`.
    pub fn max_d(&self, v: usize) -> usize {
        self.deletions[v].len()
    }

    /// The GCN-RA ablation ("GraphRARE without relative entropy"): returns
    /// a copy whose per-node addition and deletion orders are randomly
    /// shuffled, destroying the entropy ranking while keeping the pools.
    pub fn shuffled(&self, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut shuffle = |list: &[(u32, f32)]| {
            let mut l = list.to_vec();
            for i in (1..l.len()).rev() {
                let j = rng.gen_range(0..=i);
                l.swap(i, j);
            }
            l
        };
        Self {
            additions: self.additions.iter().map(|l| shuffle(l)).collect(),
            deletions: self.deletions.iter().map(|l| shuffle(l)).collect(),
        }
    }
}

/// Uniform sample (without replacement) of up to `count` nodes that are
/// neither `v` nor its current neighbours.
///
/// Rejection sampling is capped at `count * 20` attempts so a dense
/// neighbourhood cannot spin forever; when the cap trips with eligible
/// nodes still unsampled (near-complete graphs), a deterministic sweep
/// over the remaining ids tops the sample up, so the function returns
/// exactly `min(count, eligible)` candidates instead of silently
/// under-sampling.
pub(crate) fn sample_non_neighbors(
    g: &Graph,
    v: usize,
    count: usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    let n = g.num_nodes();
    let mut out = Vec::with_capacity(count);
    let mut tried = std::collections::HashSet::new();
    let mut attempts = 0;
    while out.len() < count && attempts < count * 20 && tried.len() + g.degree(v) + 1 < n {
        attempts += 1;
        let u = rng.gen_range(0..n);
        if u == v || g.has_edge(v, u) || !tried.insert(u) {
            continue;
        }
        out.push(u);
    }
    if out.len() < count {
        for u in 0..n {
            if out.len() == count {
                break;
            }
            if u == v || g.has_edge(v, u) || tried.contains(&u) {
                continue;
            }
            out.push(u);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relative::{RelativeEntropyConfig, RelativeEntropyTable};
    use graphrare_tensor::Matrix;

    fn sample_graph() -> Graph {
        // Path 0-1-2-3-4 plus a chord 0-4 keeps rings interesting.
        let mut feats = Matrix::zeros(5, 3);
        for v in 0..5 {
            feats.set(v, v % 3, 1.0);
        }
        Graph::from_edges(
            5,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)],
            feats,
            vec![0, 1, 2, 0, 1],
            3,
        )
    }

    fn build(cfg: &SequenceConfig) -> (Graph, EntropySequences) {
        let g = sample_graph();
        let table = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
        let seqs = EntropySequences::build(&g, &table, cfg);
        (g, seqs)
    }

    #[test]
    fn additions_exclude_self_and_neighbors() {
        let (g, seqs) = build(&SequenceConfig::default());
        for v in 0..g.num_nodes() {
            for &(u, _) in seqs.additions(v) {
                let u = u as usize;
                assert_ne!(u, v);
                assert!(!g.has_edge(v, u), "candidate {u} already adjacent to {v}");
            }
        }
    }

    #[test]
    fn additions_sorted_descending() {
        let (_, seqs) = build(&SequenceConfig::default());
        for v in 0..seqs.len() {
            let adds = seqs.additions(v);
            for w in adds.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
        }
    }

    #[test]
    fn deletions_cover_neighbors_ascending() {
        let (g, seqs) = build(&SequenceConfig::default());
        for v in 0..g.num_nodes() {
            let dels = seqs.deletions(v);
            assert_eq!(dels.len(), g.degree(v));
            for w in dels.windows(2) {
                assert!(w[0].1 <= w[1].1);
            }
        }
    }

    #[test]
    fn max_additions_truncates() {
        let cfg = SequenceConfig { max_additions: 1, ..Default::default() };
        let (_, seqs) = build(&cfg);
        for v in 0..seqs.len() {
            assert!(seqs.max_k(v) <= 1);
        }
    }

    #[test]
    fn global_sample_respects_constraints() {
        let cfg = SequenceConfig {
            pool: CandidatePool::GlobalSample { per_node: 2, seed: 5 },
            max_additions: 16,
        };
        let (g, seqs) = build(&cfg);
        for v in 0..g.num_nodes() {
            assert!(seqs.additions(v).len() <= 2);
            for &(u, _) in seqs.additions(v) {
                assert!(!g.has_edge(v, u as usize));
                assert_ne!(u as usize, v);
            }
        }
    }

    #[test]
    fn shuffled_preserves_multiset() {
        let (_, seqs) = build(&SequenceConfig::default());
        let shuffled = seqs.shuffled(9);
        for v in 0..seqs.len() {
            let mut a: Vec<u32> = seqs.additions(v).iter().map(|&(u, _)| u).collect();
            let mut b: Vec<u32> = shuffled.additions(v).iter().map(|&(u, _)| u).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn non_finite_entropies_sort_without_panicking() {
        // An infinite feature against a zero row drives the pair softmax
        // to NaN (0 x inf inside the dot product), which used to panic the
        // `partial_cmp(..).unwrap()` ranking comparators. `total_cmp`
        // keeps the order total: the build must succeed and still cover
        // every neighbour / candidate deterministically.
        let mut feats = Matrix::zeros(4, 2);
        feats.set(0, 0, f32::INFINITY);
        feats.set(3, 0, 1.0);
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], feats, vec![0, 1, 0, 1], 2);
        let table = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
        let seqs = EntropySequences::build(
            &g,
            &table,
            &SequenceConfig { pool: CandidatePool::RemoteRing { hops: 3 }, max_additions: 8 },
        );
        for v in 0..g.num_nodes() {
            assert_eq!(seqs.max_d(v), g.degree(v), "deletion list of {v} lost neighbours");
        }
        // Building twice yields the same ranking: NaN ordering is total.
        let again = EntropySequences::build(
            &g,
            &table,
            &SequenceConfig { pool: CandidatePool::RemoteRing { hops: 3 }, max_additions: 8 },
        );
        for v in 0..g.num_nodes() {
            let ids =
                |s: &EntropySequences| s.additions(v).iter().map(|&(u, _)| u).collect::<Vec<_>>();
            assert_eq!(ids(&seqs), ids(&again));
        }
    }

    #[test]
    fn sample_non_neighbors_tops_up_on_near_complete_graph() {
        // Node 0 is adjacent to all but two of 200 nodes: the rejection
        // cap (count * 20 draws) almost never finds both eligible ids, so
        // the deterministic sweep must top the sample up.
        let n = 200;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if !(u == 0 && (v == 57 || v == 133)) {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(n, &edges, Matrix::zeros(n, 1), vec![0; n], 1);
        let mut rng = StdRng::seed_from_u64(42);
        let mut got = sample_non_neighbors(&g, 0, 2, &mut rng);
        got.sort_unstable();
        assert_eq!(got, vec![57, 133]);
        // Asking for more than exist returns exactly the eligible set.
        let mut rng = StdRng::seed_from_u64(7);
        let mut all = sample_non_neighbors(&g, 0, 10, &mut rng);
        all.sort_unstable();
        assert_eq!(all, vec![57, 133]);
    }

    #[test]
    fn shuffled_changes_order_somewhere() {
        let (_, seqs) = build(&SequenceConfig::default());
        let shuffled = seqs.shuffled(1);
        let changed = (0..seqs.len()).any(|v| {
            seqs.additions(v).iter().map(|&(u, _)| u).collect::<Vec<_>>()
                != shuffled.additions(v).iter().map(|&(u, _)| u).collect::<Vec<_>>()
        });
        assert!(changed, "shuffle left every sequence identical");
    }
}
