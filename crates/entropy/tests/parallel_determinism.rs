//! Thread-count invariance of the entropy precompute pipeline.
//!
//! `StructuralEntropyTable::new`, `RelativeEntropyTable` (including the
//! exact `feature_range` fold), `dense_matrix`, and
//! `EntropySequences::build` all run node- or row-parallel; their output
//! must be bitwise identical for any thread count. `GlobalSample`
//! additionally reseeds per node (`seed ^ v`), so its samples are
//! independent of visit order entirely.

use graphrare_entropy::{
    CandidatePool, EntropySequences, RelativeEntropyConfig, RelativeEntropyTable, SequenceConfig,
    StructuralEntropyTable,
};
use graphrare_graph::Graph;
use graphrare_tensor::parallel::with_threads;
use graphrare_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random graph with clustered features: enough irregularity to
/// exercise every branch, small enough for exact `feature_range`.
fn random_graph(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for v in 1..n {
        // Connected backbone plus random chords.
        edges.push((v - 1, v));
        for _ in 0..2 {
            let u = rng.gen_range(0..n);
            if u != v {
                edges.push((v.min(u), v.max(u)));
            }
        }
    }
    let classes = 3;
    let labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..classes)).collect();
    let dim = 8;
    let mut feats = Matrix::zeros(n, dim);
    for v in 0..n {
        for d in 0..dim {
            if rng.gen_bool(0.3) {
                feats.set(v, d, rng.gen_range(0.0f32..1.0));
            }
        }
    }
    Graph::from_edges(n, &edges, feats, labels, classes)
}

const THREAD_COUNTS: [usize; 3] = [2, 4, 5];

#[test]
fn structural_table_thread_invariant() {
    let g = random_graph(60, 1);
    let serial = with_threads(1, || StructuralEntropyTable::new(&g));
    for t in THREAD_COUNTS {
        let par = with_threads(t, || StructuralEntropyTable::new(&g));
        for v in 0..60 {
            for u in 0..60 {
                assert_eq!(
                    serial.entropy(v, u).to_bits(),
                    par.entropy(v, u).to_bits(),
                    "H_s({v},{u}) diverged at {t} threads"
                );
            }
        }
    }
}

#[test]
fn relative_table_and_dense_matrix_thread_invariant() {
    let g = random_graph(50, 2);
    let cfg = RelativeEntropyConfig::default();
    let (serial_m, serial_range) = with_threads(1, || {
        let t = RelativeEntropyTable::new(&g, &cfg);
        let sample = t.entropy(3, 41);
        (t.dense_matrix(), sample)
    });
    for threads in THREAD_COUNTS {
        let (par_m, par_range) = with_threads(threads, || {
            let t = RelativeEntropyTable::new(&g, &cfg);
            let sample = t.entropy(3, 41);
            (t.dense_matrix(), sample)
        });
        assert_eq!(serial_range.to_bits(), par_range.to_bits());
        assert_eq!(serial_m, par_m, "dense_matrix diverged at {threads} threads");
    }
}

fn assert_sequences_equal(a: &EntropySequences, b: &EntropySequences, label: &str) {
    assert_eq!(a.len(), b.len());
    for v in 0..a.len() {
        assert_eq!(a.additions(v), b.additions(v), "{label}: additions({v})");
        assert_eq!(a.deletions(v), b.deletions(v), "{label}: deletions({v})");
    }
}

#[test]
fn remote_ring_sequences_thread_invariant() {
    let g = random_graph(70, 3);
    let table = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
    let cfg = SequenceConfig::default();
    let serial = with_threads(1, || EntropySequences::build(&g, &table, &cfg));
    for t in THREAD_COUNTS {
        let par = with_threads(t, || EntropySequences::build(&g, &table, &cfg));
        assert_sequences_equal(&serial, &par, "remote-ring");
    }
}

#[test]
fn global_sample_sequences_thread_invariant() {
    let g = random_graph(70, 4);
    let table = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
    let cfg = SequenceConfig {
        pool: CandidatePool::GlobalSample { per_node: 8, seed: 0xCAFE },
        max_additions: 6,
    };
    let serial = with_threads(1, || EntropySequences::build(&g, &table, &cfg));
    for t in THREAD_COUNTS {
        let par = with_threads(t, || EntropySequences::build(&g, &table, &cfg));
        assert_sequences_equal(&serial, &par, "global-sample");
    }
}

#[test]
fn global_sample_reproducible_and_seed_sensitive() {
    let g = random_graph(70, 5);
    let table = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
    let cfg = |seed| SequenceConfig {
        pool: CandidatePool::GlobalSample { per_node: 8, seed },
        max_additions: 6,
    };
    let a = EntropySequences::build(&g, &table, &cfg(7));
    let b = EntropySequences::build(&g, &table, &cfg(7));
    assert_sequences_equal(&a, &b, "same-seed rebuild");
    let c = EntropySequences::build(&g, &table, &cfg(8));
    let differs = (0..a.len()).any(|v| a.additions(v) != c.additions(v));
    assert!(differs, "different pool seeds produced identical samples");
}

#[test]
fn partial_selection_matches_full_sort() {
    // `build` keeps the top `max_additions` via select_nth + prefix sort;
    // this must equal sorting the full candidate ranking and truncating.
    let g = random_graph(60, 6);
    let table = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
    let small = SequenceConfig { max_additions: 4, ..Default::default() };
    let large = SequenceConfig { max_additions: usize::MAX, ..Default::default() };
    let truncated = EntropySequences::build(&g, &table, &small);
    let full = EntropySequences::build(&g, &table, &large);
    for v in 0..truncated.len() {
        let want: Vec<(u32, f32)> = full.additions(v).iter().copied().take(4).collect();
        assert_eq!(truncated.additions(v), &want[..], "node {v}");
    }
}
