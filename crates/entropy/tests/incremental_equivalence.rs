//! Property suite: the incremental entropy engine is bit-identical to a
//! from-scratch build (`RelativeEntropyTable::new` +
//! `EntropySequences::build`) over random graphs and random flip traces,
//! for both candidate pools — the same correctness contract
//! `rewire_equivalence.rs` enforces for the rewiring engine.

use proptest::prelude::*;

use graphrare_entropy::{
    CandidatePool, EntropySequences, IncrementalEntropy, RelativeEntropyConfig,
    RelativeEntropyTable, SequenceConfig,
};
use graphrare_graph::{EdgeEdit, Graph};
use graphrare_tensor::Matrix;

/// Deterministic pseudo-features: enough variation for non-trivial entropy
/// rankings without an RNG in the strategy.
fn features(n: usize) -> Matrix {
    Matrix::from_fn(n, 4, |r, c| ((r * 7 + c * 3 + r * c) % 5) as f32 / 4.0)
}

fn graph(n: usize, edges: &[(usize, usize)]) -> Graph {
    let labels: Vec<usize> = (0..n).map(|v| v % 3).collect();
    Graph::from_edges(n, edges, features(n), labels, 3)
}

fn pool_of(idx: u8) -> CandidatePool {
    if idx.is_multiple_of(2) {
        CandidatePool::RemoteRing { hops: 3 }
    } else {
        CandidatePool::GlobalSample { per_node: 4, seed: 11 }
    }
}

/// The engine's full contract against the reference path: its graph
/// mirror, every `H(v, u)` bit, and both rankings of every node must
/// equal a from-scratch build on the reference graph.
fn assert_matches_fresh(
    engine: &IncrementalEntropy,
    reference: &Graph,
    ecfg: &RelativeEntropyConfig,
) {
    assert_eq!(engine.graph().edge_vec(), reference.edge_vec(), "graph mirror diverged");
    let fresh_table = RelativeEntropyTable::new(reference, ecfg);
    let n = reference.num_nodes();
    for v in 0..n {
        for u in 0..n {
            assert_eq!(
                engine.table().entropy(v, u).to_bits(),
                fresh_table.entropy(v, u).to_bits(),
                "H({v},{u}) diverged"
            );
        }
    }
    let fresh = EntropySequences::build(reference, &fresh_table, engine.config());
    assert_eq!(engine.sequences(), &fresh, "rankings diverged from fresh build");
}

/// Replays a trace of raw (possibly degenerate) flip batches through the
/// engine and, via `apply_edits`, through a reference graph, checking the
/// contract after every batch.
fn run_trace(
    n: usize,
    edges: &[(usize, usize)],
    pool: CandidatePool,
    trace: &[Vec<(usize, usize, bool)>],
    threshold: f64,
) {
    let ecfg = RelativeEntropyConfig::default();
    let cfg = SequenceConfig { pool, max_additions: 8 };
    let mut reference = graph(n, edges);
    let mut engine = IncrementalEntropy::new(&reference, &ecfg, cfg);
    engine.set_wholesale_threshold(threshold);
    for batch in trace {
        let edits: Vec<(usize, usize, EdgeEdit)> = batch
            .iter()
            .map(|&(u, v, add)| (u, v, if add { EdgeEdit::Add } else { EdgeEdit::Remove }))
            .collect();
        reference.apply_edits(&edits);
        engine.apply_flips(batch);
        assert_matches_fresh(&engine, &reference, &ecfg);
    }
}

/// `(n, edges, pool, trace)` — one random replay instance. Flip batches
/// are raw: duplicates, no-op flips and self-loops are all legal inputs
/// and must normalize identically to `apply_edits`.
type Instance = (usize, Vec<(usize, usize)>, u8, Vec<Vec<(usize, usize, bool)>>);

fn arb_instance() -> impl Strategy<Value = Instance> {
    (8usize..24).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0..n), n / 2..3 * n),
            0u8..2,
            proptest::collection::vec(
                proptest::collection::vec((0..n, 0..n, any::<bool>()), 1..2 * n),
                1..6,
            ),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random graphs x random flip traces x both candidate pools at the
    /// default fallback threshold. Small `n` with batches up to `2n`
    /// flips crosses the wholesale threshold naturally, so both the
    /// per-row path and the fallback are exercised.
    #[test]
    fn incremental_matches_fresh_build((n, edges, pool_idx, trace) in arb_instance()) {
        run_trace(n, &edges, pool_of(pool_idx), &trace, 0.5);
    }

    /// Never-fallback variant: threshold above 1 forces the per-row path
    /// even for batches that dirty every node, the hardest case for the
    /// dirty-set rules.
    #[test]
    fn per_row_path_matches_fresh_build((n, edges, pool_idx, trace) in arb_instance()) {
        run_trace(n, &edges, pool_of(pool_idx), &trace, 2.0);
    }
}

/// Deterministic cross-check of the two extreme thresholds: the per-row
/// path and the wholesale fallback must agree with each other (both are
/// pinned to the fresh build by `run_trace`'s assertion).
#[test]
fn thresholds_agree_on_fixed_trace() {
    let n = 12;
    let edges: Vec<(usize, usize)> =
        (0..n - 1).map(|i| (i, i + 1)).chain([(0, 6), (3, 9)]).collect();
    let trace: Vec<Vec<(usize, usize, bool)>> = vec![
        vec![(0, 4, true), (5, 6, false)],
        vec![(2, 10, true), (2, 10, false), (2, 10, true)],
        vec![(1, 2, false), (8, 9, false), (0, 11, true)],
    ];
    for pool in [
        CandidatePool::RemoteRing { hops: 3 },
        CandidatePool::GlobalSample { per_node: 4, seed: 7 },
    ] {
        run_trace(n, &edges, pool, &trace, 0.0); // always wholesale
        run_trace(n, &edges, pool, &trace, 2.0); // never wholesale
    }
}
