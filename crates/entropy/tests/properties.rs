//! Property-based tests of the entropy equations over arbitrary graphs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use graphrare_entropy::feature::{Embedding, FeatureEntropyTable, Normalization};
use graphrare_entropy::structural::{degree_distribution, js_divergence};
use graphrare_entropy::{
    EntropySequences, RelativeEntropyConfig, RelativeEntropyTable, SequenceConfig,
};
use graphrare_graph::Graph;
use graphrare_tensor::Matrix;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..14, any::<u64>()).prop_flat_map(|(n, seed)| {
        proptest::collection::vec((0..n, 0..n), 0..28).prop_map(move |pairs| {
            let mut rng = StdRng::seed_from_u64(seed);
            let features = Matrix::from_fn(n, 5, |_, _| if rng.gen_bool(0.3) { 1.0 } else { 0.0 });
            let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
            Graph::from_edges(n, &pairs, features, labels, 2)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Degree distributions are valid probability vectors, descending.
    #[test]
    fn degree_distributions_are_descending_distributions(g in arb_graph()) {
        for v in 0..g.num_nodes() {
            let p = degree_distribution(&g, v);
            let sum: f64 = p.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "node {v} sums to {sum}");
            prop_assert!(p.windows(2).all(|w| w[0] >= w[1]), "node {v} not descending");
            prop_assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    /// JS divergence is a bounded symmetric divergence.
    #[test]
    fn js_divergence_axioms(
        p_raw in proptest::collection::vec(0.0f64..1.0, 1..8),
        q_raw in proptest::collection::vec(0.0f64..1.0, 1..8),
    ) {
        let norm = |v: &[f64]| -> Vec<f64> {
            let s: f64 = v.iter().sum();
            if s == 0.0 {
                let mut out = vec![0.0; v.len()];
                out[0] = 1.0;
                out
            } else {
                v.iter().map(|x| x / s).collect()
            }
        };
        let p = norm(&p_raw);
        let q = norm(&q_raw);
        let js = js_divergence(&p, &q);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&js), "JS = {js}");
        prop_assert!((js - js_divergence(&q, &p)).abs() < 1e-12);
        prop_assert!(js_divergence(&p, &p).abs() < 1e-12);
    }

    /// Eq. 4's pair probabilities form a distribution over all ordered
    /// pairs under exact normalisation.
    #[test]
    fn feature_probabilities_sum_to_one(g in arb_graph()) {
        let t = FeatureEntropyTable::new(&g, Embedding::Identity, Normalization::Exact);
        let n = g.num_nodes();
        let total: f64 = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .map(|(i, j)| t.log_prob(i, j).exp())
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "ΣP = {total}");
    }

    /// The combined metric is symmetric, finite and monotone in λ for
    /// structurally identical pairs.
    #[test]
    fn relative_entropy_lambda_monotonicity(g in arb_graph()) {
        let low = RelativeEntropyTable::new(
            &g,
            &RelativeEntropyConfig { lambda: 0.1, ..Default::default() },
        );
        let high = RelativeEntropyTable::new(
            &g,
            &RelativeEntropyConfig { lambda: 10.0, ..Default::default() },
        );
        for v in 0..g.num_nodes() {
            for u in 0..g.num_nodes() {
                // H_s >= 0, so raising λ can never lower the total.
                prop_assert!(high.entropy(v, u) >= low.entropy(v, u) - 1e-9);
            }
        }
    }

    /// Sequence construction is deterministic and stable under rebuild.
    #[test]
    fn sequences_are_stable(g in arb_graph()) {
        let t = RelativeEntropyTable::new(&g, &RelativeEntropyConfig::default());
        let a = EntropySequences::build(&g, &t, &SequenceConfig::default());
        let b = EntropySequences::build(&g, &t, &SequenceConfig::default());
        for v in 0..g.num_nodes() {
            prop_assert_eq!(a.additions(v), b.additions(v));
            prop_assert_eq!(a.deletions(v), b.deletions(v));
        }
    }
}
