//! Dataset specifications matched to Table II of the paper.
//!
//! The original benchmark files (Wikipedia crawls for Chameleon/Squirrel,
//! WebKB pages for Cornell/Texas/Wisconsin, Planetoid citation data for
//! Cora/Pubmed) are not redistributable here, so each dataset is described
//! by the statistics the paper reports — node count, edge count, feature
//! dimensionality, class count and edge homophily ratio — plus two shape
//! parameters (degree-tail exponent and feature signal) chosen to mimic the
//! family each dataset comes from. The generator in
//! [`generator`](crate::generator) synthesises graphs matching these specs.

/// Identifier of one of the seven paper benchmarks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Wikipedia "chameleon" page network (heterophilic, dense).
    Chameleon,
    /// Wikipedia "squirrel" page network (heterophilic, very dense).
    Squirrel,
    /// WebKB Cornell web pages (heterophilic, tiny).
    Cornell,
    /// WebKB Texas web pages (strongly heterophilic, tiny).
    Texas,
    /// WebKB Wisconsin web pages (heterophilic, tiny).
    Wisconsin,
    /// Cora citation network (homophilic).
    Cora,
    /// Pubmed citation network (homophilic, large).
    Pubmed,
}

impl Dataset {
    /// All seven benchmarks in the paper's Table II order.
    pub const ALL: [Dataset; 7] = [
        Dataset::Chameleon,
        Dataset::Squirrel,
        Dataset::Cornell,
        Dataset::Texas,
        Dataset::Wisconsin,
        Dataset::Cora,
        Dataset::Pubmed,
    ];

    /// The five heterophilic benchmarks.
    pub const HETEROPHILIC: [Dataset; 5] = [
        Dataset::Chameleon,
        Dataset::Squirrel,
        Dataset::Cornell,
        Dataset::Texas,
        Dataset::Wisconsin,
    ];

    /// Human-readable name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Chameleon => "Chameleon",
            Dataset::Squirrel => "Squirrel",
            Dataset::Cornell => "Cornell",
            Dataset::Texas => "Texas",
            Dataset::Wisconsin => "Wisconsin",
            Dataset::Cora => "Cora",
            Dataset::Pubmed => "Pubmed",
        }
    }

    /// Full-scale specification matching Table II.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::Chameleon => DatasetSpec {
                name: "Chameleon",
                num_nodes: 2277,
                num_edges: 36101,
                feat_dim: 2325,
                num_classes: 5,
                homophily: 0.23,
                degree_exponent: 0.9,
                feature_signal: 0.35,
                feature_density: 0.02,
            },
            Dataset::Squirrel => DatasetSpec {
                name: "Squirrel",
                num_nodes: 5201,
                num_edges: 217_073,
                feat_dim: 2089,
                num_classes: 5,
                homophily: 0.22,
                degree_exponent: 0.95,
                feature_signal: 0.3,
                feature_density: 0.02,
            },
            Dataset::Cornell => DatasetSpec {
                name: "Cornell",
                num_nodes: 183,
                num_edges: 295,
                feat_dim: 1703,
                num_classes: 5,
                homophily: 0.30,
                degree_exponent: 0.5,
                feature_signal: 0.7,
                feature_density: 0.03,
            },
            Dataset::Texas => DatasetSpec {
                name: "Texas",
                num_nodes: 183,
                num_edges: 309,
                feat_dim: 1703,
                num_classes: 5,
                homophily: 0.11,
                degree_exponent: 0.5,
                feature_signal: 0.7,
                feature_density: 0.03,
            },
            Dataset::Wisconsin => DatasetSpec {
                name: "Wisconsin",
                num_nodes: 251,
                num_edges: 499,
                feat_dim: 1703,
                num_classes: 5,
                homophily: 0.21,
                degree_exponent: 0.5,
                feature_signal: 0.7,
                feature_density: 0.03,
            },
            Dataset::Cora => DatasetSpec {
                name: "Cora",
                num_nodes: 2708,
                num_edges: 5429,
                feat_dim: 1433,
                num_classes: 7,
                homophily: 0.81,
                degree_exponent: 0.3,
                feature_signal: 0.5,
                feature_density: 0.015,
            },
            Dataset::Pubmed => DatasetSpec {
                name: "Pubmed",
                num_nodes: 19717,
                num_edges: 44338,
                feat_dim: 500,
                num_classes: 3,
                homophily: 0.80,
                degree_exponent: 0.3,
                feature_signal: 0.55,
                feature_density: 0.05,
            },
        }
    }

    /// Scaled-down specification for fast experiments.
    ///
    /// Node count is capped (and edge count scaled to preserve the mean
    /// degree), feature dimensionality is capped at 128. Homophily, class
    /// count and degree shape are preserved — the controlling variables of
    /// every claim in the paper's evaluation.
    pub fn spec_mini(self) -> DatasetSpec {
        let full = self.spec();
        let cap = match self {
            Dataset::Cornell | Dataset::Texas | Dataset::Wisconsin => full.num_nodes,
            Dataset::Squirrel => 240,
            _ => 300,
        };
        full.scaled(cap, 128)
    }
}

/// Parameters controlling one synthetic benchmark graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetSpec {
    /// Display name.
    pub name: &'static str,
    /// Number of nodes `N`.
    pub num_nodes: usize,
    /// Target number of undirected edges `|E|`.
    pub num_edges: usize,
    /// Feature dimensionality `d`.
    pub feat_dim: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Target edge homophily ratio `H` (Eq. 1).
    pub homophily: f64,
    /// Degree-propensity tail exponent: 0 = uniform degrees, larger =
    /// heavier tail (Wikipedia graphs are heavy-tailed).
    pub degree_exponent: f64,
    /// Probability boost for class-specific feature coordinates; larger
    /// means features are more label-informative (WebKB-like).
    pub feature_signal: f64,
    /// Base activation rate of the sparse binary features.
    pub feature_density: f64,
}

impl DatasetSpec {
    /// Returns a spec scaled to at most `max_nodes` nodes (mean degree
    /// preserved) and at most `max_feat` feature dimensions.
    pub fn scaled(&self, max_nodes: usize, max_feat: usize) -> DatasetSpec {
        if self.num_nodes <= max_nodes && self.feat_dim <= max_feat {
            return *self;
        }
        let nodes = self.num_nodes.min(max_nodes);
        let ratio = nodes as f64 / self.num_nodes as f64;
        let edges = ((self.num_edges as f64 * ratio).round() as usize).max(nodes);
        DatasetSpec {
            num_nodes: nodes,
            num_edges: edges,
            feat_dim: self.feat_dim.min(max_feat),
            ..*self
        }
    }

    /// Mean degree implied by the spec.
    pub fn mean_degree(&self) -> f64 {
        2.0 * self.num_edges as f64 / self.num_nodes.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_statistics_are_exact() {
        let c = Dataset::Chameleon.spec();
        assert_eq!((c.num_nodes, c.num_edges, c.feat_dim, c.num_classes), (2277, 36101, 2325, 5));
        let p = Dataset::Pubmed.spec();
        assert_eq!((p.num_nodes, p.num_edges, p.feat_dim, p.num_classes), (19717, 44338, 500, 3));
        assert!((Dataset::Texas.spec().homophily - 0.11).abs() < 1e-9);
        assert!((Dataset::Cora.spec().homophily - 0.81).abs() < 1e-9);
    }

    #[test]
    fn all_lists_every_dataset_once() {
        assert_eq!(Dataset::ALL.len(), 7);
        let names: std::collections::HashSet<_> = Dataset::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn mini_preserves_mean_degree_and_homophily() {
        for d in Dataset::ALL {
            let full = d.spec();
            let mini = d.spec_mini();
            assert!(mini.num_nodes <= full.num_nodes);
            assert_eq!(mini.num_classes, full.num_classes);
            assert_eq!(mini.homophily, full.homophily);
            if mini.num_nodes < full.num_nodes {
                let rel = (mini.mean_degree() - full.mean_degree()).abs() / full.mean_degree();
                assert!(rel < 0.15, "{}: mean degree drifted {rel}", full.name);
            }
        }
    }

    #[test]
    fn webkb_minis_are_full_size() {
        assert_eq!(Dataset::Cornell.spec_mini().num_nodes, 183);
        assert_eq!(Dataset::Texas.spec_mini().num_nodes, 183);
        assert_eq!(Dataset::Wisconsin.spec_mini().num_nodes, 251);
    }

    #[test]
    fn scaled_noop_when_under_caps() {
        let s = Dataset::Cornell.spec();
        assert_eq!(s.scaled(10_000, 10_000), s);
    }
}
