//! # graphrare-datasets
//!
//! Synthetic stand-ins for the seven benchmark graphs of the GraphRARE
//! paper (Table II): Chameleon, Squirrel, Cornell, Texas, Wisconsin, Cora
//! and Pubmed.
//!
//! The raw benchmark files are not redistributable, so each dataset is
//! regenerated from the statistics the paper reports — node/edge counts,
//! feature dimensionality, class count and edge homophily — via a
//! label-aware degree-corrected stochastic block model with
//! class-conditional sparse binary features (see [`generator`]). Splits
//! follow the paper's ten stratified 60/20/20 protocol ([`splits`]).
//!
//! ```
//! use graphrare_datasets::{generator, spec::Dataset, splits};
//! use graphrare_graph::metrics::homophily_ratio;
//!
//! let g = generator::generate_mini(Dataset::Texas, 42);
//! assert_eq!(g.num_classes(), 5);
//! // Texas is strongly heterophilic (H = 0.11 in Table II).
//! assert!(homophily_ratio(&g) < 0.2);
//! let ten = splits::ten_splits(g.labels(), g.num_classes(), 42);
//! assert_eq!(ten.len(), 10);
//! ```

#![warn(missing_docs)]

pub mod generator;
pub mod spec;
pub mod splits;

pub use generator::{generate, generate_mini, generate_spec};
pub use spec::{Dataset, DatasetSpec};
pub use splits::{stratified_split, ten_splits, try_stratified_split, Split, SplitError};
