//! Train/validation/test splits.
//!
//! The paper (Section V-C) uses the ten random 60%/20%/20% per-class splits
//! of Pei et al. (Geom-GCN). Those split files are not redistributable, so
//! this module reproduces the *procedure*: per-class stratified 60/20/20
//! splits drawn from a seeded RNG, ten per dataset.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One train/validation/test partition of node indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Split {
    /// Training node indices (60% of each class).
    pub train: Vec<usize>,
    /// Validation node indices (20% of each class).
    pub val: Vec<usize>,
    /// Test node indices (remaining 20%).
    pub test: Vec<usize>,
}

impl Split {
    /// Total number of nodes covered by the split.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// Whether the split covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Draws one stratified 60/20/20 split.
///
/// Within every class the nodes are shuffled and divided 60/20/20 (train
/// gets the rounding remainder, matching the Geom-GCN splits which keep
/// train largest).
pub fn stratified_split(labels: &[usize], num_classes: usize, seed: u64) -> Split {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for (i, &l) in labels.iter().enumerate() {
        by_class[l].push(i);
    }
    let mut split = Split { train: Vec::new(), val: Vec::new(), test: Vec::new() };
    for members in &mut by_class {
        // Fisher–Yates shuffle.
        for i in (1..members.len()).rev() {
            let j = rng.gen_range(0..=i);
            members.swap(i, j);
        }
        let n = members.len();
        let n_val = n / 5;
        let n_test = n / 5;
        let n_train = n - n_val - n_test;
        split.train.extend_from_slice(&members[..n_train]);
        split.val.extend_from_slice(&members[n_train..n_train + n_val]);
        split.test.extend_from_slice(&members[n_train + n_val..]);
    }
    split.train.sort_unstable();
    split.val.sort_unstable();
    split.test.sort_unstable();
    split
}

/// The paper's protocol: ten stratified splits with distinct seeds derived
/// from `base_seed`.
pub fn ten_splits(labels: &[usize], num_classes: usize, base_seed: u64) -> Vec<Split> {
    (0..10)
        .map(|i| {
            stratified_split(labels, num_classes, base_seed.wrapping_add(i as u64 * 1_000_003))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> Vec<usize> {
        // 40 nodes, 4 classes, 10 each.
        (0..40).map(|i| i % 4).collect()
    }

    #[test]
    fn split_is_a_partition() {
        let l = labels();
        let s = stratified_split(&l, 4, 1);
        assert_eq!(s.len(), 40);
        let mut all: Vec<usize> = s.train.iter().chain(&s.val).chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn ratios_are_60_20_20() {
        let l = labels();
        let s = stratified_split(&l, 4, 2);
        assert_eq!(s.train.len(), 24);
        assert_eq!(s.val.len(), 8);
        assert_eq!(s.test.len(), 8);
    }

    #[test]
    fn stratified_within_class() {
        let l = labels();
        let s = stratified_split(&l, 4, 3);
        for class in 0..4 {
            let train_c = s.train.iter().filter(|&&i| l[i] == class).count();
            assert_eq!(train_c, 6, "class {class} train count");
        }
    }

    #[test]
    fn rounding_remainder_goes_to_train() {
        // 7 nodes, one class: 7/5 = 1 val, 1 test, 5 train.
        let l = vec![0usize; 7];
        let s = stratified_split(&l, 1, 4);
        assert_eq!((s.train.len(), s.val.len(), s.test.len()), (5, 1, 1));
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let l = labels();
        assert_eq!(stratified_split(&l, 4, 9), stratified_split(&l, 4, 9));
        assert_ne!(stratified_split(&l, 4, 9), stratified_split(&l, 4, 10));
    }

    #[test]
    fn ten_splits_are_distinct() {
        let l = labels();
        let splits = ten_splits(&l, 4, 0);
        assert_eq!(splits.len(), 10);
        for i in 0..10 {
            for j in (i + 1)..10 {
                assert_ne!(splits[i], splits[j], "splits {i} and {j} identical");
            }
        }
    }
}
