//! Train/validation/test splits.
//!
//! The paper (Section V-C) uses the ten random 60%/20%/20% per-class splits
//! of Pei et al. (Geom-GCN). Those split files are not redistributable, so
//! this module reproduces the *procedure*: per-class stratified 60/20/20
//! splits drawn from a seeded RNG, ten per dataset.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Why a split could not be drawn from the given labels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SplitError {
    /// `num_classes` was zero while labels were provided: every label
    /// would be out of range, and the "split" would be silently empty.
    NoClasses {
        /// Number of labels that were provided.
        num_labels: usize,
    },
    /// A label was `>= num_classes` (this used to be an
    /// index-out-of-bounds panic deep inside the bucketing loop).
    LabelOutOfRange {
        /// Index of the offending node.
        node: usize,
        /// The out-of-range label value.
        label: usize,
        /// The declared number of classes.
        num_classes: usize,
    },
}

impl fmt::Display for SplitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplitError::NoClasses { num_labels } => {
                write!(f, "cannot stratify {num_labels} labels over zero classes")
            }
            SplitError::LabelOutOfRange { node, label, num_classes } => write!(
                f,
                "node {node} has label {label}, outside the declared {num_classes} classes"
            ),
        }
    }
}

impl std::error::Error for SplitError {}

/// One train/validation/test partition of node indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Split {
    /// Training node indices (60% of each class).
    pub train: Vec<usize>,
    /// Validation node indices (20% of each class).
    pub val: Vec<usize>,
    /// Test node indices (remaining 20%).
    pub test: Vec<usize>,
}

impl Split {
    /// Total number of nodes covered by the split.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// Whether the split covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Draws one stratified 60/20/20 split.
///
/// Within every class the nodes are shuffled and divided 60/20/20 (train
/// gets the rounding remainder, matching the Geom-GCN splits which keep
/// train largest).
///
/// # Panics
/// Panics with the [`SplitError`] message when the labels are
/// inconsistent with `num_classes`; use [`try_stratified_split`] to
/// handle malformed inputs (e.g. user-supplied datasets) gracefully.
pub fn stratified_split(labels: &[usize], num_classes: usize, seed: u64) -> Split {
    match try_stratified_split(labels, num_classes, seed) {
        Ok(split) => split,
        Err(e) => panic!("stratified_split: {e}"),
    }
}

/// [`stratified_split`], returning a typed error instead of panicking on
/// inconsistent inputs: a label `>= num_classes` (previously an
/// index-out-of-bounds panic) or `num_classes == 0` with labels present
/// (previously a silently empty split).
pub fn try_stratified_split(
    labels: &[usize],
    num_classes: usize,
    seed: u64,
) -> Result<Split, SplitError> {
    if num_classes == 0 && !labels.is_empty() {
        return Err(SplitError::NoClasses { num_labels: labels.len() });
    }
    if let Some((node, &label)) = labels.iter().enumerate().find(|&(_, &l)| l >= num_classes) {
        return Err(SplitError::LabelOutOfRange { node, label, num_classes });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for (i, &l) in labels.iter().enumerate() {
        by_class[l].push(i);
    }
    let mut split = Split { train: Vec::new(), val: Vec::new(), test: Vec::new() };
    for members in &mut by_class {
        // Fisher–Yates shuffle.
        for i in (1..members.len()).rev() {
            let j = rng.gen_range(0..=i);
            members.swap(i, j);
        }
        let n = members.len();
        let n_val = n / 5;
        let n_test = n / 5;
        let n_train = n - n_val - n_test;
        split.train.extend_from_slice(&members[..n_train]);
        split.val.extend_from_slice(&members[n_train..n_train + n_val]);
        split.test.extend_from_slice(&members[n_train + n_val..]);
    }
    split.train.sort_unstable();
    split.val.sort_unstable();
    split.test.sort_unstable();
    Ok(split)
}

/// The paper's protocol: ten stratified splits with distinct seeds derived
/// from `base_seed`.
pub fn ten_splits(labels: &[usize], num_classes: usize, base_seed: u64) -> Vec<Split> {
    (0..10)
        .map(|i| {
            stratified_split(labels, num_classes, base_seed.wrapping_add(i as u64 * 1_000_003))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> Vec<usize> {
        // 40 nodes, 4 classes, 10 each.
        (0..40).map(|i| i % 4).collect()
    }

    #[test]
    fn split_is_a_partition() {
        let l = labels();
        let s = stratified_split(&l, 4, 1);
        assert_eq!(s.len(), 40);
        let mut all: Vec<usize> = s.train.iter().chain(&s.val).chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn ratios_are_60_20_20() {
        let l = labels();
        let s = stratified_split(&l, 4, 2);
        assert_eq!(s.train.len(), 24);
        assert_eq!(s.val.len(), 8);
        assert_eq!(s.test.len(), 8);
    }

    #[test]
    fn stratified_within_class() {
        let l = labels();
        let s = stratified_split(&l, 4, 3);
        for class in 0..4 {
            let train_c = s.train.iter().filter(|&&i| l[i] == class).count();
            assert_eq!(train_c, 6, "class {class} train count");
        }
    }

    #[test]
    fn rounding_remainder_goes_to_train() {
        // 7 nodes, one class: 7/5 = 1 val, 1 test, 5 train.
        let l = vec![0usize; 7];
        let s = stratified_split(&l, 1, 4);
        assert_eq!((s.train.len(), s.val.len(), s.test.len()), (5, 1, 1));
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let l = labels();
        assert_eq!(stratified_split(&l, 4, 9), stratified_split(&l, 4, 9));
        assert_ne!(stratified_split(&l, 4, 9), stratified_split(&l, 4, 10));
    }

    #[test]
    fn label_out_of_range_is_a_typed_error() {
        // `labels[2] == 5` with 4 declared classes used to panic with a
        // bare index-out-of-bounds inside the bucketing loop.
        let l = vec![0usize, 1, 5, 2];
        let err = try_stratified_split(&l, 4, 0).unwrap_err();
        assert_eq!(err, SplitError::LabelOutOfRange { node: 2, label: 5, num_classes: 4 });
        assert!(err.to_string().contains("label 5"));
    }

    #[test]
    fn zero_classes_with_labels_is_a_typed_error() {
        // Previously this silently produced an empty split.
        let err = try_stratified_split(&[0, 0, 0], 0, 0).unwrap_err();
        assert_eq!(err, SplitError::NoClasses { num_labels: 3 });
        // No labels over no classes is a degenerate-but-consistent input.
        assert!(try_stratified_split(&[], 0, 0).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "outside the declared 2 classes")]
    fn panicking_wrapper_carries_the_error_message() {
        let _ = stratified_split(&[0, 3], 2, 0);
    }

    #[test]
    fn try_split_matches_panicking_split_on_valid_input() {
        let l = labels();
        assert_eq!(try_stratified_split(&l, 4, 6).unwrap(), stratified_split(&l, 4, 6));
    }

    #[test]
    fn ten_splits_are_distinct() {
        let l = labels();
        let splits = ten_splits(&l, 4, 0);
        assert_eq!(splits.len(), 10);
        for i in 0..10 {
            for j in (i + 1)..10 {
                assert_ne!(splits[i], splits[j], "splits {i} and {j} identical");
            }
        }
    }
}
