//! Synthetic graph generation matched to a [`DatasetSpec`].
//!
//! The generator is a label-aware, degree-corrected stochastic block model:
//!
//! 1. Labels are assigned in (near-)balanced fashion and shuffled.
//! 2. Each node receives a degree propensity `w_i ∝ u_i^{-α}` (power law
//!    with exponent `α = degree_exponent`; `α = 0` is uniform).
//! 3. Edges are sampled endpoint-by-endpoint: the first endpoint is drawn
//!    by propensity, the second from the same class with probability `H`
//!    and from a different class otherwise, again by propensity. This makes
//!    the expected edge homophily equal `H` (Eq. 1) by construction.
//! 4. Features are sparse binary bag-of-words style vectors: every class
//!    owns a block of "topic" coordinates activated with a boosted rate;
//!    all coordinates share a background rate.
//!
//! These are exactly the controlling variables Table II reports, so the
//! relative behaviour of methods across datasets is exercised on the same
//! axes as the paper.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use graphrare_graph::{edge_key, Graph};
use graphrare_tensor::Matrix;

use crate::spec::{Dataset, DatasetSpec};

/// Generates a graph for a named benchmark at full scale.
pub fn generate(dataset: Dataset, seed: u64) -> Graph {
    generate_spec(&dataset.spec(), seed)
}

/// Generates a graph for a named benchmark at mini scale (see
/// [`Dataset::spec_mini`]).
pub fn generate_mini(dataset: Dataset, seed: u64) -> Graph {
    generate_spec(&dataset.spec_mini(), seed)
}

/// Generates a graph matching an arbitrary [`DatasetSpec`].
///
/// Deterministic: the same `(spec, seed)` pair always yields the same
/// graph.
pub fn generate_spec(spec: &DatasetSpec, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = spec.num_nodes;
    let labels = balanced_labels(n, spec.num_classes, &mut rng);
    let features = class_features(
        &labels,
        spec.feat_dim,
        spec.num_classes,
        spec.feature_density,
        spec.feature_signal,
        &mut rng,
    );
    // Degree propensities: heavy-tailed for wiki-style graphs.
    let propensity: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(0.05..1.0);
            u.powf(-spec.degree_exponent)
        })
        .collect();
    // Per-class cumulative samplers.
    let mut class_members: Vec<Vec<usize>> = vec![Vec::new(); spec.num_classes];
    for (i, &l) in labels.iter().enumerate() {
        class_members[l].push(i);
    }
    let global_sampler = WeightedSampler::new((0..n).collect(), &propensity);
    let class_samplers: Vec<WeightedSampler> = class_members
        .iter()
        .map(|members| WeightedSampler::new(members.clone(), &propensity))
        .collect();

    // Collect the edge list up front and build the graph in one bulk
    // pass: per-edge `Graph::add_edge` is a full CSR splice, which would
    // make generation quadratic. The local key set reproduces `add_edge`'s
    // dedup/self-loop semantics exactly, so the sampled RNG stream — and
    // hence the generated graph — is unchanged.
    let target = spec.num_edges.min(n * (n - 1) / 2);
    let mut seen: HashSet<u64> = HashSet::with_capacity(2 * target);
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(target);
    let mut attempts = 0usize;
    let max_attempts = target * 60 + 1000;
    while edges.len() < target && attempts < max_attempts {
        attempts += 1;
        let u = global_sampler.sample(&mut rng);
        let same_class = rng.gen_bool(spec.homophily.clamp(0.0, 1.0));
        let v = if same_class {
            class_samplers[labels[u]].sample(&mut rng)
        } else {
            // Rejection-sample a node of a different class.
            let mut v = global_sampler.sample(&mut rng);
            let mut guard = 0;
            while labels[v] == labels[u] && guard < 64 {
                v = global_sampler.sample(&mut rng);
                guard += 1;
            }
            v
        };
        if u != v && seen.insert(edge_key(u, v)) {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges, features, labels, spec.num_classes)
}

/// Near-balanced shuffled label assignment.
fn balanced_labels(n: usize, classes: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
    // Fisher–Yates shuffle.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        labels.swap(i, j);
    }
    labels
}

/// Class-conditional sparse binary features.
fn class_features(
    labels: &[usize],
    dim: usize,
    classes: usize,
    density: f64,
    signal: f64,
    rng: &mut StdRng,
) -> Matrix {
    let block = (dim / classes.max(1)).max(1);
    let mut m = Matrix::zeros(labels.len(), dim);
    for (i, &l) in labels.iter().enumerate() {
        let lo = l * block;
        let hi = ((l + 1) * block).min(dim);
        let row = m.row_mut(i);
        for (j, value) in row.iter_mut().enumerate() {
            let in_topic = j >= lo && j < hi;
            let p = if in_topic { density + signal * 0.25 } else { density };
            if rng.gen_bool(p.min(1.0)) {
                *value = 1.0;
            }
        }
    }
    m
}

/// Cumulative-weight alias-free sampler over a fixed support.
struct WeightedSampler {
    support: Vec<usize>,
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedSampler {
    fn new(support: Vec<usize>, weights: &[f64]) -> Self {
        let mut cumulative = Vec::with_capacity(support.len());
        let mut total = 0.0;
        for &i in &support {
            total += weights[i];
            cumulative.push(total);
        }
        Self { support, cumulative, total }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        debug_assert!(!self.support.is_empty(), "sampling from empty support");
        let x = rng.gen_range(0.0..self.total);
        let idx = self.cumulative.partition_point(|&c| c <= x);
        self.support[idx.min(self.support.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrare_graph::metrics::{class_counts, homophily_ratio};

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate_mini(Dataset::Cornell, 7);
        let b = generate_mini(Dataset::Cornell, 7);
        assert_eq!(a.edge_vec(), b.edge_vec());
        assert_eq!(a.labels(), b.labels());
        assert!(a.features().max_abs_diff(b.features()) == 0.0);
    }

    #[test]
    fn generated_features_are_finite() {
        // Downstream consumers rank features and logits with `total_cmp`
        // so NaN can no longer panic them, but the generator itself must
        // never emit one: a non-finite feature would silently skew every
        // similarity ranking built on top.
        let g = generate_mini(Dataset::Cora, 7);
        for v in 0..g.num_nodes() {
            assert!(g.features().row(v).iter().all(|x| x.is_finite()), "node {v}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_mini(Dataset::Cornell, 1);
        let b = generate_mini(Dataset::Cornell, 2);
        assert_ne!(a.edge_vec(), b.edge_vec());
    }

    #[test]
    fn node_and_class_counts_match_spec() {
        let spec = Dataset::Wisconsin.spec();
        let g = generate_spec(&spec, 42);
        assert_eq!(g.num_nodes(), spec.num_nodes);
        assert_eq!(g.num_classes(), spec.num_classes);
        assert_eq!(g.feat_dim(), spec.feat_dim);
        // Balanced within one node per class.
        let counts = class_counts(&g);
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max - min <= 1, "class imbalance: {counts:?}");
    }

    #[test]
    fn edge_counts_close_to_target() {
        for d in [Dataset::Cornell, Dataset::Texas, Dataset::Cora] {
            let spec = d.spec_mini();
            let g = generate_spec(&spec, 3);
            let rel = (g.num_edges() as f64 - spec.num_edges as f64).abs() / spec.num_edges as f64;
            assert!(rel < 0.05, "{}: got {} want {}", spec.name, g.num_edges(), spec.num_edges);
        }
    }

    #[test]
    fn homophily_close_to_target() {
        for d in Dataset::ALL {
            let spec = d.spec_mini();
            let g = generate_spec(&spec, 11);
            let h = homophily_ratio(&g);
            assert!(
                (h - spec.homophily).abs() < 0.08,
                "{}: homophily {h:.3} vs target {:.3}",
                spec.name,
                spec.homophily
            );
        }
    }

    #[test]
    fn features_are_sparse_binary() {
        let g = generate_mini(Dataset::Texas, 5);
        let f = g.features();
        assert!(f.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
        let density = f.sum() / f.len() as f32;
        assert!(density > 0.0 && density < 0.3, "density {density}");
    }

    #[test]
    fn topic_features_are_label_informative() {
        // Nearest-centroid classification on raw features should beat chance
        // comfortably for a WebKB-like spec.
        let g = generate_mini(Dataset::Wisconsin, 9);
        let classes = g.num_classes();
        let dim = g.feat_dim();
        let mut centroids = Matrix::zeros(classes, dim);
        let mut counts = vec![0f32; classes];
        for v in 0..g.num_nodes() {
            let l = g.label(v);
            counts[l] += 1.0;
            for (j, &x) in g.features().row(v).iter().enumerate() {
                centroids.add_at(l, j, x);
            }
        }
        for (c, &count) in counts.iter().enumerate() {
            for j in 0..dim {
                let v = centroids.get(c, j) / count.max(1.0);
                centroids.set(c, j, v);
            }
        }
        let mut correct = 0usize;
        for v in 0..g.num_nodes() {
            let x = g.features().row(v);
            let best = (0..classes)
                .max_by(|&a, &b| {
                    let da: f32 = x.iter().zip(centroids.row(a)).map(|(&p, &q)| p * q).sum();
                    let db: f32 = x.iter().zip(centroids.row(b)).map(|(&p, &q)| p * q).sum();
                    da.total_cmp(&db)
                })
                .unwrap();
            if best == g.label(v) {
                correct += 1;
            }
        }
        let acc = correct as f64 / g.num_nodes() as f64;
        assert!(acc > 0.5, "nearest-centroid accuracy {acc}");
    }

    #[test]
    fn heavy_tail_spec_has_larger_max_degree() {
        let mut light = Dataset::Cora.spec_mini();
        light.degree_exponent = 0.0;
        let mut heavy = light;
        heavy.degree_exponent = 0.95;
        let gl = generate_spec(&light, 21);
        let gh = generate_spec(&heavy, 21);
        assert!(
            gh.max_degree() > gl.max_degree(),
            "heavy {} <= light {}",
            gh.max_degree(),
            gl.max_degree()
        );
    }
}
