//! Property-based tests of the dataset generators and split protocol.

use proptest::prelude::*;

use graphrare_datasets::{generate_spec, stratified_split, DatasetSpec};
use graphrare_graph::metrics::homophily_ratio;

fn arb_spec() -> impl Strategy<Value = DatasetSpec> {
    (20usize..120, 1usize..6, 2usize..5, 0.05f64..0.95, 0.0f64..1.0).prop_map(
        |(n, degree, classes, homophily, signal)| DatasetSpec {
            name: "prop",
            num_nodes: n,
            num_edges: n * degree,
            feat_dim: 24,
            num_classes: classes,
            homophily,
            degree_exponent: 0.5,
            feature_signal: signal,
            feature_density: 0.05,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every generated graph is structurally valid: requested node count,
    /// no self-loops (by construction), binary features, labels in range.
    #[test]
    fn generated_graphs_are_valid(spec in arb_spec(), seed in 0u64..1000) {
        let g = generate_spec(&spec, seed);
        prop_assert_eq!(g.num_nodes(), spec.num_nodes);
        prop_assert_eq!(g.num_classes(), spec.num_classes);
        prop_assert_eq!(g.feat_dim(), spec.feat_dim);
        prop_assert!(g.labels().iter().all(|&l| l < spec.num_classes));
        prop_assert!(g.features().as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
        for (u, v) in g.edges() {
            prop_assert_ne!(u, v, "self-loop generated");
        }
    }

    /// Homophily tracks the requested target within sampling tolerance.
    ///
    /// Only asserted in the sparse regime (≤ 15% of all possible pairs):
    /// at high density the per-class same-label pair pool saturates and
    /// rejected duplicates push extra edges cross-class, biasing `H`
    /// downward. All Table II benchmarks are far below this density.
    #[test]
    fn homophily_tracks_target(spec in arb_spec(), seed in 0u64..1000) {
        let g = generate_spec(&spec, seed);
        let possible = g.num_nodes() * (g.num_nodes() - 1) / 2;
        if g.num_edges() >= 50 && g.num_edges() * 100 <= possible * 15 {
            let h = homophily_ratio(&g);
            prop_assert!(
                (h - spec.homophily).abs() < 0.15,
                "H = {h:.3} vs target {:.3} ({} edges)",
                spec.homophily,
                g.num_edges()
            );
        }
    }

    /// Splits are always partitions with train the largest part.
    #[test]
    fn splits_partition_any_label_vector(
        labels in proptest::collection::vec(0usize..4, 10..80),
        seed in 0u64..1000,
    ) {
        let s = stratified_split(&labels, 4, seed);
        prop_assert_eq!(s.len(), labels.len());
        let mut all: Vec<usize> = s.train.iter().chain(&s.val).chain(&s.test).copied().collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..labels.len()).collect();
        prop_assert_eq!(all, expect);
        prop_assert!(s.train.len() >= s.val.len());
        prop_assert!(s.train.len() >= s.test.len());
    }

    /// Distinct seeds give distinct graphs (collision would break the
    /// ten-splits protocol's independence assumption).
    #[test]
    fn seeds_give_distinct_graphs(spec in arb_spec(), seed in 0u64..1000) {
        let a = generate_spec(&spec, seed);
        let b = generate_spec(&spec, seed + 1);
        // Either edges or features must differ.
        let same_edges = a.edge_vec() == b.edge_vec();
        let same_feats = a.features().max_abs_diff(b.features()) == 0.0;
        prop_assert!(!(same_edges && same_feats), "seed collision");
    }
}
