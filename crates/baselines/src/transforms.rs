//! Graph/operator transforms underlying the heterophily baselines.
//!
//! Every baseline in the paper's Table III boils down to training a
//! message-passing network over one or more *derived* propagation
//! operators (kNN feature graphs, similarity-gated kernels, signed
//! adjacency, latent-geometry buckets, label-propagated homophily
//! weights). This module builds those operators; `kinds` assembles them
//! into models.

use graphrare_graph::{ops, Graph};
use graphrare_tensor::{init, CsrMatrix, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Cosine similarity of two feature rows (0 when either is all-zero).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// Top-`k` cosine-similarity neighbours per node over raw features
/// (UGCN/SimP-GCN's kNN graph). Returns undirected edges, deduplicated.
pub fn cosine_knn_edges(features: &Matrix, k: usize) -> Vec<(usize, usize)> {
    let n = features.rows();
    let mut edges = std::collections::BTreeSet::new();
    let mut sims: Vec<(f32, usize)> = Vec::with_capacity(n.saturating_sub(1));
    for v in 0..n {
        sims.clear();
        for u in 0..n {
            if u != v {
                sims.push((cosine(features.row(v), features.row(u)), u));
            }
        }
        sims.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        for &(_, u) in sims.iter().take(k) {
            edges.insert((v.min(u), v.max(u)));
        }
    }
    edges.into_iter().collect()
}

/// The input graph with extra undirected edges unioned in.
pub fn union_graph(g: &Graph, extra: &[(usize, usize)]) -> Graph {
    let mut out = g.clone();
    for &(u, v) in extra {
        out.add_edge(u, v);
    }
    out
}

/// SimP-GCN's blended propagation: `γ·Â + (1−γ)·S` where `S` is the
/// row-normalised kNN feature graph.
pub fn blended_operator(g: &Graph, knn_k: usize, gamma: f32) -> CsrMatrix {
    let n = g.num_nodes();
    let a_hat = ops::gcn_norm(g);
    let knn = cosine_knn_edges(g.features(), knn_k);
    let knn_graph = Graph::from_edges(n, &knn, Matrix::zeros(n, 1), vec![0; n], 1);
    let s = ops::row_norm_adj(&knn_graph);
    let mut triplets = Vec::new();
    for r in 0..n {
        for (c, w) in a_hat.row_entries(r) {
            triplets.push((r, c, gamma * w));
        }
        for (c, w) in s.row_entries(r) {
            triplets.push((r, c, (1.0 - gamma) * w));
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

/// Polar-GNN's signed aggregation operator: neighbours with feature
/// cosine above `threshold` contribute positively, others negatively;
/// rows are normalised by degree.
pub fn signed_operator(g: &Graph, threshold: f32) -> CsrMatrix {
    let n = g.num_nodes();
    let feats = g.features();
    let mut triplets = Vec::new();
    for v in 0..n {
        let deg = g.degree(v);
        if deg == 0 {
            continue;
        }
        let w = 1.0 / deg as f32;
        for u in g.neighbors(v) {
            let sign = if cosine(feats.row(v), feats.row(u)) >= threshold { 1.0 } else { -1.0 };
            triplets.push((v, u, sign * w));
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

/// GBK-GNN's similarity-gated kernel pair: edge gate
/// `g_ij = σ(4·cos(x_i, x_j))`; the homophilic kernel carries weight
/// `g_ij`, the heterophilic kernel `1 − g_ij`, each row-normalised by
/// degree.
pub fn gated_operators(g: &Graph) -> (CsrMatrix, CsrMatrix) {
    let n = g.num_nodes();
    let feats = g.features();
    let mut sim = Vec::new();
    let mut dis = Vec::new();
    for v in 0..n {
        let deg = g.degree(v);
        if deg == 0 {
            continue;
        }
        let w = 1.0 / deg as f32;
        for u in g.neighbors(v) {
            let gate = 1.0 / (1.0 + (-4.0 * cosine(feats.row(v), feats.row(u))).exp());
            sim.push((v, u, gate * w));
            dis.push((v, u, (1.0 - gate) * w));
        }
    }
    (CsrMatrix::from_triplets(n, n, &sim), CsrMatrix::from_triplets(n, n, &dis))
}

/// Geom-GCN-style geometric buckets: nodes are embedded in a latent space
/// (seeded random projection of features to 2D); each node's neighbours
/// are split into a "near" and a "far" bucket by latent distance relative
/// to the node's median neighbour distance. Both buckets are
/// row-normalised.
pub fn geometric_bucket_operators(g: &Graph, seed: u64) -> (CsrMatrix, CsrMatrix) {
    let n = g.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    let proj = init::normal(&mut rng, g.feat_dim(), 2, 1.0 / (g.feat_dim().max(1) as f32).sqrt());
    let latent = g.features().matmul(&proj);
    let dist = |v: usize, u: usize| -> f32 {
        let (a, b) = (latent.row(v), latent.row(u));
        ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt()
    };
    let mut near = Vec::new();
    let mut far = Vec::new();
    for v in 0..n {
        let nbrs: Vec<usize> = g.neighbors(v).collect();
        if nbrs.is_empty() {
            continue;
        }
        let mut ds: Vec<f32> = nbrs.iter().map(|&u| dist(v, u)).collect();
        let mut sorted = ds.clone();
        sorted.sort_by(f32::total_cmp);
        let median = sorted[sorted.len() / 2];
        let mut near_nodes = Vec::new();
        let mut far_nodes = Vec::new();
        for (u, d) in nbrs.iter().zip(ds.drain(..)) {
            if d <= median {
                near_nodes.push(*u);
            } else {
                far_nodes.push(*u);
            }
        }
        for (bucket, list) in [(&mut near, near_nodes), (&mut far, far_nodes)] {
            if !list.is_empty() {
                let w = 1.0 / list.len() as f32;
                for u in list {
                    bucket.push((v, u, w));
                }
            }
        }
    }
    (CsrMatrix::from_triplets(n, n, &near), CsrMatrix::from_triplets(n, n, &far))
}

/// HOG-GCN's homophily-degree-weighted operator: soft labels are
/// initialised one-hot on the training nodes (uniform elsewhere),
/// propagated `steps` times over `D⁻¹A`, and edge `(i, j)` is weighted by
/// the dot product of the propagated label distributions; rows are then
/// normalised.
pub fn label_prop_homophily_operator(g: &Graph, train: &[usize], steps: usize) -> CsrMatrix {
    let n = g.num_nodes();
    let c = g.num_classes();
    let mut q = Matrix::filled(n, c, 1.0 / c as f32);
    for &i in train {
        for j in 0..c {
            q.set(i, j, if j == g.label(i) { 1.0 } else { 0.0 });
        }
    }
    let row_norm = ops::row_norm_adj(g);
    for _ in 0..steps {
        let mut next = row_norm.spmm(&q);
        // Keep training nodes clamped to their labels.
        for &i in train {
            for j in 0..c {
                next.set(i, j, if j == g.label(i) { 1.0 } else { 0.0 });
            }
        }
        q = next;
    }
    let mut triplets = Vec::new();
    for v in 0..n {
        let mut weights: Vec<(usize, f32)> = g
            .neighbors(v)
            .map(|u| {
                let w: f32 =
                    q.row(v).iter().zip(q.row(u)).map(|(&a, &b)| a * b).sum::<f32>().max(1e-4);
                (u, w)
            })
            .collect();
        let total: f32 = weights.iter().map(|&(_, w)| w).sum();
        if total > 0.0 {
            for (u, w) in weights.drain(..) {
                triplets.push((v, u, w / total));
            }
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

/// MI-GCN/UGCN-style fixed rewiring: adds each node's top-`k_add` most
/// feature-similar non-neighbours and removes its `d_del` least similar
/// neighbours (keeping at least one neighbour).
pub fn similarity_rewire(g: &Graph, k_add: usize, d_del: usize) -> Graph {
    let n = g.num_nodes();
    let feats = g.features().clone();
    let mut out = g.clone();
    // Deletions first, computed on the original topology. A removal is
    // skipped when it would leave either endpoint isolated.
    if d_del > 0 {
        for v in 0..n {
            let mut nbrs: Vec<(f32, usize)> =
                g.neighbors(v).map(|u| (cosine(feats.row(v), feats.row(u)), u)).collect();
            nbrs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let mut removed = 0usize;
            for &(_, u) in &nbrs {
                if removed == d_del {
                    break;
                }
                if out.degree(v) > 1 && out.degree(u) > 1 && out.remove_edge(v, u) {
                    removed += 1;
                }
            }
        }
    }
    if k_add > 0 {
        let mut sims: Vec<(f32, usize)> = Vec::new();
        for v in 0..n {
            sims.clear();
            for u in 0..n {
                if u != v && !g.has_edge(v, u) {
                    sims.push((cosine(feats.row(v), feats.row(u)), u));
                }
            }
            sims.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
            for &(_, u) in sims.iter().take(k_add) {
                out.add_edge(v, u);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocky_graph() -> Graph {
        // Two feature blocks {0,1,2} and {3,4,5}, heterophilic wiring.
        let mut feats = Matrix::zeros(6, 4);
        for v in 0..3 {
            feats.set(v, 0, 1.0);
            feats.set(v, 1, 1.0);
        }
        for v in 3..6 {
            feats.set(v, 2, 1.0);
            feats.set(v, 3, 1.0);
        }
        Graph::from_edges(6, &[(0, 3), (1, 4), (2, 5), (0, 4)], feats, vec![0, 0, 0, 1, 1, 1], 2)
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn knn_connects_same_block() {
        let g = blocky_graph();
        let edges = cosine_knn_edges(g.features(), 2);
        for &(u, v) in &edges {
            assert_eq!(g.label(u), g.label(v), "kNN edge ({u},{v}) crosses blocks");
        }
    }

    #[test]
    fn union_graph_only_adds() {
        let g = blocky_graph();
        let u = union_graph(&g, &[(0, 1), (0, 3)]);
        assert_eq!(u.num_edges(), g.num_edges() + 1, "(0,3) already existed");
        assert!(u.has_edge(0, 1));
    }

    #[test]
    fn blended_operator_rows_bounded() {
        let g = blocky_graph();
        let b = blended_operator(&g, 2, 0.5);
        for r in 0..6 {
            let s: f32 = b.row_entries(r).map(|(_, w)| w).sum();
            // gcn_norm rows sum to at most ~1.1 (symmetric normalisation);
            // the blend must stay in the same ballpark and positive.
            assert!(s > 0.0 && s <= 1.2, "row {r} sums to {s}");
        }
    }

    #[test]
    fn signed_operator_marks_cross_block_negative() {
        let g = blocky_graph();
        let s = signed_operator(&g, 0.5);
        // Edge (0,3) crosses feature blocks: cosine 0 < 0.5 => negative.
        assert!(s.get(0, 3).unwrap() < 0.0);
    }

    #[test]
    fn gated_operators_complement() {
        let g = blocky_graph();
        let (sim, dis) = gated_operators(&g);
        for r in 0..6 {
            let total: f32 = sim.row_entries(r).map(|(_, w)| w).sum::<f32>()
                + dis.row_entries(r).map(|(_, w)| w).sum::<f32>();
            if g.degree(r) > 0 {
                assert!((total - 1.0).abs() < 1e-5, "row {r}: {total}");
            }
        }
    }

    #[test]
    fn geometric_buckets_cover_neighbors() {
        let g = blocky_graph();
        let (near, far) = geometric_bucket_operators(&g, 3);
        for v in 0..6 {
            let covered = near.row_nnz(v) + far.row_nnz(v);
            assert_eq!(covered, g.degree(v), "node {v}");
        }
    }

    #[test]
    fn label_prop_weights_rows_normalised() {
        let g = blocky_graph();
        let op = label_prop_homophily_operator(&g, &[0, 3], 2);
        for v in 0..6 {
            if g.degree(v) > 0 {
                let s: f32 = op.row_entries(v).map(|(_, w)| w).sum();
                assert!((s - 1.0).abs() < 1e-5, "row {v} sums to {s}");
            }
        }
    }

    #[test]
    fn similarity_rewire_adds_same_block_edges() {
        let g = blocky_graph();
        let rewired = similarity_rewire(&g, 1, 0);
        assert!(rewired.num_edges() > g.num_edges());
        for (u, v) in rewired.edge_vec() {
            if !g.has_edge(u, v) {
                assert_eq!(rewired.label(u), rewired.label(v), "added cross-block edge");
            }
        }
    }

    #[test]
    fn similarity_rewire_keeps_one_neighbor() {
        let g = blocky_graph();
        let rewired = similarity_rewire(&g, 0, 10);
        for v in 0..6 {
            if g.degree(v) > 0 {
                assert!(rewired.degree(v) >= 1, "node {v} fully disconnected");
            }
        }
    }

    #[test]
    fn nan_features_do_not_panic_transforms() {
        // A NaN feature row drives every cosine similarity (and latent
        // distance) involving that node to NaN, which used to panic the
        // `partial_cmp(..).unwrap()` comparators in `cosine_knn_edges`,
        // `similarity_rewire` and the `geometric_bucket_operators`
        // median. `total_cmp` keeps the orderings total and the outputs
        // deterministic.
        let mut feats = Matrix::zeros(4, 2);
        feats.set(0, 0, f32::NAN);
        feats.set(1, 0, 1.0);
        feats.set(2, 1, 1.0);
        feats.set(3, 0, 1.0);
        assert_eq!(cosine_knn_edges(&feats, 1), cosine_knn_edges(&feats, 1));
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], feats, vec![0, 1, 0, 1], 2);
        let rewired = similarity_rewire(&g, 1, 1);
        assert!(rewired.num_edges() > 0);
        let (near, far) = geometric_bucket_operators(&g, 3);
        assert_eq!(near.rows(), 4);
        assert_eq!(far.rows(), 4);
    }
}
