//! The nine SOTA baselines of Table III, assembled from transforms and
//! the generic operator GNN.
//!
//! Each implementation keeps the defining mechanism of its paper and
//! drops ancillary engineering (custom schedulers, auxiliary losses),
//! uniformly across methods — see DESIGN.md for the substitution table.

use std::rc::Rc;

use graphrare_datasets::Split;
use graphrare_gnn::{fit, FitReport, Gcn, GraphTensors, TrainConfig};
use graphrare_graph::{ops, Graph};

use crate::operator_gnn::{Combine, Operator, OperatorGnn};
use crate::transforms;

/// Identifier of one heterophily-baseline method.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// MixHop (Abu-El-Haija et al. 2019): concatenated powers of `Â`.
    MixHop,
    /// UGCN (Jin et al. 2021): kNN feature-similarity rewiring + GCN.
    Ugcn,
    /// SimP-GCN (Jin et al. 2021): blended structure/feature propagation.
    SimpGcn,
    /// Geom-GCN (Pei et al. 2020): latent-geometry bucketed aggregation.
    GeomGcn,
    /// GBK-GNN (Du et al. 2022): similarity-gated bi-kernel aggregation.
    GbkGnn,
    /// Polar-GNN (Fang et al. 2022): signed (polarised) aggregation.
    PolarGnn,
    /// HOG-GCN (Wang et al. 2022): label-propagated homophily weighting.
    HogGcn,
    /// MI-GCN (Tian & Wu 2022): fixed top-k/top-d similarity rewiring.
    MiGcn,
    /// OTGNet (Feng et al. 2023), static-graph variant: class-aware
    /// bottlenecked propagation.
    OtgNet,
}

impl BaselineKind {
    /// All nine baselines in the paper's Table III order.
    pub const ALL: [BaselineKind; 9] = [
        BaselineKind::MixHop,
        BaselineKind::Ugcn,
        BaselineKind::SimpGcn,
        BaselineKind::GeomGcn,
        BaselineKind::GbkGnn,
        BaselineKind::PolarGnn,
        BaselineKind::HogGcn,
        BaselineKind::MiGcn,
        BaselineKind::OtgNet,
    ];

    /// Display name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            BaselineKind::MixHop => "MixHop",
            BaselineKind::Ugcn => "UGCN",
            BaselineKind::SimpGcn => "SimP-GCN",
            BaselineKind::GeomGcn => "Geom-GCN",
            BaselineKind::GbkGnn => "GBK-GNN",
            BaselineKind::PolarGnn => "Polar-GNN",
            BaselineKind::HogGcn => "HOG-GCN",
            BaselineKind::MiGcn => "MI-GCN",
            BaselineKind::OtgNet => "OTGNet",
        }
    }
}

/// Hyper-parameters of a baseline run.
#[derive(Clone, Copy, Debug)]
pub struct BaselineConfig {
    /// Hidden width.
    pub hidden: usize,
    /// Dropout rate.
    pub dropout: f32,
    /// kNN degree for the feature-graph methods (UGCN, SimP-GCN).
    pub knn_k: usize,
    /// SimP-GCN's structure/feature blend γ.
    pub blend_gamma: f32,
    /// Polar-GNN's polarisation threshold.
    pub polar_threshold: f32,
    /// MI-GCN's fixed additions and deletions per node.
    pub mi_k: usize,
    /// MI-GCN's deletions per node.
    pub mi_d: usize,
    /// HOG-GCN's label-propagation steps.
    pub label_prop_steps: usize,
    /// GNN training hyper-parameters.
    pub train: TrainConfig,
    /// Weight-init / transform seed.
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            hidden: 48,
            dropout: 0.5,
            knn_k: 5,
            blend_gamma: 0.7,
            polar_threshold: 0.3,
            mi_k: 2,
            mi_d: 1,
            label_prop_steps: 2,
            train: TrainConfig::default(),
            seed: 0,
        }
    }
}

/// Trains one baseline on one split and reports test accuracy at the best
/// validation checkpoint (the same protocol as every other method).
pub fn run_baseline(
    kind: BaselineKind,
    graph: &Graph,
    split: &Split,
    cfg: &BaselineConfig,
) -> FitReport {
    let labels = graph.labels().to_vec();
    let (in_dim, out_dim) = (graph.feat_dim(), graph.num_classes());
    match kind {
        BaselineKind::MixHop => {
            let ops = vec![
                Operator::Identity,
                Operator::Sparse(Rc::new(ops::gcn_norm(graph))),
                Operator::Sparse(Rc::new(ops::gcn_norm_power(graph, 2, 1e-4))),
            ];
            let model = OperatorGnn::new(
                "MixHop",
                ops,
                Combine::Concat,
                in_dim,
                cfg.hidden.max(3),
                out_dim,
                cfg.dropout,
                cfg.seed,
            );
            fit(&model, &GraphTensors::new(graph), &labels, split, &cfg.train)
        }
        BaselineKind::Ugcn => {
            let extra = transforms::cosine_knn_edges(graph.features(), cfg.knn_k);
            let rewired = transforms::union_graph(graph, &extra);
            let model = Gcn::new(in_dim, cfg.hidden, out_dim, cfg.dropout, cfg.seed);
            fit(&model, &GraphTensors::new(&rewired), &labels, split, &cfg.train)
        }
        BaselineKind::SimpGcn => {
            let blended = transforms::blended_operator(graph, cfg.knn_k, cfg.blend_gamma);
            let ops = vec![Operator::Sparse(Rc::new(blended)), Operator::Identity];
            let model = OperatorGnn::new(
                "SimP-GCN",
                ops,
                Combine::Sum,
                in_dim,
                cfg.hidden,
                out_dim,
                cfg.dropout,
                cfg.seed,
            );
            fit(&model, &GraphTensors::new(graph), &labels, split, &cfg.train)
        }
        BaselineKind::GeomGcn => {
            let (near, far) = transforms::geometric_bucket_operators(graph, cfg.seed);
            let ops = vec![
                Operator::Identity,
                Operator::Sparse(Rc::new(near)),
                Operator::Sparse(Rc::new(far)),
            ];
            let model = OperatorGnn::new(
                "Geom-GCN",
                ops,
                Combine::Concat,
                in_dim,
                cfg.hidden.max(3),
                out_dim,
                cfg.dropout,
                cfg.seed,
            );
            fit(&model, &GraphTensors::new(graph), &labels, split, &cfg.train)
        }
        BaselineKind::GbkGnn => {
            let (sim, dis) = transforms::gated_operators(graph);
            let ops = vec![
                Operator::Sparse(Rc::new(sim)),
                Operator::Sparse(Rc::new(dis)),
                Operator::Identity,
            ];
            let model = OperatorGnn::new(
                "GBK-GNN",
                ops,
                Combine::Sum,
                in_dim,
                cfg.hidden,
                out_dim,
                cfg.dropout,
                cfg.seed,
            );
            fit(&model, &GraphTensors::new(graph), &labels, split, &cfg.train)
        }
        BaselineKind::PolarGnn => {
            let signed = transforms::signed_operator(graph, cfg.polar_threshold);
            let ops = vec![Operator::Sparse(Rc::new(signed)), Operator::Identity];
            let model = OperatorGnn::new(
                "Polar-GNN",
                ops,
                Combine::Sum,
                in_dim,
                cfg.hidden,
                out_dim,
                cfg.dropout,
                cfg.seed,
            );
            fit(&model, &GraphTensors::new(graph), &labels, split, &cfg.train)
        }
        BaselineKind::HogGcn => {
            let weighted = transforms::label_prop_homophily_operator(
                graph,
                &split.train,
                cfg.label_prop_steps,
            );
            let ops = vec![Operator::Sparse(Rc::new(weighted)), Operator::Identity];
            let model = OperatorGnn::new(
                "HOG-GCN",
                ops,
                Combine::Sum,
                in_dim,
                cfg.hidden,
                out_dim,
                cfg.dropout,
                cfg.seed,
            );
            fit(&model, &GraphTensors::new(graph), &labels, split, &cfg.train)
        }
        BaselineKind::MiGcn => {
            let rewired = transforms::similarity_rewire(graph, cfg.mi_k, cfg.mi_d);
            let model = Gcn::new(in_dim, cfg.hidden, out_dim, cfg.dropout, cfg.seed);
            fit(&model, &GraphTensors::new(&rewired), &labels, split, &cfg.train)
        }
        BaselineKind::OtgNet => {
            // Static-graph variant: class-aware propagation squeezed through
            // a narrow information bottleneck (quarter hidden width).
            let ops = vec![Operator::Sparse(Rc::new(ops::row_norm_adj(graph))), Operator::Identity];
            let model = OperatorGnn::new(
                "OTGNet",
                ops,
                Combine::Sum,
                in_dim,
                (cfg.hidden / 4).max(2),
                out_dim,
                cfg.dropout,
                cfg.seed,
            );
            fit(&model, &GraphTensors::new(graph), &labels, split, &cfg.train)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrare_datasets::{generate_spec, stratified_split, DatasetSpec};

    fn fixture() -> (Graph, Split) {
        let spec = DatasetSpec {
            name: "baseline-test",
            num_nodes: 40,
            num_edges: 90,
            feat_dim: 12,
            num_classes: 2,
            homophily: 0.25,
            degree_exponent: 0.3,
            feature_signal: 0.8,
            feature_density: 0.06,
        };
        let g = generate_spec(&spec, 7);
        let split = stratified_split(g.labels(), g.num_classes(), 1);
        (g, split)
    }

    #[test]
    fn every_baseline_runs_and_reports() {
        let (g, split) = fixture();
        let cfg = BaselineConfig {
            train: TrainConfig { epochs: 15, patience: 15, ..Default::default() },
            ..Default::default()
        };
        for kind in BaselineKind::ALL {
            let report = run_baseline(kind, &g, &split, &cfg);
            assert!(
                (0.0..=1.0).contains(&report.test_acc),
                "{}: test acc {}",
                kind.name(),
                report.test_acc
            );
            assert!(!report.curve.is_empty(), "{}: empty curve", kind.name());
        }
    }

    #[test]
    fn baselines_are_deterministic() {
        let (g, split) = fixture();
        let cfg = BaselineConfig {
            train: TrainConfig { epochs: 8, ..Default::default() },
            ..Default::default()
        };
        for kind in [BaselineKind::MixHop, BaselineKind::HogGcn, BaselineKind::Ugcn] {
            let a = run_baseline(kind, &g, &split, &cfg);
            let b = run_baseline(kind, &g, &split, &cfg);
            assert_eq!(a.test_acc, b.test_acc, "{} not deterministic", kind.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            BaselineKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), BaselineKind::ALL.len());
    }
}
