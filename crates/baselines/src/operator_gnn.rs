//! A generic two-layer GNN over arbitrary propagation operators.
//!
//! Most heterophily baselines differ only in *which* operators they
//! propagate over and how per-operator branches are combined. This model
//! factors that out: each layer owns one `Linear` per operator and either
//! concatenates or sums the branch outputs.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use graphrare_gnn::linear::Linear;
use graphrare_gnn::{GnnModel, GraphTensors};
use graphrare_tensor::{CsrMatrix, Param, Tape, Var};

/// One propagation branch: a sparse operator or the identity (ego path).
#[derive(Clone)]
pub enum Operator {
    /// Propagate over a fixed sparse matrix.
    Sparse(Rc<CsrMatrix>),
    /// Use the input unchanged (the ego/self branch).
    Identity,
}

impl Operator {
    fn apply(&self, tape: &mut Tape, x: Var) -> Var {
        match self {
            Operator::Sparse(m) => tape.spmm(m.clone(), x),
            Operator::Identity => x,
        }
    }
}

/// How per-operator branch outputs are merged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Combine {
    /// Concatenate branch outputs (MixHop, Geom-GCN style).
    Concat,
    /// Sum branch outputs (GBK-GNN, Polar-GNN style).
    Sum,
}

/// Two-layer operator GNN with ReLU and dropout between layers.
pub struct OperatorGnn {
    name: &'static str,
    ops: Vec<Operator>,
    combine: Combine,
    l1: Vec<Linear>,
    l2: Vec<Linear>,
    dropout: f32,
}

impl OperatorGnn {
    /// Creates the model. With `Combine::Concat` the hidden width is split
    /// evenly across operators (so the total stays `hidden`).
    #[allow(clippy::too_many_arguments)] // mirrors the model's hyper-parameters
    pub fn new(
        name: &'static str,
        ops: Vec<Operator>,
        combine: Combine,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        dropout: f32,
        seed: u64,
    ) -> Self {
        assert!(!ops.is_empty(), "OperatorGnn needs at least one operator");
        let mut rng = StdRng::seed_from_u64(seed);
        let per_branch_hidden = match combine {
            Combine::Concat => (hidden / ops.len()).max(1),
            Combine::Sum => hidden,
        };
        let l1: Vec<Linear> = (0..ops.len())
            .map(|i| Linear::new(&format!("{name}.l1.{i}"), in_dim, per_branch_hidden, &mut rng))
            .collect();
        let layer1_out = match combine {
            Combine::Concat => per_branch_hidden * ops.len(),
            Combine::Sum => hidden,
        };
        let l2: Vec<Linear> = (0..ops.len())
            .map(|i| Linear::new(&format!("{name}.l2.{i}"), layer1_out, out_dim, &mut rng))
            .collect();
        Self { name, ops, combine, l1, l2, dropout }
    }

    fn layer(&self, tape: &mut Tape, x: Var, linears: &[Linear], combine: Combine) -> Var {
        let branches: Vec<Var> = self
            .ops
            .iter()
            .zip(linears)
            .map(|(op, lin)| {
                let projected = lin.forward(tape, x);
                op.apply(tape, projected)
            })
            .collect();
        match combine {
            Combine::Concat => {
                if branches.len() == 1 {
                    branches[0]
                } else {
                    tape.concat_cols(&branches)
                }
            }
            Combine::Sum => {
                let mut acc = branches[0];
                for &b in &branches[1..] {
                    acc = tape.add(acc, b);
                }
                acc
            }
        }
    }
}

impl GnnModel for OperatorGnn {
    fn forward(&self, tape: &mut Tape, gt: &GraphTensors, train: bool, rng: &mut StdRng) -> Var {
        let mut x = tape.constant((*gt.features()).clone());
        if train && self.dropout > 0.0 {
            x = tape.dropout(x, self.dropout, rng);
        }
        let h = self.layer(tape, x, &self.l1, self.combine);
        let mut h = tape.relu(h);
        if train && self.dropout > 0.0 {
            h = tape.dropout(h, self.dropout, rng);
        }
        // The output layer always sums its branches so logits stay
        // `out_dim`-wide regardless of the hidden-layer combine mode.
        self.layer(tape, h, &self.l2, Combine::Sum)
    }

    fn params(&self) -> Vec<Param> {
        self.l1.iter().chain(&self.l2).flat_map(Linear::params).collect()
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphrare_graph::{ops, Graph};
    use graphrare_tensor::Matrix;

    fn toy() -> (Graph, GraphTensors) {
        let g = Graph::from_edges(
            5,
            &[(0, 1), (1, 2), (2, 3), (3, 4)],
            Matrix::from_fn(5, 4, |r, c| ((r + c) % 2) as f32),
            vec![0, 1, 0, 1, 0],
            2,
        );
        let gt = GraphTensors::new(&g);
        (g, gt)
    }

    #[test]
    fn concat_combine_shapes() {
        let (g, gt) = toy();
        let model = OperatorGnn::new(
            "test-concat",
            vec![Operator::Identity, Operator::Sparse(Rc::new(ops::gcn_norm(&g)))],
            Combine::Concat,
            4,
            8,
            2,
            0.0,
            0,
        );
        let mut t = Tape::new();
        let mut rng = StdRng::seed_from_u64(0);
        let y = model.forward(&mut t, &gt, false, &mut rng);
        assert_eq!(t.value(y).shape(), (5, 2));
        assert_eq!(model.params().len(), 8);
    }

    #[test]
    fn sum_combine_shapes() {
        let (g, gt) = toy();
        let model = OperatorGnn::new(
            "test-sum",
            vec![Operator::Sparse(Rc::new(ops::row_norm_adj(&g))), Operator::Identity],
            Combine::Sum,
            4,
            8,
            2,
            0.0,
            0,
        );
        let mut t = Tape::new();
        let mut rng = StdRng::seed_from_u64(0);
        let y = model.forward(&mut t, &gt, false, &mut rng);
        assert_eq!(t.value(y).shape(), (5, 2));
        assert!(t.value(y).all_finite());
    }

    #[test]
    fn gradients_reach_every_branch() {
        let (g, gt) = toy();
        let model = OperatorGnn::new(
            "test-grad",
            vec![Operator::Identity, Operator::Sparse(Rc::new(ops::gcn_norm(&g)))],
            Combine::Sum,
            4,
            6,
            2,
            0.0,
            1,
        );
        let mut t = Tape::new();
        let mut rng = StdRng::seed_from_u64(0);
        let y = model.forward(&mut t, &gt, true, &mut rng);
        let lp = t.log_softmax_rows(y);
        let loss = t.nll_masked(lp, Rc::new(vec![0, 1, 0, 1, 0]), Rc::new(vec![0, 1, 2, 3, 4]));
        t.backward(loss);
        for p in model.params() {
            assert!(p.grad().as_slice().iter().any(|&v| v != 0.0), "no gradient in {}", p.name());
        }
    }
}
