//! # graphrare-baselines
//!
//! The nine heterophilic-GNN state-of-the-art baselines that the GraphRARE
//! paper compares against in Table III: MixHop, UGCN, SimP-GCN, Geom-GCN,
//! GBK-GNN, Polar-GNN, HOG-GCN, MI-GCN and OTGNet.
//!
//! Every method keeps its defining mechanism (see each
//! [`BaselineKind`] variant) while ancillary engineering is dropped
//! uniformly; most methods factor into "derived propagation operators"
//! ([`transforms`]) plus a generic multi-operator GNN
//! ([`operator_gnn::OperatorGnn`]).
//!
//! ```no_run
//! use graphrare_baselines::{run_baseline, BaselineConfig, BaselineKind};
//! use graphrare_datasets::{generate_mini, stratified_split, Dataset};
//!
//! let g = generate_mini(Dataset::Chameleon, 42);
//! let split = stratified_split(g.labels(), g.num_classes(), 0);
//! let report = run_baseline(BaselineKind::MixHop, &g, &split, &BaselineConfig::default());
//! println!("MixHop: {:.3}", report.test_acc);
//! ```

#![warn(missing_docs)]

pub mod kinds;
pub mod operator_gnn;
pub mod transforms;

pub use kinds::{run_baseline, BaselineConfig, BaselineKind};
pub use operator_gnn::{Combine, Operator, OperatorGnn};
