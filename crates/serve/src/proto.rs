//! The length-prefixed binary protocol between daemon and client.
//!
//! Every message is one *frame*:
//!
//! ```text
//! offset  size  field
//! 0       4     magic   "GRSV" (little-endian u32 0x56535247)
//! 4       2     version u16, currently 1
//! 6       1     kind    u8 message discriminator
//! 7       4     len     u32 payload length (<= MAX_PAYLOAD)
//! 11      len   payload kind-specific body (ByteWriter encoding)
//! 11+len  4     crc     CRC-32 of the payload bytes
//! ```
//!
//! The payload codecs reuse `graphrare-store`'s [`ByteWriter`] /
//! [`ByteReader`] little-endian primitives and its CRC discipline, so
//! the decode path never panics: every malformed input — wrong magic,
//! unsupported version, lying length prefix, flipped payload byte,
//! truncated stream — comes back as a typed [`ProtoError`].

use std::io::{Read, Write};

use graphrare::{RewirerKind, RlAlgo};
use graphrare_gnn::Backbone;
use graphrare_store::crc32;
use graphrare_store::wire::{ByteReader, ByteWriter};

/// Frame magic: `b"GRSV"` as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"GRSV");

/// Protocol version carried by every frame. Version 2 added the
/// `rewirer` field to [`RunSpec`]; frames from version-1 peers are
/// rejected with [`ProtoError::BadVersion`] (daemon and client ship in
/// the same build, so there is no mixed-version window to bridge).
pub const PROTO_VERSION: u16 = 2;

/// Upper bound on a frame payload; a corrupted or hostile length
/// prefix can never trigger a larger allocation.
pub const MAX_PAYLOAD: u32 = 16 << 20;

/// Fixed frame prefix size: magic + version + kind + payload length.
pub const HEADER_LEN: usize = 11;

/// Typed decode/transport failure. The server answers payload-level
/// errors with an [`Response::Error`] frame and drops the connection
/// on frame-level ones; it never panics on any input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Frame does not start with [`MAGIC`].
    BadMagic(u32),
    /// Frame carries an unsupported protocol version.
    BadVersion(u16),
    /// Message kind byte is not a known request or response.
    UnknownKind(u8),
    /// Payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// Payload bytes do not match the trailing CRC-32.
    CrcMismatch {
        /// CRC recomputed over the received payload.
        expected: u32,
        /// CRC carried by the frame.
        found: u32,
    },
    /// Stream ended mid-frame.
    Truncated,
    /// Payload structure is malformed (bad tag, lying count, trailing
    /// bytes, invalid UTF-8, ...).
    Corrupt(String),
    /// Underlying transport failure.
    Io(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            ProtoError::BadVersion(v) => {
                write!(f, "unsupported protocol version {v} (expected {PROTO_VERSION})")
            }
            ProtoError::UnknownKind(k) => write!(f, "unknown message kind {k}"),
            ProtoError::Oversized(n) => {
                write!(f, "payload length {n} exceeds cap {MAX_PAYLOAD}")
            }
            ProtoError::CrcMismatch { expected, found } => {
                write!(
                    f,
                    "payload crc mismatch: computed {expected:#010x}, frame says {found:#010x}"
                )
            }
            ProtoError::Truncated => write!(f, "stream ended mid-frame"),
            ProtoError::Corrupt(why) => write!(f, "corrupt payload: {why}"),
            ProtoError::Io(why) => write!(f, "transport error: {why}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<graphrare_store::StoreError> for ProtoError {
    fn from(e: graphrare_store::StoreError) -> Self {
        ProtoError::Corrupt(e.to_string())
    }
}

/// Outcome of one blocking frame read.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame: message kind and verified payload.
    Frame(u8, Vec<u8>),
    /// Peer closed the connection at a frame boundary.
    Eof,
    /// Read timed out before any frame byte arrived (only with a read
    /// timeout configured on the stream) — the connection is idle.
    Idle,
}

/// Reads exactly `buf.len()` bytes of frame interior. The peer has
/// already committed to a frame, so a close or a timeout mid-read is
/// [`ProtoError::Truncated`]-adjacent, never silent.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<(), ProtoError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => return Err(ProtoError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Mid-frame stall on a timed stream: keep waiting for
                // the rest of the committed frame.
            }
            Err(e) => return Err(ProtoError::Io(e.to_string())),
        }
    }
    Ok(())
}

/// Reads and verifies one frame: magic, version, length cap, payload
/// CRC. Returns [`FrameRead::Eof`] on a clean close and
/// [`FrameRead::Idle`] when a configured read timeout fires at a frame
/// boundary; any other shortfall is a typed error.
pub fn read_frame(r: &mut impl Read) -> Result<FrameRead, ProtoError> {
    // The first byte decides between frame, clean close, and idle.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(FrameRead::Eof),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Ok(FrameRead::Idle);
            }
            Err(e) => return Err(ProtoError::Io(e.to_string())),
        }
    }
    let mut header = [0u8; HEADER_LEN];
    header[0] = first[0];
    read_full(r, &mut header[1..])?;
    finish_frame(r, header)
}

fn finish_frame(r: &mut impl Read, header: [u8; HEADER_LEN]) -> Result<FrameRead, ProtoError> {
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(header[4..6].try_into().unwrap());
    if version != PROTO_VERSION {
        return Err(ProtoError::BadVersion(version));
    }
    let kind = header[6];
    let len = u32::from_le_bytes(header[7..11].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(ProtoError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    read_full(r, &mut payload)?;
    let mut crc_bytes = [0u8; 4];
    read_full(r, &mut crc_bytes)?;
    let found = u32::from_le_bytes(crc_bytes);
    let expected = crc32(&payload);
    if expected != found {
        return Err(ProtoError::CrcMismatch { expected, found });
    }
    Ok(FrameRead::Frame(kind, payload))
}

/// Writes one frame (header, payload, payload CRC) and flushes.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> Result<(), ProtoError> {
    assert!(payload.len() <= MAX_PAYLOAD as usize, "frame payload exceeds protocol cap");
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    frame.extend_from_slice(&MAGIC.to_le_bytes());
    frame.extend_from_slice(&PROTO_VERSION.to_le_bytes());
    frame.push(kind);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&frame).map_err(|e| ProtoError::Io(e.to_string()))?;
    w.flush().map_err(|e| ProtoError::Io(e.to_string()))
}

/// Everything needed to reproduce a solo `graphrare` CLI run: the
/// daemon builds its [`graphrare::GraphRareConfig`] from these fields
/// exactly the way the CLI builds it from flags, which is what makes
/// served results bit-identical to solo runs.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSpec {
    /// Graph bundle prefix (`<input>.edges/.features/.labels`),
    /// resolved on the daemon's filesystem.
    pub input: String,
    /// GNN backbone to wrap.
    pub backbone: Backbone,
    /// DRL steps to run.
    pub steps: u64,
    /// Master seed (drives model/train/ppo/shuffle sub-seeds).
    pub seed: u64,
    /// Train/val/test split seed.
    pub split_seed: u64,
    /// Per-node candidate cap.
    pub k_cap: u64,
    /// Relative-entropy mixing weight.
    pub lambda: f64,
    /// RL algorithm.
    pub algo: RlAlgo,
    /// Worker threads (0 = resolve from the environment, as the CLI).
    pub threads: u64,
    /// Paced mode: the run only advances while it has step budget
    /// granted via [`Request::StepBudget`].
    pub paced: bool,
    /// Edit-proposal strategy (the CLI's `--rewirer`).
    pub rewirer: RewirerKind,
}

impl RunSpec {
    /// Mirrors the `graphrare` CLI's config construction, field for
    /// field. `entropy_refresh_every` stays 0: the daemon always
    /// checkpoints, and refresh mode is incompatible with snapshots.
    pub fn to_config(&self) -> graphrare::GraphRareConfig {
        let mut cfg = graphrare::GraphRareConfig::default().with_seed(self.seed);
        cfg.entropy.lambda = self.lambda;
        cfg.steps = self.steps as usize;
        cfg.k_cap = self.k_cap as usize;
        cfg.algo = self.algo;
        cfg.rewirer = self.rewirer;
        cfg.threads = self.threads as usize;
        cfg
    }

    /// Validates the fields a hostile client could abuse.
    pub fn validate(&self) -> Result<(), String> {
        if self.input.is_empty() {
            return Err("empty input prefix".into());
        }
        if self.steps == 0 {
            return Err("steps must be positive".into());
        }
        if self.steps > 1_000_000 {
            return Err(format!("steps {} exceeds serving cap 1000000", self.steps));
        }
        if !self.lambda.is_finite() || self.lambda < 0.0 {
            return Err(format!("lambda {} must be finite and non-negative", self.lambda));
        }
        if self.k_cap == 0 || self.k_cap > 10_000 {
            return Err(format!("k_cap {} outside 1..=10000", self.k_cap));
        }
        Ok(())
    }
}

fn backbone_tag(b: Backbone) -> u8 {
    match b {
        Backbone::Mlp => 0,
        Backbone::Gcn => 1,
        Backbone::Sage => 2,
        Backbone::Gat => 3,
        Backbone::H2gcn => 4,
    }
}

fn backbone_from_tag(tag: u8) -> Result<Backbone, ProtoError> {
    Ok(match tag {
        0 => Backbone::Mlp,
        1 => Backbone::Gcn,
        2 => Backbone::Sage,
        3 => Backbone::Gat,
        4 => Backbone::H2gcn,
        other => return Err(ProtoError::Corrupt(format!("unknown backbone tag {other}"))),
    })
}

fn algo_tag(a: RlAlgo) -> u8 {
    match a {
        RlAlgo::Ppo => 0,
        RlAlgo::A2c => 1,
    }
}

fn algo_from_tag(tag: u8) -> Result<RlAlgo, ProtoError> {
    Ok(match tag {
        0 => RlAlgo::Ppo,
        1 => RlAlgo::A2c,
        other => return Err(ProtoError::Corrupt(format!("unknown algo tag {other}"))),
    })
}

/// Encodes a [`RunSpec`] payload body (also reused for the on-disk
/// `spec.grrs` record, so a restarted daemon reloads the exact spec).
pub fn encode_spec(spec: &RunSpec, w: &mut ByteWriter) {
    w.put_str(&spec.input);
    w.put_u16(u16::from(backbone_tag(spec.backbone)));
    w.put_u64(spec.steps);
    w.put_u64(spec.seed);
    w.put_u64(spec.split_seed);
    w.put_u64(spec.k_cap);
    w.put_f64(spec.lambda);
    w.put_u16(u16::from(algo_tag(spec.algo)));
    w.put_u64(spec.threads);
    w.put_u16(u16::from(spec.paced));
    w.put_u16(spec.rewirer.tag());
}

/// Decodes a [`RunSpec`] payload body.
pub fn decode_spec(r: &mut ByteReader<'_>) -> Result<RunSpec, ProtoError> {
    let input = r.get_str()?;
    let backbone = backbone_from_tag(narrow_u8(r.get_u16()?, "backbone tag")?)?;
    let steps = r.get_u64()?;
    let seed = r.get_u64()?;
    let split_seed = r.get_u64()?;
    let k_cap = r.get_u64()?;
    let lambda = r.get_f64()?;
    let algo = algo_from_tag(narrow_u8(r.get_u16()?, "algo tag")?)?;
    let threads = r.get_u64()?;
    let paced = decode_bool(r.get_u16()?, "paced flag")?;
    let rewirer_tag = r.get_u16()?;
    let rewirer = RewirerKind::from_tag(rewirer_tag)
        .ok_or_else(|| ProtoError::Corrupt(format!("unknown rewirer tag {rewirer_tag}")))?;
    Ok(RunSpec {
        input,
        backbone,
        steps,
        seed,
        split_seed,
        k_cap,
        lambda,
        algo,
        threads,
        paced,
        rewirer,
    })
}

fn narrow_u8(v: u16, what: &str) -> Result<u8, ProtoError> {
    u8::try_from(v).map_err(|_| ProtoError::Corrupt(format!("{what} {v} out of range")))
}

fn decode_bool(v: u16, what: &str) -> Result<bool, ProtoError> {
    match v {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(ProtoError::Corrupt(format!("{what} {other} is not 0/1"))),
    }
}

/// Lifecycle state of one hosted run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunState {
    /// Admitted, waiting for a worker slot.
    Queued,
    /// A worker thread is stepping the driver.
    Running,
    /// Finished; the result artifact is fetchable.
    Done,
    /// Aborted with an error (see [`RunInfo::error`]).
    Failed,
    /// Cancelled by request.
    Cancelled,
    /// Checkpointed and parked by a daemon shutdown; a restarted
    /// daemon resumes it from its per-tenant checkpoint.
    Interrupted,
}

impl RunState {
    /// Stable lowercase name used on the client's stdout.
    pub fn name(self) -> &'static str {
        match self {
            RunState::Queued => "queued",
            RunState::Running => "running",
            RunState::Done => "done",
            RunState::Failed => "failed",
            RunState::Cancelled => "cancelled",
            RunState::Interrupted => "interrupted",
        }
    }

    /// Whether the run can make no further progress in this daemon
    /// lifetime (`Interrupted` resumes only after a restart).
    pub fn is_terminal(self) -> bool {
        !matches!(self, RunState::Queued | RunState::Running)
    }

    fn tag(self) -> u8 {
        match self {
            RunState::Queued => 0,
            RunState::Running => 1,
            RunState::Done => 2,
            RunState::Failed => 3,
            RunState::Cancelled => 4,
            RunState::Interrupted => 5,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, ProtoError> {
        Ok(match tag {
            0 => RunState::Queued,
            1 => RunState::Running,
            2 => RunState::Done,
            3 => RunState::Failed,
            4 => RunState::Cancelled,
            5 => RunState::Interrupted,
            other => return Err(ProtoError::Corrupt(format!("unknown run state tag {other}"))),
        })
    }
}

/// Point-in-time public view of one hosted run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunInfo {
    /// Daemon-assigned id (positive; doubles as the telemetry
    /// `run_id` tag).
    pub run_id: u64,
    /// Lifecycle state.
    pub state: RunState,
    /// DRL steps completed so far.
    pub step: u64,
    /// Steps the run will take in total.
    pub total_steps: u64,
    /// Step of the newest on-disk checkpoint (0 = none yet).
    pub checkpoint_step: u64,
    /// Best validation accuracy (meaningful once `Done`).
    pub best_val_acc: f64,
    /// Test accuracy at the best-validation checkpoint (once `Done`).
    pub test_acc: f64,
    /// Failure message (empty unless `Failed`).
    pub error: String,
}

fn encode_run_info(info: &RunInfo, w: &mut ByteWriter) {
    w.put_u64(info.run_id);
    w.put_u16(u16::from(info.state.tag()));
    w.put_u64(info.step);
    w.put_u64(info.total_steps);
    w.put_u64(info.checkpoint_step);
    w.put_f64(info.best_val_acc);
    w.put_f64(info.test_acc);
    w.put_str(&info.error);
}

fn decode_run_info(r: &mut ByteReader<'_>) -> Result<RunInfo, ProtoError> {
    Ok(RunInfo {
        run_id: r.get_u64()?,
        state: RunState::from_tag(narrow_u8(r.get_u16()?, "state tag")?)?,
        step: r.get_u64()?,
        total_steps: r.get_u64()?,
        checkpoint_step: r.get_u64()?,
        best_val_acc: r.get_f64()?,
        test_acc: r.get_f64()?,
        error: r.get_str()?,
    })
}

/// Daemon-wide statistics, including the telemetry registry's counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsReport {
    /// Runs currently on worker threads.
    pub active: u64,
    /// Runs admitted but waiting for a slot.
    pub queued: u64,
    /// Runs admitted since daemon start (this lifetime).
    pub submitted: u64,
    /// Runs finished successfully.
    pub completed: u64,
    /// Runs aborted with an error.
    pub failed: u64,
    /// Runs cancelled by request.
    pub cancelled: u64,
    /// DRL steps executed across all runs.
    pub steps_total: u64,
    /// Protocol requests handled.
    pub requests: u64,
    /// Telemetry registry counters (name, value), sorted by name.
    pub counters: Vec<(String, u64)>,
}

fn encode_stats(s: &StatsReport, w: &mut ByteWriter) {
    w.put_u64(s.active);
    w.put_u64(s.queued);
    w.put_u64(s.submitted);
    w.put_u64(s.completed);
    w.put_u64(s.failed);
    w.put_u64(s.cancelled);
    w.put_u64(s.steps_total);
    w.put_u64(s.requests);
    w.put_u64(s.counters.len() as u64);
    for (name, value) in &s.counters {
        w.put_str(name);
        w.put_u64(*value);
    }
}

fn decode_stats(r: &mut ByteReader<'_>) -> Result<StatsReport, ProtoError> {
    let mut s = StatsReport {
        active: r.get_u64()?,
        queued: r.get_u64()?,
        submitted: r.get_u64()?,
        completed: r.get_u64()?,
        failed: r.get_u64()?,
        cancelled: r.get_u64()?,
        steps_total: r.get_u64()?,
        requests: r.get_u64()?,
        counters: Vec::new(),
    };
    let n = r.get_count(r.remaining() / 10, "stats counters")?;
    for _ in 0..n {
        let name = r.get_str()?;
        let value = r.get_u64()?;
        s.counters.push((name, value));
    }
    Ok(s)
}

/// Client-to-daemon message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Admit a new run.
    SubmitRun(RunSpec),
    /// Fetch one run's [`RunInfo`].
    Status(u64),
    /// Grant a paced run more steps.
    StepBudget {
        /// Target run.
        run_id: u64,
        /// Steps to add to its budget.
        steps: u64,
    },
    /// Force a checkpoint at the run's next step boundary.
    Snapshot(u64),
    /// Stop a queued or running run.
    Cancel(u64),
    /// Fetch a finished run's model artifact bytes.
    FetchResult(u64),
    /// List every hosted run.
    ListRuns,
    /// Fetch daemon-wide statistics.
    ServerStats,
    /// Ask the daemon to shut down gracefully (checkpoint + exit 0).
    Shutdown,
}

const REQ_SUBMIT: u8 = 1;
const REQ_STATUS: u8 = 2;
const REQ_BUDGET: u8 = 3;
const REQ_SNAPSHOT: u8 = 4;
const REQ_CANCEL: u8 = 5;
const REQ_FETCH: u8 = 6;
const REQ_LIST: u8 = 7;
const REQ_STATS: u8 = 8;
const REQ_SHUTDOWN: u8 = 9;

impl Request {
    /// Serialises to (frame kind, payload bytes).
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut w = ByteWriter::new();
        let kind = match self {
            Request::SubmitRun(spec) => {
                encode_spec(spec, &mut w);
                REQ_SUBMIT
            }
            Request::Status(id) => {
                w.put_u64(*id);
                REQ_STATUS
            }
            Request::StepBudget { run_id, steps } => {
                w.put_u64(*run_id);
                w.put_u64(*steps);
                REQ_BUDGET
            }
            Request::Snapshot(id) => {
                w.put_u64(*id);
                REQ_SNAPSHOT
            }
            Request::Cancel(id) => {
                w.put_u64(*id);
                REQ_CANCEL
            }
            Request::FetchResult(id) => {
                w.put_u64(*id);
                REQ_FETCH
            }
            Request::ListRuns => REQ_LIST,
            Request::ServerStats => REQ_STATS,
            Request::Shutdown => REQ_SHUTDOWN,
        };
        (kind, w.into_bytes())
    }

    /// Decodes a request payload; the payload must be consumed exactly.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Request, ProtoError> {
        let mut r = ByteReader::new(payload, "request payload");
        let req = match kind {
            REQ_SUBMIT => Request::SubmitRun(decode_spec(&mut r)?),
            REQ_STATUS => Request::Status(r.get_u64()?),
            REQ_BUDGET => Request::StepBudget { run_id: r.get_u64()?, steps: r.get_u64()? },
            REQ_SNAPSHOT => Request::Snapshot(r.get_u64()?),
            REQ_CANCEL => Request::Cancel(r.get_u64()?),
            REQ_FETCH => Request::FetchResult(r.get_u64()?),
            REQ_LIST => Request::ListRuns,
            REQ_STATS => Request::ServerStats,
            REQ_SHUTDOWN => Request::Shutdown,
            other => return Err(ProtoError::UnknownKind(other)),
        };
        r.expect_exhausted("request payload")?;
        Ok(req)
    }
}

/// Daemon-to-client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Run admitted under this id.
    Submitted(u64),
    /// One run's status.
    RunStatus(RunInfo),
    /// Budget grant acknowledged; total remaining budget.
    BudgetGranted {
        /// Target run.
        run_id: u64,
        /// Remaining granted steps after the grant.
        remaining: u64,
    },
    /// Snapshot request acknowledged; the checkpoint lands at the next
    /// step boundary.
    SnapshotAck {
        /// Target run.
        run_id: u64,
        /// Step of the newest completed checkpoint.
        checkpoint_step: u64,
    },
    /// Cancellation acknowledged (takes effect at the next step).
    Cancelled(u64),
    /// A finished run's model artifact (the exact bytes a solo
    /// `graphrare --save-model` run with the same spec writes).
    RunResult {
        /// Source run.
        run_id: u64,
        /// `result.grrs` container bytes.
        artifact: Vec<u8>,
    },
    /// All hosted runs.
    RunList(Vec<RunInfo>),
    /// Daemon statistics.
    Stats(StatsReport),
    /// Daemon is shutting down and admits no new work.
    ShuttingDown,
    /// Admission refused: worker slots and queue are full.
    Busy {
        /// Runs currently on workers.
        active: u64,
        /// Runs already queued.
        queued: u64,
    },
    /// Request-level failure.
    Error(String),
}

const RESP_SUBMITTED: u8 = 64;
const RESP_STATUS: u8 = 65;
const RESP_BUDGET: u8 = 66;
const RESP_SNAPSHOT: u8 = 67;
const RESP_CANCELLED: u8 = 68;
const RESP_RESULT: u8 = 69;
const RESP_LIST: u8 = 70;
const RESP_STATS: u8 = 71;
const RESP_SHUTDOWN: u8 = 72;
const RESP_BUSY: u8 = 73;
const RESP_ERROR: u8 = 74;

impl Response {
    /// Serialises to (frame kind, payload bytes).
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut w = ByteWriter::new();
        let kind = match self {
            Response::Submitted(id) => {
                w.put_u64(*id);
                RESP_SUBMITTED
            }
            Response::RunStatus(info) => {
                encode_run_info(info, &mut w);
                RESP_STATUS
            }
            Response::BudgetGranted { run_id, remaining } => {
                w.put_u64(*run_id);
                w.put_u64(*remaining);
                RESP_BUDGET
            }
            Response::SnapshotAck { run_id, checkpoint_step } => {
                w.put_u64(*run_id);
                w.put_u64(*checkpoint_step);
                RESP_SNAPSHOT
            }
            Response::Cancelled(id) => {
                w.put_u64(*id);
                RESP_CANCELLED
            }
            Response::RunResult { run_id, artifact } => {
                w.put_u64(*run_id);
                w.put_u64(artifact.len() as u64);
                w.put_bytes(artifact);
                RESP_RESULT
            }
            Response::RunList(infos) => {
                w.put_u64(infos.len() as u64);
                for info in infos {
                    encode_run_info(info, &mut w);
                }
                RESP_LIST
            }
            Response::Stats(stats) => {
                encode_stats(stats, &mut w);
                RESP_STATS
            }
            Response::ShuttingDown => RESP_SHUTDOWN,
            Response::Busy { active, queued } => {
                w.put_u64(*active);
                w.put_u64(*queued);
                RESP_BUSY
            }
            Response::Error(message) => {
                w.put_str(message);
                RESP_ERROR
            }
        };
        (kind, w.into_bytes())
    }

    /// Decodes a response payload; the payload must be consumed exactly.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Response, ProtoError> {
        let mut r = ByteReader::new(payload, "response payload");
        let resp = match kind {
            RESP_SUBMITTED => Response::Submitted(r.get_u64()?),
            RESP_STATUS => Response::RunStatus(decode_run_info(&mut r)?),
            RESP_BUDGET => {
                Response::BudgetGranted { run_id: r.get_u64()?, remaining: r.get_u64()? }
            }
            RESP_SNAPSHOT => {
                Response::SnapshotAck { run_id: r.get_u64()?, checkpoint_step: r.get_u64()? }
            }
            RESP_CANCELLED => Response::Cancelled(r.get_u64()?),
            RESP_RESULT => {
                let run_id = r.get_u64()?;
                let len = r.get_count(r.remaining(), "artifact bytes")?;
                Response::RunResult { run_id, artifact: r.get_bytes(len)?.to_vec() }
            }
            RESP_LIST => {
                let n = r.get_count(r.remaining() / 50, "run list")?;
                let mut infos = Vec::with_capacity(n);
                for _ in 0..n {
                    infos.push(decode_run_info(&mut r)?);
                }
                Response::RunList(infos)
            }
            RESP_STATS => Response::Stats(decode_stats(&mut r)?),
            RESP_SHUTDOWN => Response::ShuttingDown,
            RESP_BUSY => Response::Busy { active: r.get_u64()?, queued: r.get_u64()? },
            RESP_ERROR => Response::Error(r.get_str()?),
            other => return Err(ProtoError::UnknownKind(other)),
        };
        r.expect_exhausted("response payload")?;
        Ok(resp)
    }
}

/// Writes a request as one frame.
pub fn write_request(w: &mut impl Write, req: &Request) -> Result<(), ProtoError> {
    let (kind, payload) = req.encode();
    write_frame(w, kind, &payload)
}

/// Writes a response as one frame.
pub fn write_response(w: &mut impl Write, resp: &Response) -> Result<(), ProtoError> {
    let (kind, payload) = resp.encode();
    write_frame(w, kind, &payload)
}

/// Reads one request frame (server side).
pub fn read_request(r: &mut impl Read) -> Result<Option<Request>, ProtoError> {
    match read_frame(r)? {
        FrameRead::Frame(kind, payload) => Ok(Some(Request::decode(kind, &payload)?)),
        FrameRead::Eof | FrameRead::Idle => Ok(None),
    }
}

/// Reads one response frame (client side); EOF is a typed error — the
/// server always answers before closing.
pub fn read_response(r: &mut impl Read) -> Result<Response, ProtoError> {
    match read_frame(r)? {
        FrameRead::Frame(kind, payload) => Response::decode(kind, &payload),
        FrameRead::Eof | FrameRead::Idle => Err(ProtoError::Truncated),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> RunSpec {
        RunSpec {
            input: "data/toy".into(),
            backbone: Backbone::Sage,
            steps: 12,
            seed: 7,
            split_seed: 3,
            k_cap: 10,
            lambda: 0.5,
            algo: RlAlgo::A2c,
            threads: 1,
            paced: true,
            rewirer: RewirerKind::Dhgr,
        }
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::SubmitRun(sample_spec()),
            Request::Status(9),
            Request::StepBudget { run_id: 1, steps: 100 },
            Request::Snapshot(2),
            Request::Cancel(3),
            Request::FetchResult(4),
            Request::ListRuns,
            Request::ServerStats,
            Request::Shutdown,
        ];
        for req in reqs {
            let mut buf = Vec::new();
            write_request(&mut buf, &req).unwrap();
            let got = read_request(&mut buf.as_slice()).unwrap().unwrap();
            assert_eq!(got, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let info = RunInfo {
            run_id: 5,
            state: RunState::Running,
            step: 4,
            total_steps: 12,
            checkpoint_step: 2,
            best_val_acc: 0.75,
            test_acc: 0.5,
            error: String::new(),
        };
        let resps = [
            Response::Submitted(5),
            Response::RunStatus(info.clone()),
            Response::BudgetGranted { run_id: 5, remaining: 20 },
            Response::SnapshotAck { run_id: 5, checkpoint_step: 4 },
            Response::Cancelled(5),
            Response::RunResult { run_id: 5, artifact: vec![1, 2, 3, 250] },
            Response::RunList(vec![info.clone(), RunInfo { run_id: 6, ..info }]),
            Response::Stats(StatsReport {
                active: 2,
                counters: vec![("a".into(), 1), ("b".into(), 2)],
                ..StatsReport::default()
            }),
            Response::ShuttingDown,
            Response::Busy { active: 2, queued: 8 },
            Response::Error("nope".into()),
        ];
        for resp in resps {
            let mut buf = Vec::new();
            write_response(&mut buf, &resp).unwrap();
            let got = read_response(&mut buf.as_slice()).unwrap();
            assert_eq!(got, resp);
        }
    }

    #[test]
    fn clean_eof_is_not_an_error() {
        assert!(matches!(read_frame(&mut [].as_slice()).unwrap(), FrameRead::Eof));
        assert!(read_request(&mut [].as_slice()).unwrap().is_none());
    }

    #[test]
    fn frame_errors_are_typed() {
        // Wrong magic.
        let mut frame = Vec::new();
        write_frame(&mut frame, 1, b"xy").unwrap();
        let mut bad = frame.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(read_frame(&mut bad.as_slice()), Err(ProtoError::BadMagic(_))));
        // Wrong version.
        let mut bad = frame.clone();
        bad[4] = 99;
        assert!(matches!(read_frame(&mut bad.as_slice()), Err(ProtoError::BadVersion(_))));
        // Oversized length.
        let mut bad = frame.clone();
        bad[7..11].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(read_frame(&mut bad.as_slice()), Err(ProtoError::Oversized(_))));
        // Flipped payload byte trips the CRC.
        let mut bad = frame.clone();
        bad[HEADER_LEN] ^= 0x01;
        assert!(matches!(read_frame(&mut bad.as_slice()), Err(ProtoError::CrcMismatch { .. })));
        // Truncation mid-frame.
        for cut in 1..frame.len() {
            assert!(
                matches!(read_frame(&mut &frame[..cut]), Err(ProtoError::Truncated)),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn spec_validation_rejects_abuse() {
        assert!(sample_spec().validate().is_ok());
        type Mutator = Box<dyn Fn(&mut RunSpec)>;
        let cases: [(&str, Mutator); 5] = [
            ("empty input", Box::new(|s| s.input.clear())),
            ("zero steps", Box::new(|s| s.steps = 0)),
            ("huge steps", Box::new(|s| s.steps = 2_000_000)),
            ("nan lambda", Box::new(|s| s.lambda = f64::NAN)),
            ("zero k_cap", Box::new(|s| s.k_cap = 0)),
        ];
        for (why, mutate) in cases {
            let mut spec = sample_spec();
            mutate(&mut spec);
            assert!(spec.validate().is_err(), "accepted spec with {why}");
        }
    }

    #[test]
    fn spec_config_matches_cli_construction() {
        let spec = sample_spec();
        let cfg = spec.to_config();
        let mut expected = graphrare::GraphRareConfig::default().with_seed(spec.seed);
        expected.entropy.lambda = spec.lambda;
        expected.steps = spec.steps as usize;
        expected.k_cap = spec.k_cap as usize;
        expected.algo = spec.algo;
        expected.rewirer = spec.rewirer;
        expected.threads = spec.threads as usize;
        assert_eq!(cfg.steps, expected.steps);
        assert_eq!(cfg.seed, expected.seed);
        assert_eq!(cfg.entropy.lambda, expected.entropy.lambda);
        assert_eq!(cfg.rewirer, RewirerKind::Dhgr, "spec rewirer must reach the config");
        assert_eq!(cfg.entropy_refresh_every, 0, "refresh mode must stay off under serving");
    }

    #[test]
    fn spec_rejects_unknown_rewirer_tag() {
        let mut w = ByteWriter::new();
        encode_spec(&sample_spec(), &mut w);
        let mut bytes = w.into_bytes();
        // The rewirer tag is the trailing u16 of the spec body.
        let at = bytes.len() - 2;
        bytes[at..].copy_from_slice(&99u16.to_le_bytes());
        let mut r = ByteReader::new(&bytes, "spec");
        assert!(matches!(decode_spec(&mut r), Err(ProtoError::Corrupt(_))));
    }
}
