//! Blocking client connection to a serving daemon.

use std::io::{Read, Write};

use crate::proto::{read_response, write_request, ProtoError, Request, Response};
use crate::server::Listen;

/// `Read + Write` object-safe alias so one connection type covers unix
/// and TCP streams.
trait ReadWrite: Read + Write {}
impl<T: Read + Write> ReadWrite for T {}

/// One client connection. The protocol is strict request/response, so
/// a connection can be reused for any number of sequential requests.
pub struct Connection {
    stream: Box<dyn ReadWrite>,
}

impl Connection {
    /// Connects to a daemon endpoint.
    pub fn connect(listen: &Listen) -> Result<Connection, ProtoError> {
        let stream: Box<dyn ReadWrite> = match listen {
            Listen::Unix(path) => Box::new(
                std::os::unix::net::UnixStream::connect(path)
                    .map_err(|e| ProtoError::Io(format!("{}: {e}", path.display())))?,
            ),
            Listen::Tcp(addr) => Box::new(
                std::net::TcpStream::connect(addr)
                    .map_err(|e| ProtoError::Io(format!("{addr}: {e}")))?,
            ),
        };
        Ok(Connection { stream })
    }

    /// Sends one request and blocks for its response.
    pub fn request(&mut self, req: &Request) -> Result<Response, ProtoError> {
        write_request(&mut self.stream, req)?;
        read_response(&mut self.stream)
    }
}
