//! graphrare-serve: multi-tenant run-serving daemon for GraphRARE.
//!
//! This crate hosts many concurrent GraphRARE training runs behind a
//! small length-prefixed binary protocol ([`proto`]), served over unix
//! domain sockets and/or TCP. Each admitted run drives a stepwise
//! [`graphrare::RareDriver`] on its own worker thread, checkpoints
//! periodically into a per-tenant directory via `graphrare-store`, and
//! tags every telemetry event it emits with its `run_id`.
//!
//! Guarantees:
//!
//! - **Bit-identity**: a served run's result artifact is byte-for-byte
//!   identical to a solo `graphrare` CLI run with the same spec and
//!   seed — the daemon builds its config exactly as the CLI does and
//!   persists through the same deterministic `save_model` path.
//! - **Admission control**: at most `max_runs` runs step concurrently
//!   and at most `max_queue` wait behind them; submissions past that
//!   get an explicit [`proto::Response::Busy`], never unbounded queues.
//! - **Crash-safe restarts**: a daemon restarted over the same state
//!   directory resumes interrupted runs from their newest checkpoint.
//! - **Robust decoding**: malformed frames (truncated, corrupted,
//!   oversized, wrong version) produce typed [`proto::ProtoError`]s or
//!   dropped connections, never panics.

#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::Connection;
pub use proto::{ProtoError, Request, Response, RunInfo, RunSpec, RunState, StatsReport};
pub use server::{Listen, ServeConfig, Server};
