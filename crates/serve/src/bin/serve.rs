//! `graphrare-serve` — the multi-tenant run-serving daemon.
//!
//! ```text
//! graphrare-serve --listen unix:/tmp/graphrare.sock [--listen tcp:127.0.0.1:7464]
//!                 --state-dir DIR [--max-runs N] [--max-queue N]
//!                 [--checkpoint-every N] [--telemetry-out PATH] [--quiet]
//! ```
//!
//! The daemon hosts many concurrent GraphRARE runs (submitted with
//! `graphrare-client`), each on its own worker thread with periodic
//! checkpoints under `--state-dir`. On SIGTERM/SIGINT (or a client
//! `shutdown` request) it stops admitting work, checkpoints every
//! active run, flushes telemetry, and exits 0; restarting over the same
//! state directory resumes the interrupted runs from their checkpoints.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use graphrare_serve::{Listen, ServeConfig, Server};
use graphrare_telemetry::{self as telemetry, progress};

/// Set by the signal handler; polled by the main loop. Storing a flag
/// is the only async-signal-safe thing the handler does.
static STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_: i32) {
    STOP.store(true, Ordering::SeqCst);
}

/// Installs `on_signal` for SIGINT (2) and SIGTERM (15) through libc's
/// `signal`, which std already links — no external crate needed.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

struct Args {
    listens: Vec<Listen>,
    state_dir: PathBuf,
    max_runs: usize,
    max_queue: usize,
    checkpoint_every: usize,
    telemetry_out: Option<PathBuf>,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: graphrare-serve --listen unix:PATH|tcp:HOST:PORT [--listen ...] \
         --state-dir DIR [--max-runs N] [--max-queue N] [--checkpoint-every N] \
         [--telemetry-out PATH] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        listens: Vec::new(),
        state_dir: PathBuf::new(),
        max_runs: 2,
        max_queue: 8,
        checkpoint_every: 5,
        telemetry_out: None,
        quiet: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut have_state_dir = false;
    let mut i = 0;
    while i < argv.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--listen" => match Listen::parse(&value(&mut i)) {
                Ok(listen) => args.listens.push(listen),
                Err(e) => {
                    eprintln!("{e}");
                    usage()
                }
            },
            "--state-dir" => {
                args.state_dir = PathBuf::from(value(&mut i));
                have_state_dir = true;
            }
            "--max-runs" => args.max_runs = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--max-queue" => args.max_queue = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--checkpoint-every" => {
                args.checkpoint_every = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--telemetry-out" => args.telemetry_out = Some(PathBuf::from(value(&mut i))),
            "--quiet" => args.quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other}");
                usage()
            }
        }
        i += 1;
    }
    if args.listens.is_empty() || !have_state_dir || args.max_runs == 0 {
        usage();
    }
    args
}

fn main() -> ExitCode {
    telemetry::install_panic_hook();
    let code = run_main();
    telemetry::clear_sinks();
    code
}

fn run_main() -> ExitCode {
    let args = parse_args();
    telemetry::init_from_env();
    if args.quiet {
        telemetry::set_quiet(true);
    }
    if let Some(path) = &args.telemetry_out {
        match telemetry::JsonlSink::create(path) {
            Ok(sink) => {
                telemetry::add_sink(Box::new(sink));
                telemetry::set_enabled(true);
            }
            Err(e) => {
                eprintln!("failed to open telemetry output {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    install_signal_handlers();

    let mut cfg = ServeConfig::new(&args.state_dir);
    cfg.max_runs = args.max_runs;
    cfg.max_queue = args.max_queue;
    cfg.checkpoint_every = args.checkpoint_every;

    let server = match Server::start(cfg, &args.listens) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    for listen in &args.listens {
        match listen {
            Listen::Unix(path) => progress!("listening on unix:{}", path.display()),
            Listen::Tcp(addr) => progress!("listening on tcp:{addr}"),
        }
    }

    // Serve until a signal or a client shutdown request arrives.
    while !STOP.load(Ordering::SeqCst) && !server.shutting_down() {
        std::thread::sleep(Duration::from_millis(50));
    }
    progress!("shutting down: checkpointing active runs");
    server.request_shutdown();
    server.join();
    progress!("shutdown complete");
    ExitCode::SUCCESS
}
