//! `graphrare-client` — command-line client for the serving daemon.
//!
//! ```text
//! graphrare-client --connect unix:PATH|tcp:HOST:PORT <command> [args]
//!
//! commands:
//!   submit --input PREFIX [--backbone gcn|sage|gat|h2gcn|mlp]
//!          [--lambda F] [--steps N] [--seed N] [--split-seed N]
//!          [--k-cap N] [--algo ppo|a2c] [--threads N] [--paced]
//!          [--rewirer ppo|dhgr|reference|none]
//!   status   RUN_ID
//!   watch    RUN_ID            poll until the run reaches a terminal state
//!   result   RUN_ID --out PATH write the model artifact bytes to PATH
//!   budget   RUN_ID STEPS      grant a paced run more steps
//!   snapshot RUN_ID            force a checkpoint at the next step
//!   cancel   RUN_ID
//!   list
//!   stats
//!   shutdown
//! ```
//!
//! Output on stdout is machine-parseable `key=value` lines; progress
//! chatter goes to stderr. Exit code 0 on success, 1 on any daemon-side
//! error (including `busy`), 2 on usage errors.

use std::process::ExitCode;
use std::time::Duration;

use graphrare::{RewirerKind, RlAlgo};
use graphrare_gnn::Backbone;
use graphrare_serve::{Connection, Listen, Request, Response, RunInfo, RunSpec, RunState};

fn usage() -> ! {
    eprintln!(
        "usage: graphrare-client --connect unix:PATH|tcp:HOST:PORT <command>\n\
         commands: submit status watch result budget snapshot cancel list stats shutdown\n\
         (see crate docs for per-command flags)"
    );
    std::process::exit(2);
}

fn fail(message: &str) -> ExitCode {
    eprintln!("{message}");
    ExitCode::FAILURE
}

fn print_info(info: &RunInfo) {
    println!("run_id={}", info.run_id);
    println!("state={}", info.state.name());
    println!("step={}", info.step);
    println!("total_steps={}", info.total_steps);
    println!("checkpoint_step={}", info.checkpoint_step);
    println!("best_val_acc={:.6}", info.best_val_acc);
    println!("test_acc={:.6}", info.test_acc);
    if !info.error.is_empty() {
        println!("error={}", info.error);
    }
}

/// Prints non-OK daemon responses and converts them to an exit code.
fn unexpected(resp: Response) -> ExitCode {
    match resp {
        Response::Error(message) => fail(&format!("daemon error: {message}")),
        Response::Busy { active, queued } => {
            println!("busy=1");
            fail(&format!("daemon busy: {active} active, {queued} queued"))
        }
        Response::ShuttingDown => fail("daemon is shutting down"),
        other => fail(&format!("unexpected response {other:?}")),
    }
}

fn parse_spec(args: &[String]) -> Result<RunSpec, String> {
    let mut spec = RunSpec {
        input: String::new(),
        backbone: Backbone::Gcn,
        steps: 160,
        seed: 42,
        split_seed: 0,
        k_cap: 10,
        lambda: 1.0,
        algo: RlAlgo::Ppo,
        threads: 0,
        paced: false,
        rewirer: RewirerKind::Ppo,
    };
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("missing value for {}", args[*i - 1]))
        };
        match args[i].as_str() {
            "--input" => spec.input = value(&mut i)?,
            "--backbone" => {
                spec.backbone = match value(&mut i)?.to_lowercase().as_str() {
                    "mlp" => Backbone::Mlp,
                    "gcn" => Backbone::Gcn,
                    "sage" | "graphsage" => Backbone::Sage,
                    "gat" => Backbone::Gat,
                    "h2gcn" => Backbone::H2gcn,
                    other => return Err(format!("unknown backbone {other}")),
                }
            }
            "--lambda" => spec.lambda = parse_num(&value(&mut i)?, "--lambda")?,
            "--steps" => spec.steps = parse_num(&value(&mut i)?, "--steps")?,
            "--seed" => spec.seed = parse_num(&value(&mut i)?, "--seed")?,
            "--split-seed" => spec.split_seed = parse_num(&value(&mut i)?, "--split-seed")?,
            "--k-cap" => spec.k_cap = parse_num(&value(&mut i)?, "--k-cap")?,
            "--threads" => spec.threads = parse_num(&value(&mut i)?, "--threads")?,
            "--algo" => {
                spec.algo = match value(&mut i)?.to_lowercase().as_str() {
                    "ppo" => RlAlgo::Ppo,
                    "a2c" => RlAlgo::A2c,
                    other => return Err(format!("unknown algorithm {other}")),
                }
            }
            "--rewirer" => {
                let v = value(&mut i)?.to_lowercase();
                spec.rewirer =
                    RewirerKind::parse(&v).ok_or_else(|| format!("unknown rewirer {v}"))?;
            }
            "--paced" => spec.paced = true,
            other => return Err(format!("unknown submit flag {other}")),
        }
        i += 1;
    }
    if spec.input.is_empty() {
        return Err("submit requires --input".into());
    }
    Ok(spec)
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid value {s:?} for {flag}"))
}

fn run_id_arg(args: &[String]) -> Result<u64, String> {
    let id = args.first().ok_or("missing RUN_ID argument")?;
    match id.parse() {
        Ok(id) if id > 0 => Ok(id),
        _ => Err(format!("RUN_ID {id:?} must be a positive integer")),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut connect = None;
    let mut rest = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        if argv[i] == "--connect" {
            i += 1;
            let Some(endpoint) = argv.get(i) else { usage() };
            match Listen::parse(endpoint) {
                Ok(listen) => connect = Some(listen),
                Err(e) => {
                    eprintln!("{e}");
                    usage()
                }
            }
        } else {
            rest.push(argv[i].clone());
        }
        i += 1;
    }
    let (Some(endpoint), Some(command)) = (connect, rest.first().cloned()) else { usage() };
    let args = &rest[1..];

    let mut conn = match Connection::connect(&endpoint) {
        Ok(conn) => conn,
        Err(e) => return fail(&format!("cannot connect: {e}")),
    };
    let mut request = |req: &Request| -> Result<Response, String> {
        conn.request(req).map_err(|e| format!("request failed: {e}"))
    };

    let outcome: Result<ExitCode, String> = match command.as_str() {
        "submit" => parse_spec(args).map(|spec| match request(&Request::SubmitRun(spec)) {
            Ok(Response::Submitted(run_id)) => {
                println!("run_id={run_id}");
                ExitCode::SUCCESS
            }
            Ok(other) => unexpected(other),
            Err(e) => fail(&e),
        }),
        "status" => run_id_arg(args).map(|id| match request(&Request::Status(id)) {
            Ok(Response::RunStatus(info)) => {
                print_info(&info);
                ExitCode::SUCCESS
            }
            Ok(other) => unexpected(other),
            Err(e) => fail(&e),
        }),
        "watch" => run_id_arg(args).map(|id|

            // Poll until terminal; each status round-trip reuses the
            // same connection.
            loop {
                match request(&Request::Status(id)) {
                    Ok(Response::RunStatus(info)) => {
                        eprintln!(
                            "run {} {} step {}/{}",
                            info.run_id,
                            info.state.name(),
                            info.step,
                            info.total_steps
                        );
                        if info.state.is_terminal() {
                            print_info(&info);
                            break if info.state == RunState::Done {
                                ExitCode::SUCCESS
                            } else {
                                ExitCode::FAILURE
                            };
                        }
                    }
                    Ok(other) => break unexpected(other),
                    Err(e) => break fail(&e),
                }
                std::thread::sleep(Duration::from_millis(150));
            }),
        "result" => {
            let parsed = run_id_arg(args).and_then(|id| match args.get(1).map(String::as_str) {
                Some("--out") => match args.get(2) {
                    Some(path) => Ok((id, path.clone())),
                    None => Err("missing value for --out".into()),
                },
                _ => Err("result requires RUN_ID --out PATH".into()),
            });
            parsed.map(|(id, path)| match request(&Request::FetchResult(id)) {
                Ok(Response::RunResult { run_id, artifact }) => {
                    if let Err(e) = std::fs::write(&path, &artifact) {
                        return fail(&format!("cannot write {path}: {e}"));
                    }
                    println!("run_id={run_id}");
                    println!("artifact_bytes={}", artifact.len());
                    println!("artifact_path={path}");
                    ExitCode::SUCCESS
                }
                Ok(other) => unexpected(other),
                Err(e) => fail(&e),
            })
        }
        "budget" => {
            let parsed = run_id_arg(args).and_then(|id| match args.get(1) {
                Some(steps) => parse_num::<u64>(steps, "STEPS").map(|steps| (id, steps)),
                None => Err("budget requires RUN_ID STEPS".into()),
            });
            parsed.map(|(run_id, steps)| match request(&Request::StepBudget { run_id, steps }) {
                Ok(Response::BudgetGranted { run_id, remaining }) => {
                    println!("run_id={run_id}");
                    println!("budget_remaining={remaining}");
                    ExitCode::SUCCESS
                }
                Ok(other) => unexpected(other),
                Err(e) => fail(&e),
            })
        }
        "snapshot" => run_id_arg(args).map(|id| match request(&Request::Snapshot(id)) {
            Ok(Response::SnapshotAck { run_id, checkpoint_step }) => {
                println!("run_id={run_id}");
                println!("checkpoint_step={checkpoint_step}");
                ExitCode::SUCCESS
            }
            Ok(other) => unexpected(other),
            Err(e) => fail(&e),
        }),
        "cancel" => run_id_arg(args).map(|id| match request(&Request::Cancel(id)) {
            Ok(Response::Cancelled(run_id)) => {
                println!("run_id={run_id}");
                println!("cancelled=1");
                ExitCode::SUCCESS
            }
            Ok(other) => unexpected(other),
            Err(e) => fail(&e),
        }),
        "list" => Ok(match request(&Request::ListRuns) {
            Ok(Response::RunList(infos)) => {
                println!("runs={}", infos.len());
                for info in infos {
                    println!(
                        "run {} state={} step={}/{} test_acc={:.6}",
                        info.run_id,
                        info.state.name(),
                        info.step,
                        info.total_steps,
                        info.test_acc
                    );
                }
                ExitCode::SUCCESS
            }
            Ok(other) => unexpected(other),
            Err(e) => fail(&e),
        }),
        "stats" => Ok(match request(&Request::ServerStats) {
            Ok(Response::Stats(stats)) => {
                println!("active={}", stats.active);
                println!("queued={}", stats.queued);
                println!("submitted={}", stats.submitted);
                println!("completed={}", stats.completed);
                println!("failed={}", stats.failed);
                println!("cancelled={}", stats.cancelled);
                println!("steps_total={}", stats.steps_total);
                println!("requests={}", stats.requests);
                for (name, value) in &stats.counters {
                    println!("counter.{name}={value}");
                }
                ExitCode::SUCCESS
            }
            Ok(other) => unexpected(other),
            Err(e) => fail(&e),
        }),
        "shutdown" => Ok(match request(&Request::Shutdown) {
            Ok(Response::ShuttingDown) => {
                println!("shutting_down=1");
                ExitCode::SUCCESS
            }
            Ok(other) => unexpected(other),
            Err(e) => fail(&e),
        }),
        _ => {
            eprintln!("unknown command {command}");
            usage()
        }
    };
    match outcome {
        Ok(code) => code,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
