//! The serving daemon: admission control, per-run worker threads,
//! checkpointing, and the socket accept/dispatch loops.
//!
//! # Session state machine
//!
//! ```text
//!                submit            slot free
//!   (client) ───────────▶ Queued ───────────▶ Running ──▶ Done
//!                           │                    │   │
//!                    cancel │             cancel │   │ error
//!                           ▼                    ▼   ▼
//!                       Cancelled          Cancelled Failed
//!                                                │
//!                                       shutdown │ (checkpoint)
//!                                                ▼
//!                                          Interrupted ──restart──▶ Queued
//! ```
//!
//! Every run owns a per-tenant directory `state_dir/runs/{id:06}/`
//! holding its spec (`spec.grrs`), periodic `step-NNNNNN.grrs`
//! checkpoints, the final `result.grrs` artifact, and `cancelled` /
//! `failed` markers. A daemon restarted over the same state directory
//! rebuilds its table from those files and resumes non-terminal runs
//! from their newest checkpoint.
//!
//! The driver is deliberately stepped on a dedicated thread per run
//! ([`graphrare::RareDriver`] is `!Send`), with all cross-thread
//! coordination going through lock-free [`RunCtl`] atomics plus one
//! short-lived table mutex.

use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use graphrare::{persist, RareDriver};
use graphrare_datasets::stratified_split;
use graphrare_graph::io;
use graphrare_store::wire::{ByteReader, ByteWriter};
use graphrare_store::{Container, ContainerWriter};
use graphrare_telemetry as telemetry;

use crate::proto::{
    self, decode_spec, encode_spec, FrameRead, Request, Response, RunInfo, RunSpec, RunState,
    StatsReport,
};

/// Daemon tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Root directory for per-run state (specs, checkpoints, results).
    pub state_dir: PathBuf,
    /// Runs allowed to step concurrently.
    pub max_runs: usize,
    /// Admitted runs allowed to wait behind the active ones; a submit
    /// past `max_runs + max_queue` gets [`Response::Busy`].
    pub max_queue: usize,
    /// Auto-checkpoint cadence in DRL steps (0 disables periodic
    /// checkpoints; explicit snapshots and shutdown still write them).
    pub checkpoint_every: usize,
}

impl ServeConfig {
    /// Defaults: 2 worker slots, queue of 8, checkpoint every 5 steps.
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        ServeConfig { state_dir: state_dir.into(), max_runs: 2, max_queue: 8, checkpoint_every: 5 }
    }
}

/// A daemon endpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Listen {
    /// Unix domain socket at this path.
    Unix(PathBuf),
    /// TCP socket at this `host:port` address.
    Tcp(String),
}

impl Listen {
    /// Parses `unix:PATH` or `tcp:HOST:PORT` (a bare path containing
    /// `/` is accepted as a unix socket).
    pub fn parse(s: &str) -> Result<Listen, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("empty unix socket path".into());
            }
            return Ok(Listen::Unix(PathBuf::from(path)));
        }
        if let Some(addr) = s.strip_prefix("tcp:") {
            if addr.rsplit_once(':').is_none_or(|(h, p)| h.is_empty() || p.parse::<u16>().is_err())
            {
                return Err(format!("tcp endpoint {addr:?} is not HOST:PORT"));
            }
            return Ok(Listen::Tcp(addr.to_string()));
        }
        if s.contains('/') {
            return Ok(Listen::Unix(PathBuf::from(s)));
        }
        Err(format!("endpoint {s:?} must be unix:PATH or tcp:HOST:PORT"))
    }
}

/// Per-run control block shared between the worker thread and request
/// handlers. All fields are atomics so status queries never block a
/// stepping worker.
struct RunCtl {
    state: AtomicU8,
    step: AtomicU64,
    budget: AtomicU64,
    cancel: AtomicBool,
    snap_req: AtomicBool,
    last_checkpoint: AtomicU64,
    best_val_bits: AtomicU64,
    test_acc_bits: AtomicU64,
    error: Mutex<String>,
}

impl RunCtl {
    fn new(state: RunState) -> Self {
        RunCtl {
            state: AtomicU8::new(state_tag(state)),
            step: AtomicU64::new(0),
            budget: AtomicU64::new(0),
            cancel: AtomicBool::new(false),
            snap_req: AtomicBool::new(false),
            last_checkpoint: AtomicU64::new(0),
            best_val_bits: AtomicU64::new(0),
            test_acc_bits: AtomicU64::new(0),
            error: Mutex::new(String::new()),
        }
    }

    fn state(&self) -> RunState {
        state_from_tag(self.state.load(Ordering::SeqCst))
    }

    fn set_state(&self, s: RunState) {
        self.state.store(state_tag(s), Ordering::SeqCst);
    }

    fn fail(&self, message: String) {
        *self.error.lock().unwrap() = message;
        self.set_state(RunState::Failed);
    }
}

fn state_tag(s: RunState) -> u8 {
    match s {
        RunState::Queued => 0,
        RunState::Running => 1,
        RunState::Done => 2,
        RunState::Failed => 3,
        RunState::Cancelled => 4,
        RunState::Interrupted => 5,
    }
}

fn state_from_tag(tag: u8) -> RunState {
    match tag {
        0 => RunState::Queued,
        1 => RunState::Running,
        2 => RunState::Done,
        3 => RunState::Failed,
        4 => RunState::Cancelled,
        _ => RunState::Interrupted,
    }
}

struct RunEntry {
    spec: RunSpec,
    ctl: Arc<RunCtl>,
}

#[derive(Default)]
struct Table {
    runs: BTreeMap<u64, RunEntry>,
    queue: VecDeque<u64>,
    active: usize,
    next_id: u64,
}

struct Shared {
    cfg: ServeConfig,
    shutdown: AtomicBool,
    table: Mutex<Table>,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed_n: AtomicU64,
    cancelled_n: AtomicU64,
    steps_total: AtomicU64,
    requests: AtomicU64,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

fn run_dir(state_dir: &Path, run_id: u64) -> PathBuf {
    state_dir.join("runs").join(format!("{run_id:06}"))
}

fn spec_bytes(spec: &RunSpec) -> Vec<u8> {
    let mut w = ByteWriter::new();
    encode_spec(spec, &mut w);
    w.into_bytes()
}

fn write_spec(dir: &Path, spec: &RunSpec) -> Result<(), String> {
    let mut w = ContainerWriter::new();
    w.put_bytes("serve/spec", &spec_bytes(spec));
    w.write_atomic(&dir.join("spec.grrs")).map(|_| ()).map_err(|e| e.to_string())
}

fn read_spec(dir: &Path) -> Result<RunSpec, String> {
    let c = Container::read(&dir.join("spec.grrs")).map_err(|e| e.to_string())?;
    let bytes = c.bytes("serve/spec").map_err(|e| e.to_string())?;
    let mut r = ByteReader::new(bytes, "serve run spec");
    let spec = decode_spec(&mut r).map_err(|e| e.to_string())?;
    r.expect_exhausted("serve run spec").map_err(|e| e.to_string())?;
    Ok(spec)
}

/// Finds the highest-step `step-NNNNNN.grrs` in `dir`, if any
/// (mirrors the CLI's resume scan).
fn latest_checkpoint(dir: &Path) -> Option<(usize, PathBuf)> {
    let entries = std::fs::read_dir(dir).ok()?;
    let mut best: Option<(usize, PathBuf)> = None;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let step: usize = match name.strip_prefix("step-").and_then(|s| s.strip_suffix(".grrs")) {
            Some(digits) => match digits.parse() {
                Ok(s) => s,
                Err(_) => continue,
            },
            None => continue,
        };
        match best {
            Some((b, _)) if step <= b => {}
            _ => best = Some((step, entry.path())),
        }
    }
    best
}

/// The serving daemon. Construct with [`Server::start`]; stop with
/// [`Server::request_shutdown`] followed by [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    accept_handles: Vec<JoinHandle<()>>,
    socket_files: Vec<PathBuf>,
}

impl Server {
    /// Creates (or reopens) the state directory, rebuilds the run table
    /// from any previous daemon lifetime, binds every endpoint, and
    /// starts resuming non-terminal runs.
    pub fn start(cfg: ServeConfig, listens: &[Listen]) -> Result<Server, String> {
        let runs_root = cfg.state_dir.join("runs");
        std::fs::create_dir_all(&runs_root)
            .map_err(|e| format!("cannot create {}: {e}", runs_root.display()))?;

        let shared = Arc::new(Shared {
            cfg,
            shutdown: AtomicBool::new(false),
            table: Mutex::new(Table::default()),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed_n: AtomicU64::new(0),
            cancelled_n: AtomicU64::new(0),
            steps_total: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
        });
        recover_state(&shared)?;

        let mut accept_handles = Vec::new();
        let mut socket_files = Vec::new();
        for listen in listens {
            match listen {
                Listen::Unix(path) => {
                    // A previous daemon's socket file blocks bind;
                    // stale files are safe to clear because a live
                    // daemon would still answer on it.
                    let _ = std::fs::remove_file(path);
                    let listener = std::os::unix::net::UnixListener::bind(path)
                        .map_err(|e| format!("cannot bind {}: {e}", path.display()))?;
                    listener.set_nonblocking(true).map_err(|e| e.to_string())?;
                    socket_files.push(path.clone());
                    let shared = Arc::clone(&shared);
                    accept_handles.push(std::thread::spawn(move || {
                        accept_loop(shared, move || listener.accept().map(|(s, _)| s));
                    }));
                }
                Listen::Tcp(addr) => {
                    let listener = std::net::TcpListener::bind(addr)
                        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
                    listener.set_nonblocking(true).map_err(|e| e.to_string())?;
                    let shared = Arc::clone(&shared);
                    accept_handles.push(std::thread::spawn(move || {
                        accept_loop(shared, move || listener.accept().map(|(s, _)| s));
                    }));
                }
            }
        }

        // Resume: fill the worker slots from the recovered queue.
        schedule(&shared);
        Ok(Server { shared, accept_handles, socket_files })
    }

    /// Handles one request in-process (no socket round-trip) — the
    /// accept loops dispatch through the same path.
    pub fn handle(&self, req: Request) -> Response {
        handle_request(&self.shared, req)
    }

    /// Flips the daemon into draining mode: no new admissions, every
    /// active worker checkpoints and parks its run at the next step
    /// boundary.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether a shutdown has been requested (by [`Self::request_shutdown`]
    /// or a client's `Shutdown` frame).
    pub fn shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Waits for the accept loops and every worker thread, then removes
    /// the daemon's unix socket files. Call [`Self::request_shutdown`]
    /// first, or this blocks until every hosted run finishes on its
    /// own. (Telemetry sinks stay registered; the daemon binary flushes
    /// them with `clear_sinks` on exit, like the CLI.)
    pub fn join(self) {
        for handle in self.accept_handles {
            let _ = handle.join();
        }
        // Workers can spawn successors (the scheduler hands a freed
        // slot to the next queued run), so drain until stable.
        loop {
            let batch = std::mem::take(&mut *self.shared.workers.lock().unwrap());
            if batch.is_empty() {
                break;
            }
            for handle in batch {
                let _ = handle.join();
            }
        }
        for path in &self.socket_files {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Rebuilds the run table from the state directory: finished runs keep
/// their terminal states, anything else re-queues for resumption.
fn recover_state(shared: &Arc<Shared>) -> Result<(), String> {
    let runs_root = shared.cfg.state_dir.join("runs");
    let mut table = shared.table.lock().unwrap();
    let entries =
        std::fs::read_dir(&runs_root).map_err(|e| format!("{}: {e}", runs_root.display()))?;
    let mut max_id = 0;
    for entry in entries.flatten() {
        let Ok(run_id) = entry.file_name().to_string_lossy().parse::<u64>() else { continue };
        let dir = entry.path();
        let spec = match read_spec(&dir) {
            Ok(spec) => spec,
            Err(e) => return Err(format!("run {run_id}: unreadable spec: {e}")),
        };
        max_id = max_id.max(run_id);

        let ctl = Arc::new(RunCtl::new(RunState::Queued));
        if let Some((step, _)) = latest_checkpoint(&dir) {
            ctl.step.store(step as u64, Ordering::SeqCst);
            ctl.last_checkpoint.store(step as u64, Ordering::SeqCst);
        }
        if dir.join("result.grrs").exists() {
            ctl.set_state(RunState::Done);
            ctl.step.store(spec.steps, Ordering::SeqCst);
            if let Ok(artifact) = persist::load_model(&dir.join("result.grrs")) {
                ctl.best_val_bits.store(artifact.best_val_acc.to_bits(), Ordering::SeqCst);
                ctl.test_acc_bits.store(artifact.test_acc.to_bits(), Ordering::SeqCst);
            }
        } else if dir.join("cancelled").exists() {
            ctl.set_state(RunState::Cancelled);
        } else if let Ok(message) = std::fs::read_to_string(dir.join("failed")) {
            ctl.fail(message.trim_end().to_string());
        } else {
            table.queue.push_back(run_id);
        }
        table.runs.insert(run_id, RunEntry { spec, ctl });
    }
    table.next_id = max_id + 1;
    Ok(())
}

/// Moves queued runs onto worker threads until the slots are full.
fn schedule(shared: &Arc<Shared>) {
    if shared.shutdown.load(Ordering::SeqCst) {
        return;
    }
    let mut to_spawn = Vec::new();
    {
        let mut table = shared.table.lock().unwrap();
        while table.active < shared.cfg.max_runs {
            let Some(run_id) = table.queue.pop_front() else { break };
            let entry = &table.runs[&run_id];
            entry.ctl.set_state(RunState::Running);
            to_spawn.push((run_id, entry.spec.clone(), Arc::clone(&entry.ctl)));
            table.active += 1;
        }
    }
    for (run_id, spec, ctl) in to_spawn {
        let worker_shared = Arc::clone(shared);
        let handle = std::thread::spawn(move || worker_main(worker_shared, run_id, spec, ctl));
        shared.workers.lock().unwrap().push(handle);
    }
}

fn worker_main(shared: Arc<Shared>, run_id: u64, spec: RunSpec, ctl: Arc<RunCtl>) {
    // Every telemetry event this thread emits (driver spans included)
    // carries the run's id, so one daemon JSONL stream demultiplexes
    // cleanly with `graphrare-trace --run-id`.
    telemetry::set_run_id(Some(run_id));
    let dir = run_dir(&shared.cfg.state_dir, run_id);
    match run_one(&shared, &dir, &spec, &ctl) {
        Ok(final_state) => ctl.set_state(final_state),
        Err(message) => {
            let _ = std::fs::write(dir.join("failed"), &message);
            ctl.fail(message);
            shared.failed_n.fetch_add(1, Ordering::SeqCst);
        }
    }
    telemetry::set_run_id(None);
    shared.table.lock().unwrap().active -= 1;
    schedule(&shared);
}

/// Steps one run to completion (or cancellation/interruption) on the
/// calling thread. The driver is created here and never leaves the
/// thread — [`RareDriver`] is `!Send`.
fn run_one(
    shared: &Arc<Shared>,
    dir: &Path,
    spec: &RunSpec,
    ctl: &RunCtl,
) -> Result<RunState, String> {
    let input = PathBuf::from(&spec.input);
    let graph = io::read_graph(&input).map_err(|e| format!("cannot read {}: {e}", spec.input))?;
    let split = stratified_split(graph.labels(), graph.num_classes(), spec.split_seed);
    let cfg = spec.to_config();

    let mut driver = match latest_checkpoint(dir) {
        Some((step, path)) => {
            telemetry::progress!("resuming from {} (step {step})", path.display());
            persist::resume_driver(&path, &graph, &split, spec.backbone, &cfg)
                .map_err(|e| format!("cannot resume from {}: {e}", path.display()))?
        }
        None => RareDriver::new(&graph, &split, spec.backbone, &cfg),
    };

    let checkpoint = |driver: &RareDriver, done: usize| -> Result<(), String> {
        let path = dir.join(format!("step-{done:06}.grrs"));
        persist::save_checkpoint(&path, driver)
            .map(|_| ())
            .map_err(|e| format!("cannot write checkpoint {}: {e}", path.display()))?;
        ctl.last_checkpoint.store(done as u64, Ordering::SeqCst);
        Ok(())
    };

    loop {
        if ctl.cancel.load(Ordering::SeqCst) {
            let _ = std::fs::write(dir.join("cancelled"), b"");
            shared.cancelled_n.fetch_add(1, Ordering::SeqCst);
            return Ok(RunState::Cancelled);
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Park the run resumable: checkpoint at this step boundary
            // unless one is already current.
            let done = driver.step_index();
            if done > 0 && ctl.last_checkpoint.load(Ordering::SeqCst) != done as u64 {
                checkpoint(&driver, done)?;
            }
            return Ok(RunState::Interrupted);
        }
        if spec.paced && ctl.budget.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(5));
            continue;
        }
        // A rewire rejection (corrupt or version-skewed checkpoint state
        // slipping past the restore shape checks) is a per-run failure:
        // the worker reports it and the slot keeps serving other runs,
        // instead of the old hot-path panic taking the thread down.
        let stepped = driver
            .try_step()
            .map_err(|e| format!("rewire engine rejected the run's topology state: {e}"))?;
        if !stepped {
            break;
        }
        let done = driver.step_index();
        ctl.step.store(done as u64, Ordering::SeqCst);
        shared.steps_total.fetch_add(1, Ordering::SeqCst);
        if spec.paced {
            // The worker is the budget's only consumer; grants only add.
            let _ = ctl
                .budget
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| Some(b.saturating_sub(1)));
        }
        let periodic = shared.cfg.checkpoint_every > 0 && done % shared.cfg.checkpoint_every == 0;
        if ctl.snap_req.swap(false, Ordering::SeqCst) || periodic {
            checkpoint(&driver, done)?;
        }
    }

    let report = driver
        .try_finish()
        .map_err(|e| format!("rewire engine rejected the run's topology state: {e}"))?;
    // The exact CLI `--save-model` path: deterministic bytes, which is
    // what lets the smoke test `cmp` served artifacts against solo runs.
    persist::save_model(&dir.join("result.grrs"), &report)
        .map_err(|e| format!("cannot write result: {e}"))?;
    ctl.step.store(spec.steps, Ordering::SeqCst);
    ctl.best_val_bits.store(report.best_val_acc.to_bits(), Ordering::SeqCst);
    ctl.test_acc_bits.store(report.test_acc.to_bits(), Ordering::SeqCst);
    shared.completed.fetch_add(1, Ordering::SeqCst);
    Ok(RunState::Done)
}

fn info_of(run_id: u64, entry: &RunEntry) -> RunInfo {
    let ctl = &entry.ctl;
    RunInfo {
        run_id,
        state: ctl.state(),
        step: ctl.step.load(Ordering::SeqCst),
        total_steps: entry.spec.steps,
        checkpoint_step: ctl.last_checkpoint.load(Ordering::SeqCst),
        best_val_acc: f64::from_bits(ctl.best_val_bits.load(Ordering::SeqCst)),
        test_acc: f64::from_bits(ctl.test_acc_bits.load(Ordering::SeqCst)),
        error: ctl.error.lock().unwrap().clone(),
    }
}

/// Dispatches one request against the daemon state. Pure with respect
/// to the transport: both the socket loops and in-process tests call
/// this directly.
fn handle_request(shared: &Arc<Shared>, req: Request) -> Response {
    shared.requests.fetch_add(1, Ordering::SeqCst);
    match req {
        Request::SubmitRun(spec) => submit(shared, spec),
        Request::Status(run_id) => {
            with_run(shared, run_id, |id, entry| Response::RunStatus(info_of(id, entry)))
        }
        Request::StepBudget { run_id, steps } => with_run(shared, run_id, |id, entry| {
            if !entry.spec.paced {
                return Response::Error(format!("run {id} is not paced"));
            }
            if entry.ctl.state().is_terminal() {
                return Response::Error(format!("run {id} is {}", entry.ctl.state().name()));
            }
            let mut after = 0;
            let _ = entry.ctl.budget.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| {
                after = b.saturating_add(steps);
                Some(after)
            });
            Response::BudgetGranted { run_id: id, remaining: after }
        }),
        Request::Snapshot(run_id) => with_run(shared, run_id, |id, entry| {
            if entry.ctl.state().is_terminal() {
                return Response::Error(format!("run {id} is {}", entry.ctl.state().name()));
            }
            entry.ctl.snap_req.store(true, Ordering::SeqCst);
            Response::SnapshotAck {
                run_id: id,
                checkpoint_step: entry.ctl.last_checkpoint.load(Ordering::SeqCst),
            }
        }),
        Request::Cancel(run_id) => cancel(shared, run_id),
        Request::FetchResult(run_id) => {
            let state_dir = shared.cfg.state_dir.clone();
            with_run(shared, run_id, |id, entry| {
                if entry.ctl.state() != RunState::Done {
                    return Response::Error(format!(
                        "run {id} is {}, not done",
                        entry.ctl.state().name()
                    ));
                }
                match std::fs::read(run_dir(&state_dir, id).join("result.grrs")) {
                    Ok(artifact) => Response::RunResult { run_id: id, artifact },
                    Err(e) => Response::Error(format!("run {id}: cannot read result: {e}")),
                }
            })
        }
        Request::ListRuns => {
            let table = shared.table.lock().unwrap();
            Response::RunList(table.runs.iter().map(|(&id, entry)| info_of(id, entry)).collect())
        }
        Request::ServerStats => {
            let (active, queued) = {
                let table = shared.table.lock().unwrap();
                (table.active as u64, table.queue.len() as u64)
            };
            Response::Stats(StatsReport {
                active,
                queued,
                submitted: shared.submitted.load(Ordering::SeqCst),
                completed: shared.completed.load(Ordering::SeqCst),
                failed: shared.failed_n.load(Ordering::SeqCst),
                cancelled: shared.cancelled_n.load(Ordering::SeqCst),
                steps_total: shared.steps_total.load(Ordering::SeqCst),
                requests: shared.requests.load(Ordering::SeqCst),
                counters: telemetry::snapshot().counters,
            })
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::ShuttingDown
        }
    }
}

fn with_run(
    shared: &Arc<Shared>,
    run_id: u64,
    f: impl FnOnce(u64, &RunEntry) -> Response,
) -> Response {
    let table = shared.table.lock().unwrap();
    match table.runs.get(&run_id) {
        Some(entry) => f(run_id, entry),
        None => Response::Error(format!("no such run {run_id}")),
    }
}

fn submit(shared: &Arc<Shared>, spec: RunSpec) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Response::ShuttingDown;
    }
    if let Err(why) = spec.validate() {
        return Response::Error(format!("invalid run spec: {why}"));
    }
    let run_id = {
        let mut table = shared.table.lock().unwrap();
        if table.active >= shared.cfg.max_runs && table.queue.len() >= shared.cfg.max_queue {
            return Response::Busy {
                active: table.active as u64,
                queued: table.queue.len() as u64,
            };
        }
        let run_id = table.next_id;
        let dir = run_dir(&shared.cfg.state_dir, run_id);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            return Response::Error(format!("cannot create {}: {e}", dir.display()));
        }
        if let Err(e) = write_spec(&dir, &spec) {
            return Response::Error(format!("cannot persist spec: {e}"));
        }
        table.next_id += 1;
        let ctl = Arc::new(RunCtl::new(RunState::Queued));
        table.runs.insert(run_id, RunEntry { spec, ctl });
        table.queue.push_back(run_id);
        run_id
    };
    shared.submitted.fetch_add(1, Ordering::SeqCst);
    schedule(shared);
    Response::Submitted(run_id)
}

fn cancel(shared: &Arc<Shared>, run_id: u64) -> Response {
    let state_dir = shared.cfg.state_dir.clone();
    let mut table = shared.table.lock().unwrap();
    let Some(entry) = table.runs.get(&run_id) else {
        return Response::Error(format!("no such run {run_id}"));
    };
    match entry.ctl.state() {
        RunState::Queued => {
            entry.ctl.set_state(RunState::Cancelled);
            let _ = std::fs::write(run_dir(&state_dir, run_id).join("cancelled"), b"");
            shared.cancelled_n.fetch_add(1, Ordering::SeqCst);
            table.queue.retain(|&id| id != run_id);
            Response::Cancelled(run_id)
        }
        RunState::Running | RunState::Interrupted => {
            // Interrupted runs re-queue on restart, so a persisted
            // cancel must stop them then too.
            entry.ctl.cancel.store(true, Ordering::SeqCst);
            if entry.ctl.state() == RunState::Interrupted {
                entry.ctl.set_state(RunState::Cancelled);
                let _ = std::fs::write(run_dir(&state_dir, run_id).join("cancelled"), b"");
                shared.cancelled_n.fetch_add(1, Ordering::SeqCst);
            }
            Response::Cancelled(run_id)
        }
        terminal => Response::Error(format!("run {run_id} is already {}", terminal.name())),
    }
}

/// Accepts connections until shutdown, handing each to a detached
/// handler thread.
fn accept_loop<S, F>(shared: Arc<Shared>, mut accept: F)
where
    S: std::io::Read + std::io::Write + SetTimeout + Send + 'static,
    F: FnMut() -> std::io::Result<S>,
{
    while !shared.shutdown.load(Ordering::SeqCst) {
        match accept() {
            Ok(stream) => {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || handle_connection(shared, stream));
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// Read-timeout capability shared by unix and TCP streams.
trait SetTimeout {
    fn set_read_timeout_ms(&self, ms: u64) -> std::io::Result<()>;
}

impl SetTimeout for std::os::unix::net::UnixStream {
    fn set_read_timeout_ms(&self, ms: u64) -> std::io::Result<()> {
        self.set_read_timeout(Some(Duration::from_millis(ms)))
    }
}

impl SetTimeout for std::net::TcpStream {
    fn set_read_timeout_ms(&self, ms: u64) -> std::io::Result<()> {
        self.set_read_timeout(Some(Duration::from_millis(ms)))
    }
}

/// Serves one connection: request frames in, response frames out.
/// Payload-level corruption answers with a typed `Error` response;
/// frame-level corruption drops the connection. Neither panics.
fn handle_connection<S>(shared: Arc<Shared>, mut stream: S)
where
    S: std::io::Read + std::io::Write + SetTimeout,
{
    // The timeout bounds how long an idle connection can pin this
    // thread once a shutdown starts.
    let _ = stream.set_read_timeout_ms(100);
    loop {
        match proto::read_frame(&mut stream) {
            Ok(FrameRead::Frame(kind, payload)) => {
                let resp = match Request::decode(kind, &payload) {
                    Ok(req) => handle_request(&shared, req),
                    Err(e) => Response::Error(format!("bad request: {e}")),
                };
                if proto::write_response(&mut stream, &resp).is_err() {
                    break;
                }
            }
            Ok(FrameRead::Eof) => break,
            Ok(FrameRead::Idle) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            // Bad magic / version / CRC / truncation: the stream can no
            // longer be framed, so drop it.
            Err(_) => break,
        }
    }
    let _ = stream.flush();
}
