//! End-to-end daemon behaviour: concurrent served runs are
//! bit-identical to solo runs, admission control refuses overload with
//! a typed `Busy`, corrupt connections are dropped without harming the
//! daemon, and a shutdown/restart cycle resumes interrupted runs from
//! their checkpoints to the same bits.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use graphrare::{persist, RewirerKind, RlAlgo};
use graphrare_datasets::{generate_spec, stratified_split, DatasetSpec};
use graphrare_gnn::Backbone;
use graphrare_graph::io;
use graphrare_serve::{
    Connection, Listen, Request, Response, RunSpec, RunState, ServeConfig, Server,
};

fn fixture_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("graphrare-serve-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_graph() -> graphrare_graph::Graph {
    generate_spec(
        &DatasetSpec {
            name: "serve",
            num_nodes: 40,
            num_edges: 90,
            feat_dim: 12,
            num_classes: 3,
            homophily: 0.2,
            degree_exponent: 0.3,
            feature_signal: 0.8,
            feature_density: 0.08,
        },
        1,
    )
}

fn spec(input: &Path, seed: u64, steps: u64, paced: bool) -> RunSpec {
    RunSpec {
        input: input.to_str().unwrap().to_string(),
        backbone: Backbone::Gcn,
        steps,
        seed,
        split_seed: 0,
        k_cap: 10,
        lambda: 1.0,
        algo: RlAlgo::Ppo,
        threads: 1,
        paced,
        rewirer: RewirerKind::Ppo,
    }
}

/// Runs the same spec solo (no daemon) through the library and the
/// deterministic `save_model` writer; returns the artifact bytes.
fn solo_artifact(dir: &Path, run_spec: &RunSpec) -> Vec<u8> {
    let graph = io::read_graph(&PathBuf::from(&run_spec.input)).unwrap();
    let split = stratified_split(graph.labels(), graph.num_classes(), run_spec.split_seed);
    let cfg = run_spec.to_config();
    let report = graphrare::run(&graph, &split, run_spec.backbone, &cfg);
    let path = dir.join(format!("solo-{}.grrs", run_spec.seed));
    persist::save_model(&path, &report).unwrap();
    std::fs::read(&path).unwrap()
}

/// Polls the daemon until `run_id` reaches a terminal state.
fn wait_terminal(server: &Server, run_id: u64) -> RunState {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        match server.handle(Request::Status(run_id)) {
            Response::RunStatus(info) => {
                if info.state.is_terminal() {
                    return info.state;
                }
            }
            other => panic!("status failed: {other:?}"),
        }
        assert!(Instant::now() < deadline, "run {run_id} never finished");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn submit_ok(server: &Server, run_spec: RunSpec) -> u64 {
    match server.handle(Request::SubmitRun(run_spec)) {
        Response::Submitted(run_id) => run_id,
        other => panic!("submit failed: {other:?}"),
    }
}

fn fetch_artifact(server: &Server, run_id: u64) -> Vec<u8> {
    match server.handle(Request::FetchResult(run_id)) {
        Response::RunResult { artifact, .. } => artifact,
        other => panic!("fetch failed: {other:?}"),
    }
}

#[test]
fn concurrent_served_runs_are_bit_identical_to_solo_runs() {
    let dir = fixture_dir("identity");
    let input = dir.join("toy");
    io::write_graph(&small_graph(), &input).unwrap();
    let socket = dir.join("daemon.sock");

    let mut cfg = ServeConfig::new(dir.join("state"));
    cfg.max_runs = 2;
    let server = Server::start(cfg, &[Listen::Unix(socket.clone())]).unwrap();

    // Submit two different-seed runs over the real socket so the whole
    // frame path is exercised, then watch both to completion.
    let mut conn = Connection::connect(&Listen::Unix(socket.clone())).unwrap();
    let mut ids = Vec::new();
    for seed in [5, 9] {
        match conn.request(&Request::SubmitRun(spec(&input, seed, 8, false))).unwrap() {
            Response::Submitted(run_id) => ids.push(run_id),
            other => panic!("submit over socket failed: {other:?}"),
        }
    }
    for &run_id in &ids {
        assert_eq!(wait_terminal(&server, run_id), RunState::Done);
    }

    // Served artifacts (fetched over the socket) must equal the solo
    // CLI-equivalent bytes exactly.
    for (&run_id, seed) in ids.iter().zip([5, 9]) {
        let served = match conn.request(&Request::FetchResult(run_id)).unwrap() {
            Response::RunResult { artifact, .. } => artifact,
            other => panic!("fetch over socket failed: {other:?}"),
        };
        let solo = solo_artifact(&dir, &spec(&input, seed, 8, false));
        assert_eq!(served, solo, "seed {seed}: served artifact differs from solo run");
    }

    server.request_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn admission_control_refuses_overload_with_busy() {
    let dir = fixture_dir("busy");
    let input = dir.join("toy");
    io::write_graph(&small_graph(), &input).unwrap();

    let mut cfg = ServeConfig::new(dir.join("state"));
    cfg.max_runs = 1;
    cfg.max_queue = 2;
    let server = Server::start(cfg, &[]).unwrap();

    // Paced runs with zero budget hold their slots indefinitely, so
    // capacity fills deterministically: 1 active + 2 queued.
    for _ in 0..3 {
        submit_ok(&server, spec(&input, 1, 8, true));
    }
    match server.handle(Request::SubmitRun(spec(&input, 1, 8, true))) {
        Response::Busy { active, queued } => {
            assert_eq!(active, 1);
            assert_eq!(queued, 2);
        }
        other => panic!("expected Busy, got {other:?}"),
    }

    // Cancelling a queued run frees a queue slot; the next submit is
    // admitted again.
    match server.handle(Request::Cancel(2)) {
        Response::Cancelled(2) => {}
        other => panic!("cancel failed: {other:?}"),
    }
    submit_ok(&server, spec(&input, 1, 8, true));

    // An invalid spec is a typed error, not a panic or an admission.
    let mut bad = spec(&input, 1, 8, false);
    bad.steps = 0;
    assert!(matches!(server.handle(Request::SubmitRun(bad)), Response::Error(_)));

    // Unknown run ids are typed errors across the board.
    assert!(matches!(server.handle(Request::Status(99)), Response::Error(_)));
    assert!(matches!(server.handle(Request::FetchResult(99)), Response::Error(_)));
    assert!(matches!(server.handle(Request::Cancel(99)), Response::Error(_)));

    server.request_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn corrupt_connection_is_dropped_and_daemon_survives() {
    let dir = fixture_dir("corrupt");
    let socket = dir.join("daemon.sock");
    let server =
        Server::start(ServeConfig::new(dir.join("state")), &[Listen::Unix(socket.clone())])
            .unwrap();

    // Garbage bytes: the daemon cannot frame them, drops the
    // connection, and keeps serving.
    {
        let mut raw = std::os::unix::net::UnixStream::connect(&socket).unwrap();
        raw.write_all(b"not a frame at all, definitely not GRSV").unwrap();
        raw.flush().unwrap();
        // The daemon closes its end; our next read sees EOF.
        let mut buf = [0u8; 16];
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let n = std::io::Read::read(&mut raw, &mut buf).unwrap_or(0);
        assert_eq!(n, 0, "daemon should close a corrupt connection");
    }

    // A fresh, well-formed connection still works afterwards.
    let mut conn = Connection::connect(&Listen::Unix(socket)).unwrap();
    match conn.request(&Request::ServerStats).unwrap() {
        Response::Stats(stats) => assert_eq!(stats.submitted, 0),
        other => panic!("stats failed after corrupt peer: {other:?}"),
    }

    server.request_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn shutdown_checkpoints_and_restart_resumes_to_identical_bits() {
    let dir = fixture_dir("resume");
    let input = dir.join("toy");
    io::write_graph(&small_graph(), &input).unwrap();
    let state = dir.join("state");
    let run_spec = spec(&input, 13, 10, true);

    // First daemon lifetime: run 6 of 10 steps (paced budget), then
    // shut down mid-run — the worker checkpoints and parks the run.
    {
        let mut cfg = ServeConfig::new(&state);
        cfg.checkpoint_every = 2;
        let server = Server::start(cfg, &[]).unwrap();
        let run_id = submit_ok(&server, run_spec.clone());
        assert_eq!(run_id, 1);
        match server.handle(Request::StepBudget { run_id, steps: 6 }) {
            Response::BudgetGranted { remaining, .. } => assert_eq!(remaining, 6),
            other => panic!("budget failed: {other:?}"),
        }
        // Wait until the budget is consumed and the run stalls at step 6.
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            match server.handle(Request::Status(run_id)) {
                Response::RunStatus(info) if info.step == 6 => break,
                Response::RunStatus(_) => {}
                other => panic!("status failed: {other:?}"),
            }
            assert!(Instant::now() < deadline, "run never reached step 6");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(matches!(server.handle(Request::Shutdown), Response::ShuttingDown));
        // Draining daemons refuse new work.
        assert!(matches!(
            server.handle(Request::SubmitRun(run_spec.clone())),
            Response::ShuttingDown
        ));
        server.request_shutdown();
        server.join();
    }

    // The parked run left a checkpoint at its stall point.
    assert!(state.join("runs").join("000001").join("step-000006.grrs").exists());

    // Second lifetime over the same state directory: the run comes
    // back queued, resumes from the checkpoint, and finishes once
    // granted the remaining budget.
    {
        let server = Server::start(ServeConfig::new(&state), &[]).unwrap();
        match server.handle(Request::Status(1)) {
            Response::RunStatus(info) => {
                assert!(
                    matches!(info.state, RunState::Queued | RunState::Running),
                    "recovered state {:?}",
                    info.state
                );
                assert_eq!(info.checkpoint_step, 6);
            }
            other => panic!("status after restart failed: {other:?}"),
        }
        match server.handle(Request::StepBudget { run_id: 1, steps: 10 }) {
            Response::BudgetGranted { .. } => {}
            other => panic!("budget after restart failed: {other:?}"),
        }
        assert_eq!(wait_terminal(&server, 1), RunState::Done);

        // The interrupted-and-resumed run produces the same bytes as an
        // uninterrupted solo run of the same spec.
        let served = fetch_artifact(&server, 1);
        let solo = solo_artifact(&dir, &run_spec);
        assert_eq!(served, solo, "resumed artifact differs from uninterrupted solo run");

        server.request_shutdown();
        server.join();
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn corrupted_checkpoint_fails_the_run_but_daemon_keeps_serving() {
    let dir = fixture_dir("corrupt-ckpt");
    let input = dir.join("toy");
    io::write_graph(&small_graph(), &input).unwrap();
    let state = dir.join("state");
    let run_spec = spec(&input, 21, 10, true);

    // First lifetime: park a paced run at step 6 with a checkpoint, like
    // the resume test.
    {
        let mut cfg = ServeConfig::new(&state);
        cfg.checkpoint_every = 2;
        let server = Server::start(cfg, &[]).unwrap();
        let run_id = submit_ok(&server, run_spec.clone());
        match server.handle(Request::StepBudget { run_id, steps: 6 }) {
            Response::BudgetGranted { .. } => {}
            other => panic!("budget failed: {other:?}"),
        }
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            match server.handle(Request::Status(run_id)) {
                Response::RunStatus(info) if info.step == 6 => break,
                Response::RunStatus(_) => {}
                other => panic!("status failed: {other:?}"),
            }
            assert!(Instant::now() < deadline, "run never reached step 6");
            std::thread::sleep(Duration::from_millis(10));
        }
        server.request_shutdown();
        server.join();
    }

    // Corrupt the parked checkpoint's payload between lifetimes.
    let ckpt = state.join("runs").join("000001").join("step-000006.grrs");
    let mut bytes = std::fs::read(&ckpt).unwrap();
    let (mid, end) = (bytes.len() / 2, (bytes.len() / 2 + 64).min(bytes.len()));
    for b in &mut bytes[mid..end] {
        *b ^= 0xA5;
    }
    std::fs::write(&ckpt, &bytes).unwrap();

    // Second lifetime: the resume must surface as a *failed run* — not a
    // worker panic that leaks the slot for the daemon's lifetime.
    {
        let mut cfg = ServeConfig::new(&state);
        cfg.max_runs = 1; // a leaked slot would deadlock the daemon below
        let server = Server::start(cfg, &[]).unwrap();
        // Paced run with no budget grant: it fails in restore before
        // stepping, so no budget is needed; grant anyway to avoid any
        // dependence on where the failure lands.
        match server.handle(Request::StepBudget { run_id: 1, steps: 10 }) {
            Response::BudgetGranted { .. } => {}
            other => panic!("budget after restart failed: {other:?}"),
        }
        assert_eq!(wait_terminal(&server, 1), RunState::Failed);
        match server.handle(Request::Status(1)) {
            Response::RunStatus(info) => {
                assert!(!info.error.is_empty(), "failed run must carry its error message");
            }
            other => panic!("status of failed run: {other:?}"),
        }

        // The slot is free again: a fresh run on the same daemon goes all
        // the way to Done.
        let fresh = submit_ok(&server, spec(&input, 3, 4, false));
        assert_eq!(wait_terminal(&server, fresh), RunState::Done);
        match server.handle(Request::ServerStats) {
            Response::Stats(stats) => {
                assert!(stats.failed >= 1, "failure must be counted: {stats:?}");
            }
            other => panic!("stats failed: {other:?}"),
        }

        server.request_shutdown();
        server.join();
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn listen_parse_accepts_and_rejects() {
    assert_eq!(Listen::parse("unix:/tmp/x.sock"), Ok(Listen::Unix(PathBuf::from("/tmp/x.sock"))));
    assert_eq!(Listen::parse("/tmp/x.sock"), Ok(Listen::Unix(PathBuf::from("/tmp/x.sock"))));
    assert_eq!(Listen::parse("tcp:127.0.0.1:7464"), Ok(Listen::Tcp("127.0.0.1:7464".into())));
    assert!(Listen::parse("tcp:nonsense").is_err());
    assert!(Listen::parse("tcp::7464").is_err());
    assert!(Listen::parse("unix:").is_err());
    assert!(Listen::parse("bare-name").is_err());
}
