//! Adversarial frames: truncated, corrupted, oversized and
//! wrong-version byte streams must come back as typed
//! [`ProtoError`]s (or a dropped connection at the daemon) — the
//! decode path never panics, whatever the bytes.

use proptest::prelude::*;

use graphrare::{RewirerKind, RlAlgo};
use graphrare_gnn::Backbone;
use graphrare_serve::proto::{
    read_frame, write_request, FrameRead, ProtoError, Request, Response, RunSpec, HEADER_LEN,
    MAGIC, MAX_PAYLOAD, PROTO_VERSION,
};

/// A frame shaped like real traffic: a submit request with a
/// multi-field payload (string, tags, scalars). Its payload length
/// matches no other request kind's expected size, so a flipped kind
/// byte can never silently re-parse as a different valid request.
fn sample_frame() -> Vec<u8> {
    let spec = RunSpec {
        input: "data/toy".into(),
        backbone: Backbone::Gcn,
        steps: 24,
        seed: 11,
        split_seed: 2,
        k_cap: 10,
        lambda: 1.0,
        algo: RlAlgo::Ppo,
        threads: 1,
        paced: false,
        rewirer: RewirerKind::Ppo,
    };
    let mut frame = Vec::new();
    write_request(&mut frame, &Request::SubmitRun(spec)).unwrap();
    frame
}

/// Reads the frame and, when the frame layer accepts, pushes the
/// payload through both payload decoders. Returns whether any layer
/// accepted the bytes as a complete request frame.
fn decodes_cleanly(bytes: &[u8]) -> bool {
    match read_frame(&mut &bytes[..]) {
        Ok(FrameRead::Frame(kind, payload)) => Request::decode(kind, &payload).is_ok(),
        _ => false,
    }
}

#[test]
fn wrong_version_is_rejected_for_every_version() {
    let frame = sample_frame();
    for version in (0..=u16::MAX).filter(|&v| v != PROTO_VERSION) {
        let mut bad = frame.clone();
        bad[4..6].copy_from_slice(&version.to_le_bytes());
        match read_frame(&mut bad.as_slice()) {
            Err(ProtoError::BadVersion(v)) => assert_eq!(v, version),
            other => panic!("version {version}: expected BadVersion, got {other:?}"),
        }
    }
}

#[test]
fn oversized_length_never_allocates() {
    // A hostile length prefix up to u32::MAX must be refused before
    // any payload allocation happens.
    for len in [MAX_PAYLOAD + 1, u32::MAX / 2, u32::MAX] {
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC.to_le_bytes());
        frame.extend_from_slice(&PROTO_VERSION.to_le_bytes());
        frame.push(1);
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&[0u8; 32]);
        assert!(matches!(
            read_frame(&mut frame.as_slice()),
            Err(ProtoError::Oversized(n)) if n == len
        ));
    }
}

#[test]
fn truncation_at_every_offset_is_typed() {
    let frame = sample_frame();
    assert!(matches!(read_frame(&mut [].as_slice()), Ok(FrameRead::Eof)));
    for cut in 1..frame.len() {
        match read_frame(&mut &frame[..cut]) {
            Err(ProtoError::Truncated) => {}
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any single-byte corruption anywhere in a frame is detected:
    /// header fields by their own checks, payload and CRC bytes by the
    /// CRC-32, and the kind byte by the payload decoder.
    #[test]
    fn random_flip_never_decodes(seed in any::<u64>(), mask in 1u8..=255) {
        let mut frame = sample_frame();
        let at = (seed % frame.len() as u64) as usize;
        frame[at] ^= mask;
        prop_assert!(!decodes_cleanly(&frame));
    }

    /// Every proper prefix of a valid frame is a typed truncation
    /// error (an empty stream is a clean EOF, not an error).
    #[test]
    fn random_truncation_never_decodes(seed in any::<u64>()) {
        let frame = sample_frame();
        let cut = (seed % frame.len() as u64) as usize;
        match read_frame(&mut &frame[..cut]) {
            Ok(FrameRead::Eof) => prop_assert_eq!(cut, 0),
            Err(ProtoError::Truncated) => {}
            other => prop_assert!(false, "cut {}: {:?}", cut, other),
        }
    }

    /// Random byte soup never panics the frame reader; in the
    /// astronomically unlikely event it frames (magic, version and CRC
    /// all align), the payload decoders still only return Results.
    #[test]
    fn garbage_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..200)) {
        if let Ok(FrameRead::Frame(kind, payload)) = read_frame(&mut garbage.as_slice()) {
            let _ = Request::decode(kind, &payload);
            let _ = Response::decode(kind, &payload);
        }
    }

    /// Arbitrary payload bytes presented under every possible kind
    /// byte: both decoders must accept or reject, never panic — even
    /// when length prefixes inside the payload lie about sizes.
    #[test]
    fn decoders_never_panic_on_arbitrary_payloads(
        payload in proptest::collection::vec(any::<u8>(), 0..120),
    ) {
        for kind in 0..=u8::MAX {
            let _ = Request::decode(kind, &payload);
            let _ = Response::decode(kind, &payload);
        }
    }

    /// A flipped byte in the CRC trailer itself is always a CRC
    /// mismatch — the trailer is part of the verification, not trusted.
    #[test]
    fn crc_trailer_flip_is_always_caught(mask in 1u8..=255, which in 0usize..4) {
        let mut frame = sample_frame();
        let at = frame.len() - 4 + which;
        frame[at] ^= mask;
        prop_assert!(matches!(
            read_frame(&mut frame.as_slice()),
            Err(ProtoError::CrcMismatch { .. })
        ));
    }
}

// Keep the header-geometry assumption the flip test relies on honest.
#[test]
fn header_layout_is_stable() {
    let frame = sample_frame();
    assert_eq!(&frame[..4], &MAGIC.to_le_bytes());
    assert_eq!(&frame[4..6], &PROTO_VERSION.to_le_bytes());
    let len = u32::from_le_bytes(frame[7..11].try_into().unwrap()) as usize;
    assert_eq!(frame.len(), HEADER_LEN + len + 4);
}
